//! Ablation experiments for the design points the paper discusses but could
//! not vary on real hardware.
//!
//! * **A1 — BTB size** (§5.3 cites \[7\]: larger BTBs, up to 16 K entries,
//!   improve OLTP-style branch streams);
//! * **A2 — L2 capacity** (§5.2.1: "The size of today's L2 caches has
//!   increased to 8 MB, and continues to increase");
//! * **A4 — prefetch distance** (System B's cache-conscious scan mechanism).

use wdtg_memdb::{DbResult, EngineProfile, SystemId};
use wdtg_workloads::MicroQuery;

use crate::figures::FigureCtx;
use crate::methodology::{measure_query, measure_query_with};
use crate::tables::{pct, TextTable};

/// A1: BTB entry-count sweep on System D's sequential selection.
pub fn btb_sweep(ctx: &FigureCtx) -> DbResult<String> {
    let mut out = String::from(
        "Ablation A1: BTB size sweep (System D, 10% SRS) — ref [7] suggests\n\
         larger BTBs help database branch streams\n",
    );
    let mut t = TextTable::new([
        "BTB entries",
        "BTB miss rate",
        "mispredict rate",
        "T_B % of time",
    ]);
    for entries in [512u32, 1024, 4096, 16 * 1024] {
        let cfg = ctx.cfg.clone().with_btb_entries(entries);
        let m = measure_query(
            SystemId::D,
            MicroQuery::SequentialRangeSelection,
            0.1,
            ctx.scale,
            &cfg,
            &ctx.methodology,
        )?;
        let total = m.truth.component_sum().max(1e-9);
        t.row([
            entries.to_string(),
            pct(m.rates.btb_miss),
            pct(m.rates.br_mispredict),
            pct(m.truth.tb / total),
        ]);
    }
    out.push_str(&t.render());
    Ok(out)
}

/// A2: L2 capacity sweep on System C (sequential + indexed selections).
pub fn l2_sweep(ctx: &FigureCtx) -> DbResult<String> {
    let mut out = String::from(
        "Ablation A2: L2 capacity sweep (System C) — §5.2.1 anticipates\n\
         larger L2 caches\n",
    );
    let mut t = TextTable::new(["L2 size", "query", "T_L2D % of time", "cycles/record"]);
    for mb in [512 * 1024u32, 2 * 1024 * 1024, 8 * 1024 * 1024] {
        let cfg = ctx.cfg.clone().with_l2_size(mb);
        for q in [
            MicroQuery::SequentialRangeSelection,
            MicroQuery::IndexedRangeSelection,
        ] {
            let m = measure_query(SystemId::C, q, 0.1, ctx.scale, &cfg, &ctx.methodology)?;
            let total = m.truth.component_sum().max(1e-9);
            t.row([
                format!("{} KB", mb / 1024),
                q.label().to_string(),
                pct(m.truth.tl2d / total),
                format!("{:.0}", m.cycles_per_record()),
            ]);
        }
    }
    out.push_str(&t.render());
    Ok(out)
}

/// A4: prefetch-distance sweep on System B's scan (its §5.2.1 mechanism).
pub fn prefetch_sweep(ctx: &FigureCtx) -> DbResult<String> {
    let mut out = String::from(
        "Ablation A4: scan prefetch distance (System B, 10% SRS) — the\n\
         mechanism behind B's 2% L2 data miss rate (§5.2.1)\n",
    );
    let mut t = TextTable::new([
        "distance (lines)",
        "L2 data miss rate",
        "T_L2D % of time",
        "cycles/record",
    ]);
    for distance in [0u32, 4, 8, 16, 24, 32] {
        let mut profile = EngineProfile::system(SystemId::B);
        profile.prefetch_lines_ahead = distance;
        let m = measure_query_with(
            profile,
            MicroQuery::SequentialRangeSelection,
            0.1,
            ctx.scale,
            &ctx.cfg,
            &ctx.methodology,
        )?;
        let total = m.truth.component_sum().max(1e-9);
        t.row([
            distance.to_string(),
            pct(m.rates.l2d_miss),
            pct(m.truth.tl2d / total),
            format!("{:.0}", m.cycles_per_record()),
        ]);
    }
    out.push_str(&t.render());
    Ok(out)
}

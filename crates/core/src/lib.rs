//! # wdtg-core — "Where Does Time Go?": the paper's framework
//!
//! The primary contribution of *"DBMSs On A Modern Processor: Where Does
//! Time Go?"* (Ailamaki, DeWitt, Hill, Wood — VLDB 1999) reproduced as a
//! library:
//!
//! * the execution-time breakdown `T_Q = T_C + T_M + T_B + T_R − T_OVL`
//!   with the Table 3.1 component hierarchy — [`breakdown`];
//! * the §4.3 measurement methodology (warm-up, unit-of-queries, repetition
//!   with a <5% stability bar, two-counter emon multiplexing) —
//!   [`methodology`];
//! * one runner per figure/table of §5 — [`figures`], [`dss`], [`oltp`],
//!   [`ablations`];
//! * the paper's findings as machine-checkable claims — [`validate`].
//!
//! ## Quickstart
//!
//! ```no_run
//! use wdtg_core::figures::{FigureCtx, MicrobenchGrid};
//!
//! let ctx = FigureCtx::default_ctx();
//! let grid = MicrobenchGrid::run(&ctx).unwrap();
//! println!("{}", grid.render_fig5_1());
//! ```

#![warn(missing_docs)]

pub mod ablations;
pub mod breakdown;
pub mod dss;
pub mod figures;
pub mod methodology;
pub mod oltp;
pub mod tables;
pub mod validate;

pub use breakdown::{BreakdownSource, FourWay, TimeBreakdown};
pub use figures::{
    BranchCell, ExecModeComparison, FigureCtx, JoinCell, JoinComparison, L1iHypotheses,
    LayoutComparison, MicrobenchGrid, PlannerCell, PlannerComparison, RecordSizeSweep, ScalingCell,
    ScalingComparison, SelectivityComparison, SelectivitySweep,
};
pub use methodology::{
    build_db, build_db_with, build_db_with_layout, build_sharded_db_with_layout, measure_query,
    measure_query_with, measured_latency, Methodology, QueryMeasurement, Rates,
};
pub use validate::{render_claims, Claim};

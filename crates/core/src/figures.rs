//! Per-figure experiment runners (§5 of the paper).
//!
//! Each function regenerates the data series behind one figure or text
//! observation, printing the same rows/series the paper reports. Absolute
//! cycle counts are a model; the *shapes* — which system wins, component
//! dominance, trends under selectivity/record-size variation — are the
//! reproduction targets (see EXPERIMENTS.md).

use wdtg_memdb::sql::{compile, BoundStatement, Session};
use wdtg_memdb::{
    Database, DbResult, EngineProfile, ExecMode, JoinAlgo, PageLayout, Schema, SelectionMode,
    SystemId,
};
use wdtg_sim::{CpuConfig, Event, Mode};
use wdtg_workloads::{join, micro, JoinSpec, MicroQuery, Scale, SweepSpec};

use crate::breakdown::TimeBreakdown;
use crate::methodology::{
    build_db_with_layout, build_sharded_db_with_layout, measure_query, Methodology,
    QueryMeasurement,
};
use crate::tables::{pct, TextTable};

/// Shared experiment context.
#[derive(Debug, Clone)]
pub struct FigureCtx {
    /// Dataset scale.
    pub scale: Scale,
    /// Processor configuration.
    pub cfg: CpuConfig,
    /// Methodology parameters.
    pub methodology: Methodology,
}

impl FigureCtx {
    /// Default context: dev scale (or `WDTG_SCALE`), Xeon config, fast
    /// methodology.
    pub fn default_ctx() -> FigureCtx {
        FigureCtx {
            scale: Scale::from_env(),
            cfg: CpuConfig::pentium_ii_xeon(),
            methodology: Methodology::default(),
        }
    }
}

/// Systems that participate in each query graph. "The middle graph showing
/// the indexed range selection only includes systems B, C and D, because
/// System A did not use the index to execute this query" (§5.1).
pub fn systems_for(query: MicroQuery) -> &'static [SystemId] {
    match query {
        MicroQuery::IndexedRangeSelection => &[SystemId::B, SystemId::C, SystemId::D],
        _ => &[SystemId::A, SystemId::B, SystemId::C, SystemId::D],
    }
}

/// Measurements for all systems over the three queries at 10% selectivity —
/// the raw material for Figures 5.1, 5.2, 5.3, 5.4-left and 5.5.
#[derive(Debug, Clone)]
pub struct MicrobenchGrid {
    /// One measurement per (query, system) pair, in paper order.
    pub cells: Vec<QueryMeasurement>,
}

impl MicrobenchGrid {
    /// Runs the full grid.
    pub fn run(ctx: &FigureCtx) -> DbResult<MicrobenchGrid> {
        let mut cells = Vec::new();
        for query in MicroQuery::ALL {
            for &sys in systems_for(query) {
                cells.push(measure_query(
                    sys,
                    query,
                    0.1,
                    ctx.scale,
                    &ctx.cfg,
                    &ctx.methodology,
                )?);
            }
        }
        Ok(MicrobenchGrid { cells })
    }

    /// The cell for (query, system), if measured.
    pub fn get(&self, query: MicroQuery, sys: SystemId) -> Option<&QueryMeasurement> {
        self.cells
            .iter()
            .find(|c| c.query == query && c.system == sys)
    }

    /// Figure 5.1: execution-time breakdown into the four components.
    pub fn render_fig5_1(&self) -> String {
        let mut out = String::from(
            "Figure 5.1: Query execution time breakdown (percent of execution time)\n",
        );
        for query in MicroQuery::ALL {
            out.push_str(&format!("\n  {} ({})\n", query.label(), query_title(query)));
            let mut t = TextTable::new([
                "system",
                "Computation",
                "Memory",
                "Branch mispred",
                "Resource",
            ]);
            for &sys in systems_for(query) {
                if let Some(c) = self.get(query, sys) {
                    let f = c.truth.four_way();
                    t.row([
                        sys.letter().to_string(),
                        pct(f.computation),
                        pct(f.memory),
                        pct(f.branch),
                        pct(f.resource),
                    ]);
                }
            }
            out.push_str(&t.render());
        }
        out
    }

    /// Figure 5.2: memory-stall breakdown into the five measurable parts.
    pub fn render_fig5_2(&self) -> String {
        let mut out =
            String::from("Figure 5.2: Contributions of the five memory components to T_M\n");
        for query in MicroQuery::ALL {
            out.push_str(&format!("\n  {} ({})\n", query.label(), query_title(query)));
            let mut t = TextTable::new([
                "system",
                "L1 D-stalls",
                "L1 I-stalls",
                "L2 D-stalls",
                "L2 I-stalls",
                "ITLB stalls",
            ]);
            for &sys in systems_for(query) {
                if let Some(c) = self.get(query, sys) {
                    let s = c.truth.memory_shares();
                    t.row([
                        sys.letter().to_string(),
                        pct(s[0]),
                        pct(s[1]),
                        pct(s[2]),
                        pct(s[3]),
                        pct(s[4]),
                    ]);
                }
            }
            out.push_str(&t.render());
        }
        out
    }

    /// Figure 5.3: instructions retired per record.
    pub fn render_fig5_3(&self) -> String {
        let mut out = String::from(
            "Figure 5.3: Instructions retired per record\n\
             (SRS/SJ: per R record; IRS: per selected record)\n",
        );
        let mut t = TextTable::new(["system", "SRS", "IRS", "SJ"]);
        for sys in SystemId::ALL {
            let cell = |q| {
                self.get(q, sys)
                    .map(|c| format!("{:.0}", c.instructions_per_record()))
                    .unwrap_or_else(|| "-".into())
            };
            t.row([
                sys.letter().to_string(),
                cell(MicroQuery::SequentialRangeSelection),
                cell(MicroQuery::IndexedRangeSelection),
                cell(MicroQuery::SequentialJoin),
            ]);
        }
        out.push_str(&t.render());
        out
    }

    /// Figure 5.4 (left): branch misprediction rates, plus BTB miss rates
    /// (the paper: "the BTB misses 50% of the time on the average").
    pub fn render_fig5_4_left(&self) -> String {
        let mut out =
            String::from("Figure 5.4 (left): branch misprediction rates (BTB miss rate)\n");
        let mut t = TextTable::new(["system", "SRS", "IRS", "SJ"]);
        for sys in SystemId::ALL {
            let cell = |q| {
                self.get(q, sys)
                    .map(|c| format!("{} ({})", pct(c.rates.br_mispredict), pct(c.rates.btb_miss)))
                    .unwrap_or_else(|| "-".into())
            };
            t.row([
                sys.letter().to_string(),
                cell(MicroQuery::SequentialRangeSelection),
                cell(MicroQuery::IndexedRangeSelection),
                cell(MicroQuery::SequentialJoin),
            ]);
        }
        out.push_str(&t.render());
        out
    }

    /// Figure 5.5: T_DEP and T_FU contributions to execution time.
    pub fn render_fig5_5(&self) -> String {
        let mut out =
            String::from("Figure 5.5: T_DEP and T_FU contributions to execution time (percent)\n");
        let mut t = TextTable::new(["system", "SRS dep/fu", "IRS dep/fu", "SJ dep/fu"]);
        for sys in SystemId::ALL {
            let cell = |q| {
                self.get(q, sys)
                    .map(|c| {
                        let total = c.truth.component_sum().max(1e-9);
                        format!(
                            "{} / {}",
                            pct(c.truth.tdep / total),
                            pct(c.truth.tfu / total)
                        )
                    })
                    .unwrap_or_else(|| "-".into())
            };
            t.row([
                sys.letter().to_string(),
                cell(MicroQuery::SequentialRangeSelection),
                cell(MicroQuery::IndexedRangeSelection),
                cell(MicroQuery::SequentialJoin),
            ]);
        }
        out.push_str(&t.render());
        out
    }
}

fn query_title(q: MicroQuery) -> &'static str {
    match q {
        MicroQuery::SequentialRangeSelection => "10% Sequential Range Selection",
        MicroQuery::IndexedRangeSelection => "10% Indexed Range Selection",
        MicroQuery::SequentialJoin => "Join",
    }
}

/// Row-vs-batch executor comparison: the paper's breakdowns regenerated
/// over both execution paths of the same engine, demonstrating in our own
/// counters the per-tuple instruction collapse that the vectorized-execution
/// literature (MonetDB/X100; Sirin & Ailamaki 2019) predicts for the
/// paper's row-at-a-time engines.
#[derive(Debug, Clone)]
pub struct ExecModeComparison {
    /// Which microbenchmark query was compared.
    pub query: MicroQuery,
    /// Per system: (row-mode measurement, batch-mode measurement).
    pub pairs: Vec<(QueryMeasurement, QueryMeasurement)>,
}

impl ExecModeComparison {
    /// Runs `query` at 10% selectivity on every participating system in
    /// both execution modes.
    pub fn run(ctx: &FigureCtx, query: MicroQuery) -> DbResult<ExecModeComparison> {
        let mut pairs = Vec::new();
        for &sys in systems_for(query) {
            let row = measure_query(sys, query, 0.1, ctx.scale, &ctx.cfg, &ctx.methodology)?;
            let batch = measure_query(
                sys,
                query,
                0.1,
                ctx.scale,
                &ctx.cfg,
                &ctx.methodology.batched(),
            )?;
            pairs.push((row, batch));
        }
        Ok(ExecModeComparison { query, pairs })
    }

    /// Instruction-per-tuple collapse factor (row / batch) for one system,
    /// if measured.
    pub fn collapse_factor(&self, sys: SystemId) -> Option<f64> {
        self.pairs
            .iter()
            .find(|(r, _)| r.system == sys)
            .map(|(r, b)| r.instructions_per_record() / b.instructions_per_record().max(1e-9))
    }

    /// Renders the comparison table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Row vs batch execution, {} at 10% selectivity\n\
             (instructions and cycles per record; memory-stall share of time)\n",
            self.query.label()
        );
        let mut t = TextTable::new([
            "system",
            "instr/rec row",
            "instr/rec batch",
            "collapse",
            "cyc/rec row",
            "cyc/rec batch",
            "speedup",
            "mem% row",
            "mem% batch",
        ]);
        for (row, batch) in &self.pairs {
            let mem = |m: &QueryMeasurement| m.truth.four_way().memory;
            t.row([
                row.system.letter().to_string(),
                format!("{:.0}", row.instructions_per_record()),
                format!("{:.0}", batch.instructions_per_record()),
                format!(
                    "{:.1}x",
                    row.instructions_per_record() / batch.instructions_per_record().max(1e-9)
                ),
                format!("{:.0}", row.cycles_per_record()),
                format!("{:.0}", batch.cycles_per_record()),
                format!(
                    "{:.1}x",
                    row.cycles_per_record() / batch.cycles_per_record().max(1e-9)
                ),
                pct(mem(row)),
                pct(mem(batch)),
            ]);
        }
        out.push_str(&t.render());
        out.push_str(
            "batching collapses computation and instruction fetch; memory stalls\n\
             remain, so their *share* of execution time grows — where the time\n\
             goes after the per-tuple overhead is engineered away.\n",
        );
        out
    }
}

/// NSM-vs-PAX page-layout comparison: the paper's breakdowns regenerated
/// over both on-page layouts of the same engine. The paper's headline result
/// is that L2 *data* stalls dominate `T_M` on sequential scans; the PAX
/// layout (Ailamaki et al., VLDB 2001) attacks exactly that term by grouping
/// attribute values into per-page minipages, so a scan touching k of n
/// columns pulls only those k minipages' cache lines.
#[derive(Debug, Clone)]
pub struct LayoutComparison {
    /// Which microbenchmark query was compared.
    pub query: MicroQuery,
    /// Per system: (NSM measurement, PAX measurement).
    pub pairs: Vec<(QueryMeasurement, QueryMeasurement)>,
}

impl LayoutComparison {
    /// Runs `query` at 10% selectivity on every participating system under
    /// both page layouts.
    pub fn run(ctx: &FigureCtx, query: MicroQuery) -> DbResult<LayoutComparison> {
        let mut pairs = Vec::new();
        for &sys in systems_for(query) {
            let nsm = measure_query(sys, query, 0.1, ctx.scale, &ctx.cfg, &ctx.methodology)?;
            let pax = measure_query(sys, query, 0.1, ctx.scale, &ctx.cfg, &ctx.methodology.pax())?;
            pairs.push((nsm, pax));
        }
        Ok(LayoutComparison { query, pairs })
    }

    /// T_L2D reduction factor (NSM / PAX) for one system, if measured.
    pub fn l2d_reduction(&self, sys: SystemId) -> Option<f64> {
        self.pairs
            .iter()
            .find(|(n, _)| n.system == sys)
            .map(|(n, p)| n.truth.tl2d / p.truth.tl2d.max(1e-9))
    }

    /// Renders the comparison table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "NSM vs PAX page layout, {} at 10% selectivity\n\
             (cycles per record; memory-stall and L2-data shares of time)\n",
            self.query.label()
        );
        let mut t = TextTable::new([
            "system",
            "cyc/rec NSM",
            "cyc/rec PAX",
            "speedup",
            "T_M% NSM",
            "T_M% PAX",
            "T_L2D% NSM",
            "T_L2D% PAX",
        ]);
        for (nsm, pax) in &self.pairs {
            let share = |m: &QueryMeasurement, v: f64| v / m.truth.component_sum().max(1e-9);
            t.row([
                nsm.system.letter().to_string(),
                format!("{:.0}", nsm.cycles_per_record()),
                format!("{:.0}", pax.cycles_per_record()),
                format!(
                    "{:.2}x",
                    nsm.cycles_per_record() / pax.cycles_per_record().max(1e-9)
                ),
                pct(share(nsm, nsm.truth.tm())),
                pct(share(pax, pax.truth.tm())),
                pct(share(nsm, nsm.truth.tl2d)),
                pct(share(pax, pax.truth.tl2d)),
            ]);
        }
        out.push_str(&t.render());
        out.push_str(
            "PAX packs each attribute's values contiguously per page, so engines\n\
             that read only the projected fields (System A) shed most of their L2\n\
             data misses on narrow scans; full-record engines (B/C/D) gather every\n\
             minipage and stay near NSM parity — the fix targets T_L2D, the\n\
             component the paper finds dominant.\n",
        );
        out
    }
}

/// One measured cell of the join-strategy comparison.
#[derive(Debug, Clone)]
pub struct JoinCell {
    /// Join algorithm under test.
    pub algo: JoinAlgo,
    /// Execution mode the query ran under.
    pub mode: ExecMode,
    /// Page layout of both relations.
    pub layout: PageLayout,
    /// Join result cardinality.
    pub rows: u64,
    /// Simulated L2 data misses of the measured run.
    pub l2_data_misses: u64,
    /// Ground-truth breakdown (user mode) of the measured run.
    pub truth: TimeBreakdown,
}

impl JoinCell {
    /// Cycles per probe-side record.
    pub fn cycles_per_probe_row(&self, spec: &JoinSpec) -> f64 {
        self.truth.cycles / spec.probe_rows.max(1) as f64
    }
}

/// The join chapter: the paper's two-table equijoin (§3.3, query 2)
/// measured under every join strategy × execution mode × page layout of
/// one engine, with the Figure 5.1-style T_C/T_M/T_B/T_R breakdown per
/// cell.
///
/// The paper finds the sequential join dominated by L2 data misses and L1
/// instruction misses; this runner regenerates that finding for the naive
/// [`JoinAlgo::Hash`] strategy and puts the radix-partitioned join
/// ([`JoinAlgo::PartitionedHash`]) next to it, so the cache-conscious
/// fix's trade — more instructions, far fewer L2 data misses — is read
/// off the same breakdown the paper uses.
#[derive(Debug, Clone)]
pub struct JoinComparison {
    /// System the comparison ran on.
    pub system: SystemId,
    /// Workload sizing.
    pub spec: JoinSpec,
    /// One cell per (strategy, mode, layout).
    pub cells: Vec<JoinCell>,
}

impl JoinComparison {
    /// Strategies in presentation order.
    pub const STRATEGIES: [JoinAlgo; 3] = [
        JoinAlgo::Hash,
        JoinAlgo::PartitionedHash,
        JoinAlgo::IndexNestedLoop,
    ];

    /// Runs the full 3 strategies × 2 modes × 2 layouts grid on `sys`.
    pub fn run(sys: SystemId, spec: JoinSpec, cfg: &CpuConfig) -> DbResult<JoinComparison> {
        let mut cells = Vec::new();
        for algo in Self::STRATEGIES {
            for mode in [ExecMode::Row, ExecMode::Batch] {
                for layout in PageLayout::ALL {
                    cells.push(Self::measure_cell(sys, spec, cfg, algo, mode, layout)?);
                }
            }
        }
        Ok(JoinComparison {
            system: sys,
            spec,
            cells,
        })
    }

    /// Runs a single-layout grid (3 strategies × 2 modes, NSM only) — a
    /// cheaper grid for demos like `examples/join_strategies.rs`; the bench
    /// binary's `BENCH_join.json` comes from the full [`Self::run`] grid.
    pub fn run_nsm(sys: SystemId, spec: JoinSpec, cfg: &CpuConfig) -> DbResult<JoinComparison> {
        let mut cells = Vec::new();
        for algo in Self::STRATEGIES {
            for mode in [ExecMode::Row, ExecMode::Batch] {
                cells.push(Self::measure_cell(
                    sys,
                    spec,
                    cfg,
                    algo,
                    mode,
                    PageLayout::Nsm,
                )?);
            }
        }
        Ok(JoinComparison {
            system: sys,
            spec,
            cells,
        })
    }

    /// Measures one (strategy, mode, layout) cell: §4.3 methodology —
    /// uninstrumented load, one warm-up run, one measured run.
    pub fn measure_cell(
        sys: SystemId,
        spec: JoinSpec,
        cfg: &CpuConfig,
        algo: JoinAlgo,
        mode: ExecMode,
        layout: PageLayout,
    ) -> DbResult<JoinCell> {
        let expected_pages = (spec.build_rows + spec.probe_rows) / 40 + 1024;
        let mut db =
            Database::with_capacity(EngineProfile::system(sys), cfg.clone(), expected_pages)
                .with_exec_mode(mode)
                .with_join_algo(algo);
        db.ctx.instrument = false;
        join::prepare_with_layout(&mut db, spec, true, layout)?;
        db.ctx.instrument = true;
        let q = join::query();
        let rows = db.run(&q)?.rows; // warm-up (§4.3)
        let before = db.cpu().snapshot();
        db.run(&q)?;
        let delta = db.cpu().snapshot().delta(&before);
        Ok(JoinCell {
            algo,
            mode,
            layout,
            rows,
            l2_data_misses: delta.counters.total(Event::SimL2DataMiss),
            truth: TimeBreakdown::from_snapshot(&delta, Mode::User),
        })
    }

    /// The cell for (algo, mode, layout), if measured.
    pub fn get(&self, algo: JoinAlgo, mode: ExecMode, layout: PageLayout) -> Option<&JoinCell> {
        self.cells
            .iter()
            .find(|c| c.algo == algo && c.mode == mode && c.layout == layout)
    }

    /// L2 data-miss reduction factor (naive hash / partitioned) for one
    /// (mode, layout) slice.
    pub fn l2d_miss_reduction(&self, mode: ExecMode, layout: PageLayout) -> Option<f64> {
        let hash = self.get(JoinAlgo::Hash, mode, layout)?;
        let part = self.get(JoinAlgo::PartitionedHash, mode, layout)?;
        Some(hash.l2_data_misses as f64 / part.l2_data_misses.max(1) as f64)
    }

    /// Simulated-cycle speedup (naive hash / partitioned) for one
    /// (mode, layout) slice.
    pub fn speedup(&self, mode: ExecMode, layout: PageLayout) -> Option<f64> {
        let hash = self.get(JoinAlgo::Hash, mode, layout)?;
        let part = self.get(JoinAlgo::PartitionedHash, mode, layout)?;
        Some(hash.truth.cycles / part.truth.cycles.max(1e-9))
    }

    fn algo_label(algo: JoinAlgo) -> &'static str {
        match algo {
            JoinAlgo::Hash => "HashJoin",
            JoinAlgo::PartitionedHash => "PartitionedHashJoin",
            JoinAlgo::IndexNestedLoop => "IndexNlJoin",
        }
    }

    /// Renders the comparison table (Figure 5.1's four components plus the
    /// L2 data-miss count, one row per cell).
    pub fn render(&self) -> String {
        let mut out = format!(
            "Join strategies, {}: R({} rows) \u{22c8} S({} rows), {} B records\n\
             (percent of execution time per component; cycles per probe row)\n",
            self.system.name(),
            self.spec.probe_rows,
            self.spec.build_rows,
            self.spec.record_bytes,
        );
        let mut t = TextTable::new([
            "strategy",
            "mode",
            "layout",
            "rows",
            "cyc/row",
            "Comp",
            "Mem",
            "Branch",
            "Resource",
            "L2D misses",
        ]);
        for c in &self.cells {
            let f = c.truth.four_way();
            t.row([
                Self::algo_label(c.algo).to_string(),
                format!("{:?}", c.mode),
                format!("{:?}", c.layout),
                c.rows.to_string(),
                format!("{:.0}", c.cycles_per_probe_row(&self.spec)),
                pct(f.computation),
                pct(f.memory),
                pct(f.branch),
                pct(f.resource),
                c.l2_data_misses.to_string(),
            ]);
        }
        out.push_str(&t.render());
        if let (Some(red), Some(sp)) = (
            self.l2d_miss_reduction(ExecMode::Row, PageLayout::Nsm),
            self.speedup(ExecMode::Row, PageLayout::Nsm),
        ) {
            out.push_str(&format!(
                "partitioning buys a {red:.2}x L2 data-miss reduction ({sp:.2}x simulated \
                 speedup) over the naive hash join in row mode;\nits extra scatter \
                 instructions are the price — exactly the compute-for-misses trade the \
                 paper's breakdown makes visible.\n",
            ));
        }
        out
    }
}

/// Figure 5.4 (right): T_B and T_L1I versus selectivity, System D running
/// the sequential range selection.
#[derive(Debug, Clone)]
pub struct SelectivitySweep {
    /// (selectivity, T_B share, T_L1I share, mispredict rate).
    pub points: Vec<(f64, f64, f64, f64)>,
}

impl SelectivitySweep {
    /// The paper's x-axis: 0%, 1%, 5%, 10%, 50%, 100%.
    pub const SELECTIVITIES: [f64; 6] = [0.0, 0.01, 0.05, 0.1, 0.5, 1.0];

    /// Runs the sweep on System D (as in the paper's right graph).
    pub fn run(ctx: &FigureCtx) -> DbResult<SelectivitySweep> {
        Self::run_on(ctx, SystemId::D)
    }

    /// Runs the sweep on any system.
    pub fn run_on(ctx: &FigureCtx, sys: SystemId) -> DbResult<SelectivitySweep> {
        let mut points = Vec::new();
        for sel in Self::SELECTIVITIES {
            let m = measure_query(
                sys,
                MicroQuery::SequentialRangeSelection,
                sel,
                ctx.scale,
                &ctx.cfg,
                &ctx.methodology,
            )?;
            let total = m.truth.component_sum().max(1e-9);
            points.push((
                sel,
                m.truth.tb / total,
                m.truth.tl1i / total,
                m.rates.br_mispredict,
            ));
        }
        Ok(SelectivitySweep { points })
    }

    /// Renders the series.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Figure 5.4 (right): System D, sequential range selection —\n\
             branch mispred. stalls and L1 I-cache stalls vs selectivity\n",
        );
        let mut t = TextTable::new(["selectivity", "T_B %", "T_L1I %", "mispredict rate"]);
        for (sel, tb, tl1i, rate) in &self.points {
            t.row([
                format!("{:.0}%", sel * 100.0),
                pct(*tb),
                pct(*tl1i),
                pct(*rate),
            ]);
        }
        out.push_str(&t.render());
        out
    }
}

/// One measured cell of the branch-stall selectivity comparison.
#[derive(Debug, Clone)]
pub struct BranchCell {
    /// Selection mode under test.
    pub selection: SelectionMode,
    /// Execution mode the query ran under.
    pub mode: ExecMode,
    /// Page layout of the relation.
    pub layout: PageLayout,
    /// Target selectivity of the range predicate.
    pub selectivity: f64,
    /// Selected rows.
    pub rows: u64,
    /// Aggregate value (must agree across selection modes).
    pub value: f64,
    /// Mispredictions of individually simulated data-dependent branches
    /// ([`Event::SimDataBranchMiss`]) in the measured run. The swept plan
    /// is the sequential range selection, whose only such site is the
    /// qualify branch — so this *is* the qualify-misprediction count, and
    /// zero by construction under [`SelectionMode::Predicated`].
    pub qualify_branch_misses: u64,
    /// Conditional-select lanes executed ([`Event::SimSelectOps`]) — the
    /// predication work bought in exchange.
    pub select_ops: u64,
    /// Ground-truth breakdown (user mode) of the measured run.
    pub truth: TimeBreakdown,
}

impl BranchCell {
    /// T_B as a share of the cell's total query time.
    pub fn tb_share(&self) -> f64 {
        self.truth.tb / self.truth.component_sum().max(1e-9)
    }
}

/// The branch chapter: the sequential range selection swept across
/// selectivity under every selection mode × execution mode × page layout of
/// one engine, with the Figure 5.1-style T_C/T_M/T_B/T_R breakdown per cell.
///
/// §5.3/Fig 5.4 shows branch-misprediction stalls peaking where the qualify
/// branch is least predictable — near 50% selectivity — and contributing
/// 10–20% of query time. This runner regenerates that shape for
/// [`SelectionMode::Branching`] and puts branch-free
/// [`SelectionMode::Predicated`] evaluation next to it, so predication's
/// trade — unconditional extra select instructions for eliminated
/// mispredictions — is read off the same breakdown the paper uses.
#[derive(Debug, Clone)]
pub struct SelectivityComparison {
    /// System the comparison ran on.
    pub system: SystemId,
    /// Dataset sizing.
    pub scale: Scale,
    /// One cell per (selection, mode, layout, selectivity).
    pub cells: Vec<BranchCell>,
}

impl SelectivityComparison {
    /// Runs the full selection × mode × layout grid over `sweep` on `sys`.
    pub fn run(
        sys: SystemId,
        scale: Scale,
        sweep: &SweepSpec,
        cfg: &CpuConfig,
    ) -> DbResult<SelectivityComparison> {
        let mut cells = Vec::new();
        for selection in SelectionMode::ALL {
            for mode in [ExecMode::Row, ExecMode::Batch] {
                for layout in PageLayout::ALL {
                    cells.extend(Self::run_config(
                        sys, scale, sweep, cfg, selection, mode, layout,
                    )?);
                }
            }
        }
        Ok(SelectivityComparison {
            system: sys,
            scale,
            cells,
        })
    }

    /// Sweeps one (selection, mode, layout) configuration: one database,
    /// §4.3 methodology per point — a warm-up run (which also trains the
    /// qualify branch's predictor state onto this selectivity), then one
    /// measured run.
    pub fn run_config(
        sys: SystemId,
        scale: Scale,
        sweep: &SweepSpec,
        cfg: &CpuConfig,
        selection: SelectionMode,
        mode: ExecMode,
        layout: PageLayout,
    ) -> DbResult<Vec<BranchCell>> {
        let mut db = build_db_with_layout(
            EngineProfile::system(sys),
            scale,
            MicroQuery::SequentialRangeSelection,
            cfg,
            layout,
        )?;
        db.set_exec_mode(mode);
        db.set_selection_mode(selection);
        let mut cells = Vec::with_capacity(sweep.selectivities.len());
        for &sel in &sweep.selectivities {
            let q = micro::query(scale, MicroQuery::SequentialRangeSelection, sel);
            db.run(&q)?; // warm-up (§4.3)
            let before = db.cpu().snapshot();
            let res = db.run(&q)?;
            let delta = db.cpu().snapshot().delta(&before);
            cells.push(BranchCell {
                selection,
                mode,
                layout,
                selectivity: sel,
                rows: res.rows,
                value: res.value,
                qualify_branch_misses: delta.counters.total(Event::SimDataBranchMiss),
                select_ops: delta.counters.total(Event::SimSelectOps),
                truth: TimeBreakdown::from_snapshot(&delta, Mode::User),
            });
        }
        Ok(cells)
    }

    /// The cells of one (selection, mode, layout) series, in sweep order.
    pub fn series(
        &self,
        selection: SelectionMode,
        mode: ExecMode,
        layout: PageLayout,
    ) -> Vec<&BranchCell> {
        self.cells
            .iter()
            .filter(|c| c.selection == selection && c.mode == mode && c.layout == layout)
            .collect()
    }

    /// The cell with the largest T_B share in one series, if measured.
    pub fn peak_tb(
        &self,
        selection: SelectionMode,
        mode: ExecMode,
        layout: PageLayout,
    ) -> Option<&BranchCell> {
        self.series(selection, mode, layout)
            .into_iter()
            .max_by(|a, b| a.tb_share().total_cmp(&b.tb_share()))
    }

    /// Peak-T_B-share reduction for one (mode, layout) slice — the headline
    /// predication buys: the branching series' T_B share at its peak
    /// selectivity, divided by the predicated series' share *at that same
    /// selectivity* (the point where the qualify branch hurts most).
    pub fn peak_tb_reduction(&self, mode: ExecMode, layout: PageLayout) -> Option<f64> {
        let b = self.peak_tb(SelectionMode::Branching, mode, layout)?;
        let p = self
            .series(SelectionMode::Predicated, mode, layout)
            .into_iter()
            .find(|c| c.selectivity == b.selectivity)?;
        Some(b.tb_share() / p.tb_share().max(1e-9))
    }

    fn selection_label(selection: SelectionMode) -> &'static str {
        match selection {
            SelectionMode::Branching => "Branching",
            SelectionMode::Predicated => "Predicated",
        }
    }

    /// Renders the comparison table (one row per cell).
    pub fn render(&self) -> String {
        let mut out = format!(
            "Selection modes, {}: sequential range selection over {} rows\n\
             (percent of execution time per component; qualify-branch mispredictions)\n",
            self.system.name(),
            self.scale.r_records,
        );
        let mut t = TextTable::new([
            "selection",
            "mode",
            "layout",
            "sel%",
            "rows",
            "Comp",
            "Mem",
            "Branch",
            "Resource",
            "qualify misp",
        ]);
        for c in &self.cells {
            let f = c.truth.four_way();
            t.row([
                Self::selection_label(c.selection).to_string(),
                format!("{:?}", c.mode),
                format!("{:?}", c.layout),
                format!("{:.0}", c.selectivity * 100.0),
                c.rows.to_string(),
                pct(f.computation),
                pct(f.memory),
                pct(f.branch),
                pct(f.resource),
                c.qualify_branch_misses.to_string(),
            ]);
        }
        out.push_str(&t.render());
        if let (Some(b), Some(p)) = (
            self.peak_tb(SelectionMode::Branching, ExecMode::Batch, PageLayout::Nsm),
            self.peak_tb(SelectionMode::Predicated, ExecMode::Batch, PageLayout::Nsm),
        ) {
            out.push_str(&format!(
                "branching T_B peaks at {:.0}% selectivity ({:.1}% of T_Q, batch/NSM); \
                 predication holds it at {:.1}% by spending {} unconditional select lanes —\n\
                 the compute-for-mispredictions trade, on the same breakdown the paper uses.\n",
                b.selectivity * 100.0,
                b.tb_share() * 100.0,
                p.tb_share() * 100.0,
                p.select_ops,
            ));
        }
        out
    }
}

/// One measured cell of the multi-core scaling comparison.
#[derive(Debug, Clone)]
pub struct ScalingCell {
    /// Shard (simulated core) count.
    pub shards: usize,
    /// Execution mode the query ran under.
    pub mode: ExecMode,
    /// Page layout of the relation(s).
    pub layout: PageLayout,
    /// Rows the merged query returned/aggregated (must agree across shard
    /// counts).
    pub rows: u64,
    /// Merged aggregate value (bit-identical across shard counts by the
    /// partial-merge construction).
    pub value: f64,
    /// Simulated wall clock: the *max* per-core cycle delta — the slowest
    /// shard finishes last. Speedup curves divide 1-shard wall by this.
    pub wall_cycles: f64,
    /// Total work: per-core cycle deltas *summed* (grows slightly with the
    /// shard count — each core pays its own query setup).
    pub total_cycles: f64,
    /// Ground-truth breakdown (user mode) of the summed per-core deltas.
    pub truth: TimeBreakdown,
}

impl ScalingCell {
    /// Parallel efficiency denominator: total work per wall cycle (≈ how
    /// many cores were kept busy).
    pub fn occupancy(&self) -> f64 {
        self.total_cycles / self.wall_cycles.max(1e-9)
    }
}

/// The scaling chapter: one microbenchmark query swept across shard counts
/// × execution mode × page layout, with the Figure 5.1-style
/// T_C/T_M/T_B/T_R breakdown per cell and the wall-clock speedup curve.
///
/// The paper measures one processor; its open question is how the
/// breakdown composes when the engine scales out. Here every table is
/// hash-partitioned across `N` shards (each with its own buffer pool and
/// deterministic simulated core; see [`wdtg_memdb::ShardedDatabase`]),
/// shards execute sequentially in simulation, and the merged wall clock of
/// a query is the max of per-core cycle deltas while the breakdown sums
/// them — so both the speedup curve and the where-does-time-go story stay
/// exact and deterministic.
#[derive(Debug, Clone)]
pub struct ScalingComparison {
    /// System the comparison ran on.
    pub system: SystemId,
    /// Dataset sizing (the *whole* dataset; shards hold partitions of it).
    pub scale: Scale,
    /// Which microbenchmark query was swept.
    pub query: MicroQuery,
    /// One cell per (shards, mode, layout).
    pub cells: Vec<ScalingCell>,
}

impl ScalingComparison {
    /// Shard counts in presentation order.
    pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

    /// Runs the full shards × mode × layout grid for `query` on `sys` at
    /// 10% selectivity.
    pub fn run(
        sys: SystemId,
        scale: Scale,
        query: MicroQuery,
        cfg: &CpuConfig,
    ) -> DbResult<ScalingComparison> {
        let mut cells = Vec::new();
        for shards in Self::SHARD_COUNTS {
            for mode in [ExecMode::Row, ExecMode::Batch] {
                for layout in PageLayout::ALL {
                    cells.push(Self::measure_cell(
                        sys, scale, query, cfg, shards, mode, layout,
                    )?);
                }
            }
        }
        Ok(ScalingComparison {
            system: sys,
            scale,
            query,
            cells,
        })
    }

    /// Measures one (shards, mode, layout) cell: §4.3 methodology —
    /// uninstrumented load + re-partition, one warm-up run, one measured
    /// run with per-core deltas merged (max → wall, sum → breakdown).
    pub fn measure_cell(
        sys: SystemId,
        scale: Scale,
        query: MicroQuery,
        cfg: &CpuConfig,
        shards: usize,
        mode: ExecMode,
        layout: PageLayout,
    ) -> DbResult<ScalingCell> {
        let mut db = build_sharded_db_with_layout(
            EngineProfile::system(sys),
            scale,
            query,
            cfg,
            layout,
            shards,
        )?;
        db.set_exec_mode(mode);
        let q = micro::query(scale, query, 0.1);
        db.run(&q)?; // warm-up (§4.3)
        let before = db.snapshots();
        let res = db.run(&q)?;
        let merged = db.merged_delta(&before);
        Ok(ScalingCell {
            shards,
            mode,
            layout,
            rows: res.rows,
            value: res.value,
            wall_cycles: merged.wall_cycles,
            total_cycles: merged.total.cycles,
            truth: TimeBreakdown::from_snapshot(&merged.total, Mode::User),
        })
    }

    /// The cell for (shards, mode, layout), if measured.
    pub fn get(&self, shards: usize, mode: ExecMode, layout: PageLayout) -> Option<&ScalingCell> {
        self.cells
            .iter()
            .find(|c| c.shards == shards && c.mode == mode && c.layout == layout)
    }

    /// Wall-clock speedup of `shards` cores over one core in the same
    /// (mode, layout) slice.
    pub fn speedup(&self, shards: usize, mode: ExecMode, layout: PageLayout) -> Option<f64> {
        let one = self.get(1, mode, layout)?;
        let n = self.get(shards, mode, layout)?;
        Some(one.wall_cycles / n.wall_cycles.max(1e-9))
    }

    /// Renders the comparison table (per-cell four-way breakdown of the
    /// summed work, wall cycles and the speedup curve).
    pub fn render(&self) -> String {
        let mut out = format!(
            "Sharded scaling, {}: {} over {} rows (10% selectivity)\n\
             (breakdown of summed per-core work; wall = slowest core; speedup vs 1 shard)\n",
            self.system.name(),
            self.query.label(),
            self.scale.r_records,
        );
        let mut t = TextTable::new([
            "shards",
            "mode",
            "layout",
            "rows",
            "wall Mcyc",
            "speedup",
            "occup",
            "Comp",
            "Mem",
            "Branch",
            "Resource",
        ]);
        for c in &self.cells {
            let f = c.truth.four_way();
            t.row([
                c.shards.to_string(),
                format!("{:?}", c.mode),
                format!("{:?}", c.layout),
                c.rows.to_string(),
                format!("{:.2}", c.wall_cycles / 1e6),
                format!(
                    "{:.2}x",
                    self.speedup(c.shards, c.mode, c.layout).unwrap_or(1.0)
                ),
                format!("{:.2}", c.occupancy()),
                pct(f.computation),
                pct(f.memory),
                pct(f.branch),
                pct(f.resource),
            ]);
        }
        out.push_str(&t.render());
        if let Some(sp) = self.speedup(4, ExecMode::Row, PageLayout::Nsm) {
            out.push_str(&format!(
                "4 shards cut the sequential scan's wall clock {sp:.2}x (row/NSM): the scan \
                 parallelizes across partitions\nwhile each core's per-query setup and merge \
                 tail stay serial — the classic sharding trade, on the paper's breakdown.\n",
            ));
        }
        out
    }
}

/// §5.2.1/§5.2.2: record-size sweep (20–200 bytes) for one system.
#[derive(Debug, Clone)]
pub struct RecordSizeSweep {
    /// System measured.
    pub system: SystemId,
    /// (record bytes, T_L2D/record, L1I misses/record, cycles/record).
    pub points: Vec<(u32, f64, f64, f64)>,
}

impl RecordSizeSweep {
    /// The sweep sizes (the paper varies 20–200 bytes).
    pub const SIZES: [u32; 5] = [20, 48, 100, 152, 200];

    /// Runs the sweep for `sys` at 10% selectivity. Note: scaling keeps the
    /// row *count* fixed, so larger records mean a larger relation, as in
    /// the paper.
    pub fn run(ctx: &FigureCtx, sys: SystemId) -> DbResult<RecordSizeSweep> {
        let mut points = Vec::new();
        for size in Self::SIZES {
            let scale = ctx.scale.with_record_bytes(size);
            let m = measure_query(
                sys,
                MicroQuery::SequentialRangeSelection,
                0.1,
                scale,
                &ctx.cfg,
                &ctx.methodology,
            )?;
            let recs = m.denominator as f64;
            let ifu_miss = {
                // L1I misses per record from the ground-truth counters are
                // not retained in QueryMeasurement; use the stall time
                // divided by the L1 penalty as the equivalent count.
                m.truth.tl1i / ctx.cfg.pipe.l1_miss_penalty as f64
            };
            points.push((
                size,
                m.truth.tl2d / recs,
                ifu_miss / recs,
                m.truth.cycles / recs,
            ));
        }
        Ok(RecordSizeSweep {
            system: sys,
            points,
        })
    }

    /// Growth factor of cycles/record from the smallest to the largest
    /// record size (the paper reports 2.5–4x from 20 B to 200 B).
    pub fn time_growth_factor(&self) -> f64 {
        let first = self.points.first().map(|p| p.3).unwrap_or(1.0);
        let last = self.points.last().map(|p| p.3).unwrap_or(1.0);
        if first > 0.0 {
            last / first
        } else {
            0.0
        }
    }

    /// Renders the series.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Record-size sweep (§5.2), {}: 10% sequential range selection\n",
            self.system.name()
        );
        let mut t = TextTable::new([
            "record bytes",
            "T_L2D cycles/record",
            "L1I misses/record",
            "cycles/record",
        ]);
        for (size, tl2d, l1i, cyc) in &self.points {
            t.row([
                size.to_string(),
                format!("{tl2d:.1}"),
                format!("{l1i:.2}"),
                format!("{cyc:.0}"),
            ]);
        }
        out.push_str(&t.render());
        out.push_str(&format!(
            "execution time per record grows {:.1}x from 20B to 200B (paper: 2.5-4x)\n",
            self.time_growth_factor()
        ));
        out
    }
}

/// §5.2.2: the three hypotheses for why larger records increase L1I misses.
/// The simulator can switch each mechanism off — something the authors could
/// not do ("more experiments are needed to test these hypotheses").
#[derive(Debug, Clone)]
pub struct L1iHypotheses {
    /// L1I misses/record at (20 B, 200 B) under: baseline, interrupts off,
    /// inclusion forced on (with interrupts off, isolating the mechanism).
    pub baseline: (f64, f64),
    /// Interrupt model disabled.
    pub no_interrupts: (f64, f64),
    /// L2 inclusion forced (interrupts off).
    pub inclusive_l2: (f64, f64),
}

impl L1iHypotheses {
    /// Runs the three-way comparison on System D.
    pub fn run(ctx: &FigureCtx) -> DbResult<L1iHypotheses> {
        let mut variants = Vec::new();
        for (interrupts, inclusion) in [(true, false), (false, false), (false, true)] {
            let mut cfg = ctx.cfg.clone().with_inclusive_l2(inclusion);
            if !interrupts {
                cfg = cfg.with_interrupts(wdtg_sim::InterruptCfg::disabled());
            }
            let mut pair = (0.0, 0.0);
            for (slot, size) in [(0usize, 20u32), (1, 200)] {
                let scale = ctx.scale.with_record_bytes(size);
                let m = measure_query(
                    SystemId::D,
                    MicroQuery::SequentialRangeSelection,
                    0.1,
                    scale,
                    &cfg,
                    &ctx.methodology,
                )?;
                let v = m.truth.tl1i / ctx.cfg.pipe.l1_miss_penalty as f64 / m.denominator as f64;
                if slot == 0 {
                    pair.0 = v;
                } else {
                    pair.1 = v;
                }
            }
            variants.push(pair);
        }
        Ok(L1iHypotheses {
            baseline: variants[0],
            no_interrupts: variants[1],
            inclusive_l2: variants[2],
        })
    }

    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "§5.2.2 hypothesis test: why do larger records cause more L1I misses?\n\
             (L1I misses per record, System D, 10% SRS)\n",
        );
        let mut t = TextTable::new(["variant", "20B records", "200B records", "growth"]);
        let row = |label: &str, p: (f64, f64)| {
            let growth = if p.0 > 0.0 { p.1 / p.0 } else { 0.0 };
            [
                label.to_string(),
                format!("{:.3}", p.0),
                format!("{:.3}", p.1),
                format!("{growth:.2}x"),
            ]
        };
        t.row(row(
            "baseline (NT interrupts, no inclusion — the Xeon)",
            self.baseline,
        ));
        t.row(row(
            "interrupts disabled (tests hypothesis 2: OS pollution)",
            self.no_interrupts,
        ));
        t.row(row(
            "L2 inclusion forced, no interrupts (hypothesis 1)",
            self.inclusive_l2,
        ));
        out.push_str(&t.render());
        out.push_str(
            "remaining growth with interrupts off comes from page-boundary crossings\n\
             executing buffer-pool code (hypothesis 3), which scales with record size.\n",
        );
        out
    }
}

/// One planner-validation scenario: the SQL planner's pick versus the
/// exhaustively measured best configuration for the same statement.
#[derive(Debug, Clone)]
pub struct PlannerCell {
    /// Scenario label (`scan sel=50%`, `join build=65536`).
    pub label: String,
    /// The statement planned.
    pub sql: String,
    /// The planner's choice ([`wdtg_memdb::sql::PhysicalConfig`] label).
    pub chosen: String,
    /// Actual measured cycles under the planner's choice.
    pub chosen_cycles: f64,
    /// The best configuration by exhaustive actual measurement.
    pub best: String,
    /// Actual measured cycles under that best configuration.
    pub best_cycles: f64,
    /// Every candidate's actual measured cycles, in enumeration order.
    pub measured: Vec<(String, f64)>,
}

impl PlannerCell {
    /// Planner regret: actual cycles of the pick over the actual best
    /// (1.0 = the planner found the optimum).
    pub fn ratio(&self) -> f64 {
        self.chosen_cycles / self.best_cycles.max(1e-9)
    }

    /// Whether the planner picked the exhaustive winner.
    pub fn optimal(&self) -> bool {
        self.chosen == self.best
    }
}

/// Planner validation: does the SQL frontend's pilot-simulated cost model
/// rediscover the paper's two headline physical-design wins — predication
/// near 50% selectivity (§5.3) and the partitioned join once the build side
/// outgrows L2 — without ever being told the rules?
///
/// Each cell plans one statement through [`Session::explain`] (candidates
/// costed on sampled pilot runs only), then measures **every** candidate
/// for real on the full data and compares the planner's pick against the
/// exhaustive winner. The headline number is the worst regret ratio.
#[derive(Debug, Clone)]
pub struct PlannerComparison {
    /// One cell per scenario.
    pub cells: Vec<PlannerCell>,
}

impl PlannerComparison {
    /// Scan selectivities swept (predication should win near the middle).
    pub const SELECTIVITIES: [f64; 4] = [0.01, 0.1, 0.5, 0.9];

    /// Branch-misprediction penalty of the deep-pipeline scenario (3x the
    /// P6's 17 cycles — the §6 direction). On the Xeon's short pipeline
    /// predication is roughly cost-neutral; on a deeper pipeline it wins
    /// outright at 50% selectivity, and the planner must find the flip.
    pub const DEEP_PIPE_PENALTY: u32 = 51;

    /// Runs, on System A: scan scenarios over `scan_rows` rows at
    /// [`Self::SELECTIVITIES`]; the same 50%-selectivity scan on a
    /// deep-pipeline variant of `cfg` ([`Self::DEEP_PIPE_PENALTY`]); and one
    /// join scenario per entry of `join_builds` (build-side rows; probe side
    /// is `scan_rows`). Pass a [`CpuConfig::with_l2_size`]-shrunk config to
    /// move the join crossover into cheap territory.
    pub fn run(
        cfg: &CpuConfig,
        scan_rows: usize,
        join_builds: &[usize],
    ) -> DbResult<PlannerComparison> {
        let sys = SystemId::A;
        let mut cells = Vec::new();
        for sel in Self::SELECTIVITIES {
            cells.push(Self::scan_cell(cfg, sys, scan_rows, sel)?);
        }
        let deep = cfg.clone().with_mispredict_penalty(Self::DEEP_PIPE_PENALTY);
        let mut cell = Self::scan_cell(&deep, sys, scan_rows, 0.5)?;
        cell.label = "scan sel=50% deep-pipe".into();
        cells.push(cell);
        for &build in join_builds {
            cells.push(Self::join_cell(cfg, sys, scan_rows, build)?);
        }
        Ok(PlannerComparison { cells })
    }

    /// Mix function shared by the data generators (runners.rs idiom).
    fn mix(i: usize) -> i32 {
        ((i as u32).wrapping_mul(0x9e37_79b9) >> 8) as i32 & 0x7fff_ffff
    }

    /// Plans `sql` on `db`, then measures every candidate the planner
    /// enumerated for real and scores the pick.
    fn cell(label: String, sql: &str, db: Database) -> DbResult<PlannerCell> {
        let q = match compile(&db, sql)? {
            BoundStatement::Scalar(q) => q,
            BoundStatement::Grouped { .. } => {
                return Err(wdtg_memdb::DbError::PlanError(
                    "planner comparison cells are scalar".into(),
                ))
            }
        };
        let mut sess = Session::open(db);
        sess.explain(sql)?;
        let report = sess
            .last_plan()
            .expect("aggregate statements are always planned")
            .clone();
        let mut db = sess.into_db();
        let mut measured = Vec::new();
        for c in &report.candidates {
            c.config.apply(&mut db);
            db.run(&q)?; // warm-up (§4.3)
            let before = db.cpu().snapshot();
            db.run(&q)?;
            let cycles = db.cpu().snapshot().delta(&before).cycles;
            measured.push((c.config.label(), cycles));
        }
        let best = measured
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let chosen_label = report.chosen().config.label();
        let chosen_cycles = measured
            .iter()
            .find(|(l, _)| *l == chosen_label)
            .map(|(_, c)| *c)
            .unwrap_or(f64::MAX);
        Ok(PlannerCell {
            label,
            sql: sql.to_string(),
            chosen: chosen_label,
            chosen_cycles,
            best: measured[best].0.clone(),
            best_cycles: measured[best].1,
            measured,
        })
    }

    /// Scan scenario: `a2` uniform over 0..1000, range predicate selecting
    /// the requested fraction.
    pub fn scan_cell(
        cfg: &CpuConfig,
        sys: SystemId,
        rows: usize,
        sel: f64,
    ) -> DbResult<PlannerCell> {
        let mut db = Database::new(EngineProfile::system(sys), cfg.clone());
        db.ctx.instrument = false;
        db.create_table("R", Schema::paper_relation(20))?;
        db.load_rows(
            "R",
            (0..rows).map(|i| {
                let x = Self::mix(i);
                vec![i as i32, x % 1000, x % 10007, 0, 0]
            }),
        )?;
        db.ctx.instrument = true;
        let hi = (1000.0 * sel).round() as i64;
        let sql = format!("SELECT AVG(a3) FROM R WHERE a2 > -1 AND a2 < {hi}");
        Self::cell(format!("scan sel={:.0}%", sel * 100.0), &sql, db)
    }

    /// Join scenario: probe table R joined to a `build`-row table S on
    /// `R.a2 = S.a1`; the build side's hash-table residency in L2 is what
    /// the planner must price.
    pub fn join_cell(
        cfg: &CpuConfig,
        sys: SystemId,
        probe: usize,
        build: usize,
    ) -> DbResult<PlannerCell> {
        let mut db = Database::new(EngineProfile::system(sys), cfg.clone());
        db.ctx.instrument = false;
        db.create_table("R", Schema::paper_relation(20))?;
        db.create_table("S", Schema::paper_relation(20))?;
        db.load_rows(
            "R",
            (0..probe).map(|i| {
                let x = Self::mix(i);
                vec![i as i32, x % build as i32, x % 10007, 0, 0]
            }),
        )?;
        db.load_rows(
            "S",
            (0..build).map(|i| vec![i as i32, Self::mix(i) % 4096, 0, 0, 0]),
        )?;
        db.ctx.instrument = true;
        let sql = "SELECT AVG(R.a3) FROM R JOIN S ON R.a2 = S.a1";
        Self::cell(format!("join build={build}"), sql, db)
    }

    /// Fraction of cells where the planner picked the exhaustive winner.
    pub fn win_rate(&self) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells.iter().filter(|c| c.optimal()).count() as f64 / self.cells.len() as f64
    }

    /// Worst regret ratio across cells (1.0 = optimal everywhere).
    pub fn max_ratio(&self) -> f64 {
        self.cells.iter().map(|c| c.ratio()).fold(1.0, f64::max)
    }

    /// The cell whose label is `label`, if present.
    pub fn cell_named(&self, label: &str) -> Option<&PlannerCell> {
        self.cells.iter().find(|c| c.label == label)
    }

    /// Renders the comparison (one row per scenario).
    pub fn render(&self) -> String {
        let mut out =
            String::from("Planner validation: pilot-simulated choice vs exhaustive actual best\n");
        let mut t = TextTable::new(["scenario", "chosen", "best", "regret", "optimal"]);
        for c in &self.cells {
            t.row([
                c.label.clone(),
                c.chosen.clone(),
                c.best.clone(),
                format!("{:.3}x", c.ratio()),
                if c.optimal() { "yes" } else { "NO" }.to_string(),
            ]);
        }
        out.push_str(&t.render());
        out.push_str(&format!(
            "win rate {:.0}% — worst regret {:.3}x\n",
            self.win_rate() * 100.0,
            self.max_ratio()
        ));
        out
    }
}

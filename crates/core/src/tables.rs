//! Plain-text table and bar rendering for experiment reports.

use std::fmt::Write as _;

/// A fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (padded/truncated to the header count).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with column alignment.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            for w in &widths {
                let _ = write!(out, "+{}", "-".repeat(w + 2));
            }
            out.push_str("+\n");
        };
        sep(&mut out);
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(out, "| {:width$} ", h, width = widths[i]);
        }
        out.push_str("|\n");
        sep(&mut out);
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, "| {:width$} ", cell, width = widths[i]);
            }
            out.push_str("|\n");
        }
        sep(&mut out);
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

/// Renders a 0..=1 fraction as an ASCII bar of the given width (the paper's
/// stacked-bar figures, one component per row).
pub fn bar(fraction: f64, width: usize) -> String {
    let filled = ((fraction.clamp(0.0, 1.0)) * width as f64).round() as usize;
    format!(
        "{}{}",
        "#".repeat(filled),
        ".".repeat(width.saturating_sub(filled))
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new(["sys", "TC", "TM"]);
        t.row(["A", "45.0%", "20.1%"]);
        t.row(["B", "38.2%", "30.0%"]);
        let s = t.render();
        assert!(s.contains("| sys | TC    | TM    |"));
        assert!(s.lines().count() >= 6);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only"]);
        assert!(t.render().contains("| only |"));
    }

    #[test]
    fn pct_and_bar() {
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(bar(0.5, 10), "#####.....");
        assert_eq!(bar(2.0, 4), "####");
        assert_eq!(bar(-1.0, 4), "....");
    }
}

//! §5.5 DSS comparison: the TPC-D-like suite versus the sequential range
//! selection (Figures 5.6 and 5.7).
//!
//! The paper's methodological claim: "TPC-D execution time breakdown is
//! similar to the breakdown of the simpler query" — simple microbenchmarks
//! are a valid proxy for full DSS suites. Figure 5.6 compares CPI
//! breakdowns; Figure 5.7 compares cache-related stall breakdowns, where
//! "first-level instruction stalls dominate the TPC-D workload".

use wdtg_memdb::{Database, DbResult, EngineProfile, SystemId};
use wdtg_sim::Mode;
use wdtg_workloads::tpcd::{self, TpcdScale};
use wdtg_workloads::MicroQuery;

use crate::breakdown::TimeBreakdown;
use crate::figures::FigureCtx;
use crate::methodology::{measure_query, Rates};
use crate::tables::{pct, TextTable};

/// Systems the paper's §5.5 DSS experiment covers ("We executed a TPC-D
/// workload against three out of four of the commercial DBMSs, namely A, B,
/// and D").
pub const DSS_SYSTEMS: [SystemId; 3] = [SystemId::A, SystemId::B, SystemId::D];

/// Result of running the 17-query suite on one system.
#[derive(Debug, Clone)]
pub struct TpcdMeasurement {
    /// System measured.
    pub system: SystemId,
    /// Aggregate breakdown over all 17 queries (user mode).
    pub truth: TimeBreakdown,
    /// Per-query breakdowns, labelled Q1..Q17.
    pub per_query: Vec<(String, TimeBreakdown)>,
    /// Aggregate hardware rates.
    pub rates: Rates,
}

/// Runs the 17-query TPC-D-like suite on `system` (warm per query).
pub fn measure_tpcd(
    system: SystemId,
    scale: TpcdScale,
    cfg: &wdtg_sim::CpuConfig,
) -> DbResult<TpcdMeasurement> {
    let mut db = Database::with_capacity(
        EngineProfile::system(system),
        cfg.clone(),
        scale.lineitems / 40 + scale.orders / 40 + 2048,
    );
    db.ctx.instrument = false;
    tpcd::load(&mut db, scale, wdtg_workloads::DEFAULT_SEED)?;
    db.ctx.instrument = true;

    let mut per_query = Vec::new();
    let suite_before = db.cpu().snapshot();
    for (label, q) in tpcd::queries() {
        db.run(&q)?; // warm this query's code paths and data
        let before = db.cpu().snapshot();
        db.run(&q)?;
        let delta = db.cpu().snapshot().delta(&before);
        per_query.push((label, TimeBreakdown::from_snapshot(&delta, Mode::User)));
    }
    let suite_delta = db.cpu().snapshot().delta(&suite_before);
    let truth = TimeBreakdown::from_snapshot(&suite_delta, Mode::User);
    let rates = Rates::from_delta(&suite_delta);
    Ok(TpcdMeasurement {
        system,
        truth,
        per_query,
        rates,
    })
}

/// Figures 5.6 + 5.7: SRS (left) vs TPC-D (right) for systems A, B, D.
#[derive(Debug, Clone)]
pub struct DssComparison {
    /// SRS measurements (10% selectivity).
    pub srs: Vec<(SystemId, TimeBreakdown)>,
    /// TPC-D suite measurements.
    pub tpcd: Vec<TpcdMeasurement>,
}

impl DssComparison {
    /// Runs both sides of the comparison.
    pub fn run(ctx: &FigureCtx, tpcd_scale: TpcdScale) -> DbResult<DssComparison> {
        let mut srs = Vec::new();
        for sys in DSS_SYSTEMS {
            let m = measure_query(
                sys,
                MicroQuery::SequentialRangeSelection,
                0.1,
                ctx.scale,
                &ctx.cfg,
                &ctx.methodology,
            )?;
            srs.push((sys, m.truth));
        }
        let mut tpcd_ms = Vec::new();
        for sys in DSS_SYSTEMS {
            tpcd_ms.push(measure_tpcd(sys, tpcd_scale, &ctx.cfg)?);
        }
        Ok(DssComparison { srs, tpcd: tpcd_ms })
    }

    /// Figure 5.6: CPI breakdown, SRS vs TPC-D.
    pub fn render_fig5_6(&self) -> String {
        let mut out = String::from(
            "Figure 5.6: Clocks-per-instruction breakdown, SRS (left) vs TPC-D (right)\n",
        );
        let mut t = TextTable::new([
            "system",
            "SRS CPI (comp/mem/br/res)",
            "TPC-D CPI (comp/mem/br/res)",
        ]);
        for (i, (sys, srs)) in self.srs.iter().enumerate() {
            let fmt = |b: &TimeBreakdown| {
                let c = b.cpi_four_way();
                format!(
                    "{:.2} ({:.2}/{:.2}/{:.2}/{:.2})",
                    b.cpi(),
                    c.computation,
                    c.memory,
                    c.branch,
                    c.resource
                )
            };
            t.row([sys.letter().to_string(), fmt(srs), fmt(&self.tpcd[i].truth)]);
        }
        out.push_str(&t.render());
        out.push_str("paper: CPI between 1.2 and 1.8 for both workloads\n");
        out
    }

    /// Figure 5.7: cache-related stall breakdown, SRS vs TPC-D.
    pub fn render_fig5_7(&self) -> String {
        let mut out = String::from(
            "Figure 5.7: cache-related stall time breakdown, SRS (left) vs TPC-D (right)\n\
             (shares of L1D/L1I/L2D/L2I within cache stalls)\n",
        );
        let mut t = TextTable::new(["system", "workload", "L1D", "L1I", "L2D", "L2I"]);
        for (i, (sys, srs)) in self.srs.iter().enumerate() {
            for (label, b) in [("SRS", srs), ("TPC-D", &self.tpcd[i].truth)] {
                let cache = (b.tl1d + b.tl1i + b.tl2d + b.tl2i).max(1e-9);
                t.row([
                    sys.letter().to_string(),
                    label.to_string(),
                    pct(b.tl1d / cache),
                    pct(b.tl1i / cache),
                    pct(b.tl2d / cache),
                    pct(b.tl2i / cache),
                ]);
            }
        }
        out.push_str(&t.render());
        out
    }

    /// The §5.5 similarity check: for each system, the SRS and TPC-D
    /// four-way shares differ by at most `tol` in each component.
    pub fn max_share_difference(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for (i, (_, srs)) in self.srs.iter().enumerate() {
            let a = srs.four_way();
            let b = self.tpcd[i].truth.four_way();
            for (x, y) in [
                (a.computation, b.computation),
                (a.memory, b.memory),
                (a.branch, b.branch),
                (a.resource, b.resource),
            ] {
                worst = worst.max((x - y).abs());
            }
        }
        worst
    }
}

//! §5.5 OLTP contrast: the TPC-C-like workload.
//!
//! "CPI rates for TPC-C workloads range from 2.5 to 4.5, and 60%-80% of the
//! time is spent in memory-related stalls. Resource stalls are significantly
//! higher for TPC-C … The TPC-C memory stalls breakdown shows dominance of
//! the L2 data and instruction stalls."

use wdtg_memdb::{Database, DbResult, EngineProfile, SystemId};
use wdtg_sim::Mode;
use wdtg_workloads::tpcc::{self, TpccScale};
use wdtg_workloads::{run_oltp, OltpConfig, OltpReport, TpccDriver};

use crate::breakdown::TimeBreakdown;
use crate::methodology::Rates;
use crate::tables::{pct, TextTable};

/// Result of a measured TPC-C-like run on one system.
#[derive(Debug, Clone)]
pub struct TpccMeasurement {
    /// System measured.
    pub system: SystemId,
    /// User-mode breakdown over the measured transactions.
    pub truth: TimeBreakdown,
    /// Hardware rates.
    pub rates: Rates,
    /// Transactions measured.
    pub transactions: u64,
}

impl TpccMeasurement {
    /// Share of memory stalls that are L2 (data + instruction) — the paper
    /// reports L2 dominance for TPC-C.
    pub fn l2_share_of_memory(&self) -> f64 {
        let tm = self.truth.tm().max(1e-9);
        (self.truth.tl2d + self.truth.tl2i) / tm
    }
}

/// Runs `txns` measured transactions (after a warm-up batch) on `system`.
pub fn measure_tpcc(
    system: SystemId,
    scale: TpccScale,
    cfg: &wdtg_sim::CpuConfig,
    txns: u64,
) -> DbResult<TpccMeasurement> {
    let mut db = Database::with_capacity(EngineProfile::system(system), cfg.clone(), 1 << 16);
    db.ctx.instrument = false;
    tpcc::load(&mut db, scale, wdtg_workloads::DEFAULT_SEED)?;
    db.ctx.instrument = true;
    let mut driver = TpccDriver::new(scale, wdtg_workloads::DEFAULT_SEED);
    // Warm-up batch.
    driver.run(&mut db, (txns / 4).max(10))?;
    let before = db.cpu().snapshot();
    driver.run(&mut db, txns)?;
    let delta = db.cpu().snapshot().delta(&before);
    Ok(TpccMeasurement {
        system,
        truth: TimeBreakdown::from_snapshot(&delta, Mode::User),
        rates: Rates::from_delta(&delta),
        transactions: txns,
    })
}

/// Runs the TPC-C contrast on all four systems and renders the table.
pub fn tpcc_report(
    scale: TpccScale,
    cfg: &wdtg_sim::CpuConfig,
    txns: u64,
) -> DbResult<(Vec<TpccMeasurement>, String)> {
    let mut all = Vec::new();
    for sys in SystemId::ALL {
        all.push(measure_tpcc(sys, scale, cfg, txns)?);
    }
    let mut out = String::from("§5.5 TPC-C contrast (10 clients, 1 warehouse, standard mix)\n");
    let mut t = TextTable::new([
        "system",
        "CPI",
        "memory stalls %",
        "L2(D+I) share of T_M",
        "resource stalls %",
    ]);
    for m in &all {
        let f = m.truth.four_way();
        t.row([
            m.system.letter().to_string(),
            format!("{:.2}", m.truth.cpi()),
            pct(f.memory),
            pct(m.l2_share_of_memory()),
            pct(f.resource),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "paper: CPI 2.5-4.5; 60-80% memory stalls; L2 data+instruction stalls dominate;\n\
         resource stalls significantly higher than DSS workloads\n",
    );
    Ok((all, out))
}

/// Runs the concurrent snapshot-isolation deployment of the mix on one
/// system and renders a figure: committed TPS, tail latency, and the
/// conflict/abort economics of first-committer-wins, plus the safety
/// headlines (oracle mismatches, anomalies, WAL recovery).
pub fn concurrent_tpcc_report(
    system: SystemId,
    scale: TpccScale,
    cfg: &wdtg_sim::CpuConfig,
    clients: usize,
    txns_per_client: usize,
) -> DbResult<(OltpReport, String)> {
    let oltp_cfg = OltpConfig {
        clients,
        txns_per_client,
        ..OltpConfig::new(scale)
    };
    let nodes = oltp_cfg.nodes.min(clients).max(1);
    let cfg = cfg.clone();
    let report = run_oltp(&oltp_cfg, || {
        Database::with_capacity(EngineProfile::system(system), cfg.clone(), 1 << 16)
    })?;
    let mut out = format!(
        "Concurrent mix under snapshot isolation ({clients} clients, {nodes} node(s), \
         system {})\n",
        system.letter()
    );
    let mut t = TextTable::new(["metric", "value"]);
    t.row(["committed txns".into(), report.committed.to_string()]);
    t.row(["sim TPS".into(), format!("{:.1}", report.sim_tps)]);
    t.row(["latency p50 (ms)".into(), format!("{:.3}", report.p50_ms)]);
    t.row(["latency p99 (ms)".into(), format!("{:.3}", report.p99_ms)]);
    t.row(["write conflicts".into(), report.conflicts.to_string()]);
    t.row([
        "retries exhausted".to_string(),
        report.retries_exhausted.to_string(),
    ]);
    t.row([
        "wrong answers".to_string(),
        report.wrong_answers.to_string(),
    ]);
    t.row(["anomalies".to_string(), report.anomalies.to_string()]);
    t.row([
        "WAL recovery".to_string(),
        if report.recovery_ok {
            "bit-identical"
        } else {
            "FAILED"
        }
        .to_string(),
    ]);
    out.push_str(&t.render());
    Ok((report, out))
}

//! The §4.3 measurement methodology.
//!
//! "Before taking measurements for a query, the main memory and caches were
//! warmed up with multiple runs of this query. … the unit of execution
//! consisted of 10 different queries on the same database, with the same
//! selectivity. Each time emon executed one such unit, it measured a pair of
//! events. … the experiments were repeated several times and the final sets
//! of numbers exhibit a standard deviation of less than 5 percent."

use wdtg_emon::{measure_breakdown, ModeSel, Penalties, Target};
use wdtg_memdb::{
    Database, DbResult, EngineProfile, ExecMode, FaultPlan, JoinAlgo, PageLayout, Query,
    SelectionMode, ShardedDatabase, SystemId,
};
use wdtg_sim::{measure_memory_latency, merge_cores, Cpu, CpuConfig, Event, Mode, Snapshot};
use wdtg_workloads::{micro, MicroQuery, Scale};

use crate::breakdown::TimeBreakdown;

/// Measurement methodology parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Methodology {
    /// Warm-up runs of the query before any measurement.
    pub warmup_runs: u32,
    /// Queries per measurement unit (the paper uses 10 to amortize
    /// client/server startup; the simulator is deterministic so the default
    /// is smaller).
    pub unit_queries: u32,
    /// Measured repetitions of the unit (ground-truth runs).
    pub repetitions: u32,
    /// Acceptable relative standard deviation across repetitions.
    pub max_rel_stddev: f64,
    /// Whether to also reconstruct the breakdown through the emon pipeline
    /// (16 events, two per run — 8 extra unit executions).
    pub with_emon: bool,
    /// Execution path the engine runs queries under. The paper's systems
    /// are row-at-a-time ([`ExecMode::Row`], the default); [`ExecMode::Batch`]
    /// regenerates the same breakdowns over the vectorized executor so the
    /// two can be compared.
    pub exec_mode: ExecMode,
    /// On-page record layout of the measured relations. The paper's systems
    /// store slotted NSM pages ([`PageLayout::Nsm`], the default);
    /// [`PageLayout::Pax`] regenerates the same breakdowns over
    /// cache-conscious per-attribute minipages.
    pub layout: PageLayout,
    /// Join-algorithm override for equijoin queries. `None` (the default)
    /// keeps the engine profile's own choice — the paper's systems run the
    /// naive transient hash join; `Some` regenerates the same breakdowns
    /// under another strategy (e.g. [`JoinAlgo::PartitionedHash`]).
    pub join_algo: Option<JoinAlgo>,
    /// How filters qualify rows. The paper's systems branch on the
    /// predicate result ([`SelectionMode::Branching`], the default — the
    /// source of the Fig 5.4 T_B term); [`SelectionMode::Predicated`]
    /// regenerates the same breakdowns under branch-free qualification.
    pub selection: SelectionMode,
    /// How many hash-partitioned shards (simulated cores) execute the
    /// query. `1` (the default) is the paper's single-processor setup;
    /// `> 1` re-partitions the relations via [`Database::shard`] and the
    /// reported breakdown sums the per-core counters/stalls — the *total
    /// work* view. (The wall-clock/speedup view lives in
    /// [`crate::figures::ScalingComparison`], which keeps per-core deltas.)
    /// The emon reconstruction is single-processor tooling and is skipped
    /// for sharded runs.
    pub shards: usize,
    /// Deterministic fault-injection plan applied to the measured database
    /// ([`FaultPlan::disabled`] by default — the measurement configurations
    /// above are fault-free; chaos experiments arm this and drive the same
    /// methodology under injected faults).
    pub fault: FaultPlan,
}

impl Default for Methodology {
    fn default() -> Self {
        Methodology {
            warmup_runs: 1,
            unit_queries: 1,
            repetitions: 1,
            max_rel_stddev: 0.05,
            with_emon: false,
            exec_mode: ExecMode::Row,
            layout: PageLayout::Nsm,
            join_algo: None,
            selection: SelectionMode::Branching,
            shards: 1,
            fault: FaultPlan::disabled(),
        }
    }
}

impl Methodology {
    /// The paper's full methodology (unit of 10, warmed, emon multiplexing).
    pub fn paper() -> Methodology {
        Methodology {
            warmup_runs: 2,
            unit_queries: 10,
            repetitions: 3,
            max_rel_stddev: 0.05,
            with_emon: true,
            exec_mode: ExecMode::Row,
            layout: PageLayout::Nsm,
            join_algo: None,
            selection: SelectionMode::Branching,
            shards: 1,
            fault: FaultPlan::disabled(),
        }
    }

    /// The same methodology over the vectorized executor.
    pub fn batched(self) -> Methodology {
        Methodology {
            exec_mode: ExecMode::Batch,
            ..self
        }
    }

    /// The same methodology over a given page layout.
    pub fn with_layout(self, layout: PageLayout) -> Methodology {
        Methodology { layout, ..self }
    }

    /// The same methodology over PAX pages.
    pub fn pax(self) -> Methodology {
        self.with_layout(PageLayout::Pax)
    }

    /// The same methodology with a join-algorithm override.
    pub fn with_join_algo(self, algo: JoinAlgo) -> Methodology {
        Methodology {
            join_algo: Some(algo),
            ..self
        }
    }

    /// The same methodology under the radix-partitioned hash join.
    pub fn partitioned(self) -> Methodology {
        self.with_join_algo(JoinAlgo::PartitionedHash)
    }

    /// The same methodology under a given selection mode.
    pub fn with_selection(self, selection: SelectionMode) -> Methodology {
        Methodology { selection, ..self }
    }

    /// The same methodology under branch-free (predicated) selection.
    pub fn predicated(self) -> Methodology {
        self.with_selection(SelectionMode::Predicated)
    }

    /// The same methodology over `shards` hash-partitioned cores (`1` = the
    /// paper's single-processor setup).
    pub fn with_shards(self, shards: usize) -> Methodology {
        Methodology {
            shards: shards.max(1),
            ..self
        }
    }

    /// The same methodology under a deterministic fault-injection plan.
    pub fn with_fault_plan(self, fault: FaultPlan) -> Methodology {
        Methodology { fault, ..self }
    }
}

/// Derived hardware-behaviour rates the paper quotes in §5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rates {
    /// Branch misprediction rate (mispredictions / branches retired).
    pub br_mispredict: f64,
    /// BTB miss rate (≈50% in all the paper's experiments).
    pub btb_miss: f64,
    /// L1D miss rate (misses / data references; ≈2%, never above 4%).
    pub l1d_miss: f64,
    /// L2 data miss rate (L2 data misses / L2 data accesses; 40–90% for
    /// most systems, ≈2% for System B on SRS).
    pub l2d_miss: f64,
    /// Branch instructions / instructions retired (≈20%).
    pub branch_frac: f64,
    /// Data references / instructions retired (≥ 50%).
    pub mem_ref_frac: f64,
    /// Fraction of cycles spent in user mode (>85%).
    pub user_mode_frac: f64,
}

impl Rates {
    /// Computes the rates from a user-mode counter delta.
    pub fn from_delta(delta: &Snapshot) -> Rates {
        let c = &delta.counters;
        let user = |e| c.get(Mode::User, e) as f64;
        let ratio = |n: f64, d: f64| if d > 0.0 { n / d } else { 0.0 };
        let branches = user(Event::BrInstRetired);
        let l2_data_accesses = user(Event::L2Ld) + user(Event::L2St);
        let total_cycles: f64 = c.total(Event::CpuClkUnhalted) as f64;
        Rates {
            br_mispredict: ratio(user(Event::BrMissPredRetired), branches),
            btb_miss: ratio(user(Event::BtbMisses), branches),
            l1d_miss: ratio(user(Event::DcuLinesIn), user(Event::DataMemRefs)),
            l2d_miss: ratio(user(Event::SimL2DataMiss), l2_data_accesses),
            branch_frac: ratio(branches, user(Event::InstRetired)),
            mem_ref_frac: ratio(user(Event::DataMemRefs), user(Event::InstRetired)),
            user_mode_frac: ratio(
                c.get(Mode::User, Event::CpuClkUnhalted) as f64,
                total_cycles,
            ),
        }
    }
}

/// One fully measured query on one system.
#[derive(Debug, Clone)]
pub struct QueryMeasurement {
    /// Which system ran it.
    pub system: SystemId,
    /// Which microbenchmark query.
    pub query: MicroQuery,
    /// Target selectivity (range selections).
    pub selectivity: f64,
    /// Ground-truth breakdown (user mode).
    pub truth: TimeBreakdown,
    /// emon-reconstructed breakdown, when requested.
    pub estimate: Option<TimeBreakdown>,
    /// Rows the query returned/aggregated.
    pub rows: u64,
    /// Record count the paper divides by in Fig 5.3 (R-rows for SRS/SJ,
    /// selected rows for IRS).
    pub denominator: u64,
    /// Derived hardware rates.
    pub rates: Rates,
    /// Relative stddev of cycles across repetitions.
    pub rel_stddev: f64,
}

impl QueryMeasurement {
    /// Instructions retired per record, Fig 5.3's metric.
    pub fn instructions_per_record(&self) -> f64 {
        if self.denominator == 0 {
            0.0
        } else {
            self.truth.inst_retired as f64 / self.denominator as f64
        }
    }

    /// Cycles per record.
    pub fn cycles_per_record(&self) -> f64 {
        if self.denominator == 0 {
            0.0
        } else {
            self.truth.cycles / self.denominator as f64
        }
    }
}

/// An emon target wrapping a database and a fixed query unit.
pub struct DbTarget<'a> {
    db: &'a mut Database,
    query: Query,
    unit_queries: u32,
}

impl Target for DbTarget<'_> {
    fn snapshot(&self) -> Snapshot {
        self.db.cpu().snapshot()
    }
    fn run_unit(&mut self) {
        for _ in 0..self.unit_queries {
            self.db.run(&self.query).expect("measured query runs");
        }
    }
}

/// Builds a database for `profile` and prepares the given microbenchmark
/// query's dataset/indexes at `scale` in NSM pages (uninstrumented).
pub fn build_db_with(
    profile: EngineProfile,
    scale: Scale,
    query: MicroQuery,
    cfg: &CpuConfig,
) -> DbResult<Database> {
    build_db_with_layout(profile, scale, query, cfg, PageLayout::Nsm)
}

/// [`build_db_with`] with an explicit page layout for the relations.
pub fn build_db_with_layout(
    profile: EngineProfile,
    scale: Scale,
    query: MicroQuery,
    cfg: &CpuConfig,
    layout: PageLayout,
) -> DbResult<Database> {
    let expected_pages = (scale.r_records + scale.s_records) / 40 + 1024;
    let mut db = Database::with_capacity(profile, cfg.clone(), expected_pages);
    db.ctx.instrument = false;
    micro::prepare_with_layout(&mut db, scale, query, layout)?;
    db.ctx.instrument = true;
    Ok(db)
}

/// Builds a database for one of the paper's systems (see [`build_db_with`]).
pub fn build_db(
    system: SystemId,
    scale: Scale,
    query: MicroQuery,
    cfg: &CpuConfig,
) -> DbResult<Database> {
    build_db_with(EngineProfile::system(system), scale, query, cfg)
}

/// [`build_db_with_layout`] split across `shards` hash-partitioned cores,
/// co-partitioned on the microbenchmark's keys (R on `a2`, S on `a1`; see
/// [`micro::prepare_sharded_with_layout`]). Loading and re-partitioning are
/// uninstrumented, like the paper's pre-measurement bulk load.
pub fn build_sharded_db_with_layout(
    profile: EngineProfile,
    scale: Scale,
    query: MicroQuery,
    cfg: &CpuConfig,
    layout: PageLayout,
    shards: usize,
) -> DbResult<ShardedDatabase> {
    let expected_pages = (scale.r_records + scale.s_records) / 40 + 1024;
    let mut db = Database::with_capacity(profile, cfg.clone(), expected_pages);
    db.ctx.instrument = false;
    let mut sharded = micro::prepare_sharded_with_layout(db, scale, query, layout, shards)?;
    sharded.set_instrument(true);
    Ok(sharded)
}

/// Measures one microbenchmark query on one system per the methodology.
pub fn measure_query(
    system: SystemId,
    query: MicroQuery,
    selectivity: f64,
    scale: Scale,
    cfg: &CpuConfig,
    m: &Methodology,
) -> DbResult<QueryMeasurement> {
    measure_query_with(
        EngineProfile::system(system),
        query,
        selectivity,
        scale,
        cfg,
        m,
    )
}

/// Measures one microbenchmark query with a custom engine profile (used by
/// the ablation experiments, e.g. sweeping System B's prefetch distance).
pub fn measure_query_with(
    profile: EngineProfile,
    query: MicroQuery,
    selectivity: f64,
    scale: Scale,
    cfg: &CpuConfig,
    m: &Methodology,
) -> DbResult<QueryMeasurement> {
    if m.shards > 1 {
        return measure_query_sharded(profile, query, selectivity, scale, cfg, m);
    }
    let system = profile.system;
    let mut db = build_db_with_layout(profile, scale, query, cfg, m.layout)?;
    db.set_exec_mode(m.exec_mode);
    db.set_selection_mode(m.selection);
    if let Some(algo) = m.join_algo {
        db.set_join_algo(algo);
    }
    db.set_fault_plan(m.fault);
    let q = micro::query(scale, query, selectivity);

    // Warm-up runs (§4.3): caches, TLBs, BTB reach steady state.
    let mut rows = 0;
    for _ in 0..m.warmup_runs.max(1) {
        rows = db.run(&q)?.rows;
    }

    // Ground-truth repetitions.
    let (before, last, cycles_per_rep) = measured_reps(
        m,
        &mut db,
        |db| db.cpu().snapshot(),
        |now, last| now.cycles - last.cycles,
        |db| db.run(&q).map(|_| ()),
    )?;
    let delta = last.delta(&before);
    let n = (m.repetitions.max(1) * m.unit_queries.max(1)) as f64;
    let truth = normalize_per_query(TimeBreakdown::from_snapshot(&delta, Mode::User), n);
    let rates = Rates::from_delta(&delta);
    let rel_stddev = rel_stddev(&cycles_per_rep);

    // emon reconstruction (two counters per run).
    let estimate = if m.with_emon {
        let latency = measured_latency(cfg);
        let penalties = Penalties::from_config(cfg, latency);
        let mut target = DbTarget {
            db: &mut db,
            query: q.clone(),
            unit_queries: m.unit_queries,
        };
        let (est, _readings) =
            measure_breakdown(&mut target, ModeSel::User, &penalties).expect("specs valid");
        Some(normalize_per_query(
            TimeBreakdown::from_estimate(&est),
            m.unit_queries.max(1) as f64,
        ))
    } else {
        None
    };

    Ok(QueryMeasurement {
        system,
        query,
        selectivity,
        truth,
        estimate,
        rows,
        denominator: denominator_for(query, scale, rows),
        rates,
        rel_stddev,
    })
}

/// The §4.3 measured-repetition protocol, shared verbatim by the
/// single-core and sharded arms of [`measure_query_with`] so the two can
/// never drift: `repetitions` × `unit_queries` runs, a per-repetition
/// cycle delta for the stability bar, and the (before, after) snapshot
/// pair. Generic over the snapshot state `S` because the sharded arm
/// carries one [`Snapshot`] per core.
fn measured_reps<T, S: Clone>(
    m: &Methodology,
    target: &mut T,
    snapshot: impl Fn(&T) -> S,
    rep_cycles: impl Fn(&S, &S) -> f64,
    run_one: impl Fn(&mut T) -> DbResult<()>,
) -> DbResult<(S, S, Vec<f64>)> {
    let mut cycles_per_rep = Vec::with_capacity(m.repetitions as usize);
    let before = snapshot(target);
    let mut last = before.clone();
    for _ in 0..m.repetitions.max(1) {
        for _ in 0..m.unit_queries.max(1) {
            run_one(target)?;
        }
        let now = snapshot(target);
        cycles_per_rep.push(rep_cycles(&now, &last));
        last = now;
    }
    Ok((before, last, cycles_per_rep))
}

/// The paper's per-record denominator (Fig 5.3): R-rows for the sequential
/// queries, selected rows for the indexed selection. One definition for
/// both measurement arms.
fn denominator_for(query: MicroQuery, scale: Scale, rows: u64) -> u64 {
    match query {
        MicroQuery::SequentialRangeSelection | MicroQuery::SequentialJoin => scale.r_records,
        MicroQuery::IndexedRangeSelection => rows.max(1),
    }
}

/// Divides every component of a measured breakdown by `n` executions,
/// normalizing a unit/repetition delta to a single query.
fn normalize_per_query(mut t: TimeBreakdown, n: f64) -> TimeBreakdown {
    t.tc /= n;
    t.tl1d /= n;
    t.tl1i /= n;
    t.tl2d /= n;
    t.tl2i /= n;
    t.tdtlb = t.tdtlb.map(|v| v / n);
    t.titlb /= n;
    t.tb /= n;
    t.tfu /= n;
    t.tdep /= n;
    t.tild /= n;
    t.cycles /= n;
    t.inst_retired = (t.inst_retired as f64 / n) as u64;
    t
}

/// The sharded arm of [`measure_query_with`] (`m.shards > 1`): same
/// warm-up/unit/repetition protocol over a [`ShardedDatabase`]. The
/// reported breakdown sums the per-core counters and stall cycles — the
/// *total work* across the fleet, what a machine-wide emon would see. The
/// wall-clock (max-core) view and speedup curves live in
/// [`crate::figures::ScalingComparison`]. The two-counter emon
/// reconstruction is single-processor tooling and is skipped.
fn measure_query_sharded(
    profile: EngineProfile,
    query: MicroQuery,
    selectivity: f64,
    scale: Scale,
    cfg: &CpuConfig,
    m: &Methodology,
) -> DbResult<QueryMeasurement> {
    let system = profile.system;
    let mut db = build_sharded_db_with_layout(profile, scale, query, cfg, m.layout, m.shards)?;
    db.set_exec_mode(m.exec_mode);
    db.set_selection_mode(m.selection);
    if let Some(algo) = m.join_algo {
        db.set_join_algo(algo);
    }
    db.set_fault_plan(m.fault);
    let q = micro::query(scale, query, selectivity);

    // Warm-up runs (§4.3): every shard's caches/TLBs/BTB reach steady state.
    let mut rows = 0;
    for _ in 0..m.warmup_runs.max(1) {
        rows = db.run(&q)?.rows;
    }

    // Same measured-repetition protocol as the single-core arm, with one
    // snapshot per core and the machine-wide (summed) cycle delta feeding
    // the stability bar.
    let (before, last, cycles_per_rep) = measured_reps(
        m,
        &mut db,
        |db| db.snapshots(),
        |now, last| now.iter().zip(last).map(|(n, l)| n.cycles - l.cycles).sum(),
        |db| db.run(&q).map(|_| ()),
    )?;
    let deltas: Vec<Snapshot> = last
        .iter()
        .zip(&before)
        .map(|(now, b)| now.delta(b))
        .collect();
    let delta = merge_cores(&deltas).total;
    let n = (m.repetitions.max(1) * m.unit_queries.max(1)) as f64;
    let truth = normalize_per_query(TimeBreakdown::from_snapshot(&delta, Mode::User), n);
    let rates = Rates::from_delta(&delta);
    let rel_stddev = rel_stddev(&cycles_per_rep);

    Ok(QueryMeasurement {
        system,
        query,
        selectivity,
        truth,
        estimate: None,
        rows,
        denominator: denominator_for(query, scale, rows),
        rates,
        rel_stddev,
    })
}

/// Measures the memory latency once per configuration (cached per call;
/// cheap relative to query runs).
pub fn measured_latency(cfg: &CpuConfig) -> f64 {
    let mut cpu = Cpu::new(cfg.clone());
    measure_memory_latency(&mut cpu, 4 * 1024 * 1024).cycles_per_load
}

fn rel_stddev(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CpuConfig {
        CpuConfig::pentium_ii_xeon()
    }

    #[test]
    fn measure_srs_produces_consistent_breakdown() {
        let m = Methodology::default();
        let meas = measure_query(
            SystemId::C,
            MicroQuery::SequentialRangeSelection,
            0.1,
            Scale::tiny(),
            &cfg(),
            &m,
        )
        .unwrap();
        assert!(meas.truth.cycles > 0.0);
        assert!((meas.truth.component_sum() - meas.truth.cycles).abs() < 1e-6);
        assert!(meas.rows > 0);
        assert!(
            meas.instructions_per_record() > 100.0,
            "thousands of instrs/record era"
        );
        assert!(meas.rel_stddev <= 0.05 + 1e-9);
    }

    #[test]
    fn emon_estimate_tracks_ground_truth() {
        let m = Methodology {
            with_emon: true,
            ..Methodology::default()
        };
        let meas = measure_query(
            SystemId::D,
            MicroQuery::SequentialRangeSelection,
            0.1,
            Scale::tiny(),
            &cfg(),
            &m,
        )
        .unwrap();
        let est = meas.estimate.expect("emon requested");
        let t = &meas.truth;
        // Total cycles agree within a few percent (steady-state units).
        assert!(
            (est.cycles - t.cycles).abs() / t.cycles < 0.05,
            "emon cycles {} vs truth {}",
            est.cycles,
            t.cycles
        );
        // Count×penalty components are near the ground truth (T_L2D is an
        // upper bound; T_C is exact; T_B is exact by construction).
        assert!((est.tc - t.tc).abs() / t.tc.max(1.0) < 0.05);
        assert!(
            est.tl2d >= t.tl2d * 0.8,
            "est {} truth {}",
            est.tl2d,
            t.tl2d
        );
        assert!((est.tb - t.tb).abs() / t.tb.max(1.0) < 0.2);
    }

    #[test]
    fn repetitions_are_stable() {
        let m = Methodology {
            repetitions: 3,
            ..Methodology::default()
        };
        let meas = measure_query(
            SystemId::A,
            MicroQuery::SequentialRangeSelection,
            0.1,
            Scale::tiny(),
            &cfg(),
            &m,
        )
        .unwrap();
        assert!(
            meas.rel_stddev < m.max_rel_stddev,
            "warmed repetitions vary {:.4}",
            meas.rel_stddev
        );
    }

    #[test]
    fn rates_are_in_sane_ranges() {
        let meas = measure_query(
            SystemId::B,
            MicroQuery::SequentialRangeSelection,
            0.1,
            Scale::tiny(),
            &cfg(),
            &Methodology::default(),
        )
        .unwrap();
        let r = &meas.rates;
        assert!(r.br_mispredict > 0.0 && r.br_mispredict < 0.5);
        assert!(r.l1d_miss < 0.2);
        assert!(r.branch_frac > 0.05 && r.branch_frac < 0.4);
        assert!(r.user_mode_frac > 0.5);
    }
}

//! The execution-time breakdown — the paper's central abstraction.
//!
//! `T_Q = T_C + T_M + T_B + T_R − T_OVL` (§3.1), with T_M and T_R split per
//! Table 3.1. A [`TimeBreakdown`] can come from two sources:
//!
//! * **ground truth** — the simulator's stall ledger, where every cycle is
//!   attributed exactly and T_OVL folds into the per-component charges;
//! * **emon estimate** — the Table 4.2 count×penalty reconstruction, where
//!   several components are upper bounds and T_OVL appears as the excess
//!   over measured cycles (unmeasurable on the real machine).

use wdtg_emon::EstimatedBreakdown;
use wdtg_sim::{Component, Event, Mode, Snapshot};

/// Where a breakdown's numbers came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakdownSource {
    /// Exact per-cycle attribution from the simulator's ledger.
    GroundTruth,
    /// Table 4.2 reconstruction from (two-at-a-time) counter readings.
    EmonEstimate,
}

/// The four top-level shares of Figure 5.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FourWay {
    /// Computation share (T_C).
    pub computation: f64,
    /// Memory-stall share (T_M).
    pub memory: f64,
    /// Branch-misprediction share (T_B).
    pub branch: f64,
    /// Resource-stall share (T_R).
    pub resource: f64,
}

/// A complete execution-time breakdown in cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeBreakdown {
    /// Computation time.
    pub tc: f64,
    /// L1 data stalls.
    pub tl1d: f64,
    /// L1 instruction stalls.
    pub tl1i: f64,
    /// L2 data stalls.
    pub tl2d: f64,
    /// L2 instruction stalls.
    pub tl2i: f64,
    /// DTLB stalls (`None` when the source cannot measure them — emon).
    pub tdtlb: Option<f64>,
    /// ITLB stalls.
    pub titlb: f64,
    /// Branch misprediction penalty.
    pub tb: f64,
    /// Functional-unit stalls.
    pub tfu: f64,
    /// Dependency stalls.
    pub tdep: f64,
    /// Instruction-length decoder stalls.
    pub tild: f64,
    /// Measured total cycles (T_Q).
    pub cycles: f64,
    /// Instructions retired (for CPI).
    pub inst_retired: u64,
    /// Provenance.
    pub source: BreakdownSource,
}

impl TimeBreakdown {
    /// Builds the ground-truth breakdown for `mode` from a snapshot delta.
    pub fn from_snapshot(delta: &Snapshot, mode: Mode) -> TimeBreakdown {
        let l = &delta.ledger;
        let g = |c: Component| l.get(mode, c);
        TimeBreakdown {
            tc: g(Component::Tc),
            tl1d: g(Component::Tl1d),
            tl1i: g(Component::Tl1i),
            tl2d: g(Component::Tl2d),
            tl2i: g(Component::Tl2i),
            tdtlb: Some(g(Component::Tdtlb)),
            titlb: g(Component::Titlb),
            tb: g(Component::Tb),
            tfu: g(Component::Tfu),
            tdep: g(Component::Tdep),
            tild: g(Component::Tild),
            cycles: l.mode_total(mode),
            inst_retired: delta.counters.get(mode, Event::InstRetired),
            source: BreakdownSource::GroundTruth,
        }
    }

    /// Wraps an emon Table 4.2 reconstruction.
    pub fn from_estimate(e: &EstimatedBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            tc: e.tc,
            tl1d: e.tl1d,
            tl1i: e.tl1i,
            tl2d: e.tl2d,
            tl2i: e.tl2i,
            tdtlb: e.tdtlb,
            titlb: e.titlb,
            tb: e.tb,
            tfu: e.tfu,
            tdep: e.tdep,
            tild: e.tild,
            cycles: e.cycles,
            inst_retired: e.inst_retired,
            source: BreakdownSource::EmonEstimate,
        }
    }

    /// Memory-stall total T_M.
    pub fn tm(&self) -> f64 {
        self.tl1d + self.tl1i + self.tl2d + self.tl2i + self.titlb + self.tdtlb.unwrap_or(0.0)
    }

    /// Resource-stall total T_R.
    pub fn tr(&self) -> f64 {
        self.tfu + self.tdep + self.tild
    }

    /// Sum of all components (= cycles for ground truth; ≥ cycles for
    /// estimates, the excess being overlap).
    pub fn component_sum(&self) -> f64 {
        self.tc + self.tm() + self.tb + self.tr()
    }

    /// Reconstructed overlap T_OVL (0 for ground truth by construction).
    pub fn tovl(&self) -> f64 {
        (self.component_sum() - self.cycles).max(0.0)
    }

    /// Clocks per instruction.
    pub fn cpi(&self) -> f64 {
        if self.inst_retired == 0 {
            0.0
        } else {
            self.cycles / self.inst_retired as f64
        }
    }

    /// The Figure 5.1 shares (fractions of the component sum, so they add to
    /// 1 for both sources, like the paper's 100%-stacked bars).
    pub fn four_way(&self) -> FourWay {
        let total = self.component_sum().max(1e-9);
        FourWay {
            computation: self.tc / total,
            memory: self.tm() / total,
            branch: self.tb / total,
            resource: self.tr() / total,
        }
    }

    /// Stall share of execution: 1 − computation share (§5.1: "almost half
    /// of the execution time is spent on stalls").
    pub fn stall_fraction(&self) -> f64 {
        1.0 - self.four_way().computation
    }

    /// The Figure 5.2 memory-stall shares `(l1d, l1i, l2d, l2i, itlb)` as
    /// fractions of T_M (DTLB excluded: the paper could not measure it).
    pub fn memory_shares(&self) -> [f64; 5] {
        let tm = (self.tl1d + self.tl1i + self.tl2d + self.tl2i + self.titlb).max(1e-9);
        [
            self.tl1d / tm,
            self.tl1i / tm,
            self.tl2d / tm,
            self.tl2i / tm,
            self.titlb / tm,
        ]
    }

    /// CPI contribution of each Figure 5.1 component (for Figure 5.6).
    pub fn cpi_four_way(&self) -> FourWay {
        let f = self.four_way();
        let cpi = self.cpi();
        FourWay {
            computation: f.computation * cpi,
            memory: f.memory * cpi,
            branch: f.branch * cpi,
            resource: f.resource * cpi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdtg_sim::{segment, CodeBlock, Cpu, CpuConfig, InterruptCfg, MemDep};

    fn measured() -> TimeBreakdown {
        let mut cpu =
            Cpu::new(CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled()));
        let block = CodeBlock::builder("w", 2000)
            .private(segment::PRIVATE, 1024)
            .at(segment::CODE);
        let before = cpu.snapshot();
        for i in 0..200u64 {
            cpu.exec_block(&block);
            cpu.load(segment::HEAP + i * 100, 8, MemDep::Demand);
        }
        let delta = cpu.snapshot().delta(&before);
        TimeBreakdown::from_snapshot(&delta, Mode::User)
    }

    #[test]
    fn ground_truth_components_sum_to_cycles() {
        let b = measured();
        assert!((b.component_sum() - b.cycles).abs() < 1e-6);
        assert!(b.tovl() < 1e-6, "ground truth has no unexplained overlap");
        assert_eq!(b.source, BreakdownSource::GroundTruth);
    }

    #[test]
    fn shares_sum_to_one() {
        let b = measured();
        let f = b.four_way();
        let sum = f.computation + f.memory + f.branch + f.resource;
        assert!((sum - 1.0).abs() < 1e-9);
        let mem: f64 = b.memory_shares().iter().sum();
        if b.tm() > 0.0 {
            assert!((mem - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn cpi_is_cycles_over_instructions() {
        let b = measured();
        assert!(b.cpi() > 0.0);
        assert!((b.cpi() - b.cycles / b.inst_retired as f64).abs() < 1e-12);
        let c = b.cpi_four_way();
        let total = c.computation + c.memory + c.branch + c.resource;
        assert!((total - b.cpi()).abs() < 1e-9);
    }
}

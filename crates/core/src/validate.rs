//! Machine-checkable versions of the paper's §5 claims.
//!
//! Each claim is evaluated against measured data and reported as pass/fail
//! with the observed values. The integration suite asserts these, making the
//! reproduction's fidelity a regression-tested property rather than a
//! one-off observation. Thresholds include tolerance around the paper's
//! quoted numbers (our substrate is a model, not the authors' testbed — the
//! *shape* is the contract).

use wdtg_memdb::SystemId;
use wdtg_workloads::MicroQuery;

use crate::dss::DssComparison;
use crate::figures::{MicrobenchGrid, RecordSizeSweep, SelectivitySweep};
use crate::oltp::TpccMeasurement;

/// One validated claim.
#[derive(Debug, Clone)]
pub struct Claim {
    /// Short identifier (e.g. "5.1-stalls-half").
    pub id: &'static str,
    /// What the paper says.
    pub description: &'static str,
    /// Whether the measurement satisfies it.
    pub pass: bool,
    /// Observed values.
    pub detail: String,
}

impl Claim {
    fn new(id: &'static str, description: &'static str, pass: bool, detail: String) -> Claim {
        Claim {
            id,
            description,
            pass,
            detail,
        }
    }
}

/// Validates the §5.1–§5.4 claims against the microbenchmark grid.
pub fn validate_grid(grid: &MicrobenchGrid) -> Vec<Claim> {
    let mut claims = Vec::new();
    let cells = &grid.cells;

    // §5.1: "almost half of the execution time is spent on stalls".
    let avg_stall =
        cells.iter().map(|c| c.truth.stall_fraction()).sum::<f64>() / cells.len() as f64;
    claims.push(Claim::new(
        "5.1-stalls-half",
        "on average, at least ~half of execution time is stalls",
        (0.40..=0.75).contains(&avg_stall),
        format!("average stall fraction {:.1}%", avg_stall * 100.0),
    ));

    // §5.1/5.2: "90% of the memory stalls are due to L2 data misses and L1
    // instruction misses" (tolerance: ≥75% in every cell).
    let worst_mem = cells
        .iter()
        .map(|c| {
            let tm = c.truth.tm().max(1e-9);
            (c.truth.tl1i + c.truth.tl2d) / tm
        })
        .fold(f64::INFINITY, f64::min);
    claims.push(Claim::new(
        "5.2-l1i-l2d-dominate",
        "L1I + L2D dominate memory stalls (~90%) in all cells",
        worst_mem >= 0.70,
        format!(
            "minimum (T_L1I+T_L2D)/T_M across cells: {:.1}%",
            worst_mem * 100.0
        ),
    ));

    // §5.2: "L1 D-cache stall time is insignificant".
    let worst_l1d = cells
        .iter()
        .map(|c| c.truth.tl1d / c.truth.tm().max(1e-9))
        .fold(0.0f64, f64::max);
    claims.push(Claim::new(
        "5.2-l1d-insignificant",
        "L1 D-cache stalls are insignificant",
        worst_l1d <= 0.20,
        format!("max T_L1D/T_M: {:.1}%", worst_l1d * 100.0),
    ));

    // §5.2: "T_L2I and T_ITLB … also insignificant in all the experiments".
    let worst_l2i = cells
        .iter()
        .map(|c| (c.truth.tl2i + c.truth.titlb) / c.truth.tm().max(1e-9))
        .fold(0.0f64, f64::max);
    claims.push(Claim::new(
        "5.2-l2i-itlb-insignificant",
        "L2 instruction + ITLB stalls are insignificant",
        worst_l2i <= 0.20,
        format!("max (T_L2I+T_ITLB)/T_M: {:.1}%", worst_l2i * 100.0),
    ));

    // §5.2: "the L1 D-cache miss rate … usually is around 2%, and never
    // exceeds 4%".
    let worst_l1d_rate = cells
        .iter()
        .map(|c| c.rates.l1d_miss)
        .fold(0.0f64, f64::max);
    claims.push(Claim::new(
        "5.2-l1d-miss-rate",
        "L1D miss rate around 2%, never far above 4%",
        worst_l1d_rate <= 0.08,
        format!("max L1D miss rate: {:.1}%", worst_l1d_rate * 100.0),
    ));

    // §5.2.1: L2 data miss rates 40–90% for three systems; System B ≈2% on
    // the sequential selection.
    let srs = MicroQuery::SequentialRangeSelection;
    if let (Some(b), Some(c), Some(d)) = (
        grid.get(srs, SystemId::B),
        grid.get(srs, SystemId::C),
        grid.get(srs, SystemId::D),
    ) {
        claims.push(Claim::new(
            "5.2.1-system-b-l2",
            "System B's L2 data miss rate is ~2% on SRS; C/D in the 40-90% band",
            b.rates.l2d_miss <= 0.10 && c.rates.l2d_miss >= 0.30 && d.rates.l2d_miss >= 0.30,
            format!(
                "L2D miss rates on SRS: B {:.1}%, C {:.1}%, D {:.1}%",
                b.rates.l2d_miss * 100.0,
                c.rates.l2d_miss * 100.0,
                d.rates.l2d_miss * 100.0
            ),
        ));
    }

    // §5.3: "Branch instructions account for 20% of the total instructions
    // retired in all of the experiments".
    let (min_bf, max_bf) = cells.iter().fold((1.0f64, 0.0f64), |(lo, hi), c| {
        (lo.min(c.rates.branch_frac), hi.max(c.rates.branch_frac))
    });
    claims.push(Claim::new(
        "5.3-branch-20pct",
        "branches are ~20% of instructions retired",
        min_bf >= 0.10 && max_bf <= 0.30,
        format!(
            "branch fraction range: {:.1}%..{:.1}%",
            min_bf * 100.0,
            max_bf * 100.0
        ),
    ));

    // §5.3: "the BTB misses 50% of the time on the average".
    let avg_btb = cells.iter().map(|c| c.rates.btb_miss).sum::<f64>() / cells.len() as f64;
    claims.push(Claim::new(
        "5.3-btb-50pct",
        "BTB miss rate is ~50% on average",
        (0.30..=0.70).contains(&avg_btb),
        format!("average BTB miss rate: {:.1}%", avg_btb * 100.0),
    ));

    // §5.4: "Memory references account for at least half of the
    // instructions retired".
    let min_mem = cells
        .iter()
        .map(|c| c.rates.mem_ref_frac)
        .fold(f64::INFINITY, f64::min);
    claims.push(Claim::new(
        "5.4-mem-refs-half",
        "data references are at least ~half of instructions",
        min_mem >= 0.40,
        format!("minimum memory-reference fraction: {:.1}%", min_mem * 100.0),
    ));

    // §5.1: "In systems B, C, and D, branch misprediction stalls account for
    // 10-20% of the execution time, and the resource stall time contribution
    // ranges from 15-30%."
    let mut bcd_ok = true;
    let mut bcd_detail = String::new();
    for sys in [SystemId::B, SystemId::C, SystemId::D] {
        if let Some(cell) = grid.get(srs, sys) {
            let f = cell.truth.four_way();
            bcd_detail.push_str(&format!(
                "{}: T_B {:.1}% T_R {:.1}%; ",
                sys.letter(),
                f.branch * 100.0,
                f.resource * 100.0
            ));
            if !(0.04..=0.30).contains(&f.branch) || !(0.08..=0.40).contains(&f.resource) {
                bcd_ok = false;
            }
        }
    }
    claims.push(Claim::new(
        "5.1-bcd-tb-tr",
        "B/C/D: branch stalls ~10-20%, resource stalls ~15-30% of time",
        bcd_ok,
        bcd_detail,
    ));

    // §5.1: "System A exhibits the smallest T_M and T_B of all the DBMSs in
    // most queries; however, it has the highest percentage of resource
    // stalls (20-40%)".
    if let Some(a) = grid.get(srs, SystemId::A) {
        let fa = a.truth.four_way();
        let others_max_tr = [SystemId::B, SystemId::C, SystemId::D]
            .iter()
            .filter_map(|s| grid.get(srs, *s))
            .map(|c| c.truth.four_way().resource)
            .fold(0.0f64, f64::max);
        let others_min_tm = [SystemId::B, SystemId::C, SystemId::D]
            .iter()
            .filter_map(|s| grid.get(srs, *s))
            .map(|c| c.truth.four_way().memory)
            .fold(f64::INFINITY, f64::min);
        claims.push(Claim::new(
            "5.1-system-a-resource",
            "System A: smallest T_M/T_B but highest resource stalls (20-40%)",
            fa.resource > others_max_tr
                && fa.memory <= others_min_tm + 0.04
                && (0.15..=0.45).contains(&fa.resource),
            format!(
                "A: T_M {:.1}% T_B {:.1}% T_R {:.1}% (others' max T_R {:.1}%)",
                fa.memory * 100.0,
                fa.branch * 100.0,
                fa.resource * 100.0,
                others_max_tr * 100.0
            ),
        ));
    }

    // §5.4: "Except for System A when executing range selection queries,
    // dependency stalls are the most important resource stalls."
    let mut dep_ok = true;
    let mut dep_detail = String::new();
    for cell in cells {
        let a_range = cell.system == SystemId::A && cell.query != MicroQuery::SequentialJoin;
        let (dominant, other) = if a_range {
            (cell.truth.tfu, cell.truth.tdep)
        } else {
            (cell.truth.tdep, cell.truth.tfu)
        };
        if dominant < other {
            dep_ok = false;
            dep_detail.push_str(&format!(
                "{}-{}: tdep {:.0} tfu {:.0}; ",
                cell.system.letter(),
                cell.query.label(),
                cell.truth.tdep,
                cell.truth.tfu
            ));
        }
    }
    claims.push(Claim::new(
        "5.4-dep-dominates",
        "T_DEP dominates T_FU everywhere except System A on range selections",
        dep_ok,
        if dep_detail.is_empty() {
            "holds in all cells".into()
        } else {
            dep_detail
        },
    ));

    // §5.1: System B's memory-stall share roughly doubles from SRS (~20%) to
    // IRS (~50%).
    if let (Some(b_srs), Some(b_irs)) = (
        grid.get(srs, SystemId::B),
        grid.get(MicroQuery::IndexedRangeSelection, SystemId::B),
    ) {
        let (m_srs, m_irs) = (b_srs.truth.four_way().memory, b_irs.truth.four_way().memory);
        claims.push(Claim::new(
            "5.1-b-irs-memory",
            "System B: memory share rises sharply from SRS (~20%) to IRS (~50%)",
            m_irs > m_srs * 1.8 && m_irs > 0.10,
            format!(
                "B memory share: SRS {:.1}%, IRS {:.1}%",
                m_srs * 100.0,
                m_irs * 100.0
            ),
        ));
    }

    // Fig 5.3: System A retires the fewest instructions per record on SRS.
    let a_instr = grid
        .get(srs, SystemId::A)
        .map(|c| c.instructions_per_record())
        .unwrap_or(0.0);
    let others_min = [SystemId::B, SystemId::C, SystemId::D]
        .iter()
        .filter_map(|s| grid.get(srs, *s))
        .map(|c| c.instructions_per_record())
        .fold(f64::INFINITY, f64::min);
    claims.push(Claim::new(
        "5.3-a-fewest-instructions",
        "System A retires the fewest instructions per record on SRS",
        a_instr > 0.0 && a_instr < others_min,
        format!("A: {a_instr:.0} vs others' min {others_min:.0}"),
    ));

    // §5: user-mode execution dominates (>85%) with the NT interrupt model.
    let min_user = cells
        .iter()
        .map(|c| c.rates.user_mode_frac)
        .fold(f64::INFINITY, f64::min);
    claims.push(Claim::new(
        "4.3-user-mode",
        "experiments execute >85% in user mode",
        min_user >= 0.85,
        format!("minimum user-mode share: {:.1}%", min_user * 100.0),
    ));

    claims
}

/// Validates the Fig 5.4 (right) trend: T_B and T_L1I grow with selectivity.
pub fn validate_selectivity(sweep: &SelectivitySweep) -> Vec<Claim> {
    let first = sweep.points.first();
    let last = sweep.points.last();
    let (Some(f), Some(l)) = (first, last) else {
        return vec![Claim::new(
            "5.4-selectivity",
            "sweep ran",
            false,
            "no points".into(),
        )];
    };
    vec![
        Claim::new(
            "5.4-tb-grows",
            "T_B share increases with selectivity (System D, SRS)",
            l.1 > f.1,
            format!("T_B share {:.1}% -> {:.1}%", f.1 * 100.0, l.1 * 100.0),
        ),
        Claim::new(
            "5.4-tl1i-follows",
            "T_L1I follows T_B's growth with selectivity",
            l.2 > f.2,
            format!("T_L1I share {:.1}% -> {:.1}%", f.2 * 100.0, l.2 * 100.0),
        ),
    ]
}

/// Validates the §5.2 record-size trends.
pub fn validate_record_size(sweep: &RecordSizeSweep) -> Vec<Claim> {
    let tl2d_monotone = sweep.points.windows(2).all(|w| w[1].1 >= w[0].1 * 0.95);
    let l1i_grows = sweep
        .points
        .first()
        .zip(sweep.points.last())
        .map(|(f, l)| l.2 > f.2)
        .unwrap_or(false);
    let growth = sweep.time_growth_factor();
    vec![
        Claim::new(
            "5.2.1-l2d-record-size",
            "T_L2D per record increases with record size",
            tl2d_monotone,
            format!(
                "T_L2D/record: {:?}",
                sweep
                    .points
                    .iter()
                    .map(|p| (p.0, p.1.round()))
                    .collect::<Vec<_>>()
            ),
        ),
        Claim::new(
            "5.2.2-l1i-record-size",
            "L1I misses per record increase with record size",
            l1i_grows,
            format!(
                "L1I misses/record at 20B {:.3} vs 200B {:.3}",
                sweep.points.first().map(|p| p.2).unwrap_or(0.0),
                sweep.points.last().map(|p| p.2).unwrap_or(0.0)
            ),
        ),
        Claim::new(
            "5.2.2-time-growth",
            "execution time per record grows 2.5-4x from 20B to 200B records",
            (1.8..=5.0).contains(&growth),
            format!("growth factor: {growth:.2}x"),
        ),
    ]
}

/// Validates the §5.5 DSS similarity claim.
pub fn validate_dss(cmp: &DssComparison) -> Vec<Claim> {
    let diff = cmp.max_share_difference();
    let mut claims = vec![Claim::new(
        "5.5-tpcd-similarity",
        "TPC-D breakdown is substantially similar to the simple query's",
        diff <= 0.20,
        format!("max component-share difference: {:.1} pp", diff * 100.0),
    )];
    // §5.5 / Fig 5.7: L1I stalls dominate the TPC-D cache stalls. Checked
    // in aggregate: our System A is leaner than any real engine and stays
    // L2D-bound on DSS (documented deviation in EXPERIMENTS.md).
    let l1i_shares: Vec<f64> = cmp
        .tpcd
        .iter()
        .map(|m| {
            let b = &m.truth;
            let cache = (b.tl1d + b.tl1i + b.tl2d + b.tl2i).max(1e-9);
            b.tl1i / cache
        })
        .collect();
    let l1i_dominant = l1i_shares.iter().sum::<f64>() / l1i_shares.len().max(1) as f64 >= 0.35;
    claims.push(Claim::new(
        "5.5-tpcd-l1i",
        "first-level instruction stalls dominate the TPC-D workload",
        l1i_dominant,
        cmp.tpcd
            .iter()
            .map(|m| {
                let b = &m.truth;
                let cache = (b.tl1d + b.tl1i + b.tl2d + b.tl2i).max(1e-9);
                format!(
                    "{}: L1I {:.0}% of cache stalls",
                    m.system.letter(),
                    b.tl1i / cache * 100.0
                )
            })
            .collect::<Vec<_>>()
            .join(", "),
    ));
    // Fig 5.6: CPI between 1.2 and 1.8 for both workloads (tolerance).
    let cpis: Vec<f64> = cmp
        .srs
        .iter()
        .map(|(_, b)| b.cpi())
        .chain(cmp.tpcd.iter().map(|m| m.truth.cpi()))
        .collect();
    let cpi_ok = cpis.iter().all(|c| (0.9..=2.2).contains(c));
    claims.push(Claim::new(
        "5.5-dss-cpi",
        "CPI is in the 1.2-1.8 band for SRS and TPC-D",
        cpi_ok,
        format!(
            "CPIs: {:?}",
            cpis.iter()
                .map(|c| (c * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        ),
    ));
    claims
}

/// Validates the §5.5 TPC-C contrast.
pub fn validate_tpcc(ms: &[TpccMeasurement]) -> Vec<Claim> {
    let cpi_ok = ms.iter().all(|m| (2.0..=5.0).contains(&m.truth.cpi()));
    let mem_ok = ms.iter().all(|m| {
        let f = m.truth.four_way().memory;
        (0.50..=0.85).contains(&f)
    });
    let l2_ok = ms.iter().all(|m| m.l2_share_of_memory() >= 0.40);
    vec![
        Claim::new(
            "5.5-tpcc-cpi",
            "TPC-C CPI is in the 2.5-4.5 band",
            cpi_ok,
            format!(
                "CPIs: {:?}",
                ms.iter()
                    .map(|m| (m.truth.cpi() * 100.0).round() / 100.0)
                    .collect::<Vec<_>>()
            ),
        ),
        Claim::new(
            "5.5-tpcc-memory",
            "TPC-C spends 60-80% of time in memory stalls",
            mem_ok,
            format!(
                "memory shares: {:?}",
                ms.iter()
                    .map(|m| format!("{:.0}%", m.truth.four_way().memory * 100.0))
                    .collect::<Vec<_>>()
            ),
        ),
        Claim::new(
            "5.5-tpcc-l2",
            "TPC-C memory stalls are dominated by L2 data+instruction stalls",
            l2_ok,
            format!(
                "L2 shares of T_M: {:?}",
                ms.iter()
                    .map(|m| format!("{:.0}%", m.l2_share_of_memory() * 100.0))
                    .collect::<Vec<_>>()
            ),
        ),
    ]
}

/// Renders claims as a report table.
pub fn render_claims(claims: &[Claim]) -> String {
    let mut t = crate::tables::TextTable::new(["claim", "pass", "observed"]);
    for c in claims {
        t.row([
            c.id.to_string(),
            if c.pass { "PASS" } else { "FAIL" }.into(),
            c.detail.clone(),
        ]);
    }
    let passed = claims.iter().filter(|c| c.pass).count();
    format!(
        "{}\n{} / {} claims hold\n",
        t.render(),
        passed,
        claims.len()
    )
}

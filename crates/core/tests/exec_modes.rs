//! End-to-end row-vs-batch comparison through the figure harness.

use wdtg_core::figures::{ExecModeComparison, FigureCtx};
use wdtg_core::methodology::{measure_query, Methodology};
use wdtg_memdb::{ExecMode, SystemId};
use wdtg_sim::CpuConfig;
use wdtg_workloads::{MicroQuery, Scale};

fn tiny_ctx() -> FigureCtx {
    FigureCtx {
        scale: Scale::tiny(),
        cfg: CpuConfig::pentium_ii_xeon(),
        methodology: Methodology::default(),
    }
}

#[test]
fn comparison_shows_instruction_collapse_on_srs() {
    let ctx = tiny_ctx();
    let cmp = ExecModeComparison::run(&ctx, MicroQuery::SequentialRangeSelection).unwrap();
    assert_eq!(cmp.pairs.len(), 4, "all systems run the SRS");
    for (row, batch) in &cmp.pairs {
        assert_eq!(row.rows, batch.rows, "{:?}: answers must agree", row.system);
        assert!(
            batch.instructions_per_record() < row.instructions_per_record() / 2.0,
            "{:?}: expected >=2x fewer instructions per record, got {} vs {}",
            row.system,
            row.instructions_per_record(),
            batch.instructions_per_record()
        );
        // Memory stalls survive batching, so their share of time grows
        // (System B exempt: its prefetch timeliness shifts with the faster
        // compute, so tiny-scale shares are noisy).
        if row.system != SystemId::B {
            assert!(
                batch.truth.four_way().memory >= row.truth.four_way().memory * 0.9,
                "{:?}: memory share should not collapse with batching",
                row.system
            );
        }
    }
    let rendered = cmp.render();
    assert!(rendered.contains("collapse"));
    assert!(cmp.collapse_factor(SystemId::C).unwrap() >= 2.0);
}

#[test]
fn batched_methodology_is_plumbed_through_measure_query() {
    let m = Methodology::default().batched();
    assert_eq!(m.exec_mode, ExecMode::Batch);
    let meas = measure_query(
        SystemId::A,
        MicroQuery::SequentialRangeSelection,
        0.1,
        Scale::tiny(),
        &CpuConfig::pentium_ii_xeon(),
        &m,
    )
    .unwrap();
    assert!(meas.rows > 0);
    assert!(meas.truth.cycles > 0.0);
}

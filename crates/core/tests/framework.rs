//! Unit-level tests of the framework pieces on synthetic data (no DBMS runs).

use wdtg_core::breakdown::{BreakdownSource, TimeBreakdown};
use wdtg_core::tables::{bar, pct, TextTable};

fn synthetic(tc: f64, tl1i: f64, tl2d: f64, tb: f64, tdep: f64) -> TimeBreakdown {
    let cycles = tc + tl1i + tl2d + tb + tdep;
    TimeBreakdown {
        tc,
        tl1d: 0.0,
        tl1i,
        tl2d,
        tl2i: 0.0,
        tdtlb: Some(0.0),
        titlb: 0.0,
        tb,
        tfu: 0.0,
        tdep,
        tild: 0.0,
        cycles,
        inst_retired: (tc * 1.5) as u64,
        source: BreakdownSource::GroundTruth,
    }
}

#[test]
fn four_way_shares_partition_unity() {
    let b = synthetic(500.0, 100.0, 200.0, 100.0, 100.0);
    let f = b.four_way();
    assert!((f.computation + f.memory + f.branch + f.resource - 1.0).abs() < 1e-12);
    assert!((f.computation - 0.5).abs() < 1e-12);
    assert!((f.memory - 0.3).abs() < 1e-12);
    assert!((b.stall_fraction() - 0.5).abs() < 1e-12);
}

#[test]
fn memory_shares_exclude_unmeasurable_dtlb() {
    let mut b = synthetic(10.0, 30.0, 70.0, 0.0, 0.0);
    b.tdtlb = None; // emon-style source
    let shares = b.memory_shares();
    assert!((shares[1] - 0.3).abs() < 1e-12);
    assert!((shares[2] - 0.7).abs() < 1e-12);
    assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
}

#[test]
fn cpi_four_way_scales_to_cpi() {
    let b = synthetic(300.0, 50.0, 50.0, 50.0, 50.0);
    let c = b.cpi_four_way();
    assert!((c.computation + c.memory + c.branch + c.resource - b.cpi()).abs() < 1e-9);
}

#[test]
fn zero_work_breakdown_is_safe() {
    let b = synthetic(0.0, 0.0, 0.0, 0.0, 0.0);
    assert_eq!(b.cpi(), 0.0);
    let f = b.four_way();
    assert!(f.computation.is_finite() && f.memory.is_finite());
}

#[test]
fn table_renderer_handles_empty_and_wide() {
    let empty = TextTable::new(["a"]);
    assert!(empty.is_empty());
    assert!(empty.render().contains("| a |"));
    let mut wide = TextTable::new(["x", "yyyyyyyyyy"]);
    wide.row(["long-cell-content", "s"]);
    let s = wide.render();
    assert!(s.contains("long-cell-content"));
    // All rows have equal width.
    let widths: Vec<usize> = s.lines().map(|l| l.len()).collect();
    assert!(widths.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn pct_and_bar_formatting() {
    assert_eq!(pct(0.5), "50.0%");
    assert_eq!(pct(0.0), "0.0%");
    assert_eq!(bar(0.0, 8), "........");
    assert_eq!(bar(1.0, 8), "########");
}

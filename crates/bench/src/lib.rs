//! # wdtg-bench — the experiment harness
//!
//! One binary per table/figure of the paper (run with
//! `cargo run --release -p wdtg-bench --bin <name>`; set `WDTG_SCALE=paper`
//! for full-size datasets) plus Criterion micro/macro benchmarks
//! (`cargo bench`). See DESIGN.md §4 for the experiment index.

#![warn(missing_docs)]

pub mod runners;

use wdtg_core::figures::FigureCtx;

/// Builds the default experiment context and prints its parameters.
pub fn ctx_with_banner(name: &str) -> FigureCtx {
    let ctx = FigureCtx::default_ctx();
    println!(
        "== {name} ==\nscale: R={} S={} record={}B (WDTG_SCALE={})\n",
        ctx.scale.r_records,
        ctx.scale.s_records,
        ctx.scale.record_bytes,
        std::env::var("WDTG_SCALE").unwrap_or_else(|_| "dev".into()),
    );
    ctx
}

//! Figure 5.4: branch misprediction rates (left) and the selectivity sweep
//! coupling T_B to T_L1I (right).

use wdtg_bench::ctx_with_banner;
use wdtg_core::figures::{MicrobenchGrid, SelectivitySweep};
use wdtg_core::validate::{render_claims, validate_selectivity};

fn main() {
    let ctx = ctx_with_banner("Figure 5.4 — branch behaviour");
    let grid = MicrobenchGrid::run(&ctx).expect("grid runs");
    println!("{}", grid.render_fig5_4_left());
    let sweep = SelectivitySweep::run(&ctx).expect("sweep runs");
    println!("{}", sweep.render());
    println!("{}", render_claims(&validate_selectivity(&sweep)));
}

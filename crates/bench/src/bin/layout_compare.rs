//! NSM-vs-PAX page-layout benchmark: simulated counters and per-layout
//! `T_M` breakdowns for a narrow-projection sequential scan (PAX's sweet
//! spot) and a full-row scan (where PAX must hold near-parity), written to
//! `BENCH_layout.json` (path overridable via `BENCH_LAYOUT_OUT`).
//!
//! The asserted claims are the acceptance behaviour of the layout work: a
//! scan projecting 2 of 25 columns must take strictly fewer simulated L2
//! data misses under PAX (it touches only the projected minipages' lines),
//! while a full-record scan — which gathers one field from every minipage —
//! must stay within a few percent of NSM. The measurement itself lives in
//! [`wdtg_bench::runners`], shared with the `bench_check` regression gate.

use wdtg_bench::runners::{run_layout_report, SCAN_RECORD_BYTES, SCAN_ROWS};

fn main() {
    println!(
        "== layout_compare == sequential range selection, {} rows x {} B",
        SCAN_ROWS, SCAN_RECORD_BYTES
    );
    let report = run_layout_report();

    for (name, nsm, pax) in [
        (
            "narrow (A, 2/25 cols)",
            &report.narrow_nsm,
            &report.narrow_pax,
        ),
        ("full-row (C)", &report.full_nsm, &report.full_pax),
    ] {
        println!(
            "{name:24} L2D misses: NSM {:7} vs PAX {:7} ({:.2}x) | T_M share: {:.0}% vs {:.0}% | cyc/tuple {:.0} vs {:.0}",
            nsm.l2_data_misses,
            pax.l2_data_misses,
            nsm.l2_data_misses as f64 / pax.l2_data_misses.max(1) as f64,
            100.0 * nsm.truth.tm() / nsm.truth.cycles.max(1e-9),
            100.0 * pax.truth.tm() / pax.truth.cycles.max(1e-9),
            nsm.cycles_per_tuple,
            pax.cycles_per_tuple,
        );
    }

    let out = std::env::var("BENCH_LAYOUT_OUT").unwrap_or_else(|_| "BENCH_layout.json".into());
    std::fs::write(&out, report.to_json()).expect("write BENCH_layout.json");
    println!("wrote {out}");

    // The acceptance claims.
    assert!(
        report.narrow_pax.l2_data_misses < report.narrow_nsm.l2_data_misses,
        "PAX must cut L2 data misses on a narrow projection: NSM {} vs PAX {}",
        report.narrow_nsm.l2_data_misses,
        report.narrow_pax.l2_data_misses
    );
    assert!(
        report.narrow_pax.truth.tm() / report.narrow_pax.truth.cycles.max(1e-9)
            < report.narrow_nsm.truth.tm() / report.narrow_nsm.truth.cycles.max(1e-9),
        "PAX must lower the memory-stall share on a narrow projection"
    );
    let full_ratio = report.full_row_miss_ratio();
    assert!(
        (0.8..=1.2).contains(&full_ratio),
        "full-row scans must stay near parity across layouts (PAX/NSM = {full_ratio:.3})"
    );
}

//! NSM-vs-PAX page-layout benchmark: simulated counters and per-layout
//! `T_M` breakdowns for a narrow-projection sequential scan (PAX's sweet
//! spot) and a full-row scan (where PAX must hold near-parity), written to
//! `BENCH_layout.json` (path overridable via `BENCH_LAYOUT_OUT`).
//!
//! The asserted claims are the acceptance behaviour of the layout work: a
//! scan projecting 2 of 25 columns must take strictly fewer simulated L2
//! data misses under PAX (it touches only the projected minipages' lines),
//! while a full-record scan — which gathers one field from every minipage —
//! must stay within a few percent of NSM.

use wdtg_core::TimeBreakdown;
use wdtg_memdb::{Database, EngineProfile, PageLayout, Query, Schema, SystemId};
use wdtg_sim::{CpuConfig, Event, InterruptCfg, Mode};

const ROWS: u64 = 100_000;
const RECORD_BYTES: u32 = 100;

fn build_db(sys: SystemId, layout: PageLayout) -> Database {
    let mut db = Database::new(
        EngineProfile::system(sys),
        CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled()),
    )
    .with_page_layout(layout);
    db.ctx.instrument = false;
    db.create_table("R", Schema::paper_relation(RECORD_BYTES))
        .unwrap();
    let ncols = (RECORD_BYTES / 4) as usize;
    db.load_rows(
        "R",
        (0..ROWS).map(|i| {
            let mut r = vec![0i32; ncols];
            let x = i.wrapping_mul(0x9e37_79b9);
            r[0] = i as i32;
            r[1] = (x % 2_000) as i32 + 1;
            r[2] = (x % 10_000) as i32;
            r
        }),
    )
    .unwrap();
    db.ctx.instrument = true;
    db
}

struct LayoutResult {
    rows: u64,
    l2_data_misses: u64,
    cycles_per_tuple: f64,
    truth: TimeBreakdown,
}

fn measure(sys: SystemId, layout: PageLayout) -> LayoutResult {
    let mut db = build_db(sys, layout);
    // The paper's 10% selectivity band on a 1..=2000 domain; the scan
    // projects a2 (predicate) and a3 (aggregate) — 2 of 25 columns.
    let q = Query::range_select_avg("R", 900, 1101);
    let rows = db.run(&q).unwrap().rows; // warm caches/TLB/BTB
    let before = db.cpu().snapshot();
    db.run(&q).unwrap();
    let delta = db.cpu().snapshot().delta(&before);
    LayoutResult {
        rows,
        l2_data_misses: delta.counters.total(Event::SimL2DataMiss),
        cycles_per_tuple: delta.cycles / ROWS as f64,
        truth: TimeBreakdown::from_snapshot(&delta, Mode::User),
    }
}

fn tm_json(t: &TimeBreakdown) -> String {
    let total = t.cycles.max(1e-9);
    format!(
        "{{ \"t_m_share\": {:.4}, \"t_l1d_share\": {:.4}, \"t_l1i_share\": {:.4}, \
         \"t_l2d_share\": {:.4}, \"t_l2i_share\": {:.4}, \"t_dtlb_share\": {:.4}, \
         \"t_itlb_share\": {:.4} }}",
        t.tm() / total,
        t.tl1d / total,
        t.tl1i / total,
        t.tl2d / total,
        t.tl2i / total,
        t.tdtlb.unwrap_or(0.0) / total,
        t.titlb / total,
    )
}

fn scenario_json(name: &str, sys: SystemId, nsm: &LayoutResult, pax: &LayoutResult) -> String {
    format!(
        "  \"{name}\": {{\n    \"system\": \"{}\",\n    \"selected_rows\": {},\n    \
         \"nsm\": {{ \"l2_data_misses\": {}, \"cycles_per_tuple\": {:.1}, \"memory\": {} }},\n    \
         \"pax\": {{ \"l2_data_misses\": {}, \"cycles_per_tuple\": {:.1}, \"memory\": {} }},\n    \
         \"l2d_miss_reduction\": {:.3},\n    \"simulated_speedup\": {:.3}\n  }}",
        sys.letter(),
        nsm.rows,
        nsm.l2_data_misses,
        nsm.cycles_per_tuple,
        tm_json(&nsm.truth),
        pax.l2_data_misses,
        pax.cycles_per_tuple,
        tm_json(&pax.truth),
        nsm.l2_data_misses as f64 / pax.l2_data_misses.max(1) as f64,
        nsm.cycles_per_tuple / pax.cycles_per_tuple.max(1e-9),
    )
}

fn main() {
    println!(
        "== layout_compare == sequential range selection, {} rows x {} B",
        ROWS, RECORD_BYTES
    );

    // Narrow projection on a fields-only engine (System A): PAX's sweet
    // spot — only the a2/a3 minipages' lines are pulled.
    let narrow_nsm = measure(SystemId::A, PageLayout::Nsm);
    let narrow_pax = measure(SystemId::A, PageLayout::Pax);
    assert_eq!(narrow_nsm.rows, narrow_pax.rows, "layouts must agree");

    // Full-record engine (System C): every minipage is gathered per record,
    // so PAX touches the same lines NSM does — near-parity.
    let full_nsm = measure(SystemId::C, PageLayout::Nsm);
    let full_pax = measure(SystemId::C, PageLayout::Pax);
    assert_eq!(full_nsm.rows, full_pax.rows, "layouts must agree");

    for (name, nsm, pax) in [
        ("narrow (A, 2/25 cols)", &narrow_nsm, &narrow_pax),
        ("full-row (C)", &full_nsm, &full_pax),
    ] {
        println!(
            "{name:24} L2D misses: NSM {:7} vs PAX {:7} ({:.2}x) | T_M share: {:.0}% vs {:.0}% | cyc/tuple {:.0} vs {:.0}",
            nsm.l2_data_misses,
            pax.l2_data_misses,
            nsm.l2_data_misses as f64 / pax.l2_data_misses.max(1) as f64,
            100.0 * nsm.truth.tm() / nsm.truth.cycles.max(1e-9),
            100.0 * pax.truth.tm() / pax.truth.cycles.max(1e-9),
            nsm.cycles_per_tuple,
            pax.cycles_per_tuple,
        );
    }

    let json = format!(
        "{{\n  \"benchmark\": \"page_layout_comparison\",\n  \"rows\": {ROWS},\n  \
         \"record_bytes\": {RECORD_BYTES},\n{},\n{}\n}}\n",
        scenario_json(
            "narrow_projection_scan",
            SystemId::A,
            &narrow_nsm,
            &narrow_pax
        ),
        scenario_json("full_row_scan", SystemId::C, &full_nsm, &full_pax),
    );
    let out = std::env::var("BENCH_LAYOUT_OUT").unwrap_or_else(|_| "BENCH_layout.json".into());
    std::fs::write(&out, json).expect("write BENCH_layout.json");
    println!("wrote {out}");

    // The acceptance claims.
    assert!(
        narrow_pax.l2_data_misses < narrow_nsm.l2_data_misses,
        "PAX must cut L2 data misses on a narrow projection: NSM {} vs PAX {}",
        narrow_nsm.l2_data_misses,
        narrow_pax.l2_data_misses
    );
    assert!(
        narrow_pax.truth.tm() / narrow_pax.truth.cycles.max(1e-9)
            < narrow_nsm.truth.tm() / narrow_nsm.truth.cycles.max(1e-9),
        "PAX must lower the memory-stall share on a narrow projection"
    );
    let full_ratio = full_pax.l2_data_misses as f64 / full_nsm.l2_data_misses.max(1) as f64;
    assert!(
        (0.8..=1.2).contains(&full_ratio),
        "full-row scans must stay near parity across layouts (PAX/NSM = {full_ratio:.3})"
    );
}

//! OLTP at service scale: the TPC-C-like mix issued by concurrent clients
//! under snapshot-isolation transactions, across a tier of node replicas.
//! Reports committed throughput (simulated TPS), p50/p99 transaction
//! latency, conflict/retry counts, and the safety headlines: zero oracle
//! mismatches, zero serialization anomalies, and bit-identical WAL crash
//! recovery on every node. Written to `BENCH_oltp.json` (path overridable
//! via `BENCH_OLTP_OUT`).
//!
//! The measurement lives in [`wdtg_bench::runners`], shared with the
//! `bench_check` gate. Everything gated is simulated, so the numbers are
//! bit-identical on every host; `host_tps` is informational.

use wdtg_bench::runners::run_oltp_report;

fn main() {
    let bench = run_oltp_report();
    let r = &bench.report;
    println!(
        "== oltp_bench == {} clients over {} nodes, {} txns/client, scale {} items",
        r.clients, r.nodes, bench.cfg.txns_per_client, bench.cfg.scale.items
    );
    println!(
        "committed {} (NO {} / P {} / OS {} / D {} / SL {}), conflicts {}, abandoned {}",
        r.committed,
        r.per_kind[0],
        r.per_kind[1],
        r.per_kind[2],
        r.per_kind[3],
        r.per_kind[4],
        r.conflicts,
        r.retries_exhausted,
    );
    println!(
        "sim TPS {:.1}, latency p50 {:.3} ms / p99 {:.3} ms (host TPS {:.0})",
        r.sim_tps, r.p50_ms, r.p99_ms, r.host_tps
    );
    println!(
        "safety: wrong answers {}, anomalies {}, WAL recovery ok {}, {} WAL records",
        r.wrong_answers, r.anomalies, r.recovery_ok, r.wal_records
    );

    let out = std::env::var("BENCH_OLTP_OUT").unwrap_or_else(|_| "BENCH_oltp.json".into());
    std::fs::write(&out, bench.to_json()).expect("write BENCH_oltp.json");
    println!("wrote {out}");

    assert_eq!(
        r.wrong_answers, 0,
        "oracle mismatch: a committed effect was lost"
    );
    assert_eq!(
        r.anomalies, 0,
        "serialization anomaly under snapshot isolation"
    );
    assert!(
        r.recovery_ok,
        "WAL replay failed to reproduce a node bit-for-bit"
    );
    assert!(
        r.committed > 0 && r.sim_tps > 0.0,
        "benchmark committed no transactions"
    );
}

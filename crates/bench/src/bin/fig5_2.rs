//! Figure 5.2: memory stall time breakdown into its five components.

use wdtg_bench::ctx_with_banner;
use wdtg_core::figures::MicrobenchGrid;

fn main() {
    let ctx = ctx_with_banner("Figure 5.2 — memory stall breakdown");
    let grid = MicrobenchGrid::run(&ctx).expect("grid runs");
    println!("{}", grid.render_fig5_2());
}

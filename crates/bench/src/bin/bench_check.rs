//! CI bench-regression gate: re-runs the four headline bench measurements
//! (`exec_mode`, `layout_compare`, `join_compare`, `branch_compare` — via
//! the shared [`wdtg_bench::runners`] code, so the gate cannot drift from
//! the bins) and fails if any headline metric regresses more than 15%
//! versus the committed `BENCH_*.json` baselines at the repository root
//! (directory overridable via `BENCH_BASELINE_DIR`).
//!
//! Gated metrics — all simulated, so the gate is deterministic and immune
//! to CI-runner wall-clock noise:
//!
//! * `instr_collapse` (BENCH_exec.json) — the row→batch per-tuple
//!   instruction collapse;
//! * `l2d_miss_reduction` of the narrow projection (BENCH_layout.json) —
//!   PAX's L2 data-miss win;
//! * `l2d_miss_reduction_row` and `join_speedup_batch` (BENCH_join.json) —
//!   the partitioned join's miss win and its batch-mode cycle speedup;
//! * `tb_peak_reduction_batch` (BENCH_branch.json) — predication's cut of
//!   the peak branch-misprediction stall share.

use wdtg_bench::runners::{
    json_number, run_branch_report, run_exec_report, run_join_report, run_layout_report,
};

/// Fractional regression tolerated before the gate fails.
const TOLERANCE: f64 = 0.15;

struct Gate {
    name: &'static str,
    baseline: f64,
    current: f64,
}

impl Gate {
    /// Higher-is-better metrics regress when current < baseline × (1 − tol).
    fn regressed(&self) -> bool {
        self.current < self.baseline * (1.0 - TOLERANCE)
    }
}

fn read_baseline(dir: &str, file: &str) -> String {
    let path = format!("{dir}/{file}");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("baseline {path} must be committed: {e}"))
}

fn baseline_metric(doc: &str, file: &str, scope: Option<&str>, key: &str) -> f64 {
    json_number(doc, scope, key)
        .unwrap_or_else(|| panic!("baseline {file} has no {key} (scope {scope:?})"))
}

fn main() {
    let dir = std::env::var("BENCH_BASELINE_DIR").unwrap_or_else(|_| ".".into());
    let exec_doc = read_baseline(&dir, "BENCH_exec.json");
    let layout_doc = read_baseline(&dir, "BENCH_layout.json");
    let join_doc = read_baseline(&dir, "BENCH_join.json");
    let branch_doc = read_baseline(&dir, "BENCH_branch.json");

    println!("== bench_check == re-running headline benches against {dir}/BENCH_*.json");
    let exec = run_exec_report();
    let layout = run_layout_report();
    let join = run_join_report();
    let branch = run_branch_report();

    let gates = [
        Gate {
            name: "exec: instr_collapse",
            baseline: baseline_metric(&exec_doc, "BENCH_exec.json", None, "instr_collapse"),
            current: exec.instr_collapse(),
        },
        Gate {
            name: "layout: narrow l2d_miss_reduction",
            baseline: baseline_metric(
                &layout_doc,
                "BENCH_layout.json",
                Some("\"narrow_projection_scan\""),
                "l2d_miss_reduction",
            ),
            current: layout.narrow_l2d_miss_reduction(),
        },
        Gate {
            name: "join: l2d_miss_reduction_row",
            baseline: baseline_metric(&join_doc, "BENCH_join.json", None, "l2d_miss_reduction_row"),
            current: join.l2d_miss_reduction_row(),
        },
        Gate {
            name: "join: join_speedup_batch",
            baseline: baseline_metric(&join_doc, "BENCH_join.json", None, "join_speedup_batch"),
            current: join.join_speedup_batch(),
        },
        Gate {
            name: "branch: tb_peak_reduction_batch",
            baseline: baseline_metric(
                &branch_doc,
                "BENCH_branch.json",
                None,
                "tb_peak_reduction_batch",
            ),
            current: branch.tb_peak_reduction_batch(),
        },
    ];

    let mut failed = false;
    for g in &gates {
        let status = if g.regressed() {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{:38} baseline {:7.3}  current {:7.3}  ({:+.1}%)  {status}",
            g.name,
            g.baseline,
            g.current,
            100.0 * (g.current / g.baseline.max(1e-9) - 1.0),
        );
    }
    if failed {
        eprintln!(
            "bench_check: headline metric(s) regressed >{:.0}% vs committed baselines; \
             if the regression is intended, regenerate BENCH_*.json with the bench bins \
             and commit the new baselines",
            TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "bench_check: all headline metrics within {:.0}% of baselines",
        TOLERANCE * 100.0
    );
}

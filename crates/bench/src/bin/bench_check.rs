//! CI bench-regression gate: re-runs the eight headline bench measurements
//! (`exec_mode`, `layout_compare`, `join_compare`, `branch_compare`,
//! `scale_compare`, `chaos_sweep`, `planner_compare`, `oltp_bench` — via
//! the shared [`wdtg_bench::runners`] code, so the gate cannot drift from
//! the bins)
//! and fails if any headline metric regresses more than 15% versus the
//! committed `BENCH_*.json` baselines at the repository root (directory
//! overridable via `BENCH_BASELINE_DIR`).
//!
//! Gated metrics — all simulated, so the gate is deterministic and immune
//! to CI-runner wall-clock noise:
//!
//! * `instr_collapse` (BENCH_exec.json) — the row→batch per-tuple
//!   instruction collapse;
//! * `l2d_miss_reduction` of the narrow projection (BENCH_layout.json) —
//!   PAX's L2 data-miss win;
//! * `l2d_miss_reduction_row` and `join_speedup_batch` (BENCH_join.json) —
//!   the partitioned join's miss win and its batch-mode cycle speedup;
//! * `tb_peak_reduction_batch` (BENCH_branch.json) — predication's cut of
//!   the peak branch-misprediction stall share;
//! * `speedup_4shard` (BENCH_scale.json) — the 4-shard wall-clock speedup
//!   of the sharded scan;
//! * `recovery_rate` (BENCH_chaos.json) — the fraction of fault-hit runs
//!   the engine absorbed via retry or downgrade. Two *absolute* robustness
//!   limits ride along: `wrong_answers` must be 0 and
//!   `guardrail_overhead_pct` must stay under 2% in the fresh run;
//! * `planner_win_rate` (BENCH_planner.json) — how often the SQL planner's
//!   pilot-simulated pick is the exhaustive winner. Three *absolute*
//!   accuracy limits ride along: worst regret ≤ 1.10x, and the planner
//!   must rediscover predication at the deep-pipeline 50%-selectivity peak
//!   and the partitioned join past the L2 crossover;
//! * `sim_tps` (BENCH_oltp.json) — committed transaction throughput of the
//!   concurrent snapshot-isolation OLTP mix. Three *absolute* transaction
//!   safety limits ride along: `wrong_answers` and `anomalies` must be 0
//!   and WAL crash recovery must reproduce every node bit-for-bit.
//!
//! One *host-clock* floor rides along with the scale gate: on hosts with
//! at least 4 cores, the OS-thread morsel executor's fresh
//! `host_speedup_4shard` must reach 2.5× (skipped by name on smaller
//! hosts — host seconds are machine-local and are never compared against
//! committed baselines).
//!
//! A missing baseline file or key is a configuration error, not a bench
//! regression: the gate reports exactly which file/key it expected (and
//! which bin regenerates it) and exits nonzero *before* burning CI minutes
//! re-running the benches. It used to `panic!` here, which buried the
//! actionable message under a backtrace.

use wdtg_bench::runners::{
    host_parallelism, json_number, run_branch_report, run_chaos_report, run_exec_report,
    run_join_report, run_layout_report, run_oltp_report, run_planner_report, run_scale_report,
};

/// Fractional regression tolerated before the gate fails.
const TOLERANCE: f64 = 0.15;

/// Hard ceiling on the simulated-cycle cost of armed guardrails.
const MAX_GUARDRAIL_OVERHEAD_PCT: f64 = 2.0;

/// Host wall-clock speedup the 4-shard threaded run must reach over the
/// 1-worker run — enforced only on hosts with >= 4 cores (the floor is
/// meaningless on a 1- or 2-core runner, where the skip is reported by
/// name). Absolute, not baseline-relative: host seconds are machine-local
/// and must never be compared across baselines.
const MIN_HOST_SPEEDUP_4SHARD: f64 = 2.5;

/// The baseline documents the gate needs, each with the bin that
/// regenerates it.
const BASELINES: [(&str, &str); 8] = [
    ("BENCH_exec.json", "exec_mode"),
    ("BENCH_layout.json", "layout_compare"),
    ("BENCH_join.json", "join_compare"),
    ("BENCH_branch.json", "branch_compare"),
    ("BENCH_scale.json", "scale_compare"),
    ("BENCH_chaos.json", "chaos_sweep"),
    ("BENCH_planner.json", "planner_compare"),
    ("BENCH_oltp.json", "oltp_bench"),
];

/// Hard ceiling on the planner's worst regret: its pick must stay within
/// 10% of the exhaustive-best simulated T_Q in every scenario. Absolute,
/// not baseline-relative — this is the frontend's accuracy contract.
const MAX_PLANNER_REGRET: f64 = 1.10;

struct Gate {
    name: &'static str,
    baseline: f64,
    current: f64,
}

impl Gate {
    /// Higher-is-better metrics regress when current < baseline × (1 − tol).
    fn regressed(&self) -> bool {
        self.current < self.baseline * (1.0 - TOLERANCE)
    }
}

/// Prints every collected problem plus the how-to-fix footer and exits 1.
fn bail(dir: &str, problems: &[String]) -> ! {
    for p in problems {
        eprintln!("bench_check: {p}");
    }
    let files: Vec<&str> = BASELINES.iter().map(|(f, _)| *f).collect();
    let bins: Vec<&str> = BASELINES.iter().map(|(_, b)| *b).collect();
    eprintln!(
        "bench_check: expected committed baselines {} in '{dir}' \
         (override the directory with BENCH_BASELINE_DIR); regenerate any \
         missing file with its bench bin ({}) and commit the result",
        files.join(", "),
        bins.join(", "),
    );
    std::process::exit(1);
}

fn main() {
    let dir = std::env::var("BENCH_BASELINE_DIR").unwrap_or_else(|_| ".".into());

    // Read every baseline up front, collecting *all* problems so one CI run
    // reports the complete fix.
    let mut problems: Vec<String> = Vec::new();
    let mut docs: Vec<String> = Vec::new();
    for (file, bin) in BASELINES {
        let path = format!("{dir}/{file}");
        match std::fs::read_to_string(&path) {
            Ok(doc) => docs.push(doc),
            Err(e) => {
                problems.push(format!(
                    "missing baseline {path}: {e} (regenerate with `cargo run --release \
                     -p wdtg-bench --bin {bin}` and commit {file})"
                ));
                docs.push(String::new());
            }
        }
    }
    if !problems.is_empty() {
        bail(&dir, &problems);
    }
    let [exec_doc, layout_doc, join_doc, branch_doc, scale_doc, chaos_doc, planner_doc, oltp_doc]:
        [String; 8] = docs.try_into().expect("one doc per baseline");

    // Each baseline is bound by name right next to its (file, key), so a
    // gate can only ever read the metric it names — there is no positional
    // array to fall out of step with the gate list below.
    let mut metric = |doc: &str, file: &str, scope: Option<&str>, key: &str| -> f64 {
        json_number(doc, scope, key).unwrap_or_else(|| {
            problems.push(format!(
                "baseline {dir}/{file} has no \"{key}\" key (scope {scope:?}); the file \
                 predates this gate — regenerate it with its bench bin"
            ));
            f64::NAN
        })
    };
    let base_instr_collapse = metric(&exec_doc, "BENCH_exec.json", None, "instr_collapse");
    let base_layout_miss_reduction = metric(
        &layout_doc,
        "BENCH_layout.json",
        Some("\"narrow_projection_scan\""),
        "l2d_miss_reduction",
    );
    let base_join_miss_reduction =
        metric(&join_doc, "BENCH_join.json", None, "l2d_miss_reduction_row");
    let base_join_speedup = metric(&join_doc, "BENCH_join.json", None, "join_speedup_batch");
    let base_tb_peak_reduction = metric(
        &branch_doc,
        "BENCH_branch.json",
        None,
        "tb_peak_reduction_batch",
    );
    let base_scale_speedup = metric(&scale_doc, "BENCH_scale.json", None, "speedup_4shard");
    let base_recovery_rate = metric(&chaos_doc, "BENCH_chaos.json", None, "recovery_rate");
    let base_planner_win_rate =
        metric(&planner_doc, "BENCH_planner.json", None, "planner_win_rate");
    let base_oltp_sim_tps = metric(&oltp_doc, "BENCH_oltp.json", Some("\"oltp\""), "sim_tps");
    if !problems.is_empty() {
        bail(&dir, &problems);
    }

    println!("== bench_check == re-running headline benches against {dir}/BENCH_*.json");
    let exec = run_exec_report();
    let layout = run_layout_report();
    let join = run_join_report();
    let branch = run_branch_report();
    let scale = run_scale_report();
    let chaos = run_chaos_report();
    let planner = run_planner_report();
    let oltp = run_oltp_report();

    let gates = [
        Gate {
            name: "exec: instr_collapse",
            baseline: base_instr_collapse,
            current: exec.instr_collapse(),
        },
        Gate {
            name: "layout: narrow l2d_miss_reduction",
            baseline: base_layout_miss_reduction,
            current: layout.narrow_l2d_miss_reduction(),
        },
        Gate {
            name: "join: l2d_miss_reduction_row",
            baseline: base_join_miss_reduction,
            current: join.l2d_miss_reduction_row(),
        },
        Gate {
            name: "join: join_speedup_batch",
            baseline: base_join_speedup,
            current: join.join_speedup_batch(),
        },
        Gate {
            name: "branch: tb_peak_reduction_batch",
            baseline: base_tb_peak_reduction,
            current: branch.tb_peak_reduction_batch(),
        },
        Gate {
            name: "scale: speedup_4shard",
            baseline: base_scale_speedup,
            current: scale.speedup_4shard(),
        },
        Gate {
            name: "chaos: recovery_rate",
            baseline: base_recovery_rate,
            current: chaos.recovery_rate(),
        },
        Gate {
            name: "planner: planner_win_rate",
            baseline: base_planner_win_rate,
            current: planner.planner_win_rate(),
        },
        Gate {
            name: "oltp: sim_tps",
            baseline: base_oltp_sim_tps,
            current: oltp.sim_tps(),
        },
    ];

    let mut failed = false;
    for g in &gates {
        let status = if g.regressed() {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{:38} baseline {:7.3}  current {:7.3}  ({:+.1}%)  {status}",
            g.name,
            g.baseline,
            g.current,
            100.0 * (g.current / g.baseline.max(1e-9) - 1.0),
        );
    }
    // Absolute robustness limits on the fresh chaos run — these are safety
    // contracts, not tunable baselines, so no tolerance applies.
    let wrong = chaos.wrong_answers();
    let overhead = chaos.guardrail_overhead_pct();
    println!(
        "{:38} wrong_answers {wrong} (must be 0), guardrail overhead {overhead:.4}% \
         (limit {MAX_GUARDRAIL_OVERHEAD_PCT:.1}%), downgrade ok {}",
        "chaos: absolute limits", chaos.downgrade_answer_ok,
    );
    if wrong != 0 {
        eprintln!("bench_check: chaos produced {wrong} silently wrong answer(s)");
        failed = true;
    }
    if overhead >= MAX_GUARDRAIL_OVERHEAD_PCT {
        eprintln!(
            "bench_check: armed guardrails cost {overhead:.3}% simulated cycles \
             (limit {MAX_GUARDRAIL_OVERHEAD_PCT:.1}%)"
        );
        failed = true;
    }
    if !chaos.downgrade_answer_ok {
        eprintln!("bench_check: budget-pressured join failed to degrade with the same answer");
        failed = true;
    }
    // Absolute planner-accuracy limits on the fresh run: the pilot-costed
    // pick must stay within 10% of the exhaustive best everywhere, and both
    // headline rediscoveries (predication at the deep-pipeline misprediction
    // peak, the partitioned join past the L2 crossover) must hold.
    let regret = planner.max_ratio();
    println!(
        "{:38} max_regret {regret:.3}x (limit {MAX_PLANNER_REGRET:.2}x), \
         predicated@50% {}, partitioned@large {}",
        "planner: absolute limits",
        planner.predicated_chosen_at_50(),
        planner.partitioned_chosen_large(),
    );
    if regret > MAX_PLANNER_REGRET {
        eprintln!(
            "bench_check: planner's worst pick is {regret:.3}x the exhaustive best \
             (limit {MAX_PLANNER_REGRET:.2}x)"
        );
        failed = true;
    }
    if !planner.predicated_chosen_at_50() {
        eprintln!(
            "bench_check: planner failed to choose predication at the deep-pipeline \
             50%-selectivity misprediction peak"
        );
        failed = true;
    }
    if !planner.partitioned_chosen_large() {
        eprintln!(
            "bench_check: planner failed to choose the partitioned join past the L2 crossover"
        );
        failed = true;
    }
    // Absolute transaction-safety limits on the fresh OLTP run: snapshot
    // isolation must produce zero oracle mismatches and zero serialization
    // anomalies, and WAL replay must reproduce every node bit-for-bit.
    // These are correctness contracts, not tunable baselines.
    let oltp_r = &oltp.report;
    println!(
        "{:38} wrong_answers {} (must be 0), anomalies {} (must be 0), recovery ok {}",
        "oltp: absolute limits", oltp_r.wrong_answers, oltp_r.anomalies, oltp_r.recovery_ok,
    );
    if oltp_r.wrong_answers != 0 {
        eprintln!(
            "bench_check: OLTP oracle found {} committed effect(s) missing or wrong",
            oltp_r.wrong_answers
        );
        failed = true;
    }
    if oltp_r.anomalies != 0 {
        eprintln!(
            "bench_check: OLTP run produced {} serialization anomaly(ies)",
            oltp_r.anomalies
        );
        failed = true;
    }
    if !oltp_r.recovery_ok {
        eprintln!("bench_check: WAL replay failed to reproduce a node bit-for-bit");
        failed = true;
    }
    // Absolute host-parallelism floor on the fresh scale run: with >= 4
    // host cores, 4 simulated shards under the OS-thread executor must cut
    // real wall time >= 2.5x. Host seconds are machine-local, so this gate
    // is absolute and never compared against a committed baseline.
    let host_cores = host_parallelism();
    let host_sp4 = scale.host_speedup_4shard();
    if host_cores >= 4 {
        println!(
            "{:38} host_speedup_4shard {host_sp4:.2}x (floor {MIN_HOST_SPEEDUP_4SHARD:.1}x, \
             {host_cores} host cores)",
            "scale: host parallelism",
        );
        if host_sp4 < MIN_HOST_SPEEDUP_4SHARD {
            eprintln!(
                "bench_check: host_speedup_4shard {host_sp4:.2}x is below the \
                 {MIN_HOST_SPEEDUP_4SHARD:.1}x floor on a {host_cores}-core host"
            );
            failed = true;
        }
    } else {
        println!(
            "{:38} SKIPPED: host has {host_cores} core(s), floor needs >= 4 \
             (measured {host_sp4:.2}x, recorded in BENCH_scale.json)",
            "scale: host parallelism",
        );
    }

    if failed {
        eprintln!(
            "bench_check: headline metric(s) regressed >{:.0}% vs committed baselines \
             (or an absolute robustness limit was broken); if the regression is \
             intended, regenerate BENCH_*.json with the bench bins and commit the \
             new baselines",
            TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "bench_check: all headline metrics within {:.0}% of baselines",
        TOLERANCE * 100.0
    );
}

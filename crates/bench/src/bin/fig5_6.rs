//! Figure 5.6: CPI breakdown, sequential range selection vs TPC-D.

use wdtg_bench::ctx_with_banner;
use wdtg_core::dss::DssComparison;
use wdtg_core::validate::{render_claims, validate_dss};
use wdtg_workloads::TpcdScale;

fn main() {
    let ctx = ctx_with_banner("Figure 5.6 — CPI: SRS vs TPC-D");
    let cmp = DssComparison::run(&ctx, TpcdScale::from_env()).expect("comparison runs");
    println!("{}", cmp.render_fig5_6());
    println!("{}", render_claims(&validate_dss(&cmp)));
}

//! §5.2: record-size sweep — T_L2D and L1I misses grow with record size;
//! execution time per record grows 2.5-4x from 20B to 200B.

use wdtg_bench::ctx_with_banner;
use wdtg_core::figures::RecordSizeSweep;
use wdtg_core::validate::{render_claims, validate_record_size};
use wdtg_memdb::SystemId;

fn main() {
    let ctx = ctx_with_banner("§5.2 — record size sweep");
    for sys in SystemId::ALL {
        let sweep = RecordSizeSweep::run(&ctx, sys).expect("sweep runs");
        println!("{}", sweep.render());
        if sys == SystemId::D {
            println!("{}", render_claims(&validate_record_size(&sweep)));
        }
    }
}

//! Figure 5.3: instructions retired per record.

use wdtg_bench::ctx_with_banner;
use wdtg_core::figures::MicrobenchGrid;

fn main() {
    let ctx = ctx_with_banner("Figure 5.3 — instructions retired per record");
    let grid = MicrobenchGrid::run(&ctx).expect("grid runs");
    println!("{}", grid.render_fig5_3());
}

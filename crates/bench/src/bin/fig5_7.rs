//! Figure 5.7: cache-related stall breakdown, SRS vs TPC-D.

use wdtg_bench::ctx_with_banner;
use wdtg_core::dss::DssComparison;
use wdtg_workloads::TpcdScale;

fn main() {
    let ctx = ctx_with_banner("Figure 5.7 — cache stalls: SRS vs TPC-D");
    let cmp = DssComparison::run(&ctx, TpcdScale::from_env()).expect("comparison runs");
    println!("{}", cmp.render_fig5_7());
}

//! Planner validation: plans each scenario's SQL through the frontend's
//! pilot-simulated cost model ([`wdtg_memdb::Session::explain`]), then
//! measures **every** enumerated physical candidate for real and scores the
//! planner's pick against the exhaustive winner. Written to
//! `BENCH_planner.json` (path overridable via `BENCH_PLANNER_OUT`).
//!
//! The grid brackets the paper's two headline physical-design trade-offs —
//! predication's win at the 50%-selectivity misprediction peak (§5.3, on a
//! deep-pipeline variant per §6) and the partitioned hash join's L2
//! crossover — so the headline booleans assert the planner rediscovers both
//! from simulated stall terms alone. The measurement lives in
//! [`wdtg_bench::runners`], shared with the `bench_check` gate.

use wdtg_bench::runners::{
    run_planner_report, PLANNER_JOIN_BUILDS, PLANNER_L2_BYTES, PLANNER_SCAN_ROWS,
};

fn main() {
    println!(
        "== planner_compare == {} scan rows, joins at builds {:?}, L2 {} KB",
        PLANNER_SCAN_ROWS,
        PLANNER_JOIN_BUILDS,
        PLANNER_L2_BYTES / 1024,
    );
    let report = run_planner_report();
    print!("{}", report.cmp.render());

    let out = std::env::var("BENCH_PLANNER_OUT").unwrap_or_else(|_| "BENCH_planner.json".into());
    std::fs::write(&out, report.to_json()).expect("write BENCH_planner.json");
    println!("wrote {out}");

    assert!(
        report.predicated_chosen_at_50(),
        "planner must choose predication at the deep-pipeline misprediction peak"
    );
    assert!(
        report.partitioned_chosen_large(),
        "planner must choose the partitioned join past the L2 crossover"
    );
    assert!(
        report.max_ratio() <= 1.10,
        "planner picks must stay within 10% of the exhaustive best \
         (worst regret {:.3}x)",
        report.max_ratio()
    );
}

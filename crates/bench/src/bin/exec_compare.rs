//! Renders the row-vs-batch executor comparison for the three
//! microbenchmark queries (the paper's breakdowns regenerated over the
//! vectorized path next to the original row-at-a-time numbers).

use wdtg_bench::ctx_with_banner;
use wdtg_core::figures::ExecModeComparison;
use wdtg_workloads::MicroQuery;

fn main() {
    let ctx = ctx_with_banner("exec_compare");
    for q in MicroQuery::ALL {
        let cmp = ExecModeComparison::run(&ctx, q).expect("comparison runs");
        println!("{}", cmp.render());
    }
}

//! Row-vs-batch executor benchmark: host wall-clock and simulated
//! per-tuple counters for the sequential range selection, written to
//! `BENCH_exec.json` (path overridable via `BENCH_EXEC_OUT`).
//!
//! The host numbers measure the *simulator's* speed — the batched executor
//! drives far fewer per-tuple simulation events (one amortized block per
//! batch instead of a full operator path per row), so wall-clock speedup
//! here tracks the same per-tuple overhead collapse the simulated
//! instruction counts show.

use std::time::Instant;

use wdtg_memdb::{Database, EngineProfile, ExecMode, Query, Schema, SystemId};
use wdtg_sim::{CpuConfig, Event, InterruptCfg};

const ROWS: u64 = 100_000;
const RECORD_BYTES: u32 = 100;

fn build_db(sys: SystemId, mode: ExecMode) -> Database {
    let mut db = Database::new(
        EngineProfile::system(sys),
        CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled()),
    )
    .with_exec_mode(mode);
    db.ctx.instrument = false;
    db.create_table("R", Schema::paper_relation(RECORD_BYTES))
        .unwrap();
    let ncols = (RECORD_BYTES / 4) as usize;
    db.load_rows(
        "R",
        (0..ROWS).map(|i| {
            let mut r = vec![0i32; ncols];
            let x = i.wrapping_mul(0x9e37_79b9);
            r[0] = i as i32;
            r[1] = (x % 2_000) as i32 + 1;
            r[2] = (x % 10_000) as i32;
            r
        }),
    )
    .unwrap();
    db.ctx.instrument = true;
    db
}

struct ModeResult {
    host_secs: f64,
    rows: u64,
    instr_per_tuple: f64,
    cycles_per_tuple: f64,
}

fn measure(sys: SystemId, mode: ExecMode) -> ModeResult {
    let mut db = build_db(sys, mode);
    // The paper's 10% selectivity band on a 1..=2000 domain.
    let q = Query::range_select_avg("R", 900, 1101);
    let rows = db.run(&q).unwrap().rows; // warm caches/TLB/BTB
    let before = db.cpu().snapshot();
    let start = Instant::now();
    db.run(&q).unwrap();
    let host_secs = start.elapsed().as_secs_f64();
    let delta = db.cpu().snapshot().delta(&before);
    ModeResult {
        host_secs,
        rows,
        instr_per_tuple: delta.counters.total(Event::InstRetired) as f64 / ROWS as f64,
        cycles_per_tuple: delta.cycles / ROWS as f64,
    }
}

fn main() {
    let sys = SystemId::C; // the paper's interpreted generalist
    println!(
        "== exec_mode == sequential range selection, {} rows x {} B, {}",
        ROWS,
        RECORD_BYTES,
        sys.name()
    );
    let row = measure(sys, ExecMode::Row);
    let batch = measure(sys, ExecMode::Batch);
    assert_eq!(row.rows, batch.rows, "modes must agree on the answer");

    let host_speedup = row.host_secs / batch.host_secs;
    let instr_collapse = row.instr_per_tuple / batch.instr_per_tuple;
    let cycle_speedup = row.cycles_per_tuple / batch.cycles_per_tuple;
    println!(
        "row:   {:8.4} s host, {:7.0} instr/tuple, {:7.0} cyc/tuple",
        row.host_secs, row.instr_per_tuple, row.cycles_per_tuple
    );
    println!(
        "batch: {:8.4} s host, {:7.0} instr/tuple, {:7.0} cyc/tuple",
        batch.host_secs, batch.instr_per_tuple, batch.cycles_per_tuple
    );
    println!("host speedup {host_speedup:.2}x, instr collapse {instr_collapse:.2}x, simulated speedup {cycle_speedup:.2}x");

    let json = format!(
        "{{\n  \"benchmark\": \"sequential_range_selection\",\n  \"system\": \"{}\",\n  \
         \"rows\": {},\n  \"record_bytes\": {},\n  \"selected_rows\": {},\n  \
         \"row_mode\": {{ \"host_secs\": {:.6}, \"instr_per_tuple\": {:.1}, \"cycles_per_tuple\": {:.1} }},\n  \
         \"batch_mode\": {{ \"host_secs\": {:.6}, \"instr_per_tuple\": {:.1}, \"cycles_per_tuple\": {:.1} }},\n  \
         \"host_speedup\": {:.3},\n  \"instr_collapse\": {:.3},\n  \"simulated_speedup\": {:.3}\n}}\n",
        sys.letter(),
        ROWS,
        RECORD_BYTES,
        row.rows,
        row.host_secs,
        row.instr_per_tuple,
        row.cycles_per_tuple,
        batch.host_secs,
        batch.instr_per_tuple,
        batch.cycles_per_tuple,
        host_speedup,
        instr_collapse,
        cycle_speedup,
    );
    let out = std::env::var("BENCH_EXEC_OUT").unwrap_or_else(|_| "BENCH_exec.json".into());
    std::fs::write(&out, json).expect("write BENCH_exec.json");
    println!("wrote {out}");

    assert!(
        host_speedup >= 2.0,
        "batch mode must be >=2x faster on the host (got {host_speedup:.2}x)"
    );
    assert!(
        instr_collapse >= 2.0,
        "batch mode must retire <=half the instructions per tuple (got {instr_collapse:.2}x)"
    );
}

//! Row-vs-batch executor benchmark: host wall-clock and simulated
//! per-tuple counters for the sequential range selection, written to
//! `BENCH_exec.json` (path overridable via `BENCH_EXEC_OUT`).
//!
//! The host numbers measure the *simulator's* speed — the batched executor
//! drives far fewer per-tuple simulation events (one amortized block per
//! batch instead of a full operator path per row), so wall-clock speedup
//! here tracks the same per-tuple overhead collapse the simulated
//! instruction counts show. The measurement itself lives in
//! [`wdtg_bench::runners`], shared with the `bench_check` regression gate.

use wdtg_bench::runners::{run_exec_report, SCAN_RECORD_BYTES, SCAN_ROWS};

fn main() {
    let report = run_exec_report();
    println!(
        "== exec_mode == sequential range selection, {} rows x {} B, {}",
        SCAN_ROWS,
        SCAN_RECORD_BYTES,
        report.system.name()
    );
    println!(
        "row:   {:8.4} s host, {:7.0} instr/tuple, {:7.0} cyc/tuple",
        report.row.host_secs, report.row.instr_per_tuple, report.row.cycles_per_tuple
    );
    println!(
        "batch: {:8.4} s host, {:7.0} instr/tuple, {:7.0} cyc/tuple",
        report.batch.host_secs, report.batch.instr_per_tuple, report.batch.cycles_per_tuple
    );
    let host_speedup = report.host_speedup();
    let instr_collapse = report.instr_collapse();
    println!(
        "host speedup {host_speedup:.2}x, instr collapse {instr_collapse:.2}x, simulated speedup {:.2}x",
        report.simulated_speedup()
    );

    let out = std::env::var("BENCH_EXEC_OUT").unwrap_or_else(|_| "BENCH_exec.json".into());
    std::fs::write(&out, report.to_json()).expect("write BENCH_exec.json");
    println!("wrote {out}");

    assert!(
        host_speedup >= 2.0,
        "batch mode must be >=2x faster on the host (got {host_speedup:.2}x)"
    );
    assert!(
        instr_collapse >= 2.0,
        "batch mode must retire <=half the instructions per tuple (got {instr_collapse:.2}x)"
    );
}

//! Chaos sweep: drives the engine through a deterministic fault-injection
//! grid (three workloads × four per-site fault rates × 24 seeded plans per
//! cell), measures the simulated-cycle overhead of armed guardrails on the
//! fault-free headline scan, and exercises the budget-pressure downgrade of
//! the partitioned join. Written to `BENCH_chaos.json` (path overridable
//! via `BENCH_CHAOS_OUT`).
//!
//! The safety contract asserted here is the same one the `chaos` property
//! tests enforce: every run either returns the bit-identical fault-free
//! answer or a typed error — never a silently wrong row. The measurement
//! lives in [`wdtg_bench::runners`], shared with the `bench_check` gate.

use wdtg_bench::runners::{
    host_parallelism, parse_threads_arg, run_chaos_report, run_threaded_chaos_parity, CHAOS_ROWS,
    CHAOS_RUNS_PER_CELL,
};

fn main() {
    let threads = parse_threads_arg().unwrap_or_else(host_parallelism);
    let report = run_chaos_report();
    println!(
        "== chaos_sweep == {} rows, {} seeded plans per cell",
        CHAOS_ROWS, CHAOS_RUNS_PER_CELL
    );
    for c in &report.cells {
        println!(
            "{:16} rate {:>7}: {:2} ok / {:2} errored ({:2} recovered, {} wrong), \
             {:4} faults, {:3} retries, {:2} downgrades",
            c.workload,
            format!("{}", c.rate),
            c.ok,
            c.errored,
            c.recovered,
            c.wrong,
            c.faults,
            c.retries,
            c.downgrades,
        );
    }
    let wrong = report.wrong_answers();
    let recovery = report.recovery_rate();
    let overhead = report.guardrail_overhead_pct();
    println!(
        "wrong answers {wrong}, recovery rate {recovery:.3}, guardrail overhead {overhead:.4}% \
         ({:.0} -> {:.0} cycles), downgrade answer ok: {}",
        report.baseline_cycles, report.guarded_cycles, report.downgrade_answer_ok
    );

    let out = std::env::var("BENCH_CHAOS_OUT").unwrap_or_else(|_| "BENCH_chaos.json".into());
    std::fs::write(&out, report.to_json()).expect("write BENCH_chaos.json");
    println!("wrote {out}");

    assert_eq!(wrong, 0, "chaos produced a silently wrong answer");
    assert!(
        report.downgrade_answer_ok,
        "budget-pressured partitioned join must degrade and keep the answer"
    );
    assert!(
        overhead < 2.0,
        "armed guardrails must cost <2% simulated cycles (got {overhead:.3}%)"
    );
    assert!(
        recovery > 0.0,
        "the retry/downgrade paths must recover at least some faulted runs"
    );

    // Threaded parity (`--threads N`, default: host parallelism): the same
    // seeded fault scenarios must produce the same typed outcome and
    // bit-identical merged counters under the OS-thread morsel executor.
    let parity = run_threaded_chaos_parity(threads);
    println!(
        "threaded parity: {} scenarios, 1 worker vs {} workers, {} diverged",
        parity.runs, parity.threads, parity.diverged
    );
    assert_eq!(
        parity.diverged, 0,
        "fault outcomes must be identical at any worker count"
    );
}

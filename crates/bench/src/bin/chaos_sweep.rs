//! Chaos sweep: drives the engine through a deterministic fault-injection
//! grid (three workloads × four per-site fault rates × 24 seeded plans per
//! cell), measures the simulated-cycle overhead of armed guardrails on the
//! fault-free headline scan, and exercises the budget-pressure downgrade of
//! the partitioned join. Written to `BENCH_chaos.json` (path overridable
//! via `BENCH_CHAOS_OUT`).
//!
//! The safety contract asserted here is the same one the `chaos` property
//! tests enforce: every run either returns the bit-identical fault-free
//! answer or a typed error — never a silently wrong row. The measurement
//! lives in [`wdtg_bench::runners`], shared with the `bench_check` gate.

use wdtg_bench::runners::{run_chaos_report, CHAOS_ROWS, CHAOS_RUNS_PER_CELL};

fn main() {
    let report = run_chaos_report();
    println!(
        "== chaos_sweep == {} rows, {} seeded plans per cell",
        CHAOS_ROWS, CHAOS_RUNS_PER_CELL
    );
    for c in &report.cells {
        println!(
            "{:16} rate {:>7}: {:2} ok / {:2} errored ({:2} recovered, {} wrong), \
             {:4} faults, {:3} retries, {:2} downgrades",
            c.workload,
            format!("{}", c.rate),
            c.ok,
            c.errored,
            c.recovered,
            c.wrong,
            c.faults,
            c.retries,
            c.downgrades,
        );
    }
    let wrong = report.wrong_answers();
    let recovery = report.recovery_rate();
    let overhead = report.guardrail_overhead_pct();
    println!(
        "wrong answers {wrong}, recovery rate {recovery:.3}, guardrail overhead {overhead:.4}% \
         ({:.0} -> {:.0} cycles), downgrade answer ok: {}",
        report.baseline_cycles, report.guarded_cycles, report.downgrade_answer_ok
    );

    let out = std::env::var("BENCH_CHAOS_OUT").unwrap_or_else(|_| "BENCH_chaos.json".into());
    std::fs::write(&out, report.to_json()).expect("write BENCH_chaos.json");
    println!("wrote {out}");

    assert_eq!(wrong, 0, "chaos produced a silently wrong answer");
    assert!(
        report.downgrade_answer_ok,
        "budget-pressured partitioned join must degrade and keep the answer"
    );
    assert!(
        overhead < 2.0,
        "armed guardrails must cost <2% simulated cycles (got {overhead:.3}%)"
    );
    assert!(
        recovery > 0.0,
        "the retry/downgrade paths must recover at least some faulted runs"
    );
}

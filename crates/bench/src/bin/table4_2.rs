//! Table 4.2: the measurement method per stall component — emon's
//! count×penalty reconstruction side-by-side with the simulator's ground
//! truth, which the real hardware could never provide.

use wdtg_bench::ctx_with_banner;
use wdtg_core::methodology::{measure_query, Methodology};
use wdtg_core::tables::TextTable;
use wdtg_memdb::SystemId;
use wdtg_workloads::MicroQuery;

fn main() {
    let ctx = ctx_with_banner("Table 4.2 — measurement methods (emon vs ground truth)");
    let m = Methodology {
        with_emon: true,
        ..Methodology::default()
    };
    let meas = measure_query(
        SystemId::D,
        MicroQuery::SequentialRangeSelection,
        0.1,
        ctx.scale,
        &ctx.cfg,
        &m,
    )
    .expect("measurement runs");
    let est = meas.estimate.expect("emon requested");
    let t = &meas.truth;
    let mut table = TextTable::new([
        "component",
        "method (Table 4.2)",
        "emon estimate",
        "ground truth",
    ]);
    let row = |n: &str, meth: &str, e: f64, g: f64| {
        [
            n.to_string(),
            meth.to_string(),
            format!("{e:.0}"),
            format!("{g:.0}"),
        ]
    };
    table.row(row("TC", "µops retired / 3", est.tc, t.tc));
    table.row(row("TL1D", "#misses x 4 cycles", est.tl1d, t.tl1d));
    table.row(row(
        "TL1I",
        "actual stall time (IFU_MEM_STALL)",
        est.tl1i,
        t.tl1i,
    ));
    table.row(row("TL2D", "#misses x measured latency", est.tl2d, t.tl2d));
    table.row(row("TL2I", "#misses x measured latency", est.tl2i, t.tl2i));
    table.row([
        "TDTLB".into(),
        "not measured (no event code)".into(),
        "-".into(),
        format!("{:.0}", t.tdtlb.unwrap_or(0.0)),
    ]);
    table.row(row("TITLB", "#misses x 32 cycles", est.titlb, t.titlb));
    table.row(row("TB", "#mispredictions x 17 cycles", est.tb, t.tb));
    table.row(row(
        "TFU",
        "actual stall time (RESOURCE_STALLS)",
        est.tfu,
        t.tfu,
    ));
    table.row(row(
        "TDEP",
        "actual stall time (PARTIAL_RAT_STALLS)",
        est.tdep,
        t.tdep,
    ));
    table.row(row(
        "TILD",
        "actual stall time (ILD_STALL)",
        est.tild,
        t.tild,
    ));
    table.row([
        "TOVL".into(),
        "not measured; = estimates - T_Q".into(),
        format!("{:.0}", est.tovl()),
        "0 (exact attribution)".into(),
    ]);
    println!("{table}");
    println!(
        "cycles: emon {:.0} vs ground truth {:.0} (System D, 10% SRS, per query)",
        est.cycles, t.cycles
    );
}

//! Table 4.1: Pentium II Xeon cache characteristics, plus the measured
//! memory latency the paper's formulae depend on.

use wdtg_sim::{measure_memory_latency, Cpu, CpuConfig, InterruptCfg};

fn main() {
    let cfg = CpuConfig::pentium_ii_xeon();
    println!("Table 4.1: Pentium II Xeon cache characteristics\n");
    println!("  characteristic     L1 (split)                     L2");
    println!(
        "  cache size         {}KB Data / {}KB Instruction     {}KB",
        cfg.l1d.size_bytes / 1024,
        cfg.l1i.size_bytes / 1024,
        cfg.l2.size_bytes / 1024
    );
    println!(
        "  line size          {} bytes                       {} bytes",
        cfg.l1d.line_bytes, cfg.l2.line_bytes
    );
    println!(
        "  associativity      {}-way                          {}-way",
        cfg.l1d.assoc, cfg.l2.assoc
    );
    println!(
        "  miss penalty       {} cycles (w/ L2 hit)            main memory",
        cfg.pipe.l1_miss_penalty
    );
    println!("  non-blocking       yes                            yes");
    println!(
        "  misses outstanding {}                              {}",
        cfg.pipe.outstanding_misses, cfg.pipe.outstanding_misses
    );
    println!("  write policy       L1-D write-back, L1-I read-only  write-back\n");
    let mut cpu = Cpu::new(cfg.with_interrupts(InterruptCfg::disabled()));
    let m = measure_memory_latency(&mut cpu, 8 * 1024 * 1024);
    println!(
        "measured main-memory latency: {:.1} cycles over {} dependent loads\n(paper §5.2.1: \"a memory latency of 60-70 cycles was observed\")",
        m.cycles_per_load, m.loads
    );
}

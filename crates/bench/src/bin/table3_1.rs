//! Table 3.1: the execution-time component hierarchy (definitional).

use wdtg_sim::Component;

fn main() {
    println!("Table 3.1: Execution time components");
    println!("  T_Q = T_C + T_M + T_B + T_R - T_OVL\n");
    for c in Component::ALL {
        let group = if c.is_memory() {
            "memory stall (T_M)"
        } else if c.is_resource() {
            "resource stall (T_R)"
        } else if c == Component::Tb {
            "branch misprediction"
        } else {
            "computation"
        };
        println!("  {:6} {}", c.label(), group);
    }
}

//! Sharded multi-core scaling benchmark: the DSS sequential range selection
//! swept across shard counts {1, 2, 4, 8} × execution mode × page layout,
//! written to `BENCH_scale.json` (path overridable via `BENCH_SCALE_OUT`).
//! Beside the modeled cycles, the report records *host* seconds for the
//! OS-thread morsel executor (1 worker vs `--threads N`, default: this
//! host's available parallelism) in the `host_scaling` column family.
//!
//! The asserted claims are the acceptance behaviour of the sharding work:
//!
//! * every shard count returns *bit-identical* answers to the 1-shard run
//!   (the partial-aggregate merge is integer-exact, not merely close);
//! * 4 shards cut the row-mode/NSM scan's simulated wall clock at least 3×
//!   (wall = the slowest core's cycles; per-core setup is the serial tail);
//! * a re-measured cell reproduces its wall clock cycle-exactly — sharding
//!   keeps the simulator's determinism (`tests/determinism.rs`'s bar).
//!
//! The measurement itself lives in [`wdtg_bench::runners`], shared with the
//! `bench_check` regression gate.

use wdtg_bench::runners::{
    host_parallelism, parse_threads_arg, run_scale_report_with_threads, scale_workload,
};
use wdtg_core::ScalingComparison;
use wdtg_memdb::{ExecMode, PageLayout, SystemId};
use wdtg_sim::{CpuConfig, InterruptCfg};
use wdtg_workloads::MicroQuery;

fn main() {
    let scale = scale_workload();
    let threads = parse_threads_arg().unwrap_or_else(host_parallelism);
    println!(
        "== scale_compare == DSS sequential range selection, {} rows x {} B, shards {:?}, \
         {threads} host thread(s)",
        scale.r_records,
        scale.record_bytes,
        ScalingComparison::SHARD_COUNTS,
    );
    let report = run_scale_report_with_threads(threads);

    for c in &report.cmp.cells {
        println!(
            "{:>2} shards | {:>5?} | {:?} | wall {:>7.2} Mcyc | speedup {:>5.2}x | occupancy {:.2}",
            c.shards,
            c.mode,
            c.layout,
            c.wall_cycles / 1e6,
            report
                .cmp
                .speedup(c.shards, c.mode, c.layout)
                .unwrap_or(1.0),
            c.occupancy(),
        );
    }

    for h in &report.host.cells {
        println!(
            "{:>2} shards | host {:>8.4}s seq -> {:>8.4}s x{} threads | host speedup {:>5.2}x",
            h.shards,
            h.seq_secs,
            h.par_secs,
            report.host.threads,
            h.host_speedup(),
        );
    }

    let out = std::env::var("BENCH_SCALE_OUT").unwrap_or_else(|_| "BENCH_scale.json".into());
    std::fs::write(&out, report.to_json()).expect("write BENCH_scale.json");
    println!("wrote {out}");

    // The acceptance claims.
    assert!(
        report.answers_identical(),
        "every shard count must return the 1-shard answer bit-identically"
    );
    let sp4 = report.speedup_4shard();
    assert!(
        sp4 >= 3.0,
        "4-shard speedup on the DSS sequential scan must be >= 3x, got {sp4:.2}x"
    );

    // Determinism across repeats: re-measure one cell from scratch and
    // demand a cycle-exact reproduction of the wall clock.
    let cfg = CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled());
    let again = ScalingComparison::measure_cell(
        SystemId::C,
        scale,
        MicroQuery::SequentialRangeSelection,
        &cfg,
        4,
        ExecMode::Row,
        PageLayout::Nsm,
    )
    .expect("re-measurement runs");
    let first = report
        .cmp
        .get(4, ExecMode::Row, PageLayout::Nsm)
        .expect("cell measured");
    assert_eq!(
        first.wall_cycles, again.wall_cycles,
        "sharded runs must be deterministic across repeats"
    );
    assert_eq!((first.rows, first.value), (again.rows, again.value));
    println!(
        "checked: answers bit-identical across shard counts; 4-shard speedup {sp4:.2}x \
         (>=3x); wall clock reproduced cycle-exactly across repeats."
    );
}

//! §5.5: the TPC-C contrast (CPI 2.5-4.5, 60-80% memory stalls, L2-dominated).

use wdtg_bench::ctx_with_banner;
use wdtg_core::validate::{render_claims, validate_tpcc};
use wdtg_workloads::TpccScale;

fn main() {
    let ctx = ctx_with_banner("§5.5 — TPC-C contrast");
    let txns = if std::env::var("WDTG_SCALE").as_deref() == Ok("paper") {
        2_000
    } else {
        400
    };
    let (ms, report) =
        wdtg_core::oltp::tpcc_report(TpccScale::from_env(), &ctx.cfg, txns).expect("tpcc runs");
    println!("{report}");
    println!("{}", render_claims(&validate_tpcc(&ms)));

    // The concurrent deployment of the same mix: snapshot-isolation
    // transactions over a small node tier, with conflict/retry.
    let (oltp, figure) = wdtg_core::oltp::concurrent_tpcc_report(
        wdtg_memdb::SystemId::C,
        TpccScale::from_env(),
        &ctx.cfg,
        8,
        (txns as usize / 40).max(10),
    )
    .expect("concurrent tpcc runs");
    println!("{figure}");
    assert_eq!(oltp.wrong_answers, 0, "OLTP oracle mismatch");
    assert_eq!(oltp.anomalies, 0, "serialization anomaly");
    assert!(oltp.recovery_ok, "WAL recovery failed");
}

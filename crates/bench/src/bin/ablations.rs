//! Ablations A1/A2/A4: BTB size, L2 capacity, prefetch distance.

use wdtg_bench::ctx_with_banner;
use wdtg_core::ablations::{btb_sweep, l2_sweep, prefetch_sweep};

fn main() {
    let ctx = ctx_with_banner("Ablations — BTB / L2 / prefetch");
    println!("{}", btb_sweep(&ctx).expect("btb sweep"));
    println!("{}", l2_sweep(&ctx).expect("l2 sweep"));
    println!("{}", prefetch_sweep(&ctx).expect("prefetch sweep"));
}

//! Selection-mode benchmark: the paper's sequential range selection swept
//! across selectivity (1% → 99%) under {Branching, Predicated} × {Row,
//! Batch} × {Nsm, Pax} with the Figure 5.1-style component breakdown per
//! cell, written to `BENCH_branch.json` (path overridable via
//! `BENCH_BRANCH_OUT`).
//!
//! §5.3/Fig 5.4 finds branch-misprediction stalls (T_B) peaking where the
//! qualify branch is least predictable — near 50% selectivity — at 10–20%
//! of query time. The asserted claims are the branch chapter's acceptance
//! behaviour: branching T_B reproduces that unimodal peak, and predicated
//! (branch-free, cmov-style) evaluation returns identical answers with the
//! qualify misprediction count pinned at zero, cutting the peak T_B share
//! at least 5×. The measurement itself lives in [`wdtg_bench::runners`],
//! shared with the `bench_check` regression gate.

use wdtg_bench::runners::run_branch_report;
use wdtg_memdb::{ExecMode, PageLayout, SelectionMode};

fn main() {
    let report = run_branch_report();
    println!("{}", report.cmp.render());

    let out = std::env::var("BENCH_BRANCH_OUT").unwrap_or_else(|_| "BENCH_branch.json".into());
    std::fs::write(&out, report.to_json()).expect("write BENCH_branch.json");
    println!("wrote {out}");

    // The acceptance claims.
    for mode in [ExecMode::Row, ExecMode::Batch] {
        for layout in PageLayout::ALL {
            let branching = report.cmp.series(SelectionMode::Branching, mode, layout);
            let predicated = report.cmp.series(SelectionMode::Predicated, mode, layout);
            for (b, p) in branching.iter().zip(&predicated) {
                assert_eq!(
                    (b.rows, b.value),
                    (p.rows, p.value),
                    "{mode:?}/{layout:?} @ {:.0}%: selection modes must agree on the answer",
                    b.selectivity * 100.0
                );
                assert_eq!(
                    p.qualify_branch_misses,
                    0,
                    "{mode:?}/{layout:?} @ {:.0}%: predicated evaluation left a \
                     data-dependent branch behind",
                    p.selectivity * 100.0
                );
            }
        }
    }
    let peak = report.branching_peak(ExecMode::Batch, PageLayout::Nsm);
    assert!(
        (0.4..=0.6).contains(&peak.selectivity),
        "Fig 5.4 shape: branching T_B must peak within ±10 points of 50% \
         selectivity, peaked at {:.0}%",
        peak.selectivity * 100.0
    );
    let reduction = report.tb_peak_reduction_batch();
    assert!(
        reduction >= 5.0,
        "predication must cut the peak T_B share at least 5x, got {reduction:.2}x"
    );
    println!(
        "branching T_B peaks at {:.0}% selectivity ({:.1}% of T_Q); predication cuts the \
         peak {reduction:.1}x with zero qualify mispredictions",
        peak.selectivity * 100.0,
        peak.tb_share() * 100.0,
    );
}

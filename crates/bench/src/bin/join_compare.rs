//! Join-strategy benchmark: the paper's two-table equijoin measured under
//! {HashJoin, PartitionedHashJoin, IndexNlJoin} × {Row, Batch} ×
//! {Nsm, Pax} with the Figure 5.1-style component breakdown per cell,
//! written to `BENCH_join.json` (path overridable via `BENCH_JOIN_OUT`).
//!
//! The workload sizes the build side so the naive join's transient hash
//! table is ≈3× the 512 KB L2 — the regime the paper measures, where the
//! join's time goes to L2 data misses. The asserted claims are the join
//! chapter's acceptance behaviour: the radix-partitioned join returns the
//! same cardinality while taking strictly fewer simulated L2 data misses
//! and a strictly lower memory-stall share than the naive hash join. The
//! measurement itself lives in [`wdtg_bench::runners`], shared with the
//! `bench_check` regression gate.

use wdtg_bench::runners::run_join_report;
use wdtg_memdb::{ExecMode, JoinAlgo, PageLayout};

fn main() {
    let report = run_join_report();
    println!("{}", report.cmp.render());

    let out = std::env::var("BENCH_JOIN_OUT").unwrap_or_else(|_| "BENCH_join.json".into());
    std::fs::write(&out, report.to_json()).expect("write BENCH_join.json");
    println!("wrote {out}");

    // The acceptance claims.
    let rows: Vec<u64> = report.cmp.cells.iter().map(|c| c.rows).collect();
    assert!(
        rows.windows(2).all(|w| w[0] == w[1]),
        "every strategy must return the same cardinality: {rows:?}"
    );
    for mode in [ExecMode::Row, ExecMode::Batch] {
        for layout in PageLayout::ALL {
            let hash = report.cmp.get(JoinAlgo::Hash, mode, layout).unwrap();
            let part = report
                .cmp
                .get(JoinAlgo::PartitionedHash, mode, layout)
                .unwrap();
            assert!(
                part.l2_data_misses < hash.l2_data_misses,
                "{mode:?}/{layout:?}: partitioned join must cut L2 data misses \
                 (hash {} vs partitioned {})",
                hash.l2_data_misses,
                part.l2_data_misses
            );
            let hash_tm = hash.truth.tm() / hash.truth.cycles.max(1e-9);
            let part_tm = part.truth.tm() / part.truth.cycles.max(1e-9);
            assert!(
                part_tm < hash_tm,
                "{mode:?}/{layout:?}: partitioned join must lower the T_M share \
                 ({:.1}% vs {:.1}%)",
                100.0 * hash_tm,
                100.0 * part_tm
            );
        }
    }
}

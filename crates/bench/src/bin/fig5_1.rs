//! Figure 5.1: query execution time breakdown into T_C / T_M / T_B / T_R.

use wdtg_bench::ctx_with_banner;
use wdtg_core::figures::MicrobenchGrid;
use wdtg_core::validate::{render_claims, validate_grid};

fn main() {
    let ctx = ctx_with_banner("Figure 5.1 — execution time breakdown");
    let grid = MicrobenchGrid::run(&ctx).expect("grid runs");
    println!("{}", grid.render_fig5_1());
    println!("{}", render_claims(&validate_grid(&grid)));
}

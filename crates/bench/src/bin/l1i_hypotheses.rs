//! §5.2.2 / ablation A3: testing the paper's three hypotheses for why larger
//! records cause more L1 instruction misses (OS interrupts, L2 inclusion,
//! page-boundary crossings) — the experiment the authors called for.

use wdtg_bench::ctx_with_banner;
use wdtg_core::figures::L1iHypotheses;

fn main() {
    let ctx = ctx_with_banner("§5.2.2 — L1I growth hypotheses (ablation A3)");
    let h = L1iHypotheses::run(&ctx).expect("hypothesis runs");
    println!("{}", h.render());
}

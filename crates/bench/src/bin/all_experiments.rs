//! Runs every experiment and claim validation in one pass; the source of
//! EXPERIMENTS.md's measured numbers.

use wdtg_bench::ctx_with_banner;
use wdtg_core::dss::DssComparison;
use wdtg_core::figures::{L1iHypotheses, MicrobenchGrid, RecordSizeSweep, SelectivitySweep};
use wdtg_core::validate::*;
use wdtg_memdb::SystemId;
use wdtg_workloads::{TpccScale, TpcdScale};

fn main() {
    let ctx = ctx_with_banner("All experiments");

    let grid = MicrobenchGrid::run(&ctx).expect("grid");
    println!("{}", grid.render_fig5_1());
    println!("{}", grid.render_fig5_2());
    println!("{}", grid.render_fig5_3());
    println!("{}", grid.render_fig5_4_left());
    println!("{}", grid.render_fig5_5());

    let sweep = SelectivitySweep::run(&ctx).expect("selectivity");
    println!("{}", sweep.render());

    let rs = RecordSizeSweep::run(&ctx, SystemId::D).expect("record size");
    println!("{}", rs.render());

    let hyp = L1iHypotheses::run(&ctx).expect("hypotheses");
    println!("{}", hyp.render());

    let dss = DssComparison::run(&ctx, TpcdScale::from_env()).expect("dss");
    println!("{}", dss.render_fig5_6());
    println!("{}", dss.render_fig5_7());

    let txns = if std::env::var("WDTG_SCALE").as_deref() == Ok("paper") {
        2_000
    } else {
        400
    };
    let (tpcc_ms, tpcc_out) =
        wdtg_core::oltp::tpcc_report(TpccScale::from_env(), &ctx.cfg, txns).expect("tpcc");
    println!("{tpcc_out}");

    let mut claims = validate_grid(&grid);
    claims.extend(validate_selectivity(&sweep));
    claims.extend(validate_record_size(&rs));
    claims.extend(validate_dss(&dss));
    claims.extend(validate_tpcc(&tpcc_ms));
    println!("=== paper-claim validation ===\n{}", render_claims(&claims));
    let failed = claims.iter().filter(|c| !c.pass).count();
    std::process::exit(if failed == 0 { 0 } else { 1 });
}

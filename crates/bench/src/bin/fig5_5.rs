//! Figure 5.5: T_DEP and T_FU contributions to execution time.

use wdtg_bench::ctx_with_banner;
use wdtg_core::figures::MicrobenchGrid;

fn main() {
    let ctx = ctx_with_banner("Figure 5.5 — resource stalls");
    let grid = MicrobenchGrid::run(&ctx).expect("grid runs");
    println!("{}", grid.render_fig5_5());
}

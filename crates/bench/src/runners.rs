//! The measurement cores of the headline bench binaries (`exec_mode`,
//! `layout_compare`, `join_compare`), shared with `bench_check` so the
//! CI regression gate re-runs *exactly* the code that produced the
//! committed `BENCH_*.json` baselines, not a reimplementation that could
//! drift.
//!
//! Each runner returns a report struct that renders itself to the same
//! JSON the corresponding binary writes; the headline metrics the gate
//! compares are plain accessors on the reports.

use std::time::Instant;

use wdtg_core::methodology::build_sharded_db_with_layout;
use wdtg_core::{
    BranchCell, JoinComparison, PlannerComparison, ScalingComparison, SelectivityComparison,
    TimeBreakdown,
};
use wdtg_memdb::sql::{compile, BoundStatement};
use wdtg_memdb::{
    Database, DbError, EngineProfile, ExecMode, FaultPlan, JoinAlgo, PageLayout, ParallelConfig,
    Query, QueryResult, ResourceBudget, Schema, SelectionMode, ShardedDatabase, SystemId,
};
use wdtg_sim::{CpuConfig, Event, InterruptCfg, Mode};
use wdtg_workloads::{
    micro, run_oltp, JoinSpec, MicroQuery, OltpConfig, OltpReport, Scale, SweepSpec, TpccScale,
};

/// Rows in the selection benchmarks' single relation.
pub const SCAN_ROWS: u64 = 100_000;
/// Record size of the selection benchmarks' relation.
pub const SCAN_RECORD_BYTES: u32 = 100;

fn build_scan_db(sys: SystemId, layout: PageLayout) -> Database {
    let mut db = Database::new(
        EngineProfile::system(sys),
        CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled()),
    )
    .with_page_layout(layout);
    db.ctx.instrument = false;
    db.create_table("R", Schema::paper_relation(SCAN_RECORD_BYTES))
        .unwrap();
    let ncols = (SCAN_RECORD_BYTES / 4) as usize;
    db.load_rows(
        "R",
        (0..SCAN_ROWS).map(|i| {
            let mut r = vec![0i32; ncols];
            let x = i.wrapping_mul(0x9e37_79b9);
            r[0] = i as i32;
            r[1] = (x % 2_000) as i32 + 1;
            r[2] = (x % 10_000) as i32;
            r
        }),
    )
    .unwrap();
    db.ctx.instrument = true;
    db
}

/// The paper's 10% selectivity band on the scan relation's 1..=2000 domain.
fn scan_query() -> Query {
    Query::range_select_avg("R", 900, 1101)
}

/// Compiles a scalar workload statement through the SQL frontend. The bench
/// workloads are *stated* in SQL (what a [`wdtg_memdb::Session`] user would
/// type) and compiled once up front, so the measured loops execute the exact
/// same hand-built [`Query`] IR as before — zero cycles of frontend cost
/// inside any measurement.
fn sql_query(db: &Database, sql: &str) -> Query {
    match compile(db, sql).expect("workload SQL compiles") {
        BoundStatement::Scalar(q) => q,
        other => panic!("workload SQL must be a scalar statement, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// exec_mode: row vs batch executor
// ---------------------------------------------------------------------

/// One execution mode's measurements.
#[derive(Debug, Clone, Copy)]
pub struct ExecModeResult {
    /// Host wall-clock seconds of the measured run (simulator speed).
    pub host_secs: f64,
    /// Selected rows (must agree across modes).
    pub rows: u64,
    /// Simulated instructions retired per tuple.
    pub instr_per_tuple: f64,
    /// Simulated cycles per tuple.
    pub cycles_per_tuple: f64,
}

fn measure_exec_mode(sys: SystemId, mode: ExecMode) -> ExecModeResult {
    let mut db = build_scan_db(sys, PageLayout::Nsm).with_exec_mode(mode);
    let q = scan_query();
    let rows = db.run(&q).unwrap().rows; // warm caches/TLB/BTB
    let before = db.cpu().snapshot();
    let start = Instant::now();
    db.run(&q).unwrap();
    let host_secs = start.elapsed().as_secs_f64();
    let delta = db.cpu().snapshot().delta(&before);
    ExecModeResult {
        host_secs,
        rows,
        instr_per_tuple: delta.counters.total(Event::InstRetired) as f64 / SCAN_ROWS as f64,
        cycles_per_tuple: delta.cycles / SCAN_ROWS as f64,
    }
}

/// Row-vs-batch comparison on the sequential range selection (System C).
#[derive(Debug, Clone, Copy)]
pub struct ExecReport {
    /// System measured.
    pub system: SystemId,
    /// Row-mode measurements.
    pub row: ExecModeResult,
    /// Batch-mode measurements.
    pub batch: ExecModeResult,
}

impl ExecReport {
    /// Host wall-clock speedup of batch over row mode.
    pub fn host_speedup(&self) -> f64 {
        self.row.host_secs / self.batch.host_secs.max(1e-12)
    }

    /// Simulated per-tuple instruction collapse (the gated headline).
    pub fn instr_collapse(&self) -> f64 {
        self.row.instr_per_tuple / self.batch.instr_per_tuple.max(1e-9)
    }

    /// Simulated cycle speedup.
    pub fn simulated_speedup(&self) -> f64 {
        self.row.cycles_per_tuple / self.batch.cycles_per_tuple.max(1e-9)
    }

    /// The `BENCH_exec.json` document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"sequential_range_selection\",\n  \"system\": \"{}\",\n  \
             \"rows\": {},\n  \"record_bytes\": {},\n  \"selected_rows\": {},\n  \
             \"row_mode\": {{ \"host_secs\": {:.6}, \"instr_per_tuple\": {:.1}, \"cycles_per_tuple\": {:.1} }},\n  \
             \"batch_mode\": {{ \"host_secs\": {:.6}, \"instr_per_tuple\": {:.1}, \"cycles_per_tuple\": {:.1} }},\n  \
             \"host_speedup\": {:.3},\n  \"instr_collapse\": {:.3},\n  \"simulated_speedup\": {:.3}\n}}\n",
            self.system.letter(),
            SCAN_ROWS,
            SCAN_RECORD_BYTES,
            self.row.rows,
            self.row.host_secs,
            self.row.instr_per_tuple,
            self.row.cycles_per_tuple,
            self.batch.host_secs,
            self.batch.instr_per_tuple,
            self.batch.cycles_per_tuple,
            self.host_speedup(),
            self.instr_collapse(),
            self.simulated_speedup(),
        )
    }
}

/// Runs the row-vs-batch benchmark (System C, the interpreted generalist).
pub fn run_exec_report() -> ExecReport {
    let sys = SystemId::C;
    let row = measure_exec_mode(sys, ExecMode::Row);
    let batch = measure_exec_mode(sys, ExecMode::Batch);
    assert_eq!(row.rows, batch.rows, "modes must agree on the answer");
    ExecReport {
        system: sys,
        row,
        batch,
    }
}

// ---------------------------------------------------------------------
// layout_compare: NSM vs PAX
// ---------------------------------------------------------------------

/// One layout's measurements on the selection scan.
#[derive(Debug, Clone)]
pub struct LayoutResult {
    /// Selected rows (must agree across layouts).
    pub rows: u64,
    /// Simulated L2 data misses of the measured run.
    pub l2_data_misses: u64,
    /// Simulated cycles per tuple.
    pub cycles_per_tuple: f64,
    /// Ground-truth breakdown of the measured run.
    pub truth: TimeBreakdown,
}

fn measure_layout(sys: SystemId, layout: PageLayout) -> LayoutResult {
    let mut db = build_scan_db(sys, layout);
    let q = scan_query();
    let rows = db.run(&q).unwrap().rows; // warm caches/TLB/BTB
    let before = db.cpu().snapshot();
    db.run(&q).unwrap();
    let delta = db.cpu().snapshot().delta(&before);
    LayoutResult {
        rows,
        l2_data_misses: delta.counters.total(Event::SimL2DataMiss),
        cycles_per_tuple: delta.cycles / SCAN_ROWS as f64,
        truth: TimeBreakdown::from_snapshot(&delta, Mode::User),
    }
}

/// NSM-vs-PAX comparison: a narrow projection (System A, PAX's sweet spot)
/// and a full-row scan (System C, the parity check).
#[derive(Debug, Clone)]
pub struct LayoutReport {
    /// Narrow projection under NSM.
    pub narrow_nsm: LayoutResult,
    /// Narrow projection under PAX.
    pub narrow_pax: LayoutResult,
    /// Full-row scan under NSM.
    pub full_nsm: LayoutResult,
    /// Full-row scan under PAX.
    pub full_pax: LayoutResult,
}

fn tm_json(t: &TimeBreakdown) -> String {
    let total = t.cycles.max(1e-9);
    format!(
        "{{ \"t_m_share\": {:.4}, \"t_l1d_share\": {:.4}, \"t_l1i_share\": {:.4}, \
         \"t_l2d_share\": {:.4}, \"t_l2i_share\": {:.4}, \"t_dtlb_share\": {:.4}, \
         \"t_itlb_share\": {:.4} }}",
        t.tm() / total,
        t.tl1d / total,
        t.tl1i / total,
        t.tl2d / total,
        t.tl2i / total,
        t.tdtlb.unwrap_or(0.0) / total,
        t.titlb / total,
    )
}

fn layout_scenario_json(
    name: &str,
    sys: SystemId,
    nsm: &LayoutResult,
    pax: &LayoutResult,
) -> String {
    format!(
        "  \"{name}\": {{\n    \"system\": \"{}\",\n    \"selected_rows\": {},\n    \
         \"nsm\": {{ \"l2_data_misses\": {}, \"cycles_per_tuple\": {:.1}, \"memory\": {} }},\n    \
         \"pax\": {{ \"l2_data_misses\": {}, \"cycles_per_tuple\": {:.1}, \"memory\": {} }},\n    \
         \"l2d_miss_reduction\": {:.3},\n    \"simulated_speedup\": {:.3}\n  }}",
        sys.letter(),
        nsm.rows,
        nsm.l2_data_misses,
        nsm.cycles_per_tuple,
        tm_json(&nsm.truth),
        pax.l2_data_misses,
        pax.cycles_per_tuple,
        tm_json(&pax.truth),
        nsm.l2_data_misses as f64 / pax.l2_data_misses.max(1) as f64,
        nsm.cycles_per_tuple / pax.cycles_per_tuple.max(1e-9),
    )
}

impl LayoutReport {
    /// Narrow-projection L2 data-miss reduction (the gated headline).
    pub fn narrow_l2d_miss_reduction(&self) -> f64 {
        self.narrow_nsm.l2_data_misses as f64 / self.narrow_pax.l2_data_misses.max(1) as f64
    }

    /// Full-row PAX/NSM miss ratio (must stay near parity).
    pub fn full_row_miss_ratio(&self) -> f64 {
        self.full_pax.l2_data_misses as f64 / self.full_nsm.l2_data_misses.max(1) as f64
    }

    /// The `BENCH_layout.json` document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"page_layout_comparison\",\n  \"rows\": {SCAN_ROWS},\n  \
             \"record_bytes\": {SCAN_RECORD_BYTES},\n{},\n{}\n}}\n",
            layout_scenario_json(
                "narrow_projection_scan",
                SystemId::A,
                &self.narrow_nsm,
                &self.narrow_pax
            ),
            layout_scenario_json("full_row_scan", SystemId::C, &self.full_nsm, &self.full_pax),
        )
    }
}

/// Runs the NSM-vs-PAX benchmark.
pub fn run_layout_report() -> LayoutReport {
    let narrow_nsm = measure_layout(SystemId::A, PageLayout::Nsm);
    let narrow_pax = measure_layout(SystemId::A, PageLayout::Pax);
    assert_eq!(narrow_nsm.rows, narrow_pax.rows, "layouts must agree");
    let full_nsm = measure_layout(SystemId::C, PageLayout::Nsm);
    let full_pax = measure_layout(SystemId::C, PageLayout::Pax);
    assert_eq!(full_nsm.rows, full_pax.rows, "layouts must agree");
    LayoutReport {
        narrow_nsm,
        narrow_pax,
        full_nsm,
        full_pax,
    }
}

// ---------------------------------------------------------------------
// join_compare: join strategies
// ---------------------------------------------------------------------

/// The join-strategy comparison (a [`JoinComparison`] grid plus the
/// headline accessors the regression gate reads).
#[derive(Debug, Clone)]
pub struct JoinReport {
    /// The measured grid (3 strategies × 2 modes × 2 layouts).
    pub cmp: JoinComparison,
}

impl JoinReport {
    /// Row-mode NSM L2 data-miss reduction, naive hash / partitioned
    /// (the gated headline).
    pub fn l2d_miss_reduction_row(&self) -> f64 {
        self.cmp
            .l2d_miss_reduction(ExecMode::Row, PageLayout::Nsm)
            .expect("grid measured")
    }

    /// Batch-mode NSM simulated speedup, naive hash / partitioned (the
    /// gated headline: batching amortizes the scatter code, so this is
    /// where partitioning's miss savings show up as cycles).
    pub fn join_speedup_batch(&self) -> f64 {
        self.cmp
            .speedup(ExecMode::Batch, PageLayout::Nsm)
            .expect("grid measured")
    }

    /// T_M share of one cell.
    pub fn t_m_share(&self, algo: JoinAlgo, mode: ExecMode) -> f64 {
        let c = self.cmp.get(algo, mode, PageLayout::Nsm).expect("measured");
        c.truth.tm() / c.truth.cycles.max(1e-9)
    }

    /// The `BENCH_join.json` document.
    pub fn to_json(&self) -> String {
        let spec = &self.cmp.spec;
        let mut cells = String::new();
        for (i, c) in self.cmp.cells.iter().enumerate() {
            let f = c.truth.four_way();
            let algo = match c.algo {
                JoinAlgo::Hash => "hash",
                JoinAlgo::PartitionedHash => "partitioned_hash",
                JoinAlgo::IndexNestedLoop => "index_nl",
            };
            cells.push_str(&format!(
                "    {{ \"strategy\": \"{algo}\", \"mode\": \"{:?}\", \"layout\": \"{:?}\", \
                 \"rows\": {}, \"l2_data_misses\": {}, \"cycles\": {:.0}, \
                 \"instructions\": {}, \"t_c_share\": {:.4}, \"t_m_share\": {:.4}, \
                 \"t_b_share\": {:.4}, \"t_r_share\": {:.4} }}{}\n",
                c.mode,
                c.layout,
                c.rows,
                c.l2_data_misses,
                c.truth.cycles,
                c.truth.inst_retired,
                f.computation,
                f.memory,
                f.branch,
                f.resource,
                if i + 1 == self.cmp.cells.len() {
                    ""
                } else {
                    ","
                },
            ));
        }
        format!(
            "{{\n  \"benchmark\": \"join_comparison\",\n  \"system\": \"{}\",\n  \
             \"build_rows\": {},\n  \"probe_rows\": {},\n  \"record_bytes\": {},\n  \
             \"match_rate\": {:.2},\n  \"cells\": [\n{cells}  ],\n  \
             \"l2d_miss_reduction_row\": {:.3},\n  \"l2d_miss_reduction_batch\": {:.3},\n  \
             \"t_m_share_hash_row\": {:.4},\n  \"t_m_share_partitioned_row\": {:.4},\n  \
             \"join_speedup_row\": {:.3},\n  \"join_speedup_batch\": {:.3}\n}}\n",
            self.cmp.system.letter(),
            spec.build_rows,
            spec.probe_rows,
            spec.record_bytes,
            spec.match_rate,
            self.l2d_miss_reduction_row(),
            self.cmp
                .l2d_miss_reduction(ExecMode::Batch, PageLayout::Nsm)
                .expect("grid measured"),
            self.t_m_share(JoinAlgo::Hash, ExecMode::Row),
            self.t_m_share(JoinAlgo::PartitionedHash, ExecMode::Row),
            self.cmp
                .speedup(ExecMode::Row, PageLayout::Nsm)
                .expect("grid measured"),
            self.join_speedup_batch(),
        )
    }
}

/// Runs the join-strategy benchmark: the default join workload (naive hash
/// table ≈3× the L2) on System C, all strategies × modes × layouts.
pub fn run_join_report() -> JoinReport {
    let cmp = JoinComparison::run(
        SystemId::C,
        JoinSpec::default(),
        &CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled()),
    )
    .expect("join comparison runs");
    JoinReport { cmp }
}

// ---------------------------------------------------------------------
// branch_compare: branching vs predicated selection across selectivity
// ---------------------------------------------------------------------

/// Dataset for the selectivity sweep: the §3.3 shape with 20-byte records
/// (the branch term does not depend on record width, and narrow records —
/// the same choice [`JoinSpec`]'s default makes — keep the per-page
/// buffer-pool code, which contributes selectivity-independent structural
/// T_B noise, from diluting the qualify term the sweep studies) at a size
/// where the full selection × mode × layout × 9-point grid stays
/// CI-friendly.
pub fn branch_scale() -> Scale {
    Scale {
        r_records: 48_000,
        s_records: 1_600,
        record_bytes: 20,
    }
}

/// The selection-mode comparison (a [`SelectivityComparison`] grid plus the
/// headline accessors the regression gate reads).
#[derive(Debug, Clone)]
pub struct BranchReport {
    /// The measured grid (2 selection modes × 2 exec modes × 2 layouts ×
    /// the 1%→99% sweep).
    pub cmp: SelectivityComparison,
}

impl BranchReport {
    /// The branching series' T_B-share peak in one (mode, layout) slice.
    pub fn branching_peak(&self, mode: ExecMode, layout: PageLayout) -> &BranchCell {
        self.cmp
            .peak_tb(SelectionMode::Branching, mode, layout)
            .expect("grid measured")
    }

    /// Batch-mode NSM peak-T_B-share reduction, branching / predicated
    /// (the gated headline: batch mode is where the structural loop
    /// branches predict almost perfectly, so the qualify branch *is* the
    /// T_B term and predication's full win is visible).
    pub fn tb_peak_reduction_batch(&self) -> f64 {
        self.cmp
            .peak_tb_reduction(ExecMode::Batch, PageLayout::Nsm)
            .expect("grid measured")
    }

    /// Largest predicated T_B share across the batch/NSM sweep (must stay
    /// a sliver of T_Q — nothing data-dependent is left to mispredict).
    pub fn predicated_tb_max_share(&self) -> f64 {
        self.cmp
            .series(SelectionMode::Predicated, ExecMode::Batch, PageLayout::Nsm)
            .iter()
            .map(|c| c.tb_share())
            .fold(0.0, f64::max)
    }

    /// The `BENCH_branch.json` document.
    pub fn to_json(&self) -> String {
        let mut cells = String::new();
        for (i, c) in self.cmp.cells.iter().enumerate() {
            let f = c.truth.four_way();
            let selection = match c.selection {
                SelectionMode::Branching => "branching",
                SelectionMode::Predicated => "predicated",
            };
            cells.push_str(&format!(
                "    {{ \"selection\": \"{selection}\", \"mode\": \"{:?}\", \
                 \"layout\": \"{:?}\", \"selectivity\": {:.2}, \"rows\": {}, \
                 \"qualify_branch_misses\": {}, \"select_ops\": {}, \"cycles\": {:.0}, \
                 \"t_c_share\": {:.4}, \"t_m_share\": {:.4}, \"t_b_share\": {:.4}, \
                 \"t_r_share\": {:.4} }}{}\n",
                c.mode,
                c.layout,
                c.selectivity,
                c.rows,
                c.qualify_branch_misses,
                c.select_ops,
                c.truth.cycles,
                f.computation,
                f.memory,
                f.branch,
                f.resource,
                if i + 1 == self.cmp.cells.len() {
                    ""
                } else {
                    ","
                },
            ));
        }
        let peak = self.branching_peak(ExecMode::Batch, PageLayout::Nsm);
        let row_peak = self.branching_peak(ExecMode::Row, PageLayout::Nsm);
        format!(
            "{{\n  \"benchmark\": \"selection_mode_comparison\",\n  \"system\": \"{}\",\n  \
             \"rows\": {},\n  \"record_bytes\": {},\n  \"cells\": [\n{cells}  ],\n  \
             \"branching_tb_peak_share\": {:.4},\n  \"branching_tb_peak_selectivity\": {:.2},\n  \
             \"branching_tb_peak_share_row\": {:.4},\n  \"predicated_tb_max_share\": {:.4},\n  \
             \"tb_peak_reduction_batch\": {:.3},\n  \"tb_peak_reduction_row\": {:.3}\n}}\n",
            self.cmp.system.letter(),
            self.cmp.scale.r_records,
            self.cmp.scale.record_bytes,
            peak.tb_share(),
            peak.selectivity,
            row_peak.tb_share(),
            self.predicated_tb_max_share(),
            self.tb_peak_reduction_batch(),
            self.cmp
                .peak_tb_reduction(ExecMode::Row, PageLayout::Nsm)
                .expect("grid measured"),
        )
    }
}

/// Runs the selection-mode benchmark: the full selection × mode × layout
/// grid over the 1%→99% sweep on System A — the lean *compiled* engine,
/// where predication (a code-generation technique) is at home and whose
/// minimal structural branch noise isolates the data-dependent qualify
/// term the sweep studies.
pub fn run_branch_report() -> BranchReport {
    let cmp = SelectivityComparison::run(
        SystemId::A,
        branch_scale(),
        &SweepSpec::branch_sweep(),
        &CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled()),
    )
    .expect("selectivity comparison runs");
    BranchReport { cmp }
}

// ---------------------------------------------------------------------
// scale_compare: sharded multi-core scaling
// ---------------------------------------------------------------------

/// Dataset for the scaling sweep: the §3.3 DSS shape at dev scale — big
/// enough that the sequential scan dominates each shard's per-query setup
/// (so the speedup curve measures the scan, not fixed overheads), small
/// enough that the 16-cell grid stays CI-friendly.
pub fn scale_workload() -> Scale {
    Scale {
        r_records: 100_020,
        s_records: 3_334,
        record_bytes: 100,
    }
}

/// Compiles a §3.3 microbenchmark workload from its SQL text
/// ([`micro::query_sql`]) against a schema-only catalog — the compiled
/// [`Query`] is what the measured loops run, so stating the workload in SQL
/// costs zero measured cycles.
fn compile_micro_sql(scale: Scale, cfg: &CpuConfig, q: MicroQuery, sel: f64) -> Query {
    let mut cat = Database::new(EngineProfile::system(SystemId::C), cfg.clone());
    cat.create_table("R", Schema::paper_relation(scale.record_bytes))
        .unwrap();
    if q == MicroQuery::SequentialJoin {
        cat.create_table("S", Schema::paper_relation(scale.record_bytes))
            .unwrap();
    }
    sql_query(&cat, &micro::query_sql(scale, q, sel))
}

/// The multi-core scaling comparison (a [`ScalingComparison`] grid plus the
/// headline accessors the regression gate reads).
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// The measured grid (shards {1,2,4,8} × 2 exec modes × 2 layouts).
    pub cmp: ScalingComparison,
    /// Host-clock scaling of the OS-thread morsel executor on the Row/NSM
    /// slice (real seconds beside the modeled cycles above).
    pub host: HostScaling,
}

impl ScaleReport {
    /// Wall-clock speedup of `n` shards over 1 in one (mode, layout) slice.
    pub fn speedup(&self, shards: usize, mode: ExecMode, layout: PageLayout) -> f64 {
        self.cmp
            .speedup(shards, mode, layout)
            .expect("grid measured")
    }

    /// Row-mode NSM 4-shard wall-clock speedup on the DSS sequential scan
    /// (the gated headline — the paper's configuration, scaled out).
    pub fn speedup_4shard(&self) -> f64 {
        self.speedup(4, ExecMode::Row, PageLayout::Nsm)
    }

    /// Host wall-clock speedup of the 4-shard threaded run over 1 worker.
    pub fn host_speedup_4shard(&self) -> f64 {
        self.host.host_speedup_4shard()
    }

    /// Whether every cell returned the same rows *and bit-identical* value
    /// as the 1-shard cell of its (mode, layout) slice.
    pub fn answers_identical(&self) -> bool {
        self.cmp.cells.iter().all(|c| {
            let one = self
                .cmp
                .get(1, c.mode, c.layout)
                .expect("1-shard baseline measured");
            c.rows == one.rows && c.value == one.value
        })
    }

    /// The `BENCH_scale.json` document.
    pub fn to_json(&self) -> String {
        let mut cells = String::new();
        for (i, c) in self.cmp.cells.iter().enumerate() {
            let f = c.truth.four_way();
            cells.push_str(&format!(
                "    {{ \"shards\": {}, \"mode\": \"{:?}\", \"layout\": \"{:?}\", \
                 \"rows\": {}, \"wall_cycles\": {:.0}, \"total_cycles\": {:.0}, \
                 \"speedup\": {:.3}, \"t_c_share\": {:.4}, \"t_m_share\": {:.4}, \
                 \"t_b_share\": {:.4}, \"t_r_share\": {:.4} }}{}\n",
                c.shards,
                c.mode,
                c.layout,
                c.rows,
                c.wall_cycles,
                c.total_cycles,
                self.cmp.speedup(c.shards, c.mode, c.layout).unwrap_or(1.0),
                f.computation,
                f.memory,
                f.branch,
                f.resource,
                if i + 1 == self.cmp.cells.len() {
                    ""
                } else {
                    ","
                },
            ));
        }
        let mut host_cells = String::new();
        for (i, h) in self.host.cells.iter().enumerate() {
            host_cells.push_str(&format!(
                "    {{ \"shards\": {}, \"host_seq_secs\": {:.6}, \
                 \"host_par_secs\": {:.6}, \"host_speedup\": {:.3} }}{}\n",
                h.shards,
                h.seq_secs,
                h.par_secs,
                h.host_speedup(),
                if i + 1 == self.host.cells.len() {
                    ""
                } else {
                    ","
                },
            ));
        }
        format!(
            "{{\n  \"benchmark\": \"sharded_scaling\",\n  \"system\": \"{}\",\n  \
             \"query\": \"{}\",\n  \"rows\": {},\n  \"record_bytes\": {},\n  \
             \"cells\": [\n{cells}  ],\n  \
             \"speedup_2shard\": {:.3},\n  \"speedup_4shard\": {:.3},\n  \
             \"speedup_8shard\": {:.3},\n  \"speedup_4shard_batch\": {:.3},\n  \
             \"answers_identical\": {},\n  \
             \"host_cores\": {},\n  \"host_threads\": {},\n  \
             \"host_scaling\": [\n{host_cells}  ],\n  \
             \"host_speedup_4shard\": {:.3}\n}}\n",
            self.cmp.system.letter(),
            self.cmp.query.label(),
            self.cmp.scale.r_records,
            self.cmp.scale.record_bytes,
            self.speedup(2, ExecMode::Row, PageLayout::Nsm),
            self.speedup_4shard(),
            self.speedup(8, ExecMode::Row, PageLayout::Nsm),
            self.speedup(4, ExecMode::Batch, PageLayout::Nsm),
            self.answers_identical(),
            self.host.host_cores,
            self.host.threads,
            self.host_speedup_4shard(),
        )
    }
}

/// Runs the scaling benchmark: the DSS sequential range selection on
/// System C across shards {1,2,4,8} × exec mode × page layout, plus the
/// host-clock scaling of the OS-thread morsel executor (threads = this
/// host's available parallelism).
pub fn run_scale_report() -> ScaleReport {
    run_scale_report_with_threads(host_parallelism())
}

/// [`run_scale_report`] with an explicit worker-thread count for the
/// host-clock measurement (the `--threads N` knob on `scale_compare`).
pub fn run_scale_report_with_threads(threads: usize) -> ScaleReport {
    let cmp = ScalingComparison::run(
        SystemId::C,
        scale_workload(),
        MicroQuery::SequentialRangeSelection,
        &CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled()),
    )
    .expect("scaling comparison runs");
    let host = measure_host_scaling(threads);
    ScaleReport { cmp, host }
}

// ---------------------------------------------------------------------
// host parallelism: wall-clock scaling of the OS-thread morsel executor
// ---------------------------------------------------------------------

/// This host's available hardware parallelism (1 if unknown).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parses an optional `--threads N` / `--threads=N` CLI argument; exits
/// with a usage message on a malformed value.
pub fn parse_threads_arg() -> Option<usize> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let val = if a == "--threads" {
            args.next()
        } else if let Some(v) = a.strip_prefix("--threads=") {
            Some(v.to_string())
        } else {
            continue;
        };
        match val.as_deref().map(str::parse::<usize>) {
            Some(Ok(n)) if n >= 1 => return Some(n),
            _ => {
                eprintln!("usage: --threads N  (N >= 1)");
                std::process::exit(2);
            }
        }
    }
    None
}

/// One shard count's host-clock cell: best-of-`HOST_TIMING_REPS` seconds
/// for the sequential (1-worker) and threaded executor on the Row/NSM
/// DSS scan. Simulated counters are asserted bit-identical between the
/// two before the times are reported, so the speedup compares two runs of
/// *the same* simulated work.
#[derive(Debug, Clone, Copy)]
pub struct HostScalingCell {
    /// Simulated shard (core) count.
    pub shards: usize,
    /// Best host seconds with a single worker thread.
    pub seq_secs: f64,
    /// Best host seconds with the measured worker-thread count.
    pub par_secs: f64,
}

impl HostScalingCell {
    /// Host wall-clock speedup of the threaded run over the 1-worker run.
    pub fn host_speedup(&self) -> f64 {
        self.seq_secs / self.par_secs.max(1e-12)
    }
}

/// Host-clock scaling of [`ShardedDatabase::run_parallel`] across shard
/// counts, measured with `threads` worker threads.
#[derive(Debug, Clone)]
pub struct HostScaling {
    /// `available_parallelism()` on the measuring host — the gate in
    /// `bench_check` only enforces the speedup floor when this is >= 4.
    pub host_cores: usize,
    /// Worker threads used for the parallel runs.
    pub threads: usize,
    /// One cell per shard count in {1, 2, 4, 8}.
    pub cells: Vec<HostScalingCell>,
}

impl HostScaling {
    /// Host wall-clock speedup of the 4-shard scan (the gated headline).
    pub fn host_speedup_4shard(&self) -> f64 {
        self.cells
            .iter()
            .find(|c| c.shards == 4)
            .expect("4-shard cell measured")
            .host_speedup()
    }
}

/// Timing repetitions per (shard count, worker count); the minimum is
/// reported to shed scheduler noise.
const HOST_TIMING_REPS: usize = 3;

/// Measures host seconds for the Row/NSM DSS scan per shard count, with 1
/// worker and with `threads` workers, asserting bit-identical answers and
/// merged counters between the two (the executor's determinism contract).
pub fn measure_host_scaling(threads: usize) -> HostScaling {
    let scale = scale_workload();
    let cfg = CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled());
    let q = compile_micro_sql(scale, &cfg, MicroQuery::SequentialRangeSelection, 0.1);
    let mut cells = Vec::new();
    for &shards in &ScalingComparison::SHARD_COUNTS {
        // One warmed measurement per worker count, each on its own fresh
        // build: the simulator's state (caches, predictor history) carries
        // across runs on one database, so only runs with identical history
        // are comparable bit-for-bit.
        let measure = |pc: &ParallelConfig| {
            let mut db = build_sharded_db_with_layout(
                EngineProfile::system(SystemId::C),
                scale,
                MicroQuery::SequentialRangeSelection,
                &cfg,
                PageLayout::Nsm,
                shards,
            )
            .expect("sharded build");
            db.run_parallel(&q, pc).expect("warm-up run");
            let before = db.snapshots();
            let answer = db.run_parallel(&q, pc).expect("measured run");
            let delta = db.merged_delta(&before);
            // Host seconds: best of a few reps on the warmed database.
            let mut best = f64::INFINITY;
            for _ in 0..HOST_TIMING_REPS {
                let t = Instant::now();
                db.run_parallel(&q, pc).expect("timed run");
                best = best.min(t.elapsed().as_secs_f64());
            }
            (answer, delta, best)
        };
        let seq = ParallelConfig::default().with_workers(1);
        let par = ParallelConfig::default().with_workers(threads);
        let (a, s_delta, seq_secs) = measure(&seq);
        let (b, p_delta, par_secs) = measure(&par);

        // The executor's contract: thread count must not move a single
        // simulated bit.
        assert_eq!((a.rows, a.value.to_bits()), (b.rows, b.value.to_bits()));
        assert_eq!(
            s_delta, p_delta,
            "thread count perturbed simulated counters"
        );
        cells.push(HostScalingCell {
            shards,
            seq_secs,
            par_secs,
        });
    }
    HostScaling {
        host_cores: host_parallelism(),
        threads,
        cells,
    }
}

/// Outcome parity of a seeded fault grid under the threaded executor: each
/// (seed, rate) scenario is run with 1 worker and with `threads` workers,
/// comparing the full typed outcome *and* the merged counter delta.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedChaosParity {
    /// Worker threads compared against the 1-worker baseline.
    pub threads: usize,
    /// Scenarios compared.
    pub runs: usize,
    /// Scenarios whose outcome or counters diverged (must be 0).
    pub diverged: usize,
}

/// Runs the threaded fault-parity check (the `--threads N` knob on
/// `chaos_sweep`): deterministic fault plans must surface the same typed
/// result and bit-identical merged counters at any worker count.
pub fn run_threaded_chaos_parity(threads: usize) -> ThreadedChaosParity {
    let scale = Scale::tiny();
    let cfg = CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled());
    let q = compile_micro_sql(scale, &cfg, MicroQuery::SequentialRangeSelection, 0.1);
    let mut runs = 0;
    let mut diverged = 0;
    for seed in 0..6u64 {
        for rate in [0.0, 1e-3, 1e-2] {
            let outcome = |workers: usize| {
                let mut db = build_sharded_db_with_layout(
                    EngineProfile::system(SystemId::C),
                    scale,
                    MicroQuery::SequentialRangeSelection,
                    &cfg,
                    PageLayout::Nsm,
                    4,
                )
                .expect("sharded build");
                db.set_fault_plan(FaultPlan::uniform(seed, rate));
                let before = db.snapshots();
                let r = db.run_parallel(
                    &q,
                    &ParallelConfig::default()
                        .with_workers(workers)
                        .with_morsel_rows(1024)
                        .with_steal_seed(seed),
                );
                (r, db.merged_delta(&before))
            };
            runs += 1;
            if outcome(1) != outcome(threads) {
                diverged += 1;
            }
        }
    }
    ThreadedChaosParity {
        threads,
        runs,
        diverged,
    }
}

// ---------------------------------------------------------------------
// chaos_sweep: deterministic fault grid + guardrail overhead
// ---------------------------------------------------------------------

/// Rows in the chaos workloads' scanned/probed relation — smaller than the
/// headline scan so the whole fault grid (workloads × rates × seeds) stays
/// cheap enough for CI.
pub const CHAOS_ROWS: u64 = 20_000;
/// Build-side rows of the chaos join workload.
pub const CHAOS_BUILD_ROWS: u64 = 1_500;
/// Per-site fault probabilities swept per workload.
pub const CHAOS_RATES: [f64; 4] = [0.0, 1e-4, 1e-3, 1e-2];
/// Runs (distinct fault-plan seeds) per grid cell.
pub const CHAOS_RUNS_PER_CELL: u32 = 24;

/// The chaos scan workload as SQL (the paper's 10% band on R's domain).
pub const CHAOS_SCAN_SQL: &str = "SELECT AVG(a3) FROM R WHERE a2 > 900 AND a2 < 1101";
/// The chaos join workload as SQL (§3.3 query 2 on the chaos relations).
pub const CHAOS_JOIN_SQL: &str = "SELECT AVG(R.a3) FROM R JOIN S ON R.a2 = S.a1";

/// Builds the chaos scan relation: `CHAOS_ROWS` 20-byte records with the
/// same column roles as the headline scan relation.
fn build_chaos_db(extra: Option<(&str, u64)>) -> Database {
    let mut db = Database::new(
        EngineProfile::system(SystemId::C),
        CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled()),
    );
    db.ctx.instrument = false;
    db.create_table("R", Schema::paper_relation(20)).unwrap();
    db.load_rows(
        "R",
        (0..CHAOS_ROWS).map(|i| {
            let x = i.wrapping_mul(0x9e37_79b9);
            vec![i as i32, (x % 2_000) as i32 + 1, (x % 10_000) as i32, 0, 0]
        }),
    )
    .unwrap();
    if let Some((name, rows)) = extra {
        db.create_table(name, Schema::paper_relation(20)).unwrap();
        // Build-side keys 1..=rows in a1, overlapping R.a2's 1..=2000 domain.
        db.load_rows(
            name,
            (0..rows).map(|i| {
                let x = i.wrapping_mul(0x85eb_ca6b);
                vec![i as i32 + 1, 0, (x % 10_000) as i32, 0, 0]
            }),
        )
        .unwrap();
    }
    db.ctx.instrument = true;
    db
}

/// One (workload × fault-rate) cell of the chaos grid.
#[derive(Debug, Clone, Copy)]
pub struct ChaosCell {
    /// Workload label.
    pub workload: &'static str,
    /// Per-site fault probability of the uniform plan.
    pub rate: f64,
    /// Runs (distinct fault-plan seeds) in the cell.
    pub runs: u32,
    /// Runs that completed with the bit-identical fault-free answer.
    pub ok: u32,
    /// Completed runs that absorbed at least one injected fault or retry.
    pub recovered: u32,
    /// Runs that surfaced a typed error.
    pub errored: u32,
    /// Completed runs whose answer differed from fault-free (must be 0).
    pub wrong: u32,
    /// Faults injected across the cell.
    pub faults: u64,
    /// Shard-router retries across the cell.
    pub retries: u64,
    /// Partitioned-join downgrades across the cell.
    pub downgrades: u64,
}

impl ChaosCell {
    fn new(workload: &'static str, rate: f64) -> ChaosCell {
        ChaosCell {
            workload,
            rate,
            runs: 0,
            ok: 0,
            recovered: 0,
            errored: 0,
            wrong: 0,
            faults: 0,
            retries: 0,
            downgrades: 0,
        }
    }

    fn absorb_run(
        &mut self,
        r: &Result<QueryResult, DbError>,
        expected: &QueryResult,
        faults: u64,
        retries: u64,
        downgrades: u64,
    ) {
        self.runs += 1;
        self.faults += faults;
        self.retries += retries;
        self.downgrades += downgrades;
        match r {
            Ok(got) => {
                if got.rows == expected.rows && got.value.to_bits() == expected.value.to_bits() {
                    self.ok += 1;
                    if faults > 0 || retries > 0 {
                        self.recovered += 1;
                    }
                } else {
                    self.wrong += 1;
                }
            }
            Err(_) => self.errored += 1,
        }
    }
}

/// Deterministic per-rep plan seed: cell salt spread by the golden ratio.
fn chaos_seed(salt: u64, rep: u32) -> u64 {
    salt.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(rep as u64 + 1))
}

/// Sweeps one fault rate on an unsharded database (no retry layer, so any
/// injected fault surfaces as a typed error — unless the engine can degrade,
/// as the partitioned join does on arena faults).
fn run_db_cell(
    db: &mut Database,
    workload: &'static str,
    rate: f64,
    salt: u64,
    q: &Query,
    expected: &QueryResult,
) -> ChaosCell {
    let mut cell = ChaosCell::new(workload, rate);
    for rep in 0..CHAOS_RUNS_PER_CELL {
        db.set_fault_plan(FaultPlan::uniform(chaos_seed(salt, rep), rate));
        let r = db.run(q);
        let stats = db.robustness_stats();
        cell.absorb_run(&r, expected, stats.total_faults(), 0, stats.join_downgrades);
    }
    db.set_fault_plan(FaultPlan::disabled());
    cell
}

/// Sweeps one fault rate on a sharded database, where the router's bounded
/// retries absorb transient faults.
fn run_sharded_cell(
    db: &mut ShardedDatabase,
    workload: &'static str,
    rate: f64,
    salt: u64,
    q: &Query,
    expected: &QueryResult,
) -> ChaosCell {
    let mut cell = ChaosCell::new(workload, rate);
    for rep in 0..CHAOS_RUNS_PER_CELL {
        db.set_fault_plan(FaultPlan::uniform(chaos_seed(salt, rep), rate));
        db.reset_router_stats();
        let r = db.run(q);
        let stats = db.robustness_stats();
        let router = db.router_stats();
        cell.absorb_run(
            &r,
            expected,
            stats.total_faults(),
            router.retries,
            stats.join_downgrades,
        );
    }
    db.set_fault_plan(FaultPlan::disabled());
    cell
}

/// Simulated cycles of the headline scan with guardrails fully off vs armed
/// (zero-rate fault plan + finite-but-generous budget): the cost of the
/// cooperative checkpoints themselves.
fn measure_guardrail_overhead() -> (f64, f64) {
    let measure = |guarded: bool| -> f64 {
        let mut db = build_scan_db(SystemId::C, PageLayout::Nsm);
        if guarded {
            db.set_fault_plan(FaultPlan::uniform(7, 0.0));
            db.set_budget(
                ResourceBudget::unlimited()
                    .with_max_cycles(u64::MAX)
                    .with_max_arena_bytes(u64::MAX),
            );
        }
        let q = scan_query();
        db.run(&q).unwrap(); // warm
        let before = db.cpu().snapshot();
        db.run(&q).unwrap();
        db.cpu().snapshot().delta(&before).cycles
    };
    (measure(false), measure(true))
}

/// The chaos sweep: fault grid over three workloads, the guardrail-overhead
/// measurement, and the budget-pressure join-downgrade scenario.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The measured grid (3 workloads × `CHAOS_RATES`).
    pub cells: Vec<ChaosCell>,
    /// Simulated cycles of the headline scan, guardrails off.
    pub baseline_cycles: f64,
    /// Simulated cycles of the same scan with guardrails armed (zero rates).
    pub guarded_cycles: f64,
    /// Whether the budget-pressured partitioned join degraded to the naive
    /// join and still produced the bit-identical answer.
    pub downgrade_answer_ok: bool,
}

impl ChaosReport {
    /// Completed runs whose answer differed from fault-free — the safety
    /// headline; must be zero.
    pub fn wrong_answers(&self) -> u64 {
        self.cells.iter().map(|c| c.wrong as u64).sum()
    }

    /// Of the runs that saw at least one injected fault, the fraction the
    /// engine absorbed (retry or downgrade) and still answered correctly.
    pub fn recovery_rate(&self) -> f64 {
        let recovered: u64 = self.cells.iter().map(|c| c.recovered as u64).sum();
        let errored: u64 = self.cells.iter().map(|c| c.errored as u64).sum();
        if recovered + errored == 0 {
            1.0
        } else {
            recovered as f64 / (recovered + errored) as f64
        }
    }

    /// Percent simulated-cycle overhead of armed guardrails on the
    /// fault-free headline scan (gated < 2%).
    pub fn guardrail_overhead_pct(&self) -> f64 {
        100.0 * (self.guarded_cycles - self.baseline_cycles) / self.baseline_cycles.max(1e-9)
    }

    /// The `BENCH_chaos.json` document.
    pub fn to_json(&self) -> String {
        let mut cells = String::new();
        for (i, c) in self.cells.iter().enumerate() {
            cells.push_str(&format!(
                "    {{ \"workload\": \"{}\", \"rate\": {}, \"runs\": {}, \"ok\": {}, \
                 \"recovered\": {}, \"errored\": {}, \"wrong\": {}, \"faults\": {}, \
                 \"retries\": {}, \"downgrades\": {} }}{}\n",
                c.workload,
                c.rate,
                c.runs,
                c.ok,
                c.recovered,
                c.errored,
                c.wrong,
                c.faults,
                c.retries,
                c.downgrades,
                if i + 1 == self.cells.len() { "" } else { "," },
            ));
        }
        format!(
            "{{\n  \"benchmark\": \"chaos_sweep\",\n  \"scan_rows\": {},\n  \
             \"build_rows\": {},\n  \"runs_per_cell\": {},\n  \
             \"cells\": [\n{cells}  ],\n  \
             \"wrong_answers\": {},\n  \"recovery_rate\": {:.4},\n  \
             \"baseline_cycles\": {:.0},\n  \"guarded_cycles\": {:.0},\n  \
             \"guardrail_overhead_pct\": {:.4},\n  \"downgrade_answer_ok\": {}\n}}\n",
            CHAOS_ROWS,
            CHAOS_BUILD_ROWS,
            CHAOS_RUNS_PER_CELL,
            self.wrong_answers(),
            self.recovery_rate(),
            self.baseline_cycles,
            self.guarded_cycles,
            self.guardrail_overhead_pct(),
            if self.downgrade_answer_ok { 1 } else { 0 },
        )
    }
}

/// Runs the chaos sweep: for each workload (raw scan, 4-shard scan,
/// partitioned join) and each fault rate, `CHAOS_RUNS_PER_CELL` runs under
/// distinct seeded plans, every answer checked bit-for-bit against the
/// fault-free run. Fresh databases per cell keep the sweep deterministic.
pub fn run_chaos_report() -> ChaosReport {
    // Both workloads are stated as SQL and compiled once against the chaos
    // catalog; the grid below measures the compiled plans.
    let q_scan = sql_query(&build_chaos_db(None), CHAOS_SCAN_SQL);
    let q_join = sql_query(
        &build_chaos_db(Some(("S", CHAOS_BUILD_ROWS))),
        CHAOS_JOIN_SQL,
    );
    let mut cells = Vec::new();

    let scan_expected = build_chaos_db(None).run(&q_scan).unwrap();
    for (ri, &rate) in CHAOS_RATES.iter().enumerate() {
        let mut db = build_chaos_db(None);
        cells.push(run_db_cell(
            &mut db,
            "scan_raw",
            rate,
            0x5CA4_0000 + ri as u64,
            &q_scan,
            &scan_expected,
        ));
    }

    let sharded_expected = build_chaos_db(None).shard(4).unwrap().run(&q_scan).unwrap();
    for (ri, &rate) in CHAOS_RATES.iter().enumerate() {
        let mut db = build_chaos_db(None).shard(4).unwrap();
        cells.push(run_sharded_cell(
            &mut db,
            "scan_4shard",
            rate,
            0x54A4_0000 + ri as u64,
            &q_scan,
            &sharded_expected,
        ));
    }

    let build_join_db = || {
        let mut db = build_chaos_db(Some(("S", CHAOS_BUILD_ROWS)));
        db.set_join_algo(JoinAlgo::PartitionedHash);
        db
    };
    let join_expected = build_join_db().run(&q_join).unwrap();
    for (ri, &rate) in CHAOS_RATES.iter().enumerate() {
        let mut db = build_join_db();
        cells.push(run_db_cell(
            &mut db,
            "join_partitioned",
            rate,
            0x104A_0000 + ri as u64,
            &q_join,
            &join_expected,
        ));
    }

    // Budget-pressure degradation: a tight arena budget must downgrade the
    // partitioned join to the naive join, not fail it — same answer, and the
    // downgrade recorded.
    let mut db = build_join_db();
    db.set_budget(ResourceBudget::unlimited().with_max_arena_bytes(32 * 1024));
    let degraded = db.run(&q_join);
    let downgrade_answer_ok = matches!(
        &degraded,
        Ok(got) if got.rows == join_expected.rows
            && got.value.to_bits() == join_expected.value.to_bits()
    ) && db.robustness_stats().join_downgrades == 1;

    let (baseline_cycles, guarded_cycles) = measure_guardrail_overhead();
    ChaosReport {
        cells,
        baseline_cycles,
        guarded_cycles,
        downgrade_answer_ok,
    }
}

// ---------------------------------------------------------------------
// planner_compare: the SQL planner's picks vs the exhaustive best
// ---------------------------------------------------------------------

/// Rows in the planner scenarios' scanned/probed relation.
pub const PLANNER_SCAN_ROWS: usize = 4096;
/// Build-side row counts of the join scenarios — one comfortably inside the
/// shrunk L2, one far beyond it, so the grid brackets the partitioned
/// join's crossover.
pub const PLANNER_JOIN_BUILDS: [usize; 2] = [128, 4096];
/// L2 capacity for the planner scenarios: shrunk so the join crossover
/// happens at CI-sized builds ([`CpuConfig::with_l2_size`]).
pub const PLANNER_L2_BYTES: u32 = 32 * 1024;

/// The planner validation (a [`PlannerComparison`] grid plus the headline
/// accessors the regression gate reads).
#[derive(Debug, Clone)]
pub struct PlannerReport {
    /// The measured grid: scan selectivity sweep + deep-pipeline scan +
    /// join crossover, each planned from pilot simulation and then
    /// exhaustively measured.
    pub cmp: PlannerComparison,
}

impl PlannerReport {
    /// Fraction of scenarios where the pilot-costed pick was the exhaustive
    /// winner (the baseline-gated headline).
    pub fn planner_win_rate(&self) -> f64 {
        self.cmp.win_rate()
    }

    /// Worst regret across scenarios: actual cycles of the planner's pick
    /// over the exhaustive best. Gated *absolutely* (≤ 1.10): the planner
    /// must stay within 10% of optimal everywhere.
    pub fn max_ratio(&self) -> f64 {
        self.cmp.max_ratio()
    }

    /// Whether the deep-pipeline 50%-selectivity scan chose predication —
    /// the §5.3 headline, rediscovered from simulated branch stalls.
    pub fn predicated_chosen_at_50(&self) -> bool {
        self.cmp
            .cell_named("scan sel=50% deep-pipe")
            .map(|c| c.chosen.contains("predicated"))
            .unwrap_or(false)
    }

    /// Whether the largest join chose the cache-partitioned algorithm —
    /// the L2 crossover, rediscovered from simulated memory stalls.
    pub fn partitioned_chosen_large(&self) -> bool {
        self.cmp
            .cell_named(&format!("join build={}", PLANNER_JOIN_BUILDS[1]))
            .map(|c| c.chosen.ends_with("/partitioned"))
            .unwrap_or(false)
    }

    /// The `BENCH_planner.json` document.
    pub fn to_json(&self) -> String {
        let mut cells = String::new();
        for (i, c) in self.cmp.cells.iter().enumerate() {
            cells.push_str(&format!(
                "    {{ \"label\": \"{}\", \"sql\": \"{}\", \"chosen\": \"{}\", \
                 \"best\": \"{}\", \"chosen_cycles\": {:.0}, \"best_cycles\": {:.0}, \
                 \"regret\": {:.4}, \"optimal\": {} }}{}\n",
                c.label,
                c.sql,
                c.chosen,
                c.best,
                c.chosen_cycles,
                c.best_cycles,
                c.ratio(),
                if c.optimal() { 1 } else { 0 },
                if i + 1 == self.cmp.cells.len() {
                    ""
                } else {
                    ","
                },
            ));
        }
        format!(
            "{{\n  \"benchmark\": \"planner_compare\",\n  \"scan_rows\": {},\n  \
             \"l2_bytes\": {},\n  \"deep_pipe_penalty\": {},\n  \
             \"cells\": [\n{cells}  ],\n  \
             \"planner_win_rate\": {:.4},\n  \"max_ratio\": {:.4},\n  \
             \"predicated_chosen_at_50\": {},\n  \"partitioned_chosen_large\": {}\n}}\n",
            PLANNER_SCAN_ROWS,
            PLANNER_L2_BYTES,
            PlannerComparison::DEEP_PIPE_PENALTY,
            self.planner_win_rate(),
            self.max_ratio(),
            if self.predicated_chosen_at_50() { 1 } else { 0 },
            if self.partitioned_chosen_large() {
                1
            } else {
                0
            },
        )
    }
}

/// Runs the planner validation: plans each scenario's SQL through
/// [`wdtg_memdb::Session::explain`] (pilot-simulated costs only), measures
/// every enumerated candidate for real, and scores the planner's pick.
pub fn run_planner_report() -> PlannerReport {
    let cfg = CpuConfig::pentium_ii_xeon()
        .with_interrupts(InterruptCfg::disabled())
        .with_l2_size(PLANNER_L2_BYTES);
    PlannerReport {
        cmp: PlannerComparison::run(&cfg, PLANNER_SCAN_ROWS, &PLANNER_JOIN_BUILDS)
            .expect("planner comparison runs"),
    }
}

// ---------------------------------------------------------------------
// oltp_bench: concurrent TPC-C over transactions — TPS, p99, safety
// ---------------------------------------------------------------------

/// Concurrent clients of the OLTP benchmark.
pub const OLTP_CLIENTS: usize = 8;
/// Node replicas the clients are dealt across.
pub const OLTP_NODES: usize = 4;
/// Transactions each client must commit.
pub const OLTP_TXNS_PER_CLIENT: usize = 40;

/// The OLTP service benchmark: its configuration and the measured
/// [`OltpReport`]. All gated numbers are simulated (deterministic across
/// hosts); `host_tps` is recorded for information only.
#[derive(Debug, Clone)]
pub struct OltpBenchReport {
    /// The run configuration (scale from `WDTG_SCALE`).
    pub cfg: OltpConfig,
    /// The measured run.
    pub report: OltpReport,
}

impl OltpBenchReport {
    /// Committed simulated throughput — the baseline-gated headline.
    pub fn sim_tps(&self) -> f64 {
        self.report.sim_tps
    }

    /// The `BENCH_oltp.json` document.
    pub fn to_json(&self) -> String {
        let r = &self.report;
        format!(
            "{{\n  \"benchmark\": \"oltp_bench\",\n  \
             \"clients\": {},\n  \"nodes\": {},\n  \"txns_per_client\": {},\n  \
             \"scale_items\": {},\n  \"scale_customers_per_district\": {},\n  \
             \"committed\": {},\n  \"conflicts\": {},\n  \"retries_exhausted\": {},\n  \
             \"per_kind\": {{ \"new_order\": {}, \"payment\": {}, \"order_status\": {}, \
             \"delivery\": {}, \"stock_level\": {} }},\n  \
             \"oltp\": {{ \"sim_tps\": {:.4}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \
             \"wrong_answers\": {}, \"anomalies\": {}, \"recovery_ok\": {}, \
             \"wal_records\": {} }},\n  \
             \"host_tps\": {:.2}\n}}\n",
            r.clients,
            r.nodes,
            self.cfg.txns_per_client,
            self.cfg.scale.items,
            self.cfg.scale.customers_per_district,
            r.committed,
            r.conflicts,
            r.retries_exhausted,
            r.per_kind[0],
            r.per_kind[1],
            r.per_kind[2],
            r.per_kind[3],
            r.per_kind[4],
            r.sim_tps,
            r.p50_ms,
            r.p99_ms,
            r.wrong_answers,
            r.anomalies,
            if r.recovery_ok { 1 } else { 0 },
            r.wal_records,
            r.host_tps,
        )
    }
}

/// Runs the concurrent OLTP benchmark: [`OLTP_CLIENTS`] clients over
/// [`OLTP_NODES`] System C node replicas at the `WDTG_SCALE` data scale,
/// with the oracle and WAL-recovery checks armed.
pub fn run_oltp_report() -> OltpBenchReport {
    let cfg = OltpConfig {
        scale: TpccScale::from_env(),
        clients: OLTP_CLIENTS,
        txns_per_client: OLTP_TXNS_PER_CLIENT,
        nodes: OLTP_NODES,
        workers: 0,
        seed: wdtg_workloads::DEFAULT_SEED,
        retry_cap: 64,
    };
    let report = run_oltp(&cfg, || {
        Database::with_capacity(
            EngineProfile::system(SystemId::C),
            CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled()),
            1 << 16,
        )
    })
    .expect("oltp benchmark runs");
    OltpBenchReport { cfg, report }
}

// ---------------------------------------------------------------------
// Baseline JSON extraction (bench_check)
// ---------------------------------------------------------------------

/// Extracts the first `"key": <number>` after the optional `scope`
/// substring of a `BENCH_*.json` document. Hand-rolled on purpose: the
/// documents are produced by the formatters above, and the workspace takes
/// no serde dependency.
pub fn json_number(text: &str, scope: Option<&str>, key: &str) -> Option<f64> {
    let start = match scope {
        Some(s) => text.find(s)? + s.len(),
        None => 0,
    };
    let pat = format!("\"{key}\":");
    let at = text[start..].find(&pat)? + start + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_number_extracts_scoped_and_unscoped_keys() {
        let doc = "{ \"a\": { \"x\": 1.5 }, \"b\": { \"x\": -2 }, \"y\": 7 }";
        assert_eq!(json_number(doc, None, "x"), Some(1.5));
        assert_eq!(json_number(doc, Some("\"b\""), "x"), Some(-2.0));
        assert_eq!(json_number(doc, None, "y"), Some(7.0));
        assert_eq!(json_number(doc, None, "missing"), None);
        assert_eq!(json_number(doc, Some("\"zzz\""), "x"), None);
    }
}

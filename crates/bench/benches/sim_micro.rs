//! Microbenchmarks of the simulator substrate: the harness must be fast
//! enough to run paper-scale workloads, so its own hot paths are tracked.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use wdtg_sim::{
    segment, BranchSite, BranchUnit, BtbGeom, Cache, CacheGeom, CodeBlock, Cpu, CpuConfig,
    InterruptCfg, MemDep,
};

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/cache");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("l2_access_mixed", |b| {
        let mut cache = Cache::new(CacheGeom {
            size_bytes: 512 * 1024,
            line_bytes: 32,
            assoc: 4,
        });
        let mut i = 0u64;
        b.iter(|| {
            for _ in 0..1024 {
                i = i
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                cache.access(i % (4 << 20), false);
            }
            cache.misses()
        })
    });
    g.finish();
}

fn bench_branch(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/branch");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("predict_train", |b| {
        let mut bu = BranchUnit::new(BtbGeom {
            entries: 512,
            assoc: 4,
            history_bits: 4,
            pattern_entries: 1024,
        });
        let mut i = 0u64;
        b.iter(|| {
            let mut miss = 0u32;
            for _ in 0..1024 {
                i = i.wrapping_add(1);
                let out = bu.execute(0x4000 + (i % 700) * 16, i.is_multiple_of(3), false);
                miss += out.mispredicted as u32;
            }
            miss
        })
    });
    g.finish();
}

fn bench_cpu(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/cpu");
    g.throughput(Throughput::Elements(256));
    g.bench_function("exec_block_plus_loads", |b| {
        let mut cpu =
            Cpu::new(CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled()));
        let block = CodeBlock::builder("bench", 2800)
            .private(segment::PRIVATE, 4096)
            .at(segment::CODE);
        let site = BranchSite {
            addr: segment::CODE + 32,
            backward: false,
        };
        let mut addr = segment::HEAP;
        b.iter(|| {
            for i in 0..256u64 {
                cpu.exec_block(&block);
                cpu.load(addr, 8, MemDep::Demand);
                cpu.branch(site, i % 7 == 0);
                addr += 100;
            }
            cpu.cycles()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cache, bench_branch, bench_cpu);
criterion_main!(benches);

//! Macro benchmarks: one Criterion target per paper experiment, at test
//! scale so `cargo bench` finishes quickly. The printable full-scale
//! regenerations live in `src/bin/` (see DESIGN.md §4).

use criterion::{criterion_group, criterion_main, Criterion};
use wdtg_core::dss::measure_tpcd;
use wdtg_core::figures::{FigureCtx, SelectivitySweep};
use wdtg_core::methodology::{measure_query, Methodology};
use wdtg_core::oltp::measure_tpcc;
use wdtg_memdb::SystemId;
use wdtg_sim::CpuConfig;
use wdtg_workloads::{MicroQuery, Scale, TpccScale, TpcdScale};

fn ctx() -> FigureCtx {
    FigureCtx {
        scale: Scale::tiny(),
        cfg: CpuConfig::pentium_ii_xeon(),
        methodology: Methodology::default(),
    }
}

fn bench_fig5_1_cell(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/fig5_1");
    g.sample_size(10);
    for sys in SystemId::ALL {
        g.bench_function(format!("srs_system_{}", sys.letter()), |b| {
            let ctx = ctx();
            b.iter(|| {
                measure_query(
                    sys,
                    MicroQuery::SequentialRangeSelection,
                    0.1,
                    ctx.scale,
                    &ctx.cfg,
                    &ctx.methodology,
                )
                .unwrap()
                .truth
                .cycles
            })
        });
    }
    g.finish();
}

fn bench_fig5_4_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/fig5_4");
    g.sample_size(10);
    g.bench_function("selectivity_sweep_system_d", |b| {
        let ctx = ctx();
        b.iter(|| SelectivitySweep::run(&ctx).unwrap().points.len())
    });
    g.finish();
}

fn bench_fig5_6_tpcd(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/fig5_6");
    g.sample_size(10);
    g.bench_function("tpcd_suite_system_b", |b| {
        b.iter(|| {
            measure_tpcd(
                SystemId::B,
                TpcdScale::tiny(),
                &CpuConfig::pentium_ii_xeon(),
            )
            .unwrap()
            .truth
            .cycles
        })
    });
    g.finish();
}

fn bench_tpcc(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/tpcc");
    g.sample_size(10);
    g.bench_function("mix_100txns_system_c", |b| {
        b.iter(|| {
            measure_tpcc(
                SystemId::C,
                TpccScale::tiny(),
                &CpuConfig::pentium_ii_xeon(),
                100,
            )
            .unwrap()
            .truth
            .cycles
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig5_1_cell,
    bench_fig5_4_sweep,
    bench_fig5_6_tpcd,
    bench_tpcc
);
criterion_main!(benches);

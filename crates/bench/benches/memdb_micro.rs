//! Microbenchmarks of the DBMS substrate: scan/probe throughput with
//! instrumentation on and off (the difference is the simulation overhead).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use wdtg_memdb::{Database, EngineProfile, ExecMode, Query, Schema, SystemId};
use wdtg_sim::{CpuConfig, InterruptCfg};

fn db_with_rows(sys: SystemId, rows: u64, instrument: bool) -> Database {
    let mut db = Database::new(
        EngineProfile::system(sys),
        CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled()),
    );
    db.create_table("R", Schema::paper_relation(100)).unwrap();
    db.load_rows(
        "R",
        (0..rows).map(|i| {
            let mut r = vec![0i32; 25];
            r[0] = i as i32;
            r[1] = (i % 2000) as i32 + 1;
            r[2] = (i % 97) as i32;
            r
        }),
    )
    .unwrap();
    db.ctx.instrument = instrument;
    db
}

fn bench_scan(c: &mut Criterion) {
    const ROWS: u64 = 20_000;
    let mut g = c.benchmark_group("memdb/seqscan");
    g.throughput(Throughput::Elements(ROWS));
    g.sample_size(10);
    for (label, instrument) in [("instrumented", true), ("raw", false)] {
        g.bench_function(label, |b| {
            let mut db = db_with_rows(SystemId::C, ROWS, instrument);
            let q = Query::range_select_avg("R", 100, 500);
            b.iter(|| db.run(&q).unwrap().rows)
        });
    }
    g.finish();
}

fn bench_index(c: &mut Criterion) {
    const ROWS: u64 = 20_000;
    let mut g = c.benchmark_group("memdb/index");
    g.sample_size(10);
    g.bench_function("point_selects", |b| {
        let mut db = db_with_rows(SystemId::B, ROWS, true);
        db.ctx.instrument = false;
        db.create_index("R", "a1").unwrap();
        db.ctx.instrument = true;
        let mut k = 0;
        b.iter(|| {
            k = (k + 7919) % ROWS as i32;
            db.run(&Query::PointSelect {
                table: "R".into(),
                key_col: "a1".into(),
                key: k,
                read_col: "a3".into(),
            })
            .unwrap()
            .rows
        })
    });
    g.finish();
}

fn bench_exec_modes(c: &mut Criterion) {
    // Row-at-a-time vs vectorized execution of the same range selection:
    // the host-time gap tracks the per-tuple simulation-event collapse.
    const ROWS: u64 = 20_000;
    let mut g = c.benchmark_group("memdb/exec_mode");
    g.throughput(Throughput::Elements(ROWS));
    g.sample_size(10);
    for (label, mode) in [("row", ExecMode::Row), ("batch", ExecMode::Batch)] {
        g.bench_function(label, |b| {
            let mut db = db_with_rows(SystemId::C, ROWS, true).with_exec_mode(mode);
            let q = Query::range_select_avg("R", 100, 500);
            b.iter(|| db.run(&q).unwrap().rows)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scan, bench_index, bench_exec_modes);
criterion_main!(benches);

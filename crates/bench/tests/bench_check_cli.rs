//! Regression tests for `bench_check`'s error paths: a missing baseline
//! file or key must produce a clear, named-file error on stderr and a
//! nonzero exit — *before* any bench re-runs — instead of the raw `panic!`
//! chain it used to die with. (Both tests point the gate at a directory
//! with broken baselines, so they exercise exactly the release-bin paths
//! CI hits and finish in milliseconds.)

use std::path::PathBuf;
use std::process::Command;

const BASELINE_FILES: [&str; 8] = [
    "BENCH_exec.json",
    "BENCH_layout.json",
    "BENCH_join.json",
    "BENCH_branch.json",
    "BENCH_scale.json",
    "BENCH_chaos.json",
    "BENCH_planner.json",
    "BENCH_oltp.json",
];

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wdtg_bench_check_{name}_{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clean scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_gate(dir: &PathBuf) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bench_check"))
        .env("BENCH_BASELINE_DIR", dir)
        .output()
        .expect("bench_check spawns")
}

#[test]
fn missing_baselines_exit_nonzero_and_name_every_expected_file() {
    let dir = scratch_dir("empty");
    let out = run_gate(&dir);
    assert!(
        !out.status.success(),
        "gate must fail when baselines are missing"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    for file in BASELINE_FILES {
        assert!(
            err.contains(file),
            "stderr must name the missing baseline {file}; got:\n{err}"
        );
    }
    assert!(
        err.contains("BENCH_BASELINE_DIR"),
        "stderr must explain how to point the gate elsewhere; got:\n{err}"
    );
    assert!(
        err.contains("scale_compare"),
        "stderr must name the bin that regenerates each baseline; got:\n{err}"
    );
    assert!(
        !err.contains("panicked"),
        "the gate must report errors, not panic; got:\n{err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_key_names_the_file_and_key() {
    let dir = scratch_dir("stale");
    // All files present but stale: none carries its gated key.
    for file in BASELINE_FILES {
        std::fs::write(dir.join(file), "{}\n").expect("write stale baseline");
    }
    let out = run_gate(&dir);
    assert!(
        !out.status.success(),
        "gate must fail when a baseline lacks its gated key"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("BENCH_scale.json") && err.contains("speedup_4shard"),
        "stderr must name the stale file and its missing key; got:\n{err}"
    );
    assert!(
        err.contains("instr_collapse")
            && err.contains("recovery_rate")
            && err.contains("planner_win_rate")
            && err.contains("sim_tps"),
        "all missing keys are reported in one run; got:\n{err}"
    );
    assert!(!err.contains("panicked"), "no panic on stale baselines");
    std::fs::remove_dir_all(&dir).ok();
}

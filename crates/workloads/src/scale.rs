//! Workload scale factors.
//!
//! The paper's microbenchmark database is R = 1.2 M × 100-byte records with
//! `a2` uniform over 1..=40 000, and S = 40 000 records whose primary key
//! `a1` covers that domain, so each S row joins with ~30 R rows (§3.3).
//! Scaled-down variants keep every *ratio* (R:S = 30, a2 domain = |S|) so
//! selectivities and join fan-out behave identically; only absolute sizes
//! change. Tests use [`Scale::tiny`]; figure binaries default to
//! [`Scale::dev`] and accept `WDTG_SCALE=paper` for full size.

/// Dataset sizing for the microbenchmark suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Rows in R.
    pub r_records: u64,
    /// Rows in S (= the `a2` key domain).
    pub s_records: u64,
    /// Record size in bytes (multiple of 4; the paper uses 100 and sweeps
    /// 20–200 in §5.2).
    pub record_bytes: u32,
}

impl Scale {
    /// The paper's full-size database (1.2 M × 100 B; 40 K in S).
    pub fn paper() -> Scale {
        Scale {
            r_records: 1_200_000,
            s_records: 40_000,
            record_bytes: 100,
        }
    }

    /// Default experiment scale: 1/12 of the paper (100 K rows), preserving
    /// all ratios. Figures keep their shape; runs take seconds.
    pub fn dev() -> Scale {
        Scale {
            r_records: 100_020,
            s_records: 3_334,
            record_bytes: 100,
        }
    }

    /// Unit/integration-test scale.
    pub fn tiny() -> Scale {
        Scale {
            r_records: 12_000,
            s_records: 400,
            record_bytes: 100,
        }
    }

    /// Reads `WDTG_SCALE` (`paper`, `dev`, `tiny`; default `dev`).
    pub fn from_env() -> Scale {
        match std::env::var("WDTG_SCALE").as_deref() {
            Ok("paper") => Scale::paper(),
            Ok("tiny") => Scale::tiny(),
            _ => Scale::dev(),
        }
    }

    /// Same scale with a different record size (the §5.2 record-size sweep).
    pub fn with_record_bytes(mut self, bytes: u32) -> Scale {
        self.record_bytes = bytes;
        self
    }

    /// The `a2` domain (1..=domain), which equals |S| so the join fan-out is
    /// |R| / |S| ≈ 30 like the paper's.
    pub fn a2_domain(&self) -> i32 {
        self.s_records as i32
    }

    /// Range bounds `(lo, hi)` for `a2 > lo AND a2 < hi` hitting the target
    /// selectivity, centered in the domain. Qualifying values are
    /// `lo+1 ..= hi-1`.
    ///
    /// Total over its whole input space, with the edge guarantees the sweep
    /// harnesses rely on: any `selectivity <= 0` (and NaN, which `clamp`
    /// would silently pass through and the `as` cast would silently turn
    /// into an empty range even for a full-scan *intent*) yields an exactly
    /// empty range; any `selectivity >= 1` yields exactly the full domain —
    /// at every table scale, including domains of 0 or 1 values where the
    /// old centering arithmetic had nothing to round against.
    pub fn selectivity_range(&self, selectivity: f64) -> (i32, i32) {
        let domain = self.a2_domain().max(0);
        // NaN fails both comparisons below and is treated as 0 explicitly
        // rather than falling out of `clamp` unchanged.
        let sel = if selectivity >= 1.0 {
            1.0
        } else if selectivity > 0.0 {
            selectivity
        } else {
            0.0
        };
        // Round the qualifying width, then force the edges to be exact:
        // floating-point rounding must never shave a value off a full scan
        // or leak one into an empty scan.
        let width = if sel <= 0.0 {
            0
        } else if sel >= 1.0 {
            domain
        } else {
            ((sel * domain as f64).round() as i32).clamp(0, domain)
        };
        let lo = (domain - width) / 2;
        (lo, lo + width + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_section_3_3() {
        let s = Scale::paper();
        assert_eq!(s.r_records, 1_200_000);
        assert_eq!(s.s_records, 40_000);
        assert_eq!(s.record_bytes, 100);
        assert_eq!(s.a2_domain(), 40_000);
        // ~30 R rows per S row.
        assert_eq!(s.r_records / s.s_records, 30);
    }

    #[test]
    fn dev_scale_preserves_ratios() {
        let s = Scale::dev();
        assert_eq!(s.r_records / s.s_records, 30);
    }

    #[test]
    fn selectivity_ranges_hit_targets() {
        let s = Scale::paper();
        for sel in [0.0, 0.01, 0.05, 0.1, 0.5, 1.0] {
            let (lo, hi) = s.selectivity_range(sel);
            let qualifying = (hi - lo - 1).max(0) as f64;
            let got = qualifying / s.a2_domain() as f64;
            assert!((got - sel).abs() < 0.001, "sel {sel}: got {got}");
            assert!(lo >= 0 && hi <= s.a2_domain() + 1);
        }
    }

    /// Number of `a2` values qualifying under `scale.selectivity_range(sel)`.
    fn qualifying(scale: Scale, sel: f64) -> i32 {
        let (lo, hi) = scale.selectivity_range(sel);
        (hi - lo - 1).max(0)
    }

    #[test]
    fn edge_selectivities_are_exact_at_tiny_scales() {
        // Regression: the old arithmetic only guaranteed the 0.0/1.0 edges
        // at comfortable domains. They must be exact at *every* scale.
        for s_records in [0u64, 1, 2, 3, 7, 400] {
            let scale = Scale {
                r_records: s_records * 30,
                s_records,
                record_bytes: 20,
            };
            let domain = scale.a2_domain();
            assert_eq!(qualifying(scale, 0.0), 0, "|S|={s_records}: 0% not empty");
            assert_eq!(
                qualifying(scale, 1.0),
                domain,
                "|S|={s_records}: 100% not full"
            );
            let (lo, hi) = scale.selectivity_range(1.0);
            assert!(lo >= 0 && hi > lo, "|S|={s_records}: inverted range");
            // Qualifying values must lie inside the generated 1..=domain.
            assert!(
                lo >= 0 && hi <= domain + 1,
                "|S|={s_records}: out of domain"
            );
        }
    }

    #[test]
    fn out_of_domain_selectivities_clamp_to_the_edges() {
        let s = Scale::tiny();
        let domain = s.a2_domain();
        assert_eq!(qualifying(s, -0.5), 0);
        assert_eq!(qualifying(s, 1.5), domain);
        assert_eq!(qualifying(s, f64::NEG_INFINITY), 0);
        assert_eq!(qualifying(s, f64::INFINITY), domain);
        // NaN used to slip through `clamp` into the `as` cast; it must be
        // an explicit empty range, not an accident of cast saturation.
        assert_eq!(qualifying(s, f64::NAN), 0);
    }

    #[test]
    fn selectivity_width_is_monotone_in_the_target() {
        for s_records in [3u64, 40, 400] {
            let scale = Scale {
                r_records: s_records * 30,
                s_records,
                record_bytes: 20,
            };
            let mut prev = -1;
            for step in 0..=20 {
                let q = qualifying(scale, step as f64 / 20.0);
                assert!(
                    q >= prev,
                    "|S|={s_records}: width not monotone at step {step}"
                );
                prev = q;
            }
        }
    }
}

//! Workload scale factors.
//!
//! The paper's microbenchmark database is R = 1.2 M × 100-byte records with
//! `a2` uniform over 1..=40 000, and S = 40 000 records whose primary key
//! `a1` covers that domain, so each S row joins with ~30 R rows (§3.3).
//! Scaled-down variants keep every *ratio* (R:S = 30, a2 domain = |S|) so
//! selectivities and join fan-out behave identically; only absolute sizes
//! change. Tests use [`Scale::tiny`]; figure binaries default to
//! [`Scale::dev`] and accept `WDTG_SCALE=paper` for full size.

/// Dataset sizing for the microbenchmark suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Rows in R.
    pub r_records: u64,
    /// Rows in S (= the `a2` key domain).
    pub s_records: u64,
    /// Record size in bytes (multiple of 4; the paper uses 100 and sweeps
    /// 20–200 in §5.2).
    pub record_bytes: u32,
}

impl Scale {
    /// The paper's full-size database (1.2 M × 100 B; 40 K in S).
    pub fn paper() -> Scale {
        Scale {
            r_records: 1_200_000,
            s_records: 40_000,
            record_bytes: 100,
        }
    }

    /// Default experiment scale: 1/12 of the paper (100 K rows), preserving
    /// all ratios. Figures keep their shape; runs take seconds.
    pub fn dev() -> Scale {
        Scale {
            r_records: 100_020,
            s_records: 3_334,
            record_bytes: 100,
        }
    }

    /// Unit/integration-test scale.
    pub fn tiny() -> Scale {
        Scale {
            r_records: 12_000,
            s_records: 400,
            record_bytes: 100,
        }
    }

    /// Reads `WDTG_SCALE` (`paper`, `dev`, `tiny`; default `dev`).
    pub fn from_env() -> Scale {
        match std::env::var("WDTG_SCALE").as_deref() {
            Ok("paper") => Scale::paper(),
            Ok("tiny") => Scale::tiny(),
            _ => Scale::dev(),
        }
    }

    /// Same scale with a different record size (the §5.2 record-size sweep).
    pub fn with_record_bytes(mut self, bytes: u32) -> Scale {
        self.record_bytes = bytes;
        self
    }

    /// The `a2` domain (1..=domain), which equals |S| so the join fan-out is
    /// |R| / |S| ≈ 30 like the paper's.
    pub fn a2_domain(&self) -> i32 {
        self.s_records as i32
    }

    /// Range bounds `(lo, hi)` for `a2 > lo AND a2 < hi` hitting the target
    /// selectivity, centered in the domain. Qualifying values are
    /// `lo+1 ..= hi-1`.
    pub fn selectivity_range(&self, selectivity: f64) -> (i32, i32) {
        let domain = self.a2_domain() as f64;
        let width = (selectivity.clamp(0.0, 1.0) * domain).round() as i32;
        let lo = ((self.a2_domain() - width) / 2).max(0);
        (lo, lo + width + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_section_3_3() {
        let s = Scale::paper();
        assert_eq!(s.r_records, 1_200_000);
        assert_eq!(s.s_records, 40_000);
        assert_eq!(s.record_bytes, 100);
        assert_eq!(s.a2_domain(), 40_000);
        // ~30 R rows per S row.
        assert_eq!(s.r_records / s.s_records, 30);
    }

    #[test]
    fn dev_scale_preserves_ratios() {
        let s = Scale::dev();
        assert_eq!(s.r_records / s.s_records, 30);
    }

    #[test]
    fn selectivity_ranges_hit_targets() {
        let s = Scale::paper();
        for sel in [0.0, 0.01, 0.05, 0.1, 0.5, 1.0] {
            let (lo, hi) = s.selectivity_range(sel);
            let qualifying = (hi - lo - 1).max(0) as f64;
            let got = qualifying / s.a2_domain() as f64;
            assert!((got - sel).abs() < 0.001, "sel {sel}: got {got}");
            assert!(lo >= 0 && hi <= s.a2_domain() + 1);
        }
    }
}

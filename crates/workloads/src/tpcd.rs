//! TPC-D-like decision-support suite (§5.5).
//!
//! The paper runs "the 17 TPC-D selection queries and a 100-MB database"
//! against systems A, B and D and finds the execution-time breakdown
//! substantially similar to the sequential range selection's. This module
//! provides a lineitem/orders-style database and 17 selection-flavoured
//! queries of varying predicate complexity: range selections, multi-clause
//! expression predicates, arithmetic in predicates, full-table aggregates
//! and three joins.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wdtg_memdb::{AggKind, AggSpec, Database, DbResult, Expr, Query, QueryPredicate, Schema};

/// Scale of the DSS database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpcdScale {
    /// Rows in `lineitem`.
    pub lineitems: u64,
    /// Rows in `orders` (≈ lineitems / 4).
    pub orders: u64,
}

impl TpcdScale {
    /// ≈100 MB of 100-byte records, like the paper's TPC-D database.
    pub fn paper() -> TpcdScale {
        TpcdScale {
            lineitems: 800_000,
            orders: 200_000,
        }
    }

    /// Default experiment scale (seconds per suite run).
    pub fn dev() -> TpcdScale {
        TpcdScale {
            lineitems: 80_000,
            orders: 20_000,
        }
    }

    /// Test scale.
    pub fn tiny() -> TpcdScale {
        TpcdScale {
            lineitems: 8_000,
            orders: 2_000,
        }
    }

    /// Reads `WDTG_SCALE` like [`crate::Scale::from_env`].
    pub fn from_env() -> TpcdScale {
        match std::env::var("WDTG_SCALE").as_deref() {
            Ok("paper") => TpcdScale::paper(),
            Ok("tiny") => TpcdScale::tiny(),
            _ => TpcdScale::dev(),
        }
    }
}

/// lineitem schema: named columns plus filler to 100 bytes (25 ints).
pub fn lineitem_schema() -> Schema {
    let mut names: Vec<String> = [
        "l_orderkey",
        "l_partkey",
        "l_suppkey",
        "l_linenumber",
        "l_quantity",
        "l_extendedprice",
        "l_discount",
        "l_tax",
        "l_returnflag",
        "l_linestatus",
        "l_shipdate",
        "l_commitdate",
        "l_receiptdate",
        "l_shipmode",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    for i in names.len()..25 {
        names.push(format!("l_f{i}"));
    }
    Schema::new(names)
}

/// orders schema: named columns plus filler to 100 bytes.
pub fn orders_schema() -> Schema {
    let mut names: Vec<String> = [
        "o_orderkey",
        "o_custkey",
        "o_orderstatus",
        "o_totalprice",
        "o_orderdate",
        "o_orderpriority",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    for i in names.len()..25 {
        names.push(format!("o_f{i}"));
    }
    Schema::new(names)
}

/// Loads the DSS database (uninstrumented).
pub fn load(db: &mut Database, scale: TpcdScale, seed: u64) -> DbResult<()> {
    db.create_table("lineitem", lineitem_schema())?;
    db.create_table("orders", orders_schema())?;
    let mut rng = StdRng::seed_from_u64(seed);
    let norders = scale.orders.max(1);
    db.load_rows(
        "lineitem",
        (0..scale.lineitems).map(|i| {
            let mut row = vec![0i32; 25];
            row[0] = (i / 4) as i32 % norders as i32 + 1; // orderkey
            row[1] = rng.random_range(1..=200_000); // partkey
            row[2] = rng.random_range(1..=10_000); // suppkey
            row[3] = (i % 4) as i32 + 1; // linenumber
            row[4] = rng.random_range(1..=50); // quantity
            row[5] = rng.random_range(100..100_000); // extendedprice (cents)
            row[6] = rng.random_range(0..=10); // discount (%)
            row[7] = rng.random_range(0..=8); // tax (%)
            row[8] = rng.random_range(0..3); // returnflag
            row[9] = rng.random_range(0..2); // linestatus
            row[10] = rng.random_range(0..2556); // shipdate (day)
            row[11] = row[10] + rng.random_range(0..90); // commitdate
            row[12] = row[10] + rng.random_range(1..30); // receiptdate
            row[13] = rng.random_range(0..7); // shipmode
            for c in row.iter_mut().skip(14) {
                *c = rng.random_range(0..1_000_000);
            }
            row
        }),
    )?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0dd5);
    db.load_rows(
        "orders",
        (0..norders).map(|i| {
            let mut row = vec![0i32; 25];
            row[0] = i as i32 + 1;
            row[1] = rng.random_range(1..=30_000);
            row[2] = rng.random_range(0..3);
            row[3] = rng.random_range(1_000..500_000);
            row[4] = rng.random_range(0..2556);
            row[5] = rng.random_range(0..5);
            for c in row.iter_mut().skip(6) {
                *c = rng.random_range(0..1_000_000);
            }
            row
        }),
    )?;
    Ok(())
}

fn li(pred: Option<QueryPredicate>, agg: AggSpec) -> Query {
    Query::SelectAgg {
        table: "lineitem".into(),
        predicate: pred,
        agg,
    }
}

fn range(col: &str, lo: i32, hi: i32) -> Option<QueryPredicate> {
    Some(QueryPredicate::Range {
        col: col.into(),
        lo,
        hi,
    })
}

fn expr(e: Expr) -> Option<QueryPredicate> {
    Some(QueryPredicate::Expr(e))
}

/// The 17 queries (labels Q1..Q17). Column indexes used in expressions refer
/// to the lineitem schema above.
pub fn queries() -> Vec<(String, Query)> {
    // Column indexes for expression predicates.
    const QTY: usize = 4;
    const PRICE: usize = 5;
    const DISC: usize = 6;
    const TAX: usize = 7;
    const RFLAG: usize = 8;
    const LSTATUS: usize = 9;
    const SHIP: usize = 10;
    const COMMIT: usize = 11;
    const RECEIPT: usize = 12;
    const MODE: usize = 13;

    let qs: Vec<Query> = vec![
        // Q1: pricing summary — full scan, aggregate.
        li(
            range("l_shipdate", -1, 2400),
            AggSpec::sum("l_extendedprice"),
        ),
        // Q2: small shipdate window.
        li(
            range("l_shipdate", 1000, 1090),
            AggSpec::avg("l_extendedprice"),
        ),
        // Q3: quantity band.
        li(range("l_quantity", 10, 20), AggSpec::avg("l_extendedprice")),
        // Q4: commit vs receipt lateness (expression).
        li(
            expr(Expr::col(COMMIT).lt(Expr::col(RECEIPT))),
            AggSpec {
                kind: AggKind::Count,
                col: String::new(),
            },
        ),
        // Q5: discount window + quantity cap (the TPC-D Q6 shape).
        li(
            expr(
                Expr::col(DISC)
                    .ge(Expr::lit(2))
                    .and(Expr::col(DISC).le(Expr::lit(4)))
                    .and(Expr::col(QTY).lt(Expr::lit(24)))
                    .and(Expr::col(SHIP).ge(Expr::lit(365)))
                    .and(Expr::col(SHIP).lt(Expr::lit(730))),
            ),
            AggSpec::sum("l_extendedprice"),
        ),
        // Q6: returned items.
        li(
            expr(Expr::col(RFLAG).eq(Expr::lit(2))),
            AggSpec::sum("l_quantity"),
        ),
        // Q7: shipmode in {5,6} and late commit.
        li(
            expr(
                Expr::col(MODE)
                    .ge(Expr::lit(5))
                    .and(Expr::col(COMMIT).lt(Expr::col(RECEIPT)))
                    .and(Expr::col(SHIP).lt(Expr::col(COMMIT))),
            ),
            AggSpec::count(),
        ),
        // Q8: revenue expression predicate — price * (10 - discount), the
        // "extendedprice * (1 - discount)" arithmetic of the original.
        li(
            expr(
                Expr::col(PRICE)
                    .mul(Expr::lit(10).sub(Expr::col(DISC)))
                    .gt(Expr::lit(500_000)),
            ),
            AggSpec::avg("l_discount"),
        ),
        // Q9: open line status in a date window.
        li(
            expr(
                Expr::col(LSTATUS)
                    .eq(Expr::lit(0))
                    .and(Expr::col(SHIP).ge(Expr::lit(1500)))
                    .and(Expr::col(SHIP).lt(Expr::lit(2000))),
            ),
            AggSpec::avg("l_quantity"),
        ),
        // Q10: tax band or high discount.
        li(
            expr(
                Expr::col(TAX)
                    .ge(Expr::lit(6))
                    .or(Expr::col(DISC).ge(Expr::lit(9))),
            ),
            AggSpec::avg("l_extendedprice"),
        ),
        // Q11: full-table max.
        li(
            None,
            AggSpec {
                kind: AggKind::Max,
                col: "l_extendedprice".into(),
            },
        ),
        // Q12: full-table count.
        li(None, AggSpec::count()),
        // Q13: partkey hot range.
        li(
            range("l_partkey", 1_000, 21_000),
            AggSpec::avg("l_quantity"),
        ),
        // Q14: suppkey range with quantity filter.
        li(
            expr(
                Expr::col(2)
                    .lt(Expr::lit(2_000))
                    .and(Expr::col(QTY).ge(Expr::lit(25))),
            ),
            AggSpec::sum("l_quantity"),
        ),
        // Q15-Q17: joins with orders.
        Query::JoinAgg {
            left: "lineitem".into(),
            right: "orders".into(),
            left_col: "l_orderkey".into(),
            right_col: "o_orderkey".into(),
            agg: AggSpec::avg("l_extendedprice"),
        },
        Query::JoinAgg {
            left: "lineitem".into(),
            right: "orders".into(),
            left_col: "l_orderkey".into(),
            right_col: "o_orderkey".into(),
            agg: AggSpec::sum("l_quantity"),
        },
        Query::JoinAgg {
            left: "lineitem".into(),
            right: "orders".into(),
            left_col: "l_orderkey".into(),
            right_col: "o_orderkey".into(),
            agg: AggSpec::avg("l_discount"),
        },
    ];
    qs.into_iter()
        .enumerate()
        .map(|(i, q)| (format!("Q{}", i + 1), q))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdtg_memdb::{EngineProfile, SystemId};
    use wdtg_sim::{CpuConfig, InterruptCfg};

    #[test]
    fn seventeen_queries() {
        let qs = queries();
        assert_eq!(qs.len(), 17, "the paper runs the 17 TPC-D queries");
        assert_eq!(qs[0].0, "Q1");
        assert_eq!(qs[16].0, "Q17");
    }

    #[test]
    fn suite_runs_and_returns_plausible_counts() {
        let mut db = Database::new(
            EngineProfile::system(SystemId::B),
            CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled()),
        );
        let scale = TpcdScale::tiny();
        load(&mut db, scale, 7).unwrap();
        let mut nonzero = 0;
        for (label, q) in queries() {
            let res = db.run(&q).unwrap_or_else(|e| panic!("{label}: {e}"));
            if res.rows > 0 {
                nonzero += 1;
            }
            assert!(res.rows <= scale.lineitems, "{label} rows {0}", res.rows);
        }
        assert!(
            nonzero >= 15,
            "almost all queries select something: {nonzero}"
        );
    }

    #[test]
    fn join_queries_match_fanout() {
        let mut db = Database::new(
            EngineProfile::system(SystemId::A),
            CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled()),
        );
        let scale = TpcdScale::tiny();
        load(&mut db, scale, 7).unwrap();
        let (_, q15) = &queries()[14];
        let res = db.run(q15).unwrap();
        // Every lineitem row has a matching order.
        assert_eq!(res.rows, scale.lineitems);
    }
}

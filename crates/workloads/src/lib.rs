//! # wdtg-workloads — the paper's workloads
//!
//! Dataset generators and query suites for reproducing *"DBMSs On A Modern
//! Processor: Where Does Time Go?"* (VLDB 1999):
//!
//! * [`micro`] — the §3.3 microbenchmark: relation R (1.2 M × 100 B, `a2`
//!   uniform over 1..=40 000), relation S (40 K rows, `a1` primary key), and
//!   the three queries (sequential range selection, indexed range selection,
//!   sequential join) at any selectivity;
//! * [`join`] — the join chapter's workload: the same two-table equijoin
//!   with independent build/probe scale knobs and a match-rate
//!   (join-selectivity) knob, sized so the naive hash table overflows L2;
//! * [`tpcd`] — the §5.5 TPC-D-like DSS suite (17 selection-flavoured
//!   queries over a lineitem/orders database, ≈100 MB at paper scale);
//! * [`tpcc`] — the §5.5 TPC-C-like OLTP mix (single warehouse, 10 logical
//!   clients, five transaction types in the standard mix);
//! * [`oltp`] — the concurrent deployment of that mix: N clients over
//!   snapshot-isolation transactions on a tier of node replicas, with
//!   conflict/abort/retry, TPS + tail latency, a host-side correctness
//!   oracle and a WAL crash-recovery check;
//! * [`scale`] — scale factors preserving every paper ratio, selected via
//!   `WDTG_SCALE=paper|dev|tiny`.

#![warn(missing_docs)]

pub mod join;
pub mod micro;
pub mod oltp;
pub mod scale;
pub mod tpcc;
pub mod tpcd;

pub use join::JoinSpec;
pub use micro::{
    declare_shard_keys, load_microbench, load_microbench_with_layout, prepare,
    prepare_sharded_with_layout, prepare_with_layout, query, MicroQuery, SweepSpec, DEFAULT_SEED,
};
pub use oltp::{run_oltp, OltpConfig, OltpReport};
pub use scale::Scale;
pub use tpcc::{TpccDriver, TpccScale, TxnKind};
pub use tpcd::TpcdScale;

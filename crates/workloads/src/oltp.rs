//! Concurrent TPC-C driver over the transaction layer (§5.5, at service
//! scale).
//!
//! [`crate::tpcc`]'s single-stream driver reproduces the paper's setup: ten
//! logical clients sharing one command stream, no concurrency control
//! exercised. This module is the OLTP deployment the paper's numbers get
//! quoted into: N clients issuing the five-transaction mix *concurrently*
//! under snapshot isolation — overlapping begin/commit windows, real
//! write-write conflicts on the district and warehouse hot rows, abort and
//! retry — with throughput (TPS) and tail latency (p99) measured in
//! simulated time on the paper's 400 MHz processor model.
//!
//! # Execution model
//!
//! Clients are dealt round-robin across `nodes` independent single-core
//! database replicas (a shared-nothing service tier; node count is fixed by
//! config, decoupled from host threads, so results are reproducible on any
//! machine). Nodes run in parallel on OS threads via
//! [`wdtg_memdb::run_jobs_parallel`]. Within a node, concurrency is *logical
//! and deterministic*: execution proceeds in rounds, and in each round every
//! active client [`begins`](wdtg_memdb::Database::begin) against the same
//! committed state, stages its whole transaction through
//! [`txn_run`](wdtg_memdb::Database::txn_run), and then the commits are
//! applied in a per-round rotated client order. All snapshots in a round
//! overlap, so first-committer-wins conflict detection fires exactly as it
//! would under free-running concurrency; a conflicted client retries the
//! same transaction in the next round (its latency accumulates across
//! attempts). The rotation guarantees progress: the first committer of a
//! round can never conflict.
//!
//! # Correctness checks
//!
//! Every run double-checks itself against a host-side oracle that tracks
//! the effects of *committed* transactions only: warehouse/district YTD
//! sums, per-district order sequence numbers, per-customer balance deltas,
//! per-item stock deltas, and the exact set of committed order ids.
//! Mismatches count as `wrong_answers`; duplicate order keys and phantom
//! rows from aborted transactions count as `anomalies`. Each node also
//! replays its write-ahead log into a freshly-loaded replica and compares
//! [`state_digest`](wdtg_memdb::Database::state_digest)s — `recovery_ok`
//! means every node's log replay reproduced its final database
//! bit-identically.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wdtg_memdb::{run_jobs_parallel, Database, DbError, DbResult, Query, TxnId};

use crate::tpcc::{self, TpccScale, TxnKind};

/// Configuration for one concurrent OLTP run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OltpConfig {
    /// Data scale of every node replica.
    pub scale: TpccScale,
    /// Total concurrent clients, dealt round-robin across nodes.
    pub clients: usize,
    /// Transactions each client must commit.
    pub txns_per_client: usize,
    /// Independent database replicas (capped at `clients`). Fixed by
    /// config — not by host cores — so simulated results are
    /// machine-independent.
    pub nodes: usize,
    /// Host OS threads executing node replicas (`0` = one per host core).
    /// Affects wall-clock time only, never simulated results.
    pub workers: usize,
    /// Seed for data load and client transaction streams.
    pub seed: u64,
    /// Consecutive conflict-aborts before a transaction is abandoned
    /// (counted in [`OltpReport::retries_exhausted`]; the round rotation
    /// makes hitting this essentially impossible).
    pub retry_cap: u32,
}

impl OltpConfig {
    /// A service-shaped default: 8 clients over 4 nodes.
    pub fn new(scale: TpccScale) -> OltpConfig {
        OltpConfig {
            scale,
            clients: 8,
            txns_per_client: 50,
            nodes: 4,
            workers: 0,
            seed: 42,
            retry_cap: 64,
        }
    }
}

/// Results of a concurrent OLTP run. All simulated quantities (TPS,
/// latencies, conflict counts, check outcomes) are bit-identical across
/// hosts and worker counts for a fixed config; only
/// [`OltpReport::host_tps`] varies.
#[derive(Debug, Clone, PartialEq)]
pub struct OltpReport {
    /// Clients and nodes actually run (nodes after capping at clients).
    pub clients: usize,
    /// Node replica count.
    pub nodes: usize,
    /// Committed transactions across all nodes.
    pub committed: u64,
    /// Committed transactions per kind
    /// `[new_order, payment, order_status, delivery, stock_level]`.
    pub per_kind: [u64; 5],
    /// Commit attempts refused by first-committer-wins conflict detection.
    pub conflicts: u64,
    /// Transactions abandoned after [`OltpConfig::retry_cap`] conflicts.
    pub retries_exhausted: u64,
    /// Committed throughput in simulated transactions/second: total
    /// commits divided by the slowest node's simulated busy time.
    pub sim_tps: f64,
    /// Median committed-transaction latency in simulated milliseconds
    /// (sum of all attempts' simulated time, staging plus commit).
    pub p50_ms: f64,
    /// 99th-percentile committed-transaction latency, simulated ms.
    pub p99_ms: f64,
    /// Committed throughput against host wall-clock time (informational;
    /// varies with host load and `workers`).
    pub host_tps: f64,
    /// Oracle mismatches: committed effects that the final database does
    /// not reflect (lost updates, wrong sums, unreadable committed rows).
    pub wrong_answers: u64,
    /// Serialization anomalies: duplicate order keys, or phantom rows
    /// escaped from aborted transactions.
    pub anomalies: u64,
    /// Whether every node's WAL replay into a fresh replica reproduced the
    /// final database bit-identically (by [`Database::state_digest`]).
    pub recovery_ok: bool,
    /// Total WAL records across nodes (including op, commit and abort
    /// records).
    pub wal_records: u64,
}

/// One pre-generated transaction. Parameters are fixed at generation time;
/// values that must reflect committed state (order ids, delivery targets)
/// are resolved at execution time from the snapshot, so a retry re-derives
/// them.
#[derive(Debug, Clone)]
enum TxnSpec {
    NewOrder {
        c_id: i32,
        d_id: i32,
        lines: Vec<(i32, i32)>,
    },
    Payment {
        c_id: i32,
        d_id: i32,
        amount: i32,
        h_key: i32,
    },
    OrderStatus {
        c_id: i32,
        pick: u64,
    },
    Delivery {
        pick: u64,
    },
    StockLevel {
        d_id: i32,
        probes: Vec<i32>,
    },
}

impl TxnSpec {
    fn kind(&self) -> TxnKind {
        match self {
            TxnSpec::NewOrder { .. } => TxnKind::NewOrder,
            TxnSpec::Payment { .. } => TxnKind::Payment,
            TxnSpec::OrderStatus { .. } => TxnKind::OrderStatus,
            TxnSpec::Delivery { .. } => TxnKind::Delivery,
            TxnSpec::StockLevel { .. } => TxnKind::StockLevel,
        }
    }
}

fn kind_slot(kind: TxnKind) -> usize {
    match kind {
        TxnKind::NewOrder => 0,
        TxnKind::Payment => 1,
        TxnKind::OrderStatus => 2,
        TxnKind::Delivery => 3,
        TxnKind::StockLevel => 4,
    }
}

/// Generates client `id`'s full transaction stream (the standard
/// 45/43/4/4/4 mix) deterministically from the run seed.
fn client_specs(cfg: &OltpConfig, id: usize) -> Vec<TxnSpec> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0xC11E_0000 + id as u64).wrapping_mul(0x9e37));
    let customers = (cfg.scale.customers_per_district * 10) as i32;
    let items = cfg.scale.items as i32;
    let mut specs = Vec::with_capacity(cfg.txns_per_client);
    for t in 0..cfg.txns_per_client {
        let spec = match rng.random_range(0..100) {
            0..=44 => {
                let c_id = rng.random_range(1..=customers);
                let d_id = rng.random_range(1..=10);
                let ol_cnt = rng.random_range(5..=15);
                let lines = (0..ol_cnt)
                    .map(|_| (rng.random_range(1..=items), rng.random_range(1..=10)))
                    .collect();
                TxnSpec::NewOrder { c_id, d_id, lines }
            }
            45..=87 => TxnSpec::Payment {
                c_id: rng.random_range(1..=customers),
                d_id: rng.random_range(1..=10),
                amount: rng.random_range(100..5_000),
                h_key: (id as i32 + 1) * 1_000_000 + t as i32,
            },
            88..=91 => TxnSpec::OrderStatus {
                c_id: rng.random_range(1..=customers),
                pick: rng.random_range(0..u64::MAX),
            },
            92..=95 => TxnSpec::Delivery {
                pick: rng.random_range(0..u64::MAX),
            },
            _ => TxnSpec::StockLevel {
                d_id: rng.random_range(1..=10),
                probes: (0..20).map(|_| rng.random_range(1..=items)).collect(),
            },
        };
        specs.push(spec);
    }
    specs
}

/// Effects a staged transaction will have *if it commits* — applied to the
/// node oracle only on successful commit.
enum StagedEffect {
    NewOrder {
        d_id: i32,
        o_id: i32,
        ol_cnt: i32,
        items: Vec<i32>,
    },
    Payment {
        c_id: i32,
        d_id: i32,
        amount: i32,
    },
    Delivery {
        credited: Vec<i32>,
    },
    ReadOnly,
}

/// Host-side model of committed state, per node.
#[derive(Default)]
struct Oracle {
    w_ytd: i64,
    d_ytd: [i64; 10],
    d_seq: [i64; 10],
    /// Committed `(o_id, ol_cnt)` in commit order.
    orders: Vec<(i32, i32)>,
    stock_delta: BTreeMap<i32, i64>,
    cust_delta: BTreeMap<i32, i64>,
    history_rows: u64,
    order_lines: u64,
}

impl Oracle {
    fn apply(&mut self, eff: &StagedEffect) {
        match eff {
            StagedEffect::NewOrder {
                d_id,
                o_id,
                ol_cnt,
                items,
            } => {
                self.d_seq[(*d_id - 1) as usize] += 1;
                self.orders.push((*o_id, *ol_cnt));
                self.order_lines += *ol_cnt as u64;
                for &i in items {
                    *self.stock_delta.entry(i).or_insert(0) -= 1;
                }
            }
            StagedEffect::Payment { c_id, d_id, amount } => {
                self.w_ytd += *amount as i64;
                self.d_ytd[(*d_id - 1) as usize] += *amount as i64;
                *self.cust_delta.entry(*c_id).or_insert(0) -= *amount as i64;
                self.history_rows += 1;
            }
            StagedEffect::Delivery { credited } => {
                for &c in credited {
                    *self.cust_delta.entry(c).or_insert(0) += 10;
                }
            }
            StagedEffect::ReadOnly => {}
        }
    }
}

struct ClientRun {
    id: usize,
    specs: std::vec::IntoIter<TxnSpec>,
    current: Option<TxnSpec>,
    retries: u32,
    lat_cycles: f64,
}

struct NodeOutcome {
    committed: u64,
    per_kind: [u64; 5],
    conflicts: u64,
    retries_exhausted: u64,
    latencies: Vec<f64>,
    cycles: f64,
    wrong_answers: u64,
    anomalies: u64,
    recovery_ok: bool,
    wal_records: u64,
}

fn point(table: &str, key_col: &str, key: i32, read_col: &str) -> Query {
    Query::PointSelect {
        table: table.into(),
        key_col: key_col.into(),
        key,
        read_col: read_col.into(),
    }
}

fn add(table: &str, key_col: &str, key: i32, set_col: &str, delta: i32) -> Query {
    Query::UpdateAdd {
        table: table.into(),
        key_col: key_col.into(),
        key,
        set_col: set_col.into(),
        delta,
    }
}

/// Stages `spec`'s statements inside transaction `tid` and returns the
/// effect to apply to the oracle if the commit later succeeds.
fn stage(db: &mut Database, tid: TxnId, spec: &TxnSpec, oracle: &Oracle) -> DbResult<StagedEffect> {
    match spec {
        TxnSpec::NewOrder { c_id, d_id, lines } => {
            db.txn_run(tid, &point("customer", "c_id", *c_id, "c_balance"))?;
            // The order id is derived from the district sequence *in this
            // snapshot*: concurrent NewOrders on one district derive the
            // same id and collide on the district row, so only one commits.
            let nv = db.txn_run(tid, &add("district", "d_id", *d_id, "d_next_o_id", 1))?;
            let seq = nv.value as i64 - 1;
            let o_id = d_id * 1_000_000 + seq as i32;
            let mut order = vec![0i32; 15];
            order[0] = o_id;
            order[1] = *c_id;
            order[2] = *d_id;
            order[3] = lines.len() as i32;
            db.txn_run(
                tid,
                &Query::InsertRow {
                    table: "orders".into(),
                    values: order,
                },
            )?;
            for (line_no, &(i_id, qty)) in lines.iter().enumerate() {
                db.txn_run(tid, &point("item", "i_id", i_id, "i_price"))?;
                db.txn_run(tid, &add("stock", "s_i_id", i_id, "s_quantity", -1))?;
                let mut ol = vec![0i32; 15];
                ol[0] = o_id * 16 + line_no as i32;
                ol[1] = o_id;
                ol[2] = i_id;
                ol[3] = qty;
                db.txn_run(
                    tid,
                    &Query::InsertRow {
                        table: "order_line".into(),
                        values: ol,
                    },
                )?;
            }
            Ok(StagedEffect::NewOrder {
                d_id: *d_id,
                o_id,
                ol_cnt: lines.len() as i32,
                items: lines.iter().map(|&(i, _)| i).collect(),
            })
        }
        TxnSpec::Payment {
            c_id,
            d_id,
            amount,
            h_key,
        } => {
            db.txn_run(tid, &add("warehouse", "w_id", 1, "w_ytd", *amount))?;
            db.txn_run(tid, &add("district", "d_id", *d_id, "d_ytd", *amount))?;
            db.txn_run(tid, &add("customer", "c_id", *c_id, "c_balance", -*amount))?;
            let mut h = vec![0i32; 15];
            h[0] = *h_key;
            h[1] = *c_id;
            h[2] = *amount;
            db.txn_run(
                tid,
                &Query::InsertRow {
                    table: "history".into(),
                    values: h,
                },
            )?;
            Ok(StagedEffect::Payment {
                c_id: *c_id,
                d_id: *d_id,
                amount: *amount,
            })
        }
        TxnSpec::OrderStatus { c_id, pick } => {
            db.txn_run(tid, &point("customer", "c_id", *c_id, "c_balance"))?;
            if !oracle.orders.is_empty() {
                let (o_id, _) = oracle.orders[(*pick % oracle.orders.len() as u64) as usize];
                db.txn_run(tid, &point("orders", "o_id", o_id, "o_ol_cnt"))?;
                db.txn_run(tid, &point("order_line", "ol_o_id", o_id, "ol_qty"))?;
            }
            Ok(StagedEffect::ReadOnly)
        }
        TxnSpec::Delivery { pick } => {
            let mut credited = Vec::new();
            for k in 0..10u64 {
                if oracle.orders.is_empty() {
                    break;
                }
                let (o_id, _) =
                    oracle.orders[((pick.wrapping_add(k)) % oracle.orders.len() as u64) as usize];
                let got = db.txn_run(tid, &point("orders", "o_id", o_id, "o_c_id"))?;
                if got.rows > 0 {
                    let c = got.value as i32;
                    db.txn_run(tid, &add("customer", "c_id", c, "c_balance", 10))?;
                    credited.push(c);
                }
            }
            Ok(StagedEffect::Delivery { credited })
        }
        TxnSpec::StockLevel { d_id, probes } => {
            db.txn_run(tid, &point("district", "d_id", *d_id, "d_next_o_id"))?;
            for &i_id in probes {
                db.txn_run(tid, &point("stock", "s_i_id", i_id, "s_quantity"))?;
            }
            Ok(StagedEffect::ReadOnly)
        }
    }
}

/// Runs one node: its client subset in deterministic overlapping rounds.
/// `fresh` is an identically-configured empty replica used by the
/// verification pass (initial-image reads, then WAL recovery).
fn run_node(
    mut db: Database,
    fresh: Database,
    cfg: &OltpConfig,
    ids: Vec<usize>,
) -> DbResult<NodeOutcome> {
    db.ctx.instrument = false;
    tpcc::load(&mut db, cfg.scale, cfg.seed)?;
    db.ctx.instrument = true;

    let mut clients: Vec<ClientRun> = ids
        .iter()
        .map(|&id| ClientRun {
            id,
            specs: client_specs(cfg, id).into_iter(),
            current: None,
            retries: 0,
            lat_cycles: 0.0,
        })
        .collect();
    let mut oracle = Oracle::default();
    let mut out = NodeOutcome {
        committed: 0,
        per_kind: [0; 5],
        conflicts: 0,
        retries_exhausted: 0,
        latencies: Vec::new(),
        cycles: 0.0,
        wrong_answers: 0,
        anomalies: 0,
        recovery_ok: true,
        wal_records: 0,
    };
    let base_cycles = db.cpu().cycles();

    let mut round: usize = 0;
    loop {
        // Active clients this round: anyone retrying or with specs left.
        let mut batch: Vec<usize> = Vec::new();
        for (ci, c) in clients.iter_mut().enumerate() {
            if c.current.is_none() {
                c.current = c.specs.next();
                c.retries = 0;
                c.lat_cycles = 0.0;
            }
            if c.current.is_some() {
                batch.push(ci);
            }
        }
        if batch.is_empty() {
            break;
        }
        // Rotate the commit order so no client is permanently last (the
        // first committer of a round never conflicts).
        let rot = round % batch.len();
        batch.rotate_left(rot);

        // Phase 1: everyone begins and stages against the same committed
        // state — all snapshots in the round overlap.
        let mut staged: Vec<(usize, TxnId, StagedEffect, TxnKind)> = Vec::new();
        for &ci in &batch {
            let spec = clients[ci]
                .current
                .clone()
                .expect("active client has a spec");
            let t0 = db.cpu().cycles();
            db.txn_overhead();
            db.session_touch(clients[ci].id as u32, 72 * 1024);
            let tid = db.begin();
            let eff = stage(&mut db, tid, &spec, &oracle)?;
            clients[ci].lat_cycles += db.cpu().cycles() - t0;
            staged.push((ci, tid, eff, spec.kind()));
        }

        // Phase 2: commit in rotated client order; first committer wins.
        for (ci, tid, eff, kind) in staged {
            let t0 = db.cpu().cycles();
            let res = db.commit(tid);
            clients[ci].lat_cycles += db.cpu().cycles() - t0;
            match res {
                Ok(_ts) => {
                    oracle.apply(&eff);
                    out.committed += 1;
                    out.per_kind[kind_slot(kind)] += 1;
                    out.latencies.push(clients[ci].lat_cycles);
                    clients[ci].current = None;
                }
                Err(DbError::TxnConflict { .. }) => {
                    out.conflicts += 1;
                    clients[ci].retries += 1;
                    if clients[ci].retries > cfg.retry_cap {
                        out.retries_exhausted += 1;
                        clients[ci].current = None;
                    }
                }
                Err(e) => return Err(e),
            }
        }
        round += 1;
    }
    out.cycles = db.cpu().cycles() - base_cycles;
    out.wal_records = db.wal().records().len() as u64;

    verify_node(&mut db, fresh, cfg, &oracle, &mut out)?;
    Ok(out)
}

/// Checks the final database against the oracle and replays the WAL into a
/// fresh replica, comparing digests. Runs uninstrumented — verification is
/// not part of the measured workload.
fn verify_node(
    db: &mut Database,
    mut fresh: Database,
    cfg: &OltpConfig,
    oracle: &Oracle,
    out: &mut NodeOutcome,
) -> DbResult<()> {
    db.ctx.instrument = false;

    // The fresh replica doubles as the pre-run image (for reading initial
    // balances/stock) and, after WAL replay, as the recovery check.
    fresh.ctx.instrument = false;
    tpcc::load(&mut fresh, cfg.scale, cfg.seed)?;

    let check = |got: f64, want: f64, wrong: &mut u64| {
        if (got - want).abs() > 0.5 {
            *wrong += 1;
        }
    };

    // Warehouse and district running sums, and the order sequence.
    let w = db.run(&point("warehouse", "w_id", 1, "w_ytd"))?;
    check(w.value, oracle.w_ytd as f64, &mut out.wrong_answers);
    for d in 1..=10i32 {
        let ytd = db.run(&point("district", "d_id", d, "d_ytd"))?;
        check(
            ytd.value,
            oracle.d_ytd[(d - 1) as usize] as f64,
            &mut out.wrong_answers,
        );
        let nxt = db.run(&point("district", "d_id", d, "d_next_o_id"))?;
        check(
            nxt.value,
            (1 + oracle.d_seq[(d - 1) as usize]) as f64,
            &mut out.wrong_answers,
        );
    }

    // Every committed order must be present exactly once with its line
    // count; duplicates are serialization anomalies.
    for &(o_id, ol_cnt) in &oracle.orders {
        let got = db.run(&point("orders", "o_id", o_id, "o_ol_cnt"))?;
        if got.rows == 0 {
            out.wrong_answers += 1;
        } else if got.rows > 1 {
            out.anomalies += 1;
        } else {
            check(got.value, ol_cnt as f64, &mut out.wrong_answers);
        }
    }

    // Touched stock and customer rows: final = initial + committed delta.
    for (&i_id, &delta) in &oracle.stock_delta {
        let init = fresh.run(&point("stock", "s_i_id", i_id, "s_quantity"))?;
        let got = db.run(&point("stock", "s_i_id", i_id, "s_quantity"))?;
        check(got.value, init.value + delta as f64, &mut out.wrong_answers);
    }
    for (&c_id, &delta) in &oracle.cust_delta {
        let init = fresh.run(&point("customer", "c_id", c_id, "c_balance"))?;
        let got = db.run(&point("customer", "c_id", c_id, "c_balance"))?;
        check(got.value, init.value + delta as f64, &mut out.wrong_answers);
    }

    // Aborted transactions must leave no rows behind: grown tables hold
    // exactly the committed row counts.
    let counts = [
        ("orders", oracle.orders.len() as u64),
        ("order_line", oracle.order_lines),
        ("history", oracle.history_rows),
    ];
    for (table, want) in counts {
        if db.table(table)?.heap.n_records != want {
            out.anomalies += 1;
        }
    }

    // Crash recovery: replaying the full WAL into the fresh replica must
    // reproduce the final database bit-for-bit.
    let records = db.wal().records().to_vec();
    fresh.replay_wal(&records, db.wal().commit_count())?;
    if fresh.state_digest() != db.state_digest() {
        out.recovery_ok = false;
    }
    Ok(())
}

/// Runs the concurrent TPC-C mix per `cfg`, constructing each node replica
/// with `mk_db` (which fixes the engine profile and CPU model).
///
/// Simulated results are deterministic for a fixed config: the same
/// commits, conflicts, TPS and latency distribution on every host and
/// every `workers` setting.
pub fn run_oltp<F>(cfg: &OltpConfig, mk_db: F) -> DbResult<OltpReport>
where
    F: Fn() -> Database + Sync,
{
    let nodes = cfg.nodes.min(cfg.clients).max(1);
    let jobs: Vec<Vec<usize>> = (0..nodes)
        .map(|n| (0..cfg.clients).filter(|c| c % nodes == n).collect())
        .collect();
    let workers = if cfg.workers > 0 {
        cfg.workers
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };

    let wall = std::time::Instant::now();
    let outcomes = run_jobs_parallel(jobs, workers, cfg.seed, |_n, ids| {
        run_node(mk_db(), mk_db(), cfg, ids)
    });
    let wall_secs = wall.elapsed().as_secs_f64().max(1e-9);

    let mut report = OltpReport {
        clients: cfg.clients,
        nodes,
        committed: 0,
        per_kind: [0; 5],
        conflicts: 0,
        retries_exhausted: 0,
        sim_tps: 0.0,
        p50_ms: 0.0,
        p99_ms: 0.0,
        host_tps: 0.0,
        wrong_answers: 0,
        anomalies: 0,
        recovery_ok: true,
        wal_records: 0,
    };
    let mut latencies: Vec<f64> = Vec::new();
    let mut max_cycles = 0.0f64;
    for outcome in outcomes {
        let o = outcome?;
        report.committed += o.committed;
        for k in 0..5 {
            report.per_kind[k] += o.per_kind[k];
        }
        report.conflicts += o.conflicts;
        report.retries_exhausted += o.retries_exhausted;
        report.wrong_answers += o.wrong_answers;
        report.anomalies += o.anomalies;
        report.recovery_ok &= o.recovery_ok;
        report.wal_records += o.wal_records;
        latencies.extend(o.latencies);
        max_cycles = max_cycles.max(o.cycles);
    }

    // 400 MHz processor model: cycles / 4e8 = seconds.
    let sim_secs = (max_cycles / 4e8).max(1e-12);
    report.sim_tps = report.committed as f64 / sim_secs;
    report.host_tps = report.committed as f64 / wall_secs;
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    report.p50_ms = quantile(&latencies, 0.50) / 4e5;
    report.p99_ms = quantile(&latencies, 0.99) / 4e5;
    Ok(report)
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdtg_memdb::{EngineProfile, SystemId};
    use wdtg_sim::{CpuConfig, InterruptCfg};

    fn mk_db() -> Database {
        Database::new(
            EngineProfile::system(SystemId::C),
            CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled()),
        )
    }

    fn tiny_cfg() -> OltpConfig {
        OltpConfig {
            scale: TpccScale::tiny(),
            clients: 4,
            txns_per_client: 10,
            nodes: 2,
            workers: 2,
            seed: 7,
            retry_cap: 64,
        }
    }

    #[test]
    fn concurrent_mix_commits_cleanly() {
        let cfg = tiny_cfg();
        let r = run_oltp(&cfg, mk_db).unwrap();
        assert_eq!(
            r.committed + r.retries_exhausted,
            (cfg.clients * cfg.txns_per_client) as u64
        );
        assert_eq!(r.retries_exhausted, 0, "round rotation guarantees progress");
        assert_eq!(r.wrong_answers, 0, "oracle mismatch");
        assert_eq!(r.anomalies, 0, "serialization anomaly");
        assert!(r.recovery_ok, "WAL replay digest mismatch");
        assert!(r.sim_tps > 0.0 && r.p99_ms >= r.p50_ms);
    }

    #[test]
    fn overlapping_writers_do_conflict() {
        // Many clients on one node hammer the single warehouse row (43%
        // Payment mix) — with all snapshots overlapping per round, the
        // non-first committers must lose.
        let cfg = OltpConfig {
            scale: TpccScale::tiny(),
            clients: 6,
            txns_per_client: 8,
            nodes: 1,
            workers: 1,
            seed: 3,
            retry_cap: 64,
        };
        let r = run_oltp(&cfg, mk_db).unwrap();
        assert!(r.conflicts > 0, "expected write-write conflicts: {r:?}");
        assert_eq!((r.wrong_answers, r.anomalies), (0, 0), "{r:?}");
        assert!(r.recovery_ok);
    }

    #[test]
    fn simulated_results_are_host_independent() {
        let a = run_oltp(&tiny_cfg(), mk_db).unwrap();
        // Different worker count: same simulated outcome, bit for bit.
        let mut cfg = tiny_cfg();
        cfg.workers = 1;
        let b = run_oltp(&cfg, mk_db).unwrap();
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.conflicts, b.conflicts);
        assert_eq!(a.per_kind, b.per_kind);
        assert_eq!(a.sim_tps.to_bits(), b.sim_tps.to_bits());
        assert_eq!(a.p99_ms.to_bits(), b.p99_ms.to_bits());
    }
}

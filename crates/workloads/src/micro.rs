//! The paper's microbenchmark: relations R and S plus the three queries
//! (sequential range selection, indexed range selection, sequential join).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wdtg_memdb::{Database, DbResult, PageLayout, Query, Schema, ShardedDatabase};

use crate::scale::Scale;

/// Deterministic seed used for all dataset generation unless overridden.
pub const DEFAULT_SEED: u64 = 0x5744_5447; // "WDTG"

/// The three microbenchmark queries of §3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroQuery {
    /// Sequential range selection (SRS).
    SequentialRangeSelection,
    /// Indexed range selection (IRS) — same query with an index on `a2`.
    IndexedRangeSelection,
    /// Sequential join (SJ).
    SequentialJoin,
}

impl MicroQuery {
    /// Paper's abbreviations.
    pub fn label(self) -> &'static str {
        match self {
            MicroQuery::SequentialRangeSelection => "SRS",
            MicroQuery::IndexedRangeSelection => "IRS",
            MicroQuery::SequentialJoin => "SJ",
        }
    }

    /// All three, in paper order.
    pub const ALL: [MicroQuery; 3] = [
        MicroQuery::SequentialRangeSelection,
        MicroQuery::IndexedRangeSelection,
        MicroQuery::SequentialJoin,
    ];
}

/// A selectivity-sweep specification: the x-axis of a T_B experiment.
///
/// The paper's Fig 5.4 samples {0, 1, 5, 10, 50, 100}% — dense at the low
/// end where the DSS queries live. A *branch-stall* sweep needs the
/// interior instead: misprediction probability on the qualify branch peaks
/// where the direction is least predictable, near 50%, so the branch sweep
/// samples 1% → 99% with extra points around the middle.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Selectivities to measure, ascending, each in `[0.0, 1.0]`.
    pub selectivities: Vec<f64>,
}

impl SweepSpec {
    /// The branch-stall sweep: 1% → 99%, dense around the 50% misprediction
    /// peak (`branch_compare`, `SelectivityComparison`).
    pub fn branch_sweep() -> SweepSpec {
        SweepSpec {
            selectivities: vec![0.01, 0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9, 0.99],
        }
    }

    /// A shorter interior sweep for CI-sized assertions: keeps the ±10-point
    /// band around 50% resolvable at a fraction of the measurement count.
    pub fn branch_sweep_coarse() -> SweepSpec {
        SweepSpec {
            selectivities: vec![0.01, 0.25, 0.4, 0.5, 0.6, 0.75, 0.99],
        }
    }

    /// The paper's Fig 5.4 x-axis (0%, 1%, 5%, 10%, 50%, 100%).
    pub fn fig5_4() -> SweepSpec {
        SweepSpec {
            selectivities: vec![0.0, 0.01, 0.05, 0.1, 0.5, 1.0],
        }
    }
}

/// Generates R's rows: `a1` sequential unique, `a2` uniform over the domain
/// (1..=|S|), `a3` uniform values to aggregate, the rest filler (§3.3:
/// "`<rest of fields>` stands for a list of integers that is not used by any
/// of the queries").
pub fn r_rows(scale: Scale, seed: u64) -> impl Iterator<Item = Vec<i32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ncols = (scale.record_bytes / 4) as usize;
    let domain = scale.a2_domain();
    (0..scale.r_records).map(move |i| {
        let mut row = vec![0i32; ncols];
        row[0] = i as i32;
        row[1] = rng.random_range(1..=domain);
        row[2] = rng.random_range(0..10_000);
        for c in row.iter_mut().skip(3) {
            *c = rng.random_range(0..1_000_000);
        }
        row
    })
}

/// Generates S's rows: `a1` is the primary key 1..=|S| (every R row joins
/// with exactly the rows sharing its `a2` value — ~30 on average).
pub fn s_rows(scale: Scale, seed: u64) -> impl Iterator<Item = Vec<i32>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5353_5353);
    let ncols = (scale.record_bytes / 4) as usize;
    (0..scale.s_records).map(move |i| {
        let mut row = vec![0i32; ncols];
        row[0] = i as i32 + 1;
        for c in row.iter_mut().skip(1) {
            *c = rng.random_range(0..1_000_000);
        }
        row
    })
}

/// Loads R (and S) into `db` at the given scale, uninstrumented. Tables are
/// created in the database's current page layout
/// ([`Database::set_page_layout`]); use [`load_microbench_with_layout`] to
/// pick one explicitly.
pub fn load_microbench(db: &mut Database, scale: Scale, with_s: bool) -> DbResult<()> {
    db.create_table("R", Schema::paper_relation(scale.record_bytes))?;
    db.load_rows("R", r_rows(scale, DEFAULT_SEED))?;
    if with_s {
        db.create_table("S", Schema::paper_relation(scale.record_bytes))?;
        db.load_rows("S", s_rows(scale, DEFAULT_SEED))?;
    }
    Ok(())
}

/// [`load_microbench`] with an explicit page layout for the §3.3 relations
/// (the layout knob the NSM-vs-PAX comparisons turn). The database's
/// default layout for other tables is left unchanged.
pub fn load_microbench_with_layout(
    db: &mut Database,
    scale: Scale,
    with_s: bool,
    layout: PageLayout,
) -> DbResult<()> {
    let prev = db.page_layout();
    db.set_page_layout(layout);
    let res = load_microbench(db, scale, with_s);
    db.set_page_layout(prev);
    res
}

/// Builds the paper query at the requested selectivity.
/// For [`MicroQuery::IndexedRangeSelection`], the caller must have created
/// the index on `R.a2` (see [`prepare`]).
pub fn query(scale: Scale, q: MicroQuery, selectivity: f64) -> Query {
    match q {
        MicroQuery::SequentialRangeSelection | MicroQuery::IndexedRangeSelection => {
            let (lo, hi) = scale.selectivity_range(selectivity);
            Query::range_select_avg("R", lo, hi)
        }
        MicroQuery::SequentialJoin => Query::join_avg("R", "S"),
    }
}

/// The paper query at the requested selectivity as SQL text — the form the
/// [`wdtg_memdb::sql`] frontend takes. Compiling the returned string against
/// a prepared database yields exactly [`query`]'s hand-built plan (the
/// golden contract `sql_matches_hand_built_queries` pins), so benches can
/// state their workloads in SQL without changing a single measured cycle.
pub fn query_sql(scale: Scale, q: MicroQuery, selectivity: f64) -> String {
    match q {
        MicroQuery::SequentialRangeSelection | MicroQuery::IndexedRangeSelection => {
            let (lo, hi) = scale.selectivity_range(selectivity);
            format!("SELECT AVG(a3) FROM R WHERE a2 > {lo} AND a2 < {hi}")
        }
        MicroQuery::SequentialJoin => "SELECT AVG(R.a3) FROM R JOIN S ON R.a2 = S.a1".into(),
    }
}

/// Prepares a database for one microbenchmark query: loads R (and S for the
/// join) and creates the `a2` index for the indexed selection.
pub fn prepare(db: &mut Database, scale: Scale, q: MicroQuery) -> DbResult<()> {
    load_microbench(db, scale, q == MicroQuery::SequentialJoin)?;
    if q == MicroQuery::IndexedRangeSelection {
        db.create_index("R", "a2")?;
    }
    Ok(())
}

/// [`prepare`] with an explicit page layout for the relations. The
/// database's default layout for other tables is left unchanged.
pub fn prepare_with_layout(
    db: &mut Database,
    scale: Scale,
    q: MicroQuery,
    layout: PageLayout,
) -> DbResult<()> {
    let prev = db.page_layout();
    db.set_page_layout(layout);
    let res = prepare(db, scale, q);
    db.set_page_layout(prev);
    res
}

/// Declares the microbenchmark's shard keys: R on `a2` — the column every
/// §3.3 query selects or joins on — and S on its `a1` primary key. Because
/// the join is `R.a2 = S.a1`, sharding both sides on their join column with
/// the same hash co-partitions them: matching rows land on the same shard
/// and each shard's join is local ([`wdtg_memdb::Database::shard`]).
pub fn declare_shard_keys(db: &mut Database) -> DbResult<()> {
    db.set_shard_key("R", "a2")?;
    if db.table("S").is_ok() {
        db.set_shard_key("S", "a1")?;
    }
    Ok(())
}

/// [`prepare_with_layout`] split across `shards` hash-partitioned cores:
/// loads the microbenchmark into `db`, declares the co-partitioning keys
/// ([`declare_shard_keys`]) and re-partitions via
/// [`wdtg_memdb::Database::shard`]. `shards = 1` produces a trivially
/// sharded database with single-core behaviour.
pub fn prepare_sharded_with_layout(
    mut db: Database,
    scale: Scale,
    q: MicroQuery,
    layout: PageLayout,
    shards: usize,
) -> DbResult<ShardedDatabase> {
    prepare_with_layout(&mut db, scale, q, layout)?;
    declare_shard_keys(&mut db)?;
    db.shard(shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdtg_memdb::{EngineProfile, SystemId};
    use wdtg_sim::{CpuConfig, InterruptCfg};

    fn tiny_db() -> Database {
        Database::new(
            EngineProfile::system(SystemId::B),
            CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled()),
        )
    }

    #[test]
    fn selectivity_is_hit_within_tolerance() {
        let scale = Scale::tiny();
        let mut db = tiny_db();
        prepare(&mut db, scale, MicroQuery::SequentialRangeSelection).unwrap();
        for sel in [0.01, 0.1, 0.5] {
            let q = query(scale, MicroQuery::SequentialRangeSelection, sel);
            let res = db.run(&q).unwrap();
            let got = res.rows as f64 / scale.r_records as f64;
            assert!(
                (got - sel).abs() < 0.02,
                "target {sel}, got {got} ({} rows)",
                res.rows
            );
        }
    }

    #[test]
    fn join_fanout_matches_paper_shape() {
        let scale = Scale::tiny();
        let mut db = tiny_db();
        prepare(&mut db, scale, MicroQuery::SequentialJoin).unwrap();
        let res = db
            .run(&query(scale, MicroQuery::SequentialJoin, 0.1))
            .unwrap();
        // Every R row joins exactly once with S's primary key.
        assert_eq!(res.rows, scale.r_records);
    }

    #[test]
    fn pax_layout_gives_identical_answers() {
        let scale = Scale::tiny();
        for q in MicroQuery::ALL {
            let mut nsm = tiny_db();
            prepare(&mut nsm, scale, q).unwrap();
            let mut pax = tiny_db();
            prepare_with_layout(&mut pax, scale, q, PageLayout::Pax).unwrap();
            let query = query(scale, q, 0.1);
            let a = nsm.run(&query).unwrap();
            let b = pax.run(&query).unwrap();
            assert_eq!(a.rows, b.rows, "{q:?}: row counts differ across layouts");
            assert!(
                (a.value - b.value).abs() < 1e-9,
                "{q:?}: values differ across layouts"
            );
        }
    }

    #[test]
    fn sharded_prepare_answers_match_single_core() {
        let scale = Scale::tiny();
        for q in MicroQuery::ALL {
            let mut whole = tiny_db();
            prepare(&mut whole, scale, q).unwrap();
            let query = query(scale, q, 0.1);
            let expect = whole.run(&query).unwrap();
            for shards in [1usize, 4] {
                let mut sharded =
                    prepare_sharded_with_layout(tiny_db(), scale, q, PageLayout::Nsm, shards)
                        .unwrap();
                let got = sharded.run(&query).unwrap();
                assert_eq!(expect.rows, got.rows, "{q:?} x{shards}: rows diverged");
                assert_eq!(
                    expect.value, got.value,
                    "{q:?} x{shards}: value must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn sql_matches_hand_built_queries() {
        let scale = Scale::tiny();
        for q in MicroQuery::ALL {
            let mut db = tiny_db();
            prepare(&mut db, scale, q).unwrap();
            for sel in [0.01, 0.1, 0.5] {
                let sql = query_sql(scale, q, sel);
                let compiled = match wdtg_memdb::sql::compile(&db, &sql).expect(&sql) {
                    wdtg_memdb::sql::BoundStatement::Scalar(c) => c,
                    other => panic!("{sql}: expected scalar, got {other:?}"),
                };
                assert_eq!(compiled, query(scale, q, sel), "{q:?} sel={sel}: {sql}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let scale = Scale::tiny();
        let a: Vec<Vec<i32>> = r_rows(scale, 42).take(10).collect();
        let b: Vec<Vec<i32>> = r_rows(scale, 42).take(10).collect();
        assert_eq!(a, b);
        let c: Vec<Vec<i32>> = r_rows(scale, 43).take(10).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn a2_stays_in_domain() {
        let scale = Scale::tiny();
        for row in r_rows(scale, DEFAULT_SEED).take(2000) {
            assert!(row[1] >= 1 && row[1] <= scale.a2_domain());
        }
    }
}

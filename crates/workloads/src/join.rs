//! The join chapter's workload: the paper's two-table equijoin (§3.3,
//! query 2: `select avg(R.a3) from R, S where R.a2 = S.a1`) with its own
//! scale knobs, so join experiments can size the build side against the L2
//! independently of the selection experiments' [`crate::scale::Scale`].
//!
//! * **Build side** `S`: `a1` is the primary key `1..=build_rows`.
//! * **Probe side** `R`: `a2` is the join key. A `match_rate` fraction of
//!   probe rows draw `a2` uniformly from S's key domain (each finds exactly
//!   one match); the rest draw from a disjoint negative domain and find
//!   none — the workload's join-selectivity knob.
//!
//! The default spec sizes the build side so a naive join's hash table
//! (≈32 bytes/row of directory + entry pool) is ~3× the 512 KB L2 — the
//! regime where the paper finds the join memory-bound and where the
//! radix-partitioned join has something to win.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wdtg_memdb::{Database, DbResult, PageLayout, Query, Schema};

use crate::micro::DEFAULT_SEED;

/// Sizing and selectivity of one join experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinSpec {
    /// Rows in the build relation S (= the join-key domain).
    pub build_rows: u64,
    /// Rows in the probe relation R.
    pub probe_rows: u64,
    /// Record size of both relations in bytes (multiple of 4).
    pub record_bytes: u32,
    /// Fraction of probe rows whose key lands in S's domain (0.0..=1.0).
    pub match_rate: f64,
}

impl Default for JoinSpec {
    /// The bench default: build side ≈3× the 512 KB L2 as a hash table,
    /// probe side 3× the build side (the paper's R:S shape, compressed),
    /// 20-byte records so loading stays fast, every probe matching.
    fn default() -> JoinSpec {
        JoinSpec {
            build_rows: 30_000,
            probe_rows: 90_000,
            record_bytes: 20,
            match_rate: 1.0,
        }
    }
}

impl JoinSpec {
    /// The §3.3 microbenchmark join at a [`crate::scale::Scale`]'s sizes
    /// (R = probe, S = build, |R|/|S| = 30).
    pub fn from_scale(scale: crate::scale::Scale) -> JoinSpec {
        JoinSpec {
            build_rows: scale.s_records,
            probe_rows: scale.r_records,
            record_bytes: scale.record_bytes,
            match_rate: 1.0,
        }
    }

    /// A CI/test-sized spec that keeps the default's cache regime (naive
    /// build table still past the L2) at a fraction of the runtime.
    pub fn test_scale() -> JoinSpec {
        JoinSpec {
            build_rows: 20_000,
            probe_rows: 40_000,
            record_bytes: 20,
            match_rate: 1.0,
        }
    }

    /// Same spec with a different match rate.
    pub fn with_match_rate(mut self, rate: f64) -> JoinSpec {
        self.match_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Expected join cardinality: matching probe rows find exactly one
    /// partner (S.a1 is unique). The striping in [`probe_rows`] telescopes
    /// to exactly `floor(probe_rows * match_rate)` matches.
    pub fn expected_rows(&self) -> u64 {
        (self.probe_rows as f64 * self.match_rate).floor() as u64
    }
}

/// Generates S's rows: `a1` the primary key `1..=build_rows`, the rest
/// filler.
pub fn build_rows(spec: JoinSpec, seed: u64) -> impl Iterator<Item = Vec<i32>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5353_5353);
    let ncols = (spec.record_bytes / 4) as usize;
    (0..spec.build_rows).map(move |i| {
        let mut row = vec![0i32; ncols];
        row[0] = i as i32 + 1;
        for c in row.iter_mut().skip(1) {
            *c = rng.random_range(0..1_000_000);
        }
        row
    })
}

/// Generates R's rows: `a1` sequential, `a2` the join key (in-domain with
/// probability `match_rate`, out-of-domain — negative — otherwise), `a3`
/// the aggregated value.
pub fn probe_rows(spec: JoinSpec, seed: u64) -> impl Iterator<Item = Vec<i32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ncols = (spec.record_bytes / 4) as usize;
    let domain = spec.build_rows.max(1) as i32;
    (0..spec.probe_rows).map(move |i| {
        let mut row = vec![0i32; ncols];
        row[0] = i as i32;
        // Deterministic striping hits the match rate exactly; the key draw
        // itself stays random.
        let matches =
            (i as f64 * spec.match_rate).floor() < ((i + 1) as f64 * spec.match_rate).floor();
        row[1] = if matches {
            rng.random_range(1..=domain)
        } else {
            -rng.random_range(1..=domain)
        };
        row[2] = rng.random_range(0..10_000);
        for c in row.iter_mut().skip(3) {
            *c = rng.random_range(0..1_000_000);
        }
        row
    })
}

/// Loads R and S into `db` at the given spec (uninstrumented, in the
/// database's current page layout) and optionally builds the non-clustered
/// index on `S.a1` the index-nested-loop strategy probes. Hash strategies
/// ignore the index, so building it keeps one dataset comparable across
/// all three join algorithms.
pub fn prepare(db: &mut Database, spec: JoinSpec, index_inner: bool) -> DbResult<()> {
    db.create_table("R", Schema::paper_relation(spec.record_bytes))?;
    db.load_rows("R", probe_rows(spec, DEFAULT_SEED))?;
    db.create_table("S", Schema::paper_relation(spec.record_bytes))?;
    db.load_rows("S", build_rows(spec, DEFAULT_SEED))?;
    if index_inner {
        db.create_index("S", "a1")?;
    }
    Ok(())
}

/// [`prepare`] with an explicit page layout for both relations.
pub fn prepare_with_layout(
    db: &mut Database,
    spec: JoinSpec,
    index_inner: bool,
    layout: PageLayout,
) -> DbResult<()> {
    let prev = db.page_layout();
    db.set_page_layout(layout);
    let res = prepare(db, spec, index_inner);
    db.set_page_layout(prev);
    res
}

/// The join query (identical for every system and strategy).
pub fn query() -> Query {
    Query::join_avg("R", "S")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdtg_memdb::testutil::quiet;
    use wdtg_memdb::{EngineProfile, JoinAlgo, SystemId};

    fn tiny_spec() -> JoinSpec {
        JoinSpec {
            build_rows: 400,
            probe_rows: 3_000,
            record_bytes: 20,
            match_rate: 1.0,
        }
    }

    #[test]
    fn every_probe_row_matches_at_full_match_rate() {
        let spec = tiny_spec();
        let mut db = Database::new(EngineProfile::system(SystemId::C), quiet());
        prepare(&mut db, spec, false).unwrap();
        let res = db.run(&query()).unwrap();
        assert_eq!(res.rows, spec.probe_rows);
        assert_eq!(res.rows, spec.expected_rows());
    }

    #[test]
    fn match_rate_prunes_the_join_cardinality() {
        for rate in [0.0, 0.25, 0.5] {
            let spec = tiny_spec().with_match_rate(rate);
            let mut db = Database::new(EngineProfile::system(SystemId::A), quiet());
            prepare(&mut db, spec, false).unwrap();
            let res = db.run(&query()).unwrap();
            assert_eq!(
                res.rows,
                spec.expected_rows(),
                "match rate {rate}: got {} rows",
                res.rows
            );
        }
    }

    #[test]
    fn strategies_agree_on_the_workload() {
        let spec = tiny_spec().with_match_rate(0.7);
        let mut results = Vec::new();
        for algo in [
            JoinAlgo::Hash,
            JoinAlgo::PartitionedHash,
            JoinAlgo::IndexNestedLoop,
        ] {
            let mut db =
                Database::new(EngineProfile::system(SystemId::B), quiet()).with_join_algo(algo);
            prepare(&mut db, spec, true).unwrap();
            results.push(db.run(&query()).unwrap());
        }
        assert_eq!(results[0].rows, results[1].rows);
        assert_eq!(results[0].rows, results[2].rows);
        assert!((results[0].value - results[1].value).abs() < 1e-9);
        assert!((results[0].value - results[2].value).abs() < 1e-9);
    }

    #[test]
    fn expected_rows_matches_the_striping_count() {
        // Rates where probe_rows * rate is inexact must still agree with
        // the telescoped stripe count probe_rows() actually produces.
        for &(n, rate) in &[(10u64, 0.55), (7, 0.5), (9, 0.77), (3_000, 1.0 / 3.0)] {
            let spec = JoinSpec {
                build_rows: 10,
                probe_rows: n,
                record_bytes: 20,
                match_rate: rate,
            };
            let stripes = (0..n)
                .filter(|&i| (i as f64 * rate).floor() < ((i + 1) as f64 * rate).floor())
                .count() as u64;
            assert_eq!(spec.expected_rows(), stripes, "n={n} rate={rate}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = tiny_spec();
        let a: Vec<Vec<i32>> = probe_rows(spec, 7).take(50).collect();
        let b: Vec<Vec<i32>> = probe_rows(spec, 7).take(50).collect();
        assert_eq!(a, b);
    }
}

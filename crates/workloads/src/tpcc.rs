//! TPC-C-like OLTP workload (§5.5).
//!
//! The paper runs "a 10-user, 1-warehouse TPC-C workload" and reports a very
//! different profile from DSS: CPI of 2.5–4.5, 60–80% of time in memory
//! stalls dominated by L2 data *and* instruction misses, and higher resource
//! stalls. This module provides a single-warehouse schema, the five
//! transaction types in their standard mix, and a deterministic 10-client
//! driver issuing a single interleaved command stream (the paper's setup is
//! also one command stream — no concurrency control is exercised).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wdtg_memdb::{Database, DbResult, Query, Schema};

/// Scale knobs for the OLTP database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpccScale {
    /// Items (and stock rows).
    pub items: u64,
    /// Customers per district (10 districts).
    pub customers_per_district: u64,
}

impl TpccScale {
    /// Near-standard single-warehouse sizing.
    pub fn paper() -> TpccScale {
        TpccScale {
            items: 100_000,
            customers_per_district: 3_000,
        }
    }

    /// Default experiment scale: the data working set (stock + customers +
    /// growing orders) is several MB — far beyond the 512 KB L2, so random
    /// point accesses miss like the paper's TPC-C does.
    pub fn dev() -> TpccScale {
        TpccScale {
            items: 40_000,
            customers_per_district: 1_000,
        }
    }

    /// Test scale.
    pub fn tiny() -> TpccScale {
        TpccScale {
            items: 1_000,
            customers_per_district: 50,
        }
    }

    /// Resolves a scale name: `None` (variable unset) means [`TpccScale::dev`];
    /// `"paper"`, `"dev"` and `"tiny"` name their scales; anything else is
    /// reported as an error rather than silently mapped to a default — a
    /// typo like `WDTG_SCALE=papr` used to run the dev scale and publish its
    /// numbers as paper-scale results.
    pub fn from_name(name: Option<&str>) -> Result<TpccScale, String> {
        match name {
            None => Ok(TpccScale::dev()),
            Some("paper") => Ok(TpccScale::paper()),
            Some("dev") => Ok(TpccScale::dev()),
            Some("tiny") => Ok(TpccScale::tiny()),
            Some(other) => Err(format!(
                "unrecognized WDTG_SCALE value {other:?}: expected one of \
                 \"paper\", \"dev\", \"tiny\" (or unset for dev)"
            )),
        }
    }

    /// Reads `WDTG_SCALE` (`paper`/`dev`/`tiny`; unset means `dev`).
    ///
    /// # Panics
    /// Panics on an unrecognized value instead of silently falling back to
    /// `dev` — see [`TpccScale::from_name`].
    pub fn from_env() -> TpccScale {
        let var = std::env::var("WDTG_SCALE").ok();
        match TpccScale::from_name(var.as_deref()) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    fn customers(&self) -> u64 {
        self.customers_per_district * 10
    }
}

/// The five TPC-C transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum TxnKind {
    NewOrder,
    Payment,
    OrderStatus,
    Delivery,
    StockLevel,
}

fn small_schema(key_cols: &[&str], filler_to: usize) -> Schema {
    let mut names: Vec<String> = key_cols.iter().map(|s| s.to_string()).collect();
    for i in names.len()..filler_to {
        names.push(format!("f{i}"));
    }
    Schema::new(names)
}

/// Loads the single-warehouse database and its indexes (uninstrumented).
pub fn load(db: &mut Database, scale: TpccScale, seed: u64) -> DbResult<()> {
    let mut rng = StdRng::seed_from_u64(seed);

    // warehouse(w_id, w_ytd, ...) — 1 row.
    db.create_table("warehouse", small_schema(&["w_id", "w_ytd"], 10))?;
    db.load_rows(
        "warehouse",
        std::iter::once({
            let mut r = vec![0i32; 10];
            r[0] = 1;
            r
        }),
    )?;
    db.create_index("warehouse", "w_id")?;

    // district(d_id, d_next_o_id, d_ytd, ...) — 10 rows.
    db.create_table(
        "district",
        small_schema(&["d_id", "d_next_o_id", "d_ytd"], 15),
    )?;
    db.load_rows(
        "district",
        (0..10).map(|d| {
            let mut r = vec![0i32; 15];
            r[0] = d + 1;
            r[1] = 1;
            r
        }),
    )?;
    db.create_index("district", "d_id")?;

    // customer(c_id, c_d_id, c_balance, c_ytd, c_cnt, ...) — 100-byte rows.
    db.create_table(
        "customer",
        small_schema(&["c_id", "c_d_id", "c_balance", "c_ytd", "c_cnt"], 25),
    )?;
    let cpd = scale.customers_per_district;
    db.load_rows(
        "customer",
        (0..scale.customers()).map(|c| {
            let mut r = vec![0i32; 25];
            r[0] = c as i32 + 1;
            r[1] = (c / cpd) as i32 + 1;
            r[2] = rng.random_range(-500..5_000);
            r
        }),
    )?;
    db.create_index("customer", "c_id")?;

    // item(i_id, i_price, ...).
    db.create_table("item", small_schema(&["i_id", "i_price"], 15))?;
    db.load_rows(
        "item",
        (0..scale.items).map(|i| {
            let mut r = vec![0i32; 15];
            r[0] = i as i32 + 1;
            r[1] = rng.random_range(100..10_000);
            r
        }),
    )?;
    db.create_index("item", "i_id")?;

    // stock(s_i_id, s_quantity, s_ytd, s_cnt, ...) — 100-byte rows.
    db.create_table(
        "stock",
        small_schema(&["s_i_id", "s_quantity", "s_ytd", "s_cnt"], 25),
    )?;
    db.load_rows(
        "stock",
        (0..scale.items).map(|i| {
            let mut r = vec![0i32; 25];
            r[0] = i as i32 + 1;
            r[1] = rng.random_range(10..100);
            r
        }),
    )?;
    db.create_index("stock", "s_i_id")?;

    // orders(o_id, o_c_id, o_d_id, o_ol_cnt, ...) — grows at run time.
    db.create_table(
        "orders",
        small_schema(&["o_id", "o_c_id", "o_d_id", "o_ol_cnt"], 15),
    )?;
    db.create_index("orders", "o_id")?;

    // order_line(ol_key, ol_o_id, ol_i_id, ol_qty, ...) — grows at run time.
    db.create_table(
        "order_line",
        small_schema(&["ol_key", "ol_o_id", "ol_i_id", "ol_qty"], 15),
    )?;
    db.create_index("order_line", "ol_o_id")?;

    // history(h_key, h_c_id, h_amount, ...) — insert-only.
    db.create_table(
        "history",
        small_schema(&["h_key", "h_c_id", "h_amount"], 15),
    )?;
    Ok(())
}

/// Deterministic 10-client transaction driver.
#[derive(Debug)]
pub struct TpccDriver {
    scale: TpccScale,
    rng: StdRng,
    next_order_id: i64,
    next_ol_key: i64,
    next_history_key: i64,
    txns_run: u64,
}

impl TpccDriver {
    /// Creates a driver for a database loaded with [`load`].
    pub fn new(scale: TpccScale, seed: u64) -> TpccDriver {
        TpccDriver {
            scale,
            rng: StdRng::seed_from_u64(seed ^ 0x7070),
            next_order_id: 1,
            next_ol_key: 1,
            next_history_key: 1,
            txns_run: 0,
        }
    }

    /// Total transactions executed.
    pub fn txns_run(&self) -> u64 {
        self.txns_run
    }

    /// Picks the next transaction type per the standard mix
    /// (45/43/4/4/4 — NewOrder/Payment/OrderStatus/Delivery/StockLevel).
    fn pick(&mut self) -> TxnKind {
        match self.rng.random_range(0..100) {
            0..=44 => TxnKind::NewOrder,
            45..=87 => TxnKind::Payment,
            88..=91 => TxnKind::OrderStatus,
            92..=95 => TxnKind::Delivery,
            _ => TxnKind::StockLevel,
        }
    }

    /// Runs `n` transactions (10 logical clients interleaved round-robin in
    /// one command stream). Returns per-kind counts
    /// `[new_order, payment, order_status, delivery, stock_level]`.
    pub fn run(&mut self, db: &mut Database, n: u64) -> DbResult<[u64; 5]> {
        let mut counts = [0u64; 5];
        for _ in 0..n {
            let kind = self.pick();
            self.run_one(db, kind)?;
            counts[match kind {
                TxnKind::NewOrder => 0,
                TxnKind::Payment => 1,
                TxnKind::OrderStatus => 2,
                TxnKind::Delivery => 3,
                TxnKind::StockLevel => 4,
            }] += 1;
            self.txns_run += 1;
        }
        Ok(counts)
    }

    /// Runs one transaction of the given kind.
    pub fn run_one(&mut self, db: &mut Database, kind: TxnKind) -> DbResult<()> {
        db.txn_overhead();
        // Each of the 10 clients drags its session working memory (sort
        // area, private SQL area, network buffers) through the caches.
        db.session_touch((self.txns_run % 10) as u32, 72 * 1024);
        let customers = self.scale.customers() as i32;
        let items = self.scale.items as i32;
        match kind {
            TxnKind::NewOrder => {
                let c_id = self.rng.random_range(1..=customers);
                let d_id = self.rng.random_range(1..=10);
                db.run(&Query::PointSelect {
                    table: "customer".into(),
                    key_col: "c_id".into(),
                    key: c_id,
                    read_col: "c_balance".into(),
                })?;
                db.run(&Query::UpdateAdd {
                    table: "district".into(),
                    key_col: "d_id".into(),
                    key: d_id,
                    set_col: "d_next_o_id".into(),
                    delta: 1,
                })?;
                let o_id = self.next_order_id as i32;
                self.next_order_id += 1;
                let ol_cnt = self.rng.random_range(5..=15);
                let mut order = vec![0i32; 15];
                order[0] = o_id;
                order[1] = c_id;
                order[2] = d_id;
                order[3] = ol_cnt;
                db.run(&Query::InsertRow {
                    table: "orders".into(),
                    values: order,
                })?;
                for _ in 0..ol_cnt {
                    let i_id = self.rng.random_range(1..=items);
                    db.run(&Query::PointSelect {
                        table: "item".into(),
                        key_col: "i_id".into(),
                        key: i_id,
                        read_col: "i_price".into(),
                    })?;
                    db.run(&Query::UpdateAdd {
                        table: "stock".into(),
                        key_col: "s_i_id".into(),
                        key: i_id,
                        set_col: "s_quantity".into(),
                        delta: -1,
                    })?;
                    let mut ol = vec![0i32; 15];
                    ol[0] = self.next_ol_key as i32;
                    self.next_ol_key += 1;
                    ol[1] = o_id;
                    ol[2] = i_id;
                    ol[3] = self.rng.random_range(1..=10);
                    db.run(&Query::InsertRow {
                        table: "order_line".into(),
                        values: ol,
                    })?;
                }
            }
            TxnKind::Payment => {
                let c_id = self.rng.random_range(1..=customers);
                let d_id = self.rng.random_range(1..=10);
                let amount = self.rng.random_range(100..5_000);
                db.run(&Query::UpdateAdd {
                    table: "warehouse".into(),
                    key_col: "w_id".into(),
                    key: 1,
                    set_col: "w_ytd".into(),
                    delta: amount,
                })?;
                db.run(&Query::UpdateAdd {
                    table: "district".into(),
                    key_col: "d_id".into(),
                    key: d_id,
                    set_col: "d_ytd".into(),
                    delta: amount,
                })?;
                db.run(&Query::UpdateAdd {
                    table: "customer".into(),
                    key_col: "c_id".into(),
                    key: c_id,
                    set_col: "c_balance".into(),
                    delta: -amount,
                })?;
                let mut h = vec![0i32; 15];
                h[0] = self.next_history_key as i32;
                self.next_history_key += 1;
                h[1] = c_id;
                h[2] = amount;
                db.run(&Query::InsertRow {
                    table: "history".into(),
                    values: h,
                })?;
            }
            TxnKind::OrderStatus => {
                let c_id = self.rng.random_range(1..=customers);
                db.run(&Query::PointSelect {
                    table: "customer".into(),
                    key_col: "c_id".into(),
                    key: c_id,
                    read_col: "c_balance".into(),
                })?;
                if self.next_order_id > 1 {
                    let o_id = self.rng.random_range(1..self.next_order_id) as i32;
                    db.run(&Query::PointSelect {
                        table: "orders".into(),
                        key_col: "o_id".into(),
                        key: o_id,
                        read_col: "o_ol_cnt".into(),
                    })?;
                    db.run(&Query::PointSelect {
                        table: "order_line".into(),
                        key_col: "ol_o_id".into(),
                        key: o_id,
                        read_col: "ol_qty".into(),
                    })?;
                }
            }
            TxnKind::Delivery => {
                // Deliver one order per district: read it, credit the
                // customer's balance.
                for _ in 0..10 {
                    if self.next_order_id <= 1 {
                        break;
                    }
                    let o_id = self.rng.random_range(1..self.next_order_id) as i32;
                    let got = db.run(&Query::PointSelect {
                        table: "orders".into(),
                        key_col: "o_id".into(),
                        key: o_id,
                        read_col: "o_c_id".into(),
                    })?;
                    if got.rows > 0 {
                        db.run(&Query::UpdateAdd {
                            table: "customer".into(),
                            key_col: "c_id".into(),
                            key: got.value as i32,
                            set_col: "c_balance".into(),
                            delta: 10,
                        })?;
                    }
                }
            }
            TxnKind::StockLevel => {
                let d_id = self.rng.random_range(1..=10);
                db.run(&Query::PointSelect {
                    table: "district".into(),
                    key_col: "d_id".into(),
                    key: d_id,
                    read_col: "d_next_o_id".into(),
                })?;
                for _ in 0..20 {
                    let i_id = self.rng.random_range(1..=items);
                    db.run(&Query::PointSelect {
                        table: "stock".into(),
                        key_col: "s_i_id".into(),
                        key: i_id,
                        read_col: "s_quantity".into(),
                    })?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdtg_memdb::{EngineProfile, SystemId};
    use wdtg_sim::{CpuConfig, InterruptCfg};

    fn db() -> Database {
        Database::new(
            EngineProfile::system(SystemId::C),
            CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled()),
        )
    }

    #[test]
    fn load_and_run_mix() {
        let mut db = db();
        let scale = TpccScale::tiny();
        load(&mut db, scale, 1).unwrap();
        let mut driver = TpccDriver::new(scale, 1);
        let counts = driver.run(&mut db, 200).unwrap();
        assert_eq!(counts.iter().sum::<u64>(), 200);
        // Mix roughly 45/43/4/4/4.
        assert!(
            counts[0] > 60 && counts[1] > 60,
            "NewOrder/Payment dominate: {counts:?}"
        );
        assert!(counts[2] < 30 && counts[3] < 30 && counts[4] < 30);
    }

    #[test]
    fn new_order_inserts_are_readable() {
        let mut db = db();
        let scale = TpccScale::tiny();
        load(&mut db, scale, 2).unwrap();
        let mut driver = TpccDriver::new(scale, 2);
        driver.run_one(&mut db, TxnKind::NewOrder).unwrap();
        let got = db
            .run(&Query::PointSelect {
                table: "orders".into(),
                key_col: "o_id".into(),
                key: 1,
                read_col: "o_ol_cnt".into(),
            })
            .unwrap();
        assert_eq!(got.rows, 1);
        assert!(got.value >= 5.0 && got.value <= 15.0);
    }

    #[test]
    fn payment_updates_balance() {
        let mut db = db();
        let scale = TpccScale::tiny();
        load(&mut db, scale, 3).unwrap();
        let before: f64 = db
            .run(&Query::PointSelect {
                table: "warehouse".into(),
                key_col: "w_id".into(),
                key: 1,
                read_col: "w_ytd".into(),
            })
            .unwrap()
            .value;
        let mut driver = TpccDriver::new(scale, 3);
        driver.run_one(&mut db, TxnKind::Payment).unwrap();
        let after: f64 = db
            .run(&Query::PointSelect {
                table: "warehouse".into(),
                key_col: "w_id".into(),
                key: 1,
                read_col: "w_ytd".into(),
            })
            .unwrap()
            .value;
        assert!(after > before, "payment must add to w_ytd");
    }

    #[test]
    fn scale_names_resolve_and_typos_are_refused() {
        // All four branches of the resolver: unset, the three valid names,
        // and the regression case — a typo must NOT silently become dev.
        assert_eq!(TpccScale::from_name(None).unwrap(), TpccScale::dev());
        assert_eq!(
            TpccScale::from_name(Some("paper")).unwrap(),
            TpccScale::paper()
        );
        assert_eq!(TpccScale::from_name(Some("dev")).unwrap(), TpccScale::dev());
        assert_eq!(
            TpccScale::from_name(Some("tiny")).unwrap(),
            TpccScale::tiny()
        );
        let err = TpccScale::from_name(Some("papr")).unwrap_err();
        assert!(err.contains("papr") && err.contains("paper"), "{err}");
    }

    #[test]
    fn driver_is_deterministic() {
        let run = |seed| {
            let mut db = db();
            let scale = TpccScale::tiny();
            load(&mut db, scale, seed).unwrap();
            let mut driver = TpccDriver::new(scale, seed);
            driver.run(&mut db, 100).unwrap();
            db.cpu().cycles()
        };
        assert_eq!(run(5), run(5));
    }
}

//! Event specifications, emon command-line style.
//!
//! §4.3 shows the tool's usage:
//! `emon –C ( INST_RETIRED:USER, INST_RETIRED:SUP ) prog.exe`
//! — an event mnemonic qualified by privilege mode. [`EventSpec::parse`]
//! accepts exactly that syntax.

use std::fmt;

use wdtg_sim::{Event, Mode};

/// Which privilege level a specification counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModeSel {
    /// User mode only (`:USER`).
    User,
    /// Supervisor mode only (`:SUP`).
    Sup,
    /// Both (no qualifier).
    Both,
}

/// One counter specification: event + mode qualifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventSpec {
    /// The event to count.
    pub event: Event,
    /// The privilege-mode filter.
    pub mode: ModeSel,
}

/// Errors from parsing or validating event specifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// Unknown event mnemonic.
    UnknownEvent(String),
    /// Unknown mode qualifier.
    UnknownMode(String),
    /// The event exists in the simulator but has no Pentium II event code —
    /// like T_DTLB, it cannot be measured with emon (§4.3).
    NotMeasurable(Event),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownEvent(s) => write!(f, "unknown event: {s}"),
            SpecError::UnknownMode(s) => write!(f, "unknown mode qualifier: {s}"),
            SpecError::NotMeasurable(e) => {
                write!(f, "event {} has no Pentium II event code", e.mnemonic())
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl EventSpec {
    /// Creates a spec, rejecting events without hardware event codes.
    pub fn new(event: Event, mode: ModeSel) -> Result<EventSpec, SpecError> {
        if !event.has_hardware_code() {
            return Err(SpecError::NotMeasurable(event));
        }
        Ok(EventSpec { event, mode })
    }

    /// Creates a spec without the hardware-code check (ground-truth reads).
    pub fn sim(event: Event, mode: ModeSel) -> EventSpec {
        EventSpec { event, mode }
    }

    /// Parses `MNEMONIC[:USER|:SUP]`.
    pub fn parse(s: &str) -> Result<EventSpec, SpecError> {
        let (name, mode) = match s.split_once(':') {
            None => (s, ModeSel::Both),
            Some((n, "USER")) => (n, ModeSel::User),
            Some((n, "SUP")) => (n, ModeSel::Sup),
            Some((_, m)) => return Err(SpecError::UnknownMode(m.to_string())),
        };
        let event =
            Event::from_mnemonic(name).ok_or_else(|| SpecError::UnknownEvent(name.to_string()))?;
        EventSpec::new(event, mode)
    }

    /// Reads this spec's value from a counter-file delta.
    pub fn read(&self, counters: &wdtg_sim::CounterFile) -> u64 {
        match self.mode {
            ModeSel::User => counters.get(Mode::User, self.event),
            ModeSel::Sup => counters.get(Mode::Sup, self.event),
            ModeSel::Both => counters.total(self.event),
        }
    }
}

impl fmt::Display for EventSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mode {
            ModeSel::User => write!(f, "{}:USER", self.event.mnemonic()),
            ModeSel::Sup => write!(f, "{}:SUP", self.event.mnemonic()),
            ModeSel::Both => write!(f, "{}", self.event.mnemonic()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_example() {
        // emon –C ( INST_RETIRED:USER, INST_RETIRED:SUP )
        let u = EventSpec::parse("INST_RETIRED:USER").unwrap();
        let s = EventSpec::parse("INST_RETIRED:SUP").unwrap();
        assert_eq!(u.event, Event::InstRetired);
        assert_eq!(u.mode, ModeSel::User);
        assert_eq!(s.mode, ModeSel::Sup);
        assert_eq!(u.to_string(), "INST_RETIRED:USER");
    }

    #[test]
    fn rejects_unknown_and_unmeasurable() {
        assert!(matches!(
            EventSpec::parse("NOT_REAL"),
            Err(SpecError::UnknownEvent(_))
        ));
        assert!(matches!(
            EventSpec::parse("INST_RETIRED:KERNEL"),
            Err(SpecError::UnknownMode(_))
        ));
        // DTLB misses have no event code — the paper could not measure
        // T_DTLB (§4.3).
        assert!(matches!(
            EventSpec::new(Event::SimDtlbMiss, ModeSel::User),
            Err(SpecError::NotMeasurable(_))
        ));
        // But the simulator-only constructor allows ground-truth reads.
        let _ = EventSpec::sim(Event::SimDtlbMiss, ModeSel::User);
    }

    #[test]
    fn mode_selection_reads_correct_counters() {
        let mut c = wdtg_sim::CounterFile::new();
        c.bump(Mode::User, Event::Div, 3);
        c.bump(Mode::Sup, Event::Div, 9);
        assert_eq!(EventSpec::parse("DIV:USER").unwrap().read(&c), 3);
        assert_eq!(EventSpec::parse("DIV:SUP").unwrap().read(&c), 9);
        assert_eq!(EventSpec::parse("DIV").unwrap().read(&c), 12);
    }
}

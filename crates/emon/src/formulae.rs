//! The Table 4.2 formulae: turning event counts into stall-time components.
//!
//! | component | method |
//! |---|---|
//! | T_C    | estimated minimum based on µops retired |
//! | T_L1D  | #misses × 4 cycles |
//! | T_L1I  | actual stall time (`IFU_MEM_STALL`, minus the L2I/ITLB parts) |
//! | T_L2D  | #misses × measured memory latency |
//! | T_L2I  | #misses × measured memory latency |
//! | T_DTLB | **not measured** (no event code) |
//! | T_ITLB | #misses × 32 cycles |
//! | T_B    | #mispredictions retired × 17 cycles |
//! | T_FU   | actual stall time (`RESOURCE_STALLS`) |
//! | T_DEP  | actual stall time (`PARTIAL_RAT_STALLS`) |
//! | T_ILD  | actual stall time (`ILD_STALL`) |
//!
//! The memory latency is *measured* (the paper observed 60–70 cycles), not
//! configured; see `wdtg_sim::latency`. Count×penalty components are upper
//! bounds — overlap (T_OVL) is not measurable on the real machine, and
//! [`EstimatedBreakdown::tovl`] reconstructs it from the difference against
//! measured cycles.

use wdtg_sim::CpuConfig;

use crate::runner::Readings;
use crate::spec::{EventSpec, ModeSel, SpecError};

/// Penalty constants used by the formulae.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Penalties {
    /// L1-miss-with-L2-hit penalty (Table 4.1: 4 cycles).
    pub l1_miss: f64,
    /// Measured main-memory latency (§5.2.1: 60–70 cycles observed).
    pub mem_latency: f64,
    /// ITLB miss penalty (Table 4.2: 32 cycles).
    pub itlb: f64,
    /// Branch misprediction penalty (Table 4.2: 17 cycles).
    pub mispredict: f64,
    /// Retire width for the T_C estimate (3 µops/cycle).
    pub width: f64,
}

impl Penalties {
    /// Builds penalties from the processor configuration plus a *measured*
    /// memory latency (as the paper does — Table 4.2 says "measured memory
    /// latency", not a datasheet number).
    pub fn from_config(cfg: &CpuConfig, measured_latency: f64) -> Penalties {
        Penalties {
            l1_miss: cfg.pipe.l1_miss_penalty as f64,
            mem_latency: measured_latency,
            itlb: cfg.pipe.itlb_miss_penalty as f64,
            mispredict: cfg.pipe.mispredict_penalty as f64,
            width: cfg.pipe.width as f64,
        }
    }
}

/// The events (per mode) a full breakdown needs.
pub fn required_events(mode: ModeSel) -> Vec<EventSpec> {
    use wdtg_sim::Event::*;
    [
        UopsRetired,
        InstRetired,
        CpuClkUnhalted,
        DataMemRefs,
        DcuLinesIn,
        IfuMemStall,
        IfuIfetchMiss,
        L2LinesIn,
        BusTranIfetch,
        ItlbMiss,
        BrInstRetired,
        BrMissPredRetired,
        BtbMisses,
        ResourceStalls,
        PartialRatStalls,
        IldStall,
    ]
    .into_iter()
    .map(|e| EventSpec::new(e, mode).expect("all are hardware events"))
    .collect()
}

/// A breakdown reconstructed from counters per Table 4.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatedBreakdown {
    /// Useful computation (µops / width).
    pub tc: f64,
    /// L1 D-cache stalls (upper bound: misses × 4).
    pub tl1d: f64,
    /// L1 I-cache stalls (actual: IFU stall minus L2I/ITLB portions).
    pub tl1i: f64,
    /// L2 data stalls (upper bound: misses × measured latency).
    pub tl2d: f64,
    /// L2 instruction stalls (upper bound: misses × measured latency).
    pub tl2i: f64,
    /// DTLB stalls — `None`: not measurable on the Pentium II (§4.3).
    pub tdtlb: Option<f64>,
    /// ITLB stalls (misses × 32).
    pub titlb: f64,
    /// Branch misprediction penalty (mispredictions × 17).
    pub tb: f64,
    /// Functional-unit stalls (actual).
    pub tfu: f64,
    /// Dependency stalls (actual).
    pub tdep: f64,
    /// Instruction-length-decoder stalls (actual).
    pub tild: f64,
    /// Measured cycles (`CPU_CLK_UNHALTED`).
    pub cycles: f64,
    /// Instructions retired (for CPI).
    pub inst_retired: u64,
}

impl EstimatedBreakdown {
    /// Memory-stall total `T_M`.
    pub fn tm(&self) -> f64 {
        self.tl1d + self.tl1i + self.tl2d + self.tl2i + self.titlb + self.tdtlb.unwrap_or(0.0)
    }

    /// Resource-stall total `T_R`.
    pub fn tr(&self) -> f64 {
        self.tfu + self.tdep + self.tild
    }

    /// Sum of all estimated components (before overlap correction).
    pub fn total_estimated(&self) -> f64 {
        self.tc + self.tm() + self.tb + self.tr()
    }

    /// Reconstructed overlap: `T_C + T_M + T_B + T_R − T_Q`. The paper could
    /// not measure this; here it falls out of the identity.
    pub fn tovl(&self) -> f64 {
        self.total_estimated() - self.cycles
    }

    /// Clocks per instruction (the paper reports 1.2–1.8 for DSS-style work
    /// and 2.5–4.5 for TPC-C, §5.5).
    pub fn cpi(&self) -> f64 {
        if self.inst_retired == 0 {
            0.0
        } else {
            self.cycles / self.inst_retired as f64
        }
    }
}

/// A required event was not among the readings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingEvent(pub String);

impl std::fmt::Display for MissingEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "breakdown needs event {} — add it to the measurement plan",
            self.0
        )
    }
}

impl std::error::Error for MissingEvent {}

/// Applies the Table 4.2 formulae to a set of readings.
pub fn breakdown(
    readings: &Readings,
    mode: ModeSel,
    p: &Penalties,
) -> Result<EstimatedBreakdown, MissingEvent> {
    use wdtg_sim::Event::*;
    let get = |e: wdtg_sim::Event| -> Result<u64, MissingEvent> {
        let spec = EventSpec::new(e, mode).expect("hardware event");
        readings
            .get(&spec)
            .ok_or_else(|| MissingEvent(spec.to_string()))
    };

    let uops = get(UopsRetired)? as f64;
    let cycles = get(CpuClkUnhalted)? as f64;
    let inst_retired = get(InstRetired)?;
    let dcu_lines_in = get(DcuLinesIn)? as f64;
    let ifu_mem_stall = get(IfuMemStall)? as f64;
    let l2_lines_in = get(L2LinesIn)? as f64;
    let l2i_misses = get(BusTranIfetch)? as f64;
    let itlb_misses = get(ItlbMiss)? as f64;
    let mispredictions = get(BrMissPredRetired)? as f64;
    let resource = get(ResourceStalls)? as f64;
    let partial_rat = get(PartialRatStalls)? as f64;
    let ild = get(IldStall)? as f64;

    let l2d_misses = (l2_lines_in - l2i_misses).max(0.0);
    let tl2i = l2i_misses * p.mem_latency;
    let titlb = itlb_misses * p.itlb;
    Ok(EstimatedBreakdown {
        tc: uops / p.width,
        tl1d: (dcu_lines_in - l2d_misses).max(0.0) * p.l1_miss,
        tl1i: (ifu_mem_stall - tl2i - titlb).max(0.0),
        tl2d: l2d_misses * p.mem_latency,
        tl2i,
        tdtlb: None, // event code not available (§4.3)
        titlb,
        tb: mispredictions * p.mispredict,
        tfu: resource,
        tdep: partial_rat,
        tild: ild,
        cycles,
        inst_retired,
    })
}

/// Convenience: the full measurement-and-reconstruction pipeline — measures
/// [`required_events`] two at a time on `target` and applies the formulae.
pub fn measure_breakdown(
    target: &mut dyn crate::runner::Target,
    mode: ModeSel,
    p: &Penalties,
) -> Result<(EstimatedBreakdown, Readings), SpecError> {
    let specs = required_events(mode);
    let readings = crate::runner::measure(target, &specs);
    let b = breakdown(&readings, mode, p).expect("all required events scheduled");
    Ok((b, readings))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_events_cover_the_formulae() {
        let specs = required_events(ModeSel::User);
        assert_eq!(specs.len(), 16);
        // 16 events on a 2-counter machine = 8 separate runs.
        assert_eq!(crate::runner::plan(&specs).len(), 8);
    }

    #[test]
    fn identity_and_derived_quantities() {
        let b = EstimatedBreakdown {
            tc: 100.0,
            tl1d: 5.0,
            tl1i: 30.0,
            tl2d: 50.0,
            tl2i: 2.0,
            tdtlb: None,
            titlb: 1.0,
            tb: 20.0,
            tfu: 10.0,
            tdep: 15.0,
            tild: 2.0,
            cycles: 220.0,
            inst_retired: 150,
        };
        assert_eq!(b.tm(), 88.0);
        assert_eq!(b.tr(), 27.0);
        assert_eq!(b.total_estimated(), 235.0);
        assert!(
            (b.tovl() - 15.0).abs() < 1e-9,
            "overlap = estimates - measured"
        );
        assert!((b.cpi() - 220.0 / 150.0).abs() < 1e-9);
    }

    #[test]
    fn missing_event_is_reported() {
        let readings = Readings::default();
        let p = Penalties::from_config(&CpuConfig::pentium_ii_xeon(), 65.0);
        let err = breakdown(&readings, ModeSel::User, &p).unwrap_err();
        assert!(err.0.contains("UOPS_RETIRED"));
    }
}

//! # wdtg-emon — the measurement tool
//!
//! A faithful stand-in for Intel's `emon` as the paper used it (§4.3):
//!
//! * event specifications in emon's command-line syntax
//!   (`INST_RETIRED:USER`) — [`spec`];
//! * the Pentium II's **two-counter** restriction: a full breakdown requires
//!   one run of the measurement unit per event *pair*, multiplexed across
//!   repeated executions — [`runner`];
//! * the Table 4.2 formulae mapping counts to stall-time components,
//!   including the measured memory latency, the unmeasurable T_DTLB and the
//!   reconstructed overlap T_OVL — [`formulae`].
//!
//! The simulator's ground-truth ledger (which no real machine has) lets the
//! reproduction *validate* the paper's count×penalty approximations; the
//! integration suite does exactly that.

#![warn(missing_docs)]

pub mod formulae;
pub mod runner;
pub mod spec;

pub use formulae::{breakdown, measure_breakdown, required_events, EstimatedBreakdown, Penalties};
pub use runner::{measure, plan, Readings, Target};
pub use spec::{EventSpec, ModeSel, SpecError};

//! The two-counter measurement loop.
//!
//! §4.3: the Pentium II has exactly **two** programmable counters, so a full
//! breakdown (74 event types × 2 modes) cannot be captured in one run. Emon
//! therefore re-executes the measurement unit once per counter *pair* and
//! the experimenter relies on run-to-run stability (warm caches, repeated
//! units, < 5% standard deviation). This module reproduces that restriction
//! faithfully: each pair of event specs is observed in a separate execution
//! of the unit, reading nothing else.

use std::collections::BTreeMap;

use wdtg_sim::Snapshot;

use crate::spec::EventSpec;

/// Something emon can measure: it must expose counter snapshots and run one
/// measurement unit (e.g. 10 queries on a warmed database, per §4.3).
pub trait Target {
    /// Captures the counter file + ledger + cycles.
    fn snapshot(&self) -> Snapshot;
    /// Executes one measurement unit.
    fn run_unit(&mut self);
}

/// Readings collected by [`measure`]: one value per spec, plus the per-run
/// unit cycle counts used for stability checking.
#[derive(Debug, Clone, Default)]
pub struct Readings {
    values: BTreeMap<String, u64>,
    /// Total cycles of each pair-run's unit (for the <5% stddev check).
    pub run_cycles: Vec<f64>,
}

impl Readings {
    /// Value observed for `spec`, if it was scheduled.
    pub fn get(&self, spec: &EventSpec) -> Option<u64> {
        self.values.get(&spec.to_string()).copied()
    }

    /// Value by spec string (e.g. `"INST_RETIRED:USER"`).
    pub fn get_str(&self, spec: &str) -> Option<u64> {
        self.values.get(spec).copied()
    }

    /// Number of distinct spec readings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no readings were collected.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Relative standard deviation of unit cycle counts across the pair
    /// runs. The paper repeats experiments until this is below 5%.
    pub fn cycles_rel_stddev(&self) -> f64 {
        let n = self.run_cycles.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.run_cycles.iter().sum::<f64>() / n as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .run_cycles
            .iter()
            .map(|c| (c - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        var.sqrt() / mean
    }

    fn insert(&mut self, spec: &EventSpec, value: u64) {
        self.values.insert(spec.to_string(), value);
    }
}

/// Groups specs into the pairs the two counters can hold.
pub fn plan(specs: &[EventSpec]) -> Vec<Vec<EventSpec>> {
    specs.chunks(2).map(|c| c.to_vec()).collect()
}

/// Measures all `specs` on `target`, two per unit execution.
///
/// Different specs are observed in *different* runs, exactly like the real
/// tool; deterministic targets make the multiplexing exact, warmed
/// non-deterministic ones approximate (checked via
/// [`Readings::cycles_rel_stddev`]).
pub fn measure(target: &mut dyn Target, specs: &[EventSpec]) -> Readings {
    let mut readings = Readings::default();
    for pair in plan(specs) {
        let before = target.snapshot();
        target.run_unit();
        let after = target.snapshot();
        let delta = after.counters.delta(&before.counters);
        for spec in &pair {
            readings.insert(spec, spec.read(&delta));
        }
        readings.run_cycles.push(after.cycles - before.cycles);
    }
    readings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModeSel;
    use wdtg_sim::{segment, CodeBlock, Cpu, CpuConfig, Event, InterruptCfg, MemDep};

    struct BlockTarget {
        cpu: Cpu,
        block: CodeBlock,
    }

    impl Target for BlockTarget {
        fn snapshot(&self) -> Snapshot {
            self.cpu.snapshot()
        }
        fn run_unit(&mut self) {
            for i in 0..50u64 {
                self.cpu.exec_block(&self.block);
                self.cpu.load(segment::HEAP + i * 64, 4, MemDep::Demand);
            }
        }
    }

    fn target() -> BlockTarget {
        BlockTarget {
            cpu: Cpu::new(CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled())),
            block: CodeBlock::builder("w", 1200)
                .private(segment::PRIVATE, 1024)
                .at(segment::CODE),
        }
    }

    #[test]
    fn pairs_of_two_per_run() {
        let specs: Vec<EventSpec> = [
            "INST_RETIRED:USER",
            "UOPS_RETIRED:USER",
            "DATA_MEM_REFS:USER",
        ]
        .iter()
        .map(|s| EventSpec::parse(s).unwrap())
        .collect();
        let p = plan(&specs);
        assert_eq!(p.len(), 2, "3 events need 2 runs of the 2-counter tool");
        assert_eq!(p[0].len(), 2);
        assert_eq!(p[1].len(), 1);
    }

    #[test]
    fn deterministic_target_yields_stable_multiplexing() {
        let mut t = target();
        // Warm up, as the methodology requires.
        t.run_unit();
        let specs: Vec<EventSpec> = [
            "INST_RETIRED:USER",
            "UOPS_RETIRED:USER",
            "DATA_MEM_REFS:USER",
            "BR_INST_RETIRED:USER",
            "CPU_CLK_UNHALTED:USER",
        ]
        .iter()
        .map(|s| EventSpec::parse(s).unwrap())
        .collect();
        let r = measure(&mut t, &specs);
        assert_eq!(r.len(), 5);
        // Steady state: per-unit instruction count is exactly stable.
        let instr = r.get(&specs[0]).unwrap();
        assert_eq!(instr, 50 * t.block.x86_instrs as u64);
        assert!(r.cycles_rel_stddev() < 0.05, "the paper's stability bar");
    }

    #[test]
    fn readings_expose_only_requested_events() {
        let mut t = target();
        let specs = vec![EventSpec::parse("INST_RETIRED:USER").unwrap()];
        let r = measure(&mut t, &specs);
        assert_eq!(r.len(), 1);
        assert!(r
            .get(&EventSpec::sim(Event::UopsRetired, ModeSel::User))
            .is_none());
    }
}

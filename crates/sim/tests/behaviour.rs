//! Behavioural tests of the simulator's paper-relevant mechanisms.

use wdtg_sim::{
    measure_memory_latency, segment, CodeBlock, Cpu, CpuConfig, Event, InterruptCfg, MemDep,
};

fn quiet() -> CpuConfig {
    CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled())
}

#[test]
fn stream_prefetch_helps_straight_line_code_only() {
    // Lean, branch-poor code (long sequential runs) benefits from the
    // Xeon's instruction prefetch; branch-dense interpreter-style code does
    // not (§3.2) — for the *same* path length.
    let make = |dynamic: u16| {
        CodeBlock::builder("w", 16 * 1024 * 3) // 3x L1I so misses persist
            .branches(dynamic.max(1), dynamic)
            .taken_frac(0.6)
            .private(segment::PRIVATE, 1024)
            .at(segment::CODE)
    };
    let run = |block: &CodeBlock| {
        let mut cpu = Cpu::new(quiet());
        for _ in 0..10 {
            cpu.exec_block(block);
        }
        let snap = cpu.snapshot();
        for _ in 0..10 {
            cpu.exec_block(block);
        }
        let d = cpu.snapshot().delta(&snap);
        (
            d.counters.total(Event::IfuIfetchMiss),
            d.counters.total(Event::SimStreamBufHit),
        )
    };
    let lean = make(8); // ~5 taken branches over 48 KB: long runs
    let branchy = make(2000); // taken branch every ~40 bytes
    let (lean_misses, lean_streams) = run(&lean);
    let (branchy_misses, branchy_streams) = run(&branchy);
    assert!(lean_streams > 0, "sequential code uses the stream buffer");
    assert_eq!(branchy_streams, 0, "branch-dense code defeats it");
    // Next-line installs convert every other sequential miss into a hit, so
    // the lean path misses at most half as often as the branchy one.
    assert!(
        lean_misses <= branchy_misses / 2,
        "stream prefetch must at least halve misses: lean {lean_misses} vs branchy {branchy_misses}"
    );
}

#[test]
fn prefetch_queue_respects_outstanding_limit() {
    let mut cpu = Cpu::new(quiet());
    // Issue many prefetches back-to-back: only `outstanding_misses` (4) may
    // be in flight; the rest are dropped.
    for i in 0..16u64 {
        cpu.prefetch_data(segment::HEAP + i * 64);
    }
    let issued = cpu.counters().total(Event::SimPrefetchIssued);
    assert_eq!(issued, 4, "MSHR-full prefetches are dropped, got {issued}");
}

#[test]
fn bigger_l2_never_increases_data_misses() {
    // Sweep a working set through three L2 sizes; misses must be
    // non-increasing in capacity (the A2 ablation's sanity condition).
    let mut last = u64::MAX;
    for size in [512 * 1024u32, 2 * 1024 * 1024, 8 * 1024 * 1024] {
        let mut cpu = Cpu::new(quiet().with_l2_size(size));
        for pass in 0..3 {
            if pass == 1 {
                cpu.reset_stats();
            }
            for i in 0..40_000u64 {
                cpu.load(segment::HEAP + i * 32, 4, MemDep::Demand);
            }
        }
        let misses = cpu.counters().total(Event::SimL2DataMiss);
        assert!(misses <= last, "L2 {size}: {misses} > previous {last}");
        last = misses;
    }
    assert_eq!(last, 0, "1.25 MB working set fits an 8 MB L2 after warmup");
}

#[test]
fn interrupt_rate_scales_with_cycles_not_work() {
    // Twice the period ⇒ roughly half the interrupts for the same program —
    // the foundation of the §5.2.2 hypothesis that slower per-record
    // processing (larger records) attracts more OS pollution per record.
    let run = |period: u64| {
        let mut cpu = Cpu::new(CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg {
            period_cycles: period,
            kernel_code_bytes: 2048,
            kernel_data_bytes: 512,
        }));
        let b = CodeBlock::builder("w", 3000)
            .private(segment::PRIVATE, 1024)
            .at(segment::CODE);
        for _ in 0..2_000 {
            cpu.exec_block(&b);
        }
        cpu.counters().total(Event::HwIntRx) as f64
    };
    let fast = run(40_000);
    let slow = run(80_000);
    let ratio = fast / slow.max(1.0);
    assert!((1.6..=2.4).contains(&ratio), "interrupt ratio {ratio}");
}

#[test]
fn dtlb_misses_tracked_but_only_as_sim_event() {
    let mut cpu = Cpu::new(quiet());
    // Touch many pages.
    for p in 0..512u64 {
        cpu.load(segment::HEAP + p * 4096, 4, MemDep::Demand);
    }
    assert!(cpu.counters().total(Event::SimDtlbMiss) > 256);
    assert!(
        !Event::SimDtlbMiss.has_hardware_code(),
        "no Pentium II event code (§4.3)"
    );
    // And it was charged to T_DTLB in the ledger.
    assert!(cpu.ledger().total(wdtg_sim::Component::Tdtlb) > 0.0);
}

#[test]
fn latency_microbench_is_insensitive_to_interrupts() {
    // The measured 60-70 cycle latency should be robust to the OS model
    // being on (kernel time is attributed to SUP, but the per-load figure
    // includes it like a real wall-clock measurement would).
    let mut cpu = Cpu::new(CpuConfig::pentium_ii_xeon());
    let m = measure_memory_latency(&mut cpu, 8 * 1024 * 1024);
    assert!(
        (58.0..=75.0).contains(&m.cycles_per_load),
        "latency {}",
        m.cycles_per_load
    );
}

#[test]
fn scaled_execution_matches_repeated_execution_counts() {
    // exec_block_scaled(b, n) retires exactly n invocations' worth of
    // instructions/branches while fetching the code once.
    let b = CodeBlock::builder("w", 700)
        .private(segment::PRIVATE, 512)
        .at(segment::CODE);
    let mut scaled = Cpu::new(quiet());
    scaled.exec_block_scaled(&b, 25);
    let mut repeated = Cpu::new(quiet());
    for _ in 0..25 {
        repeated.exec_block(&b);
    }
    let (s, r) = (scaled.counters(), repeated.counters());
    assert_eq!(s.total(Event::InstRetired), r.total(Event::InstRetired));
    assert_eq!(s.total(Event::UopsRetired), r.total(Event::UopsRetired));
    assert_eq!(s.total(Event::BrInstRetired), r.total(Event::BrInstRetired));
    assert!(
        s.total(Event::IfuIfetch) < r.total(Event::IfuIfetch),
        "scaled execution fetches the loop body once"
    );
}

//! Direct unit tests for the branch prediction hardware ([`BranchUnit`]):
//! the BTB + Yeh–Patt two-level adaptive predictor + static fallback that
//! every data-dependent qualify branch runs through (§5.3). The inline
//! module tests cover the headline learning behaviours; this suite pins the
//! *hardware* contracts the selection-mode experiments lean on — the static
//! fallback rule, 2-bit counter saturation/hysteresis, BTB set
//! aliasing/eviction, and the unpredictability gap between random and
//! biased direction streams.

use wdtg_sim::{BranchUnit, BtbGeom};

fn unit() -> BranchUnit {
    // The Pentium II geometry used by CpuConfig::pentium_ii_xeon().
    BranchUnit::new(BtbGeom {
        entries: 512,
        assoc: 4,
        history_bits: 4,
        pattern_entries: 1024,
    })
}

/// Deterministic pseudo-random direction stream (LCG high bit).
fn lcg_stream(seed: u64, n: usize) -> Vec<bool> {
    let mut x = seed;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) & 1 == 1
        })
        .collect()
}

#[test]
fn static_fallback_is_backward_taken_forward_not_taken() {
    // §5.3: "On a BTB miss, the prediction is static (backward branch is
    // taken, forward is not taken)." All four (direction, actual) corners
    // on a cold BTB:
    let mut b = unit();
    // Backward + taken: static correct.
    let out = b.execute(0x1000, true, true);
    assert!(!out.btb_hit && !out.mispredicted);
    // Backward + not taken: static wrong.
    let out = b.execute(0x2000, false, true);
    assert!(!out.btb_hit && out.mispredicted);
    // Forward + not taken: static correct.
    let out = b.execute(0x3000, false, false);
    assert!(!out.btb_hit && !out.mispredicted);
    // Forward + taken: static wrong.
    let out = b.execute(0x4000, true, false);
    assert!(!out.btb_hit && out.mispredicted);
}

#[test]
fn not_taken_branches_never_enter_the_btb() {
    // The Pentium II allocates BTB entries for *taken* branches only: a
    // never-taken branch stays static forever (and stays correct, since
    // forward ⇒ predicted not-taken).
    let mut b = unit();
    for _ in 0..50 {
        let out = b.execute(0x5000, false, false);
        assert!(!out.btb_hit, "never-taken branch must never be allocated");
        assert!(!out.mispredicted);
    }
}

#[test]
fn two_bit_counters_saturate_and_give_hysteresis() {
    // Train a branch strongly taken, then flip its direction once: a 2-bit
    // saturating counter absorbs the single anomaly (one misprediction) and
    // keeps predicting taken immediately afterwards — the defining
    // hysteresis a 1-bit scheme would not have. `history_bits: 0` degrades
    // the two-level scheme to the bare counter, isolating saturation from
    // history-pattern effects.
    let mut b = BranchUnit::new(BtbGeom {
        entries: 512,
        assoc: 4,
        history_bits: 0,
        pattern_entries: 1024,
    });
    for _ in 0..32 {
        b.execute(0x6000, true, true);
    }
    // The anomaly mispredicts (counter saturated at strongly-taken)...
    assert!(b.execute(0x6000, false, true).mispredicted);
    // ...but one contrary outcome must not flip the prediction: the counter
    // dropped 3 → 2, which still predicts taken, so the very next taken
    // execution is correct and re-saturates.
    assert!(
        !b.execute(0x6000, true, true).mispredicted,
        "one anomaly must not flip a saturated counter"
    );
    for _ in 0..8 {
        assert!(!b.execute(0x6000, true, true).mispredicted);
    }
    // Hysteresis is symmetric: it takes *two* contrary outcomes to change
    // the prediction.
    assert!(b.execute(0x6000, false, true).mispredicted); // 3 -> 2
    assert!(b.execute(0x6000, false, true).mispredicted); // 2 -> 1
    assert!(
        !b.execute(0x6000, false, true).mispredicted,
        "after two contrary outcomes the counter predicts the new direction"
    );
}

#[test]
fn btb_set_aliasing_evicts_within_one_set() {
    // 4-way sets: five branches that alias to the same set must thrash,
    // while four coexist. Set index is ((addr >> 1) % sets) with
    // sets = 512/4 = 128, so addresses 2*128*k apart (shifted) alias.
    let set_stride = 2 * 128; // one full wrap of the set index
    let base = 0x10_0000;
    let mut four = unit();
    for _ in 0..4 {
        for w in 0..4u64 {
            four.execute(base + w * set_stride, true, true);
        }
    }
    // All four ways resident.
    for w in 0..4u64 {
        assert!(
            four.execute(base + w * set_stride, true, true).btb_hit,
            "4 branches must coexist in a 4-way set"
        );
    }
    let mut five = unit();
    for _ in 0..4 {
        for w in 0..5u64 {
            five.execute(base + w * set_stride, true, true);
        }
    }
    // Round-robin over 5 entries in a 4-way LRU set: every access misses.
    let hits: usize = (0..5u64)
        .filter(|w| five.execute(base + w * set_stride, true, true).btb_hit)
        .count();
    assert!(
        hits < 5,
        "5 aliased branches cannot all stay resident in a 4-way set"
    );
    // Branches in *different* sets are unaffected by the aliasing storm.
    let mut mixed = unit();
    mixed.execute(0x2, true, true);
    for _ in 0..8 {
        for w in 0..5u64 {
            mixed.execute(base + w * set_stride, true, true);
        }
    }
    assert!(
        mixed.execute(0x2, true, true).btb_hit,
        "eviction must be contained to the aliased set"
    );
}

#[test]
fn random_stream_mispredicts_far_more_than_biased_stream() {
    // The Fig 5.4 mechanism in isolation: a ~50%-random direction stream
    // defeats every level of the predictor, while an all-taken stream is
    // learned almost immediately. The gap must be at least 4x (it is far
    // larger in practice).
    let n = 2_000;
    let mut random = unit();
    let random_misses: usize = lcg_stream(0x5744_5447, n)
        .into_iter()
        .filter(|&taken| random.execute(0x7000, taken, false).mispredicted)
        .count();
    let mut biased = unit();
    let biased_misses: usize = (0..n)
        .filter(|_| biased.execute(0x7000, true, false).mispredicted)
        .count();
    assert!(
        random_misses >= n * 35 / 100,
        "a coin-flip branch should mispredict near 50%, got {random_misses}/{n}"
    );
    assert!(
        random_misses >= 4 * biased_misses.max(1),
        "random stream must mispredict >=4x an all-taken stream: \
         {random_misses} vs {biased_misses}"
    );
}

#[test]
fn misprediction_rate_is_maximal_near_even_direction_mix() {
    // Sweep the taken-probability of a pseudo-random stream: the simulated
    // predictor's misprediction rate must be unimodal-ish with its maximum
    // at the 50% mix — the microarchitectural driver behind the branching
    // executor's T_B peak at 50% selectivity.
    let n = 4_000;
    let mut rates = Vec::new();
    for pct in [1u64, 25, 50, 75, 99] {
        let mut b = unit();
        let mut x = 0x1234_5678u64;
        let misses = (0..n)
            .filter(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let taken = (x >> 33) % 100 < pct;
                b.execute(0x8000, taken, false).mispredicted
            })
            .count();
        rates.push(misses as f64 / n as f64);
    }
    let peak = rates
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap();
    assert_eq!(peak, 2, "misprediction must peak at the 50% mix: {rates:?}");
    assert!(rates[2] > 2.0 * rates[0] && rates[2] > 2.0 * rates[4]);
}

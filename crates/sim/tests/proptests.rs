//! Property-based tests for the processor model's core invariants.

use proptest::prelude::*;
use wdtg_sim::{
    segment, BranchSite, BranchUnit, BtbGeom, Cache, CacheGeom, CodeBlock, Cpu, CpuConfig,
    InterruptCfg, MemDep,
};

/// Reference model: fully associative LRU over the same trace, used to check
/// that a 1-set cache with associativity == capacity behaves identically.
fn reference_lru_misses(trace: &[u64], capacity: usize, line_bytes: u64) -> u64 {
    let mut stack: Vec<u64> = Vec::new();
    let mut misses = 0;
    for &addr in trace {
        let line = addr / line_bytes;
        if let Some(pos) = stack.iter().position(|&l| l == line) {
            stack.remove(pos);
        } else {
            misses += 1;
            if stack.len() == capacity {
                stack.pop();
            }
        }
        stack.insert(0, line);
    }
    misses
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A single-set cache must match textbook fully-associative LRU exactly.
    #[test]
    fn cache_matches_reference_lru(trace in proptest::collection::vec(0u64..4096, 1..400)) {
        // 8 lines of 32 bytes in one set.
        let mut c = Cache::new(CacheGeom { size_bytes: 256, line_bytes: 32, assoc: 8 });
        let mut misses = 0;
        for &addr in &trace {
            if !c.access(addr, false).hit {
                misses += 1;
            }
        }
        prop_assert_eq!(misses, reference_lru_misses(&trace, 8, 32));
    }

    /// The line just accessed is always resident (LRU never evicts the MRU).
    #[test]
    fn most_recent_line_is_always_resident(trace in proptest::collection::vec(0u64..100_000, 1..300)) {
        let mut c = Cache::new(CacheGeom { size_bytes: 1024, line_bytes: 32, assoc: 4 });
        for &addr in &trace {
            c.access(addr, false);
            prop_assert!(c.probe(addr));
        }
    }

    /// Doubling capacity never increases misses for the same trace
    /// (stack property of LRU within a fixed set mapping: compare a
    /// fully-associative small cache to a fully-associative larger one).
    #[test]
    fn lru_miss_count_monotone_in_capacity(trace in proptest::collection::vec(0u64..8192, 1..400)) {
        let small = reference_lru_misses(&trace, 4, 32);
        let large = reference_lru_misses(&trace, 8, 32);
        prop_assert!(large <= small);
    }

    /// Every cycle the CPU spends is charged to exactly one Table 3.1
    /// component: ledger total == cycle counter, always.
    #[test]
    fn ledger_identity_holds_for_random_workloads(
        ops in proptest::collection::vec((0u8..4, 0u64..1_000_000, any::<bool>()), 1..300)
    ) {
        let mut cpu = Cpu::new(CpuConfig::pentium_ii_xeon().with_interrupts(
            InterruptCfg { period_cycles: 10_000, kernel_code_bytes: 4096, kernel_data_bytes: 512 }));
        let block = CodeBlock::builder("p", 900)
            .private(segment::PRIVATE, 4096)
            .at(segment::CODE);
        let site = BranchSite { addr: segment::CODE + 64, backward: false };
        for (kind, addr, flag) in ops {
            match kind {
                0 => cpu.exec_block(&block),
                1 => cpu.load(segment::HEAP + addr, 8, if flag { MemDep::Chase } else { MemDep::Demand }),
                2 => cpu.store(segment::HEAP + addr, 8, MemDep::Demand),
                _ => cpu.branch(site, flag),
            }
        }
        let ledger_total = cpu.ledger().grand_total();
        prop_assert!((ledger_total - cpu.cycles()).abs() < 1e-6,
            "ledger {} != cycles {}", ledger_total, cpu.cycles());
    }

    /// Counters never decrease and user+sup cycles equal total cycles.
    #[test]
    fn mode_cycles_partition_total(
        ops in proptest::collection::vec((0u8..2, 0u64..500_000), 1..200)
    ) {
        use wdtg_sim::Mode;
        let mut cpu = Cpu::new(CpuConfig::pentium_ii_xeon().with_interrupts(
            InterruptCfg { period_cycles: 7_000, kernel_code_bytes: 2048, kernel_data_bytes: 256 }));
        let block = CodeBlock::builder("p", 1200).private(segment::PRIVATE, 2048).at(segment::CODE);
        for (kind, addr) in ops {
            match kind {
                0 => cpu.exec_block(&block),
                _ => cpu.load(segment::HEAP + addr, 4, MemDep::Demand),
            }
        }
        let split = cpu.cycles_in_mode(Mode::User) + cpu.cycles_in_mode(Mode::Sup);
        prop_assert!((split - cpu.cycles()).abs() < 1e-6);
    }

    /// The contiguous-run cache fast path is observationally identical to
    /// per-line accesses for arbitrary interleavings of runs.
    #[test]
    fn cache_run_fast_path_matches_per_line(
        spans in proptest::collection::vec((0u64..4096, 1u64..200, any::<bool>()), 1..100)
    ) {
        let geom = CacheGeom { size_bytes: 16 * 1024, line_bytes: 32, assoc: 4 };
        let mut per_line = Cache::new(geom);
        let mut run = Cache::new(geom);
        let mut missed = Vec::new();
        for &(first, lines, write) in &spans {
            let mut want_missed = Vec::new();
            for line in first..first + lines {
                if !per_line.access_line(line, write).hit {
                    want_missed.push(line);
                }
            }
            missed.clear();
            let stats = run.access_run(first, lines, write, &mut missed);
            prop_assert_eq!(&missed, &want_missed);
            prop_assert_eq!(stats.misses, want_missed.len() as u64);
            prop_assert_eq!(run.misses(), per_line.misses());
            prop_assert_eq!(run.accesses(), per_line.accesses());
            prop_assert_eq!(run.writebacks(), per_line.writebacks());
        }
        // Final residency agrees for a sample of lines.
        for line in 0..4096u64 {
            prop_assert_eq!(run.probe(line * 32), per_line.probe(line * 32));
        }
    }

    /// A branch with a fixed direction is eventually predicted almost
    /// perfectly regardless of its address or direction.
    #[test]
    fn constant_branches_are_learned(addr in 1u64..1_000_000, taken in any::<bool>()) {
        let mut bu = BranchUnit::new(BtbGeom { entries: 512, assoc: 4, history_bits: 4, pattern_entries: 1024 });
        let mut late = 0;
        for i in 0..100 {
            let out = bu.execute(addr, taken, false);
            if i >= 20 && out.mispredicted {
                late += 1;
            }
        }
        prop_assert!(late == 0, "constant branch still mispredicting {late} times");
    }
}

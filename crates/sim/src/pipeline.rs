//! Instrumented code blocks: the unit of instruction-stream simulation.
//!
//! We cannot execute the x86 binaries of four commercial DBMSs, so the DBMS
//! substrate is *instrumented*: every operator code path declares a
//! [`CodeBlock`] describing the path through it — its code-address range
//! (which drives ITLB/L1I/L2 instruction fetch), its retired x86
//! instructions and µops (which drive T_C), its implicit private-data
//! references (register spills, locals, latches — §5.2 observes these
//! dominate data references and mostly hit L1D), its structural branches,
//! and its dependency/functional-unit profile (which drives T_DEP/T_FU).
//!
//! Executing the *real* Rust implementation of an operator calls
//! [`crate::Cpu::exec_block`] with the operator's block, plus explicit
//! [`crate::Cpu::load`]/[`crate::Cpu::store`]/[`crate::Cpu::branch`] calls
//! for the data accesses and data-dependent branches whose behaviour must
//! *emerge* from the simulation rather than being declared.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::config::PipelineCfg;

/// Average bytes per x86 instruction assumed when deriving instruction
/// counts from a path length (CISC x86 averages ~3.5 bytes).
pub const BYTES_PER_X86_INSTR: f64 = 3.5;
/// Average µops per x86 instruction ("translated into up to three RISC
/// instructions (µops) each", §4.1; database integer code with complex
/// addressing averages ~2).
pub const UOPS_PER_X86_INSTR: f64 = 2.0;

/// A declared code path through one engine function.
#[derive(Debug, Clone)]
pub struct CodeBlock {
    /// Human-readable name (operator/function name), used in reports.
    pub name: &'static str,
    /// Simulated address of the first instruction byte.
    pub base: u64,
    /// Length in bytes of the dynamic path through the function. The fetch
    /// unit touches `path_bytes / line_bytes` I-cache lines per invocation.
    pub path_bytes: u32,
    /// x86 instructions retired per invocation.
    pub x86_instrs: u32,
    /// µops retired per invocation.
    pub uops: u32,
    /// Implicit data references per invocation (locals, spills, metadata) —
    /// serviced from the block's private working region.
    pub mem_refs: u32,
    /// Base simulated address of the private working region.
    pub private_base: u64,
    /// Size of the private working set the implicit references cycle
    /// through. Small (≤ a few KB) working sets stay L1D-resident.
    pub private_bytes: u32,
    /// Static conditional-branch sites on the path (BTB footprint).
    pub branch_sites: u16,
    /// Dynamic branches executed per invocation (bulk-modelled).
    pub dyn_branches: u16,
    /// Fraction of the dynamic branches that are taken.
    pub taken_frac: f64,
    /// Accuracy of the two-level predictor on these branches when their BTB
    /// entry is resident (structural loop/call branches are ~95–99%
    /// predictable).
    pub dyn_bias: f64,
    /// Accuracy of the static backward-taken/forward-not-taken rule on these
    /// branches when the BTB misses.
    pub static_acc: f64,
    /// Length of the longest data-dependency chain, as a fraction of µops.
    /// Values above `1/width` make the block dependency-bound (T_DEP).
    pub dep_frac: f64,
    /// Pressure on the busiest functional-unit port, as a fraction of µops.
    /// Values above `1/width` make the block FU-bound (T_FU).
    pub fu_frac: f64,
    /// Fraction of x86 instructions longer than 7 bytes, each charging one
    /// instruction-length-decoder stall cycle (T_ILD).
    pub long_instr_frac: f64,
    /// Rotation state for representative probe addresses (interior mutability
    /// so blocks can be shared immutably by the engine).
    pub(crate) rot: Rot,
}

/// The rotation counter of a [`CodeBlock`]: a cloneable atomic so blocks are
/// `Sync` (shards move across OS threads under the parallel executor).
///
/// Determinism caveat: the counter is part of the simulated instruction
/// stream, so two *cores* must never share one block — each simulated core
/// needs its own block set ([`CodeBlock`] clones carry the current rotation
/// value), otherwise interleaving would make probe addresses depend on the
/// host schedule. The engine privatizes block sets per shard for exactly
/// this reason.
#[derive(Debug, Default)]
pub(crate) struct Rot(AtomicU32);

impl Clone for Rot {
    fn clone(&self) -> Self {
        Rot(AtomicU32::new(self.0.load(Ordering::Relaxed)))
    }
}

impl Rot {
    fn next(&self) -> u32 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }
}

impl CodeBlock {
    /// Starts building a block for a path of `path_bytes` bytes; instruction
    /// and µop counts, branch counts and memory references are derived from
    /// the path length with typical x86 ratios and can be overridden.
    pub fn builder(name: &'static str, path_bytes: u32) -> CodeBlockBuilder {
        let x86 = (path_bytes as f64 / BYTES_PER_X86_INSTR).round() as u32;
        let x86 = x86.max(1);
        CodeBlockBuilder {
            block: CodeBlock {
                name,
                base: 0,
                path_bytes,
                x86_instrs: x86,
                uops: ((x86 as f64) * UOPS_PER_X86_INSTR).round() as u32,
                // "Memory references account for at least half of the
                // instructions retired" (§5.4); implicit references cover the
                // private-data part, explicit loads/stores add the rest.
                mem_refs: ((x86 as f64) * 0.45).round() as u32,
                private_base: 0,
                private_bytes: 2048,
                // "Branch instructions account for 20% of the total
                // instructions retired" (§5.3).
                branch_sites: ((x86 as f64) * 0.08).ceil() as u16,
                dyn_branches: ((x86 as f64) * 0.20).round() as u16,
                taken_frac: 0.6,
                dyn_bias: 0.96,
                static_acc: 0.62,
                dep_frac: 0.22,
                fu_frac: 0.18,
                long_instr_frac: 0.04,
                rot: Rot::default(),
            },
        }
    }

    /// Number of I-cache lines the path spans for a given line size.
    pub fn lines(&self, line_bytes: u32) -> u32 {
        self.path_bytes.div_ceil(line_bytes).max(1)
    }

    /// Average sequential fetch-run length in lines: how many consecutive
    /// I-cache lines the fetch unit streams through before a taken branch
    /// redirects it. The Xeon's instruction prefetcher only hides misses
    /// within such runs (§3.2), so branch-dense code (interpreters) gets no
    /// benefit while lean straight-line kernels do.
    pub fn seq_run_lines(&self, line_bytes: u32) -> u32 {
        let taken = self.dyn_branches as f64 * self.taken_frac;
        let run_bytes = self.path_bytes as f64 / (1.0 + taken);
        (run_bytes / line_bytes as f64) as u32
    }

    pub(crate) fn next_rot(&self) -> u32 {
        self.rot.next()
    }
}

/// Builder for [`CodeBlock`]; all setters override the derived defaults.
#[derive(Debug, Clone)]
pub struct CodeBlockBuilder {
    block: CodeBlock,
}

#[allow(missing_docs)] // setters mirror the documented CodeBlock fields
impl CodeBlockBuilder {
    pub fn x86_instrs(mut self, v: u32) -> Self {
        self.block.x86_instrs = v.max(1);
        self.block.uops = ((self.block.x86_instrs as f64) * UOPS_PER_X86_INSTR).round() as u32;
        self
    }
    pub fn uops(mut self, v: u32) -> Self {
        self.block.uops = v.max(1);
        self
    }
    pub fn mem_refs(mut self, v: u32) -> Self {
        self.block.mem_refs = v;
        self
    }
    pub fn private(mut self, base: u64, bytes: u32) -> Self {
        self.block.private_base = base;
        self.block.private_bytes = bytes.max(64);
        self
    }
    pub fn branches(mut self, sites: u16, dynamic: u16) -> Self {
        self.block.branch_sites = sites.max(1);
        self.block.dyn_branches = dynamic;
        self
    }
    pub fn taken_frac(mut self, v: f64) -> Self {
        self.block.taken_frac = v.clamp(0.0, 1.0);
        self
    }
    pub fn dyn_bias(mut self, v: f64) -> Self {
        self.block.dyn_bias = v.clamp(0.0, 1.0);
        self
    }
    pub fn static_acc(mut self, v: f64) -> Self {
        self.block.static_acc = v.clamp(0.0, 1.0);
        self
    }
    pub fn dep_frac(mut self, v: f64) -> Self {
        self.block.dep_frac = v.clamp(0.0, 1.0);
        self
    }
    pub fn fu_frac(mut self, v: f64) -> Self {
        self.block.fu_frac = v.clamp(0.0, 1.0);
        self
    }
    pub fn long_instr_frac(mut self, v: f64) -> Self {
        self.block.long_instr_frac = v.clamp(0.0, 1.0);
        self
    }

    /// Places the block at `base` in the code segment and finishes it.
    pub fn at(mut self, base: u64) -> CodeBlock {
        self.block.base = base;
        self.block
    }
}

/// A data-dependent branch site simulated individually (full BTB +
/// two-level-adaptive path), e.g. the selection predicate's qualify branch.
#[derive(Debug, Clone, Copy)]
pub struct BranchSite {
    /// Simulated address of the branch instruction.
    pub addr: u64,
    /// Whether the branch jumps backwards (static prediction: taken).
    pub backward: bool,
}

/// Cycle cost of one block invocation, before instruction-fetch and data
/// stalls (those are simulated, not computed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockCost {
    /// Useful computation cycles: µops / retire width — the paper's
    /// "estimated minimum based on µops retired" (Table 4.2).
    pub tc: f64,
    /// Dependency-stall cycles.
    pub tdep: f64,
    /// Functional-unit-stall cycles.
    pub tfu: f64,
    /// Instruction-length-decoder stall cycles.
    pub tild: f64,
}

/// Computes the dispatch-model cost of one invocation of `block`.
///
/// Dispatch needs `uops/width` cycles; the dependency chain needs
/// `uops × dep_frac` cycles (one µop of the chain per cycle); the busiest
/// port needs `uops × fu_frac` cycles. Execution time is the maximum, and
/// the excess over the dispatch minimum is attributed to T_DEP and T_FU in
/// proportion to how far each constraint exceeds the minimum.
pub fn block_cost(pipe: &PipelineCfg, block: &CodeBlock) -> BlockCost {
    let uops = block.uops as f64;
    let dispatch = uops / pipe.width as f64;
    let dep = uops * block.dep_frac;
    let fu = uops * block.fu_frac;
    let bound = dispatch.max(dep).max(fu);
    let excess = bound - dispatch;
    let dep_raw = (dep - dispatch).max(0.0);
    let fu_raw = (fu - dispatch).max(0.0);
    let (tdep, tfu) = if excess <= 0.0 || dep_raw + fu_raw <= 0.0 {
        (0.0, 0.0)
    } else {
        let scale = excess / (dep_raw + fu_raw);
        (dep_raw * scale, fu_raw * scale)
    };
    let tild = block.x86_instrs as f64 * block.long_instr_frac;
    BlockCost {
        tc: dispatch,
        tdep,
        tfu,
        tild,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CpuConfig;

    fn pipe() -> PipelineCfg {
        CpuConfig::pentium_ii_xeon().pipe
    }

    #[test]
    fn builder_derives_paper_ratios() {
        let b = CodeBlock::builder("scan", 700).at(0x40_0000);
        assert_eq!(b.x86_instrs, 200);
        assert_eq!(b.uops, 400);
        // ~20% of instructions are branches (§5.3).
        assert!((b.dyn_branches as f64 / b.x86_instrs as f64 - 0.20).abs() < 0.01);
        assert_eq!(b.lines(32), 22);
    }

    #[test]
    fn dispatch_bound_block_has_no_resource_stalls() {
        let b = CodeBlock::builder("lean", 350)
            .dep_frac(0.1)
            .fu_frac(0.1)
            .long_instr_frac(0.0)
            .at(0x40_0000);
        let c = block_cost(&pipe(), &b);
        assert_eq!(c.tdep, 0.0);
        assert_eq!(c.tfu, 0.0);
        assert!((c.tc - b.uops as f64 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn dependency_bound_block_charges_tdep() {
        let b = CodeBlock::builder("chase", 350)
            .dep_frac(0.8)
            .fu_frac(0.1)
            .at(0);
        let c = block_cost(&pipe(), &b);
        assert!(c.tdep > 0.0);
        assert_eq!(c.tfu, 0.0);
        // Total equals the binding constraint.
        let total = c.tc + c.tdep + c.tfu;
        assert!((total - b.uops as f64 * 0.8).abs() < 1e-9);
    }

    #[test]
    fn mixed_pressure_splits_proportionally() {
        let b = CodeBlock::builder("mixed", 350)
            .dep_frac(0.6)
            .fu_frac(0.5)
            .at(0);
        let c = block_cost(&pipe(), &b);
        assert!(c.tdep > c.tfu && c.tfu > 0.0);
        let total = c.tc + c.tdep + c.tfu;
        assert!(
            (total - b.uops as f64 * 0.6).abs() < 1e-9,
            "max constraint binds"
        );
    }

    #[test]
    fn rotation_advances() {
        let b = CodeBlock::builder("r", 64).at(0);
        assert_eq!(b.next_rot(), 0);
        assert_eq!(b.next_rot(), 1);
    }
}

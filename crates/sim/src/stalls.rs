//! Ground-truth stall accounting (Table 3.1).
//!
//! The paper decomposes query execution time as
//! `T_Q = T_C + T_M + T_B + T_R − T_OVL` with the memory component split into
//! `T_L1D, T_L1I, T_L2D, T_L2I, T_DTLB, T_ITLB` and the resource component
//! into `T_FU, T_DEP, T_MISC/T_ILD`. On real hardware several of those are
//! only measurable as `count × penalty` upper bounds (Table 4.2) and `T_OVL`
//! is not measurable at all. The simulator charges every cycle to exactly one
//! component as it is spent, so the ledger *is* the ground truth; the
//! `wdtg-emon` crate reconstructs the paper-style estimates from counters and
//! can be validated against this ledger.
//!
//! # Charging rules
//!
//! * **Exactly-once**: every simulated cycle lands in exactly one
//!   [`Component`] under exactly one [`Mode`]; `grand_total()` equals the
//!   CPU cycle counter by construction (an invariant test enforces it), so
//!   there is no unattributed or double-counted time and `T_OVL` — the
//!   overlap term the real hardware cannot expose — is folded into the
//!   per-component charges as they happen.
//! * **Hierarchy**: a data load that misses L1D but hits L2 charges `Tl1d`;
//!   missing L2 too charges `Tl2d` (main-memory latency) instead — the
//!   levels are exclusive in the ledger even though the hardware overlaps
//!   them. Instruction fetches charge `Tl1i`/`Tl2i` the same way; TLB walks
//!   charge `Tdtlb`/`Titlb`. This is why the NSM-vs-PAX page-layout
//!   comparison reads `Tl2d` directly: fewer distinct data lines touched ⇒
//!   fewer L2 data misses ⇒ fewer cycles charged here, with no modelling
//!   shortcut in between.
//! * **Overlap discounts**: stall charges are scaled by what the
//!   out-of-order window hides (e.g. overlappable [`crate::MemDep::Demand`]
//!   loads charge less than serialized [`crate::MemDep::Chase`] chains);
//!   the discounted remainder is what lands in the ledger, so components
//!   sum to wall-clock cycles, not to the count×penalty upper bounds.
//! * **Fractional cycles**: charges are `f64` because bulk-modelled
//!   branches and partial-overlap penalties accumulate sub-cycle amounts;
//!   only totals are meaningful.

use crate::events::Mode;

/// One execution-time component from Table 3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Component {
    /// Useful computation time.
    Tc,
    /// L1 data-cache miss stalls (hit in L2).
    Tl1d,
    /// L1 instruction-cache miss stalls (hit in L2).
    Tl1i,
    /// L2 data miss stalls (main-memory latency).
    Tl2d,
    /// L2 instruction miss stalls.
    Tl2i,
    /// Data TLB miss stalls (not measurable on the real Pentium II).
    Tdtlb,
    /// Instruction TLB miss stalls.
    Titlb,
    /// Branch misprediction penalty.
    Tb,
    /// Functional-unit contention stalls.
    Tfu,
    /// Dependency stalls (insufficient instruction-level parallelism).
    Tdep,
    /// Instruction-length decoder stalls (the platform-specific T_MISC of
    /// Table 3.1, instantiated as T_ILD in Table 4.2).
    Tild,
}

impl Component {
    /// All components in display order (Table 3.1 order).
    pub const ALL: [Component; 11] = [
        Component::Tc,
        Component::Tl1d,
        Component::Tl1i,
        Component::Tl2d,
        Component::Tl2i,
        Component::Tdtlb,
        Component::Titlb,
        Component::Tb,
        Component::Tfu,
        Component::Tdep,
        Component::Tild,
    ];

    /// The label used in the paper.
    pub fn label(self) -> &'static str {
        match self {
            Component::Tc => "TC",
            Component::Tl1d => "TL1D",
            Component::Tl1i => "TL1I",
            Component::Tl2d => "TL2D",
            Component::Tl2i => "TL2I",
            Component::Tdtlb => "TDTLB",
            Component::Titlb => "TITLB",
            Component::Tb => "TB",
            Component::Tfu => "TFU",
            Component::Tdep => "TDEP",
            Component::Tild => "TILD",
        }
    }

    /// Whether the component belongs to the memory-stall group `T_M`.
    pub fn is_memory(self) -> bool {
        matches!(
            self,
            Component::Tl1d
                | Component::Tl1i
                | Component::Tl2d
                | Component::Tl2i
                | Component::Tdtlb
                | Component::Titlb
        )
    }

    /// Whether the component belongs to the resource-stall group `T_R`.
    pub fn is_resource(self) -> bool {
        matches!(self, Component::Tfu | Component::Tdep | Component::Tild)
    }
}

/// Per-mode, per-component charged cycles.
///
/// Cycles are kept as `f64` because bulk-modelled branches and fractional
/// penalties accumulate sub-cycle amounts; totals are exact sums of charges.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StallLedger {
    charged: [[f64; Component::ALL.len()]; 2],
}

impl StallLedger {
    /// A zeroed ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `cycles` to `component` under `mode`.
    #[inline]
    pub fn charge(&mut self, mode: Mode, component: Component, cycles: f64) {
        debug_assert!(cycles >= 0.0, "negative charge for {component:?}");
        self.charged[mode as usize][component as usize] += cycles;
    }

    /// Cycles charged to `component` under `mode`.
    #[inline]
    pub fn get(&self, mode: Mode, component: Component) -> f64 {
        self.charged[mode as usize][component as usize]
    }

    /// Cycles charged to `component`, both modes.
    pub fn total(&self, component: Component) -> f64 {
        self.charged[0][component as usize] + self.charged[1][component as usize]
    }

    /// Total cycles charged under `mode` across all components.
    pub fn mode_total(&self, mode: Mode) -> f64 {
        self.charged[mode as usize].iter().sum()
    }

    /// Grand total cycles (this equals the CPU's cycle counter by
    /// construction; an invariant test enforces it).
    pub fn grand_total(&self) -> f64 {
        self.mode_total(Mode::User) + self.mode_total(Mode::Sup)
    }

    /// Memory-stall group total `T_M` for a mode.
    pub fn memory_total(&self, mode: Mode) -> f64 {
        Component::ALL
            .iter()
            .filter(|c| c.is_memory())
            .map(|c| self.get(mode, *c))
            .sum()
    }

    /// Resource-stall group total `T_R` for a mode.
    pub fn resource_total(&self, mode: Mode) -> f64 {
        Component::ALL
            .iter()
            .filter(|c| c.is_resource())
            .map(|c| self.get(mode, *c))
            .sum()
    }

    /// Zeroes all charges.
    pub fn reset(&mut self) {
        self.charged = [[0.0; Component::ALL.len()]; 2];
    }

    /// Adds every charge of `other` into `self` (multi-core merge: per-core
    /// stall cycles sum to the machine-wide total).
    pub fn absorb(&mut self, other: &StallLedger) {
        for m in 0..2 {
            for c in 0..Component::ALL.len() {
                self.charged[m][c] += other.charged[m][c];
            }
        }
    }

    /// Ledger delta `self - earlier`.
    pub fn delta(&self, earlier: &StallLedger) -> StallLedger {
        let mut out = StallLedger::new();
        for m in 0..2 {
            for c in 0..Component::ALL.len() {
                out.charged[m][c] = self.charged[m][c] - earlier.charged[m][c];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_partition_the_components() {
        let mem = Component::ALL.iter().filter(|c| c.is_memory()).count();
        let res = Component::ALL.iter().filter(|c| c.is_resource()).count();
        assert_eq!(mem, 6, "T_M has six sub-components in Table 3.1");
        assert_eq!(res, 3);
        assert!(!Component::Tc.is_memory() && !Component::Tc.is_resource());
        assert!(!Component::Tb.is_memory() && !Component::Tb.is_resource());
        assert_eq!(mem + res + 2, Component::ALL.len());
    }

    #[test]
    fn charge_and_group_totals() {
        let mut l = StallLedger::new();
        l.charge(Mode::User, Component::Tc, 100.0);
        l.charge(Mode::User, Component::Tl2d, 40.0);
        l.charge(Mode::User, Component::Tl1i, 10.0);
        l.charge(Mode::User, Component::Tdep, 5.0);
        l.charge(Mode::Sup, Component::Tc, 7.0);
        assert_eq!(l.memory_total(Mode::User), 50.0);
        assert_eq!(l.resource_total(Mode::User), 5.0);
        assert_eq!(l.mode_total(Mode::User), 155.0);
        assert_eq!(l.grand_total(), 162.0);
        assert_eq!(l.total(Component::Tc), 107.0);
    }

    #[test]
    fn delta_is_componentwise() {
        let mut l = StallLedger::new();
        l.charge(Mode::User, Component::Tb, 17.0);
        let snap = l.clone();
        l.charge(Mode::User, Component::Tb, 34.0);
        let d = l.delta(&snap);
        assert_eq!(d.get(Mode::User, Component::Tb), 34.0);
    }
}

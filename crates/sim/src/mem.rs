//! The simulated flat physical address space.
//!
//! Every byte the simulated DBMS touches — code, heap pages, index nodes,
//! private working memory, kernel footprint — lives at a simulated address.
//! Cache and TLB behaviour is therefore *produced* by real addresses, not
//! postulated. The address space is a bump allocator over disjoint segments;
//! backing storage for data regions is owned by the client (the DBMS arena),
//! the simulator only cares about the addresses.

/// Well-known segment bases. Segments are far apart so they can never collide
/// regardless of how much is allocated from each.
pub mod segment {
    /// User code (the DBMS binary image).
    pub const CODE: u64 = 0x0040_0000;
    /// Engine-private working memory: execution state, accumulators, tuple
    /// buffers, latches. §5.2 observes this data is touched far more often
    /// than relation data and largely fits in the L1 D-cache.
    pub const PRIVATE: u64 = 0x0200_0000;
    /// Relation heap pages (the buffer pool's frames).
    pub const HEAP: u64 = 0x1000_0000;
    /// Index pages (B+-trees, hash tables).
    pub const INDEX: u64 = 0x4000_0000;
    /// Miscellaneous allocations (catalog, page tables of the buffer pool).
    pub const MISC: u64 = 0x6000_0000;
    /// Kernel code executed by the interrupt model (supervisor mode).
    pub const KERNEL_CODE: u64 = 0x8000_0000;
    /// Kernel data touched by the interrupt model.
    pub const KERNEL_DATA: u64 = 0x9000_0000;
}

/// A contiguous region of simulated memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First simulated address of the region.
    pub base: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Region {
    /// Address one past the end of the region.
    pub fn end(&self) -> u64 {
        self.base + self.len
    }

    /// Whether `addr` falls inside the region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Offset of `addr` within the region. Panics if outside.
    pub fn offset_of(&self, addr: u64) -> u64 {
        debug_assert!(
            self.contains(addr),
            "address {addr:#x} outside region {self:?}"
        );
        addr - self.base
    }
}

/// Bump allocator over one segment of the simulated address space.
#[derive(Debug, Clone)]
pub struct SegmentAlloc {
    next: u64,
    base: u64,
}

impl SegmentAlloc {
    /// Creates an allocator starting at `base` (use the [`segment`] constants).
    pub fn new(base: u64) -> Self {
        SegmentAlloc { next: base, base }
    }

    /// Allocates `len` bytes aligned to `align` (a power of two).
    pub fn alloc(&mut self, len: u64, align: u64) -> Region {
        debug_assert!(align.is_power_of_two());
        let base = (self.next + align - 1) & !(align - 1);
        self.next = base + len;
        Region { base, len }
    }

    /// Total bytes handed out so far (including alignment padding).
    pub fn used(&self) -> u64 {
        self.next - self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap_and_respect_alignment() {
        let mut a = SegmentAlloc::new(segment::HEAP);
        let r1 = a.alloc(100, 64);
        let r2 = a.alloc(8192, 8192);
        let r3 = a.alloc(1, 1);
        assert_eq!(r1.base % 64, 0);
        assert_eq!(r2.base % 8192, 0);
        assert!(r1.end() <= r2.base);
        assert!(r2.end() <= r3.base);
        assert!(r1.contains(r1.base) && !r1.contains(r1.end()));
    }

    #[test]
    fn offset_of_is_relative_to_base() {
        let r = Region {
            base: 0x1000,
            len: 0x100,
        };
        assert_eq!(r.offset_of(0x1010), 0x10);
    }

    #[test]
    fn segments_are_disjoint_even_after_large_allocations() {
        // 512 MB of heap stays below the index segment.
        let mut heap = SegmentAlloc::new(segment::HEAP);
        let big = heap.alloc(512 << 20, 4096);
        assert!(big.end() < segment::INDEX);
    }
}

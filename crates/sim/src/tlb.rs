//! Translation look-aside buffers.
//!
//! The ITLB and DTLB are small set-associative caches of page translations
//! (4 KB pages under NT 4.0). Table 4.2 measures T_ITLB as misses × 32 cycles;
//! T_DTLB had no event code on the Pentium II, so the paper could not measure
//! it — the simulator models it anyway and exposes it as ground truth.

use crate::cache::Cache;
use crate::config::{CacheGeom, TlbGeom};

/// A TLB, implemented as a set-associative cache of page numbers.
#[derive(Debug, Clone)]
pub struct Tlb {
    inner: Cache,
    page_shift: u32,
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new(geom: TlbGeom) -> Self {
        // Reuse the cache model: one "line" per page translation. The page
        // shift is applied here, so configure the inner cache with
        // single-byte lines over page numbers.
        let inner = Cache::new(CacheGeom {
            size_bytes: geom.entries,
            line_bytes: 1,
            assoc: geom.assoc,
        });
        Tlb {
            inner,
            page_shift: geom.page_bytes.trailing_zeros(),
        }
    }

    /// Looks up the page containing `addr`; returns true on a TLB hit.
    /// A miss installs the translation (hardware page walk).
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.inner.access_line(addr >> self.page_shift, false).hit
    }

    /// Number of lookups performed.
    pub fn accesses(&self) -> u64 {
        self.inner.accesses()
    }

    /// Number of misses (page walks).
    pub fn misses(&self) -> u64 {
        self.inner.misses()
    }

    /// Clears statistics but keeps translations.
    pub fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb() -> Tlb {
        Tlb::new(TlbGeom {
            entries: 8,
            assoc: 2,
            page_bytes: 4096,
        })
    }

    #[test]
    fn same_page_hits() {
        let mut t = tlb();
        assert!(!t.access(0x1000));
        assert!(t.access(0x1fff), "same 4 KB page");
        assert!(!t.access(0x2000), "next page");
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn capacity_misses_when_touching_many_pages() {
        let mut t = tlb();
        // 32 distinct pages through an 8-entry TLB, twice: second pass still misses.
        for _ in 0..2 {
            for p in 0..32u64 {
                t.access(p * 4096);
            }
        }
        assert!(t.misses() > 32, "reuse distance exceeds capacity");
    }

    #[test]
    fn small_working_set_stays_resident() {
        let mut t = tlb();
        for _ in 0..10 {
            for p in 0..4u64 {
                t.access(p * 4096);
            }
        }
        t.reset_stats();
        for p in 0..4u64 {
            assert!(t.access(p * 4096));
        }
    }
}

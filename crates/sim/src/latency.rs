//! Memory-latency measurement microbenchmark.
//!
//! §5.2.1: "Generally, a memory latency of 60-70 cycles was observed." The
//! paper *measured* the latency on the real machine (Table 4.2 uses it as the
//! L2-miss penalty in the formulae); we reproduce the measurement with an
//! `lat_mem_rd`-style dependent pointer chase whose footprint far exceeds the
//! L2 capacity, run through the simulator like any other workload.

use crate::cpu::{Cpu, MemDep};
use crate::mem::segment;

/// Result of a latency measurement run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyMeasurement {
    /// Measured cycles per dependent load (includes TLB effects, as a real
    /// measurement would).
    pub cycles_per_load: f64,
    /// Number of dependent loads performed.
    pub loads: u64,
}

/// Measures main-memory load-to-use latency on `cpu` with a dependent
/// pointer chase over `footprint_bytes` (must exceed the L2 capacity for the
/// result to reflect memory rather than L2).
pub fn measure_memory_latency(cpu: &mut Cpu, footprint_bytes: u64) -> LatencyMeasurement {
    let line = cpu.config().l2.line_bytes as u64;
    // A new cache line per access; several accesses per page so the TLB cost
    // is amortised like lat_mem_rd's stride walk does.
    let stride = 16 * line;
    let slots = (footprint_bytes / stride).max(16);
    let base = segment::MISC + 0x100_0000;

    // Warm the chain once, then measure a full pass.
    for pass in 0..2u32 {
        if pass == 1 {
            cpu.reset_stats();
        }
        for slot in 0..slots {
            cpu.load(base + slot * stride, 8, MemDep::Chase);
        }
    }
    LatencyMeasurement {
        cycles_per_load: cpu.cycles() / slots as f64,
        loads: slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CpuConfig, InterruptCfg};

    #[test]
    fn measured_latency_is_60_to_70_cycles() {
        // The paper observed 60-70 cycles on the 400 MHz Xeon (§5.2.1).
        let mut cpu =
            Cpu::new(CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled()));
        let m = measure_memory_latency(&mut cpu, 8 * 1024 * 1024);
        assert!(
            (60.0..=70.0).contains(&m.cycles_per_load),
            "measured {} cycles/load, expected the paper's 60-70 band",
            m.cycles_per_load
        );
    }

    #[test]
    fn small_footprint_measures_l2_not_memory() {
        let mut cpu =
            Cpu::new(CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled()));
        // 64 KB fits in the 512 KB L2: after warm-up, loads are L2 hits.
        let m = measure_memory_latency(&mut cpu, 64 * 1024);
        assert!(
            m.cycles_per_load < 20.0,
            "L2-resident chase should be fast, got {}",
            m.cycles_per_load
        );
    }
}

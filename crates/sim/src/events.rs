//! Hardware event counters.
//!
//! §4.3: "The Pentium II processor provides two counters for event
//! measurement. We used emon, a tool provided by Intel, to control these
//! counters. … Emon was used to measure 74 event types for the results
//! presented in this report. We measured each event type in both user and
//! kernel mode."
//!
//! [`Event`] enumerates those 74 Pentium II event types (names follow the
//! Intel developer's manual, Appendix A) plus a few `Sim*` pseudo-events the
//! real hardware could *not* measure (most importantly DTLB misses — the
//! paper: "We were not able to measure T_DTLB, because the event code is not
//! available"). The [`crate::Cpu`] maintains the full counter file as ground
//! truth; the `wdtg-emon` crate re-imposes the two-counters-per-run
//! restriction on top of it.

/// One measurable event type. The first 74 variants are genuine Pentium II
/// event types; variants prefixed `Sim` are simulator-only ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
#[allow(missing_docs)] // the variant names are the documentation (Intel mnemonics)
pub enum Event {
    // -- memory / L1 data cache ------------------------------------------
    DataMemRefs,
    DcuLinesIn,
    DcuMLinesIn,
    DcuMLinesOut,
    DcuMissOutstanding,
    // -- instruction fetch unit ------------------------------------------
    IfuIfetch,
    IfuIfetchMiss,
    ItlbMiss,
    IfuMemStall,
    IldStall,
    // -- L2 cache ----------------------------------------------------------
    L2Ifetch,
    L2Ld,
    L2St,
    L2LinesIn,
    L2LinesOut,
    L2MLinesIn,
    L2MLinesOut,
    L2Rqsts,
    L2Ads,
    L2DbusBusy,
    L2DbusBusyRd,
    // -- external bus ------------------------------------------------------
    BusDrdyClocks,
    BusLockClocks,
    BusReqOutstanding,
    BusTranBrd,
    BusTranRfo,
    BusTransWb,
    BusTranIfetch,
    BusTranInval,
    BusTranPwr,
    BusTransP,
    BusTransIo,
    BusTranDef,
    BusTranBurst,
    BusTranAny,
    BusTranMem,
    BusDataRcv,
    BusBnrDrv,
    BusHitDrv,
    BusHitmDrv,
    BusSnoopStall,
    // -- floating point / long-latency units -------------------------------
    Flops,
    FpCompOpsExe,
    FpAssist,
    Mul,
    Div,
    CyclesDivBusy,
    // -- memory ordering ----------------------------------------------------
    LdBlocks,
    SbDrains,
    MisalignMemRef,
    // -- instruction decode / retire ----------------------------------------
    InstRetired,
    UopsRetired,
    InstDecoded,
    HwIntRx,
    CyclesIntMasked,
    CyclesIntPendingAndMasked,
    // -- branches ------------------------------------------------------------
    BrInstRetired,
    BrMissPredRetired,
    BrTakenRetired,
    BrMissPredTakenRet,
    BrInstDecoded,
    BtbMisses,
    BrBogus,
    Baclears,
    // -- stalls ---------------------------------------------------------------
    ResourceStalls,
    PartialRatStalls,
    // -- misc -------------------------------------------------------------------
    SegmentRegLoads,
    CpuClkUnhalted,
    // -- MMX (present on the Pentium II; unused by this workload) ---------------
    MmxInstrExec,
    MmxSatInstrExec,
    MmxUopsExec,
    MmxInstrTypeExec,
    FpMmxTrans,
    MmxAssist,
    // ---------------------------------------------------------------------------
    // Simulator-only ground truth (no Pentium II event code existed).
    // ---------------------------------------------------------------------------
    /// DTLB misses (the event the paper explicitly could not measure).
    SimDtlbMiss,
    /// L2 misses caused by data accesses (demand loads/stores).
    SimL2DataMiss,
    /// L2 misses caused by instruction fetches.
    SimL2IfetchMiss,
    /// Software/stream prefetches issued.
    SimPrefetchIssued,
    /// Prefetches that had not completed when the demand access arrived.
    SimPrefetchLate,
    /// Kernel entries taken by the OS interrupt model.
    SimKernelEntries,
    /// Demand instruction fetches satisfied by the sequential stream
    /// prefetcher rather than a full miss.
    SimStreamBufHit,
    /// Conditional-select (cmov-style) lanes executed through
    /// [`crate::Cpu::select_run`] — the predicated executor's qualify work.
    SimSelectOps,
    /// Mispredictions of *data-dependent* branches (those simulated
    /// individually through [`crate::Cpu::branch`] — the selection
    /// predicate's qualify branch and the joins' match branches), as
    /// opposed to the bulk-modelled structural branches. In a plan whose
    /// only such site is the qualify branch (the sequential range
    /// selection), predicated selection must report zero.
    SimDataBranchMiss,
}

impl Event {
    /// All events, in counter-file order.
    pub const ALL: [Event; Event::COUNT] = {
        // Exhaustive list; a unit test checks the indices are dense.
        use Event::*;
        [
            DataMemRefs,
            DcuLinesIn,
            DcuMLinesIn,
            DcuMLinesOut,
            DcuMissOutstanding,
            IfuIfetch,
            IfuIfetchMiss,
            ItlbMiss,
            IfuMemStall,
            IldStall,
            L2Ifetch,
            L2Ld,
            L2St,
            L2LinesIn,
            L2LinesOut,
            L2MLinesIn,
            L2MLinesOut,
            L2Rqsts,
            L2Ads,
            L2DbusBusy,
            L2DbusBusyRd,
            BusDrdyClocks,
            BusLockClocks,
            BusReqOutstanding,
            BusTranBrd,
            BusTranRfo,
            BusTransWb,
            BusTranIfetch,
            BusTranInval,
            BusTranPwr,
            BusTransP,
            BusTransIo,
            BusTranDef,
            BusTranBurst,
            BusTranAny,
            BusTranMem,
            BusDataRcv,
            BusBnrDrv,
            BusHitDrv,
            BusHitmDrv,
            BusSnoopStall,
            Flops,
            FpCompOpsExe,
            FpAssist,
            Mul,
            Div,
            CyclesDivBusy,
            LdBlocks,
            SbDrains,
            MisalignMemRef,
            InstRetired,
            UopsRetired,
            InstDecoded,
            HwIntRx,
            CyclesIntMasked,
            CyclesIntPendingAndMasked,
            BrInstRetired,
            BrMissPredRetired,
            BrTakenRetired,
            BrMissPredTakenRet,
            BrInstDecoded,
            BtbMisses,
            BrBogus,
            Baclears,
            ResourceStalls,
            PartialRatStalls,
            SegmentRegLoads,
            CpuClkUnhalted,
            MmxInstrExec,
            MmxSatInstrExec,
            MmxUopsExec,
            MmxInstrTypeExec,
            FpMmxTrans,
            MmxAssist,
            SimDtlbMiss,
            SimL2DataMiss,
            SimL2IfetchMiss,
            SimPrefetchIssued,
            SimPrefetchLate,
            SimKernelEntries,
            SimStreamBufHit,
            SimSelectOps,
            SimDataBranchMiss,
        ]
    };

    /// Total number of event types (74 hardware + 9 simulator-only).
    pub const COUNT: usize = 83;

    /// Number of genuine Pentium II event types (the paper's "74 event types").
    pub const HARDWARE_COUNT: usize = 74;

    /// Whether a real Pentium II event code exists for this event (i.e. it is
    /// measurable through `emon`).
    pub fn has_hardware_code(self) -> bool {
        (self as usize) < Self::HARDWARE_COUNT
    }

    /// The Intel-style mnemonic for this event.
    pub fn mnemonic(self) -> &'static str {
        use Event::*;
        match self {
            DataMemRefs => "DATA_MEM_REFS",
            DcuLinesIn => "DCU_LINES_IN",
            DcuMLinesIn => "DCU_M_LINES_IN",
            DcuMLinesOut => "DCU_M_LINES_OUT",
            DcuMissOutstanding => "DCU_MISS_OUTSTANDING",
            IfuIfetch => "IFU_IFETCH",
            IfuIfetchMiss => "IFU_IFETCH_MISS",
            ItlbMiss => "ITLB_MISS",
            IfuMemStall => "IFU_MEM_STALL",
            IldStall => "ILD_STALL",
            L2Ifetch => "L2_IFETCH",
            L2Ld => "L2_LD",
            L2St => "L2_ST",
            L2LinesIn => "L2_LINES_IN",
            L2LinesOut => "L2_LINES_OUT",
            L2MLinesIn => "L2_M_LINES_IN",
            L2MLinesOut => "L2_M_LINES_OUT",
            L2Rqsts => "L2_RQSTS",
            L2Ads => "L2_ADS",
            L2DbusBusy => "L2_DBUS_BUSY",
            L2DbusBusyRd => "L2_DBUS_BUSY_RD",
            BusDrdyClocks => "BUS_DRDY_CLOCKS",
            BusLockClocks => "BUS_LOCK_CLOCKS",
            BusReqOutstanding => "BUS_REQ_OUTSTANDING",
            BusTranBrd => "BUS_TRAN_BRD",
            BusTranRfo => "BUS_TRAN_RFO",
            BusTransWb => "BUS_TRANS_WB",
            BusTranIfetch => "BUS_TRAN_IFETCH",
            BusTranInval => "BUS_TRAN_INVAL",
            BusTranPwr => "BUS_TRAN_PWR",
            BusTransP => "BUS_TRANS_P",
            BusTransIo => "BUS_TRANS_IO",
            BusTranDef => "BUS_TRAN_DEF",
            BusTranBurst => "BUS_TRAN_BURST",
            BusTranAny => "BUS_TRAN_ANY",
            BusTranMem => "BUS_TRAN_MEM",
            BusDataRcv => "BUS_DATA_RCV",
            BusBnrDrv => "BUS_BNR_DRV",
            BusHitDrv => "BUS_HIT_DRV",
            BusHitmDrv => "BUS_HITM_DRV",
            BusSnoopStall => "BUS_SNOOP_STALL",
            Flops => "FLOPS",
            FpCompOpsExe => "FP_COMP_OPS_EXE",
            FpAssist => "FP_ASSIST",
            Mul => "MUL",
            Div => "DIV",
            CyclesDivBusy => "CYCLES_DIV_BUSY",
            LdBlocks => "LD_BLOCKS",
            SbDrains => "SB_DRAINS",
            MisalignMemRef => "MISALIGN_MEM_REF",
            InstRetired => "INST_RETIRED",
            UopsRetired => "UOPS_RETIRED",
            InstDecoded => "INST_DECODED",
            HwIntRx => "HW_INT_RX",
            CyclesIntMasked => "CYCLES_INT_MASKED",
            CyclesIntPendingAndMasked => "CYCLES_INT_PENDING_AND_MASKED",
            BrInstRetired => "BR_INST_RETIRED",
            BrMissPredRetired => "BR_MISS_PRED_RETIRED",
            BrTakenRetired => "BR_TAKEN_RETIRED",
            BrMissPredTakenRet => "BR_MISS_PRED_TAKEN_RET",
            BrInstDecoded => "BR_INST_DECODED",
            BtbMisses => "BTB_MISSES",
            BrBogus => "BR_BOGUS",
            Baclears => "BACLEARS",
            ResourceStalls => "RESOURCE_STALLS",
            PartialRatStalls => "PARTIAL_RAT_STALLS",
            SegmentRegLoads => "SEGMENT_REG_LOADS",
            CpuClkUnhalted => "CPU_CLK_UNHALTED",
            MmxInstrExec => "MMX_INSTR_EXEC",
            MmxSatInstrExec => "MMX_SAT_INSTR_EXEC",
            MmxUopsExec => "MMX_UOPS_EXEC",
            MmxInstrTypeExec => "MMX_INSTR_TYPE_EXEC",
            FpMmxTrans => "FP_MMX_TRANS",
            MmxAssist => "MMX_ASSIST",
            SimDtlbMiss => "SIM.DTLB_MISS",
            SimL2DataMiss => "SIM.L2_DATA_MISS",
            SimL2IfetchMiss => "SIM.L2_IFETCH_MISS",
            SimPrefetchIssued => "SIM.PREFETCH_ISSUED",
            SimPrefetchLate => "SIM.PREFETCH_LATE",
            SimKernelEntries => "SIM.KERNEL_ENTRIES",
            SimStreamBufHit => "SIM.STREAM_BUF_HIT",
            SimSelectOps => "SIM.SELECT_OPS",
            SimDataBranchMiss => "SIM.DATA_BRANCH_MISS",
        }
    }

    /// Parses an Intel-style mnemonic (as used in emon command lines).
    pub fn from_mnemonic(s: &str) -> Option<Event> {
        Event::ALL.into_iter().find(|e| e.mnemonic() == s)
    }
}

/// Privilege mode an event is attributed to (emon's `:USER` / `:SUP`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// User-mode execution (the DBMS itself).
    User = 0,
    /// Supervisor mode (NT kernel: interrupts, context switches).
    Sup = 1,
}

/// The full counter file: one 64-bit counter per event per mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterFile {
    counts: [[u64; Event::COUNT]; 2],
}

impl Default for CounterFile {
    fn default() -> Self {
        Self::new()
    }
}

impl CounterFile {
    /// All counters at zero.
    pub fn new() -> Self {
        CounterFile {
            counts: [[0; Event::COUNT]; 2],
        }
    }

    /// Adds `n` to `event` in `mode`.
    #[inline]
    pub fn bump(&mut self, mode: Mode, event: Event, n: u64) {
        self.counts[mode as usize][event as usize] += n;
    }

    /// Reads one counter.
    #[inline]
    pub fn get(&self, mode: Mode, event: Event) -> u64 {
        self.counts[mode as usize][event as usize]
    }

    /// Reads the sum over both modes.
    #[inline]
    pub fn total(&self, event: Event) -> u64 {
        self.counts[0][event as usize] + self.counts[1][event as usize]
    }

    /// Zeroes every counter (emon's counter reset).
    pub fn reset(&mut self) {
        self.counts = [[0; Event::COUNT]; 2];
    }

    /// Adds every counter of `other` into `self` (multi-core merge: per-core
    /// counts sum to the machine-wide total).
    pub fn absorb(&mut self, other: &CounterFile) {
        for m in 0..2 {
            for e in 0..Event::COUNT {
                self.counts[m][e] += other.counts[m][e];
            }
        }
    }

    /// Counter-file delta `self - earlier`, counter by counter.
    pub fn delta(&self, earlier: &CounterFile) -> CounterFile {
        let mut out = CounterFile::new();
        for m in 0..2 {
            for e in 0..Event::COUNT {
                out.counts[m][e] = self.counts[m][e] - earlier.counts[m][e];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_indices_are_dense_and_ordered() {
        for (i, e) in Event::ALL.iter().enumerate() {
            assert_eq!(*e as usize, i, "{e:?} out of order in ALL");
        }
    }

    #[test]
    fn hardware_event_count_is_74() {
        let hw = Event::ALL.iter().filter(|e| e.has_hardware_code()).count();
        assert_eq!(hw, 74, "the paper measured 74 event types");
        assert!(
            !Event::SimDtlbMiss.has_hardware_code(),
            "T_DTLB was not measurable"
        );
    }

    #[test]
    fn mnemonic_round_trip() {
        for e in Event::ALL {
            assert_eq!(Event::from_mnemonic(e.mnemonic()), Some(e));
        }
        assert_eq!(Event::from_mnemonic("NOT_AN_EVENT"), None);
    }

    #[test]
    fn counters_track_modes_separately() {
        let mut c = CounterFile::new();
        c.bump(Mode::User, Event::InstRetired, 10);
        c.bump(Mode::Sup, Event::InstRetired, 3);
        assert_eq!(c.get(Mode::User, Event::InstRetired), 10);
        assert_eq!(c.get(Mode::Sup, Event::InstRetired), 3);
        assert_eq!(c.total(Event::InstRetired), 13);
    }

    #[test]
    fn delta_subtracts_counter_by_counter() {
        let mut a = CounterFile::new();
        a.bump(Mode::User, Event::Div, 5);
        let snapshot = a.clone();
        a.bump(Mode::User, Event::Div, 7);
        a.bump(Mode::Sup, Event::Mul, 2);
        let d = a.delta(&snapshot);
        assert_eq!(d.get(Mode::User, Event::Div), 7);
        assert_eq!(d.get(Mode::Sup, Event::Mul), 2);
        assert_eq!(d.get(Mode::User, Event::Mul), 0);
    }
}

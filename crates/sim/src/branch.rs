//! Branch target buffer and two-level adaptive branch prediction.
//!
//! §5.3: "The branch prediction algorithm uses a small buffer, called the
//! Branch Target Buffer (BTB) to store the targets of the last branches
//! executed. A hit in this buffer activates a branch prediction algorithm,
//! which decides which will be the target of the branch based on previous
//! history \[20\]. On a BTB miss, the prediction is static (backward branch is
//! taken, forward is not taken)."
//!
//! The dynamic predictor is a Yeh–Patt two-level adaptive scheme \[20\]:
//! per-branch local history kept in the BTB entry selects a 2-bit saturating
//! counter in a shared pattern history table.

use crate::config::BtbGeom;

/// Result of executing one branch through the prediction hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchOutcome {
    /// Whether the branch's entry was found in the BTB.
    pub btb_hit: bool,
    /// Whether the prediction (dynamic on BTB hit, static otherwise)
    /// disagreed with the actual direction.
    pub mispredicted: bool,
}

const INVALID: u64 = u64::MAX;

/// BTB + two-level adaptive predictor + static fallback.
#[derive(Debug, Clone)]
pub struct BranchUnit {
    geom: BtbGeom,
    sets: u32,
    history_mask: u8,
    tags: Vec<u64>,
    lru: Vec<u8>,
    hist: Vec<u8>,
    pht: Vec<u8>, // 2-bit saturating counters
}

impl BranchUnit {
    /// Creates a cold branch unit.
    pub fn new(geom: BtbGeom) -> Self {
        let sets = geom.entries / geom.assoc;
        let n = geom.entries as usize;
        BranchUnit {
            geom,
            sets,
            history_mask: ((1u16 << geom.history_bits) - 1) as u8,
            tags: vec![INVALID; n],
            lru: (0..n).map(|i| (i as u32 % geom.assoc) as u8).collect(),
            hist: vec![0; n],
            // Weakly not-taken initial counters.
            pht: vec![1; geom.pattern_entries as usize],
        }
    }

    #[inline]
    fn set_of(&self, addr: u64) -> u32 {
        // Branch instructions are at least 2 bytes apart; drop the low bit.
        ((addr >> 1) % self.sets as u64) as u32
    }

    #[inline]
    fn pht_index(&self, addr: u64, history: u8) -> usize {
        let h = ((addr >> 1) << self.geom.history_bits) | history as u64;
        (h % self.geom.pattern_entries as u64) as usize
    }

    /// Finds the BTB way holding `addr`, if any.
    fn find(&self, addr: u64) -> Option<usize> {
        let base = (self.set_of(addr) * self.geom.assoc) as usize;
        (0..self.geom.assoc as usize)
            .find(|&w| self.tags[base + w] == addr)
            .map(|w| base + w)
    }

    fn touch(&mut self, base: usize, way: usize) {
        let old = self.lru[base + way];
        for w in 0..self.geom.assoc as usize {
            if self.lru[base + w] < old {
                self.lru[base + w] += 1;
            }
        }
        self.lru[base + way] = 0;
    }

    fn allocate(&mut self, addr: u64, first_direction: bool) {
        let base = (self.set_of(addr) * self.geom.assoc) as usize;
        let assoc = self.geom.assoc as usize;
        let mut victim = 0;
        let mut rank = 0;
        for w in 0..assoc {
            if self.tags[base + w] == INVALID {
                victim = w;
                break;
            }
            if self.lru[base + w] >= rank {
                victim = w;
                rank = self.lru[base + w];
            }
        }
        self.tags[base + victim] = addr;
        self.hist[base + victim] = if first_direction {
            self.history_mask
        } else {
            0
        };
        self.touch(base, victim);
    }

    /// Executes one branch: predicts, compares with `taken`, trains, and
    /// returns the outcome. `backward` selects the static prediction used on
    /// a BTB miss (backward ⇒ predicted taken).
    pub fn execute(&mut self, addr: u64, taken: bool, backward: bool) -> BranchOutcome {
        match self.find(addr) {
            Some(idx) => {
                let base = idx - idx % self.geom.assoc as usize;
                let way = idx % self.geom.assoc as usize;
                let history = self.hist[idx] & self.history_mask;
                let pi = self.pht_index(addr, history);
                let counter = self.pht[pi];
                let predicted_taken = counter >= 2;
                // Train the pattern table and the local history.
                self.pht[pi] = if taken {
                    (counter + 1).min(3)
                } else {
                    counter.saturating_sub(1)
                };
                self.hist[idx] = ((history << 1) | taken as u8) & self.history_mask;
                self.touch(base, way);
                BranchOutcome {
                    btb_hit: true,
                    mispredicted: predicted_taken != taken,
                }
            }
            None => {
                let predicted_taken = backward;
                // The Pentium II allocates BTB entries for taken branches.
                if taken {
                    self.allocate(addr, taken);
                }
                BranchOutcome {
                    btb_hit: false,
                    mispredicted: predicted_taken != taken,
                }
            }
        }
    }

    /// Touches only the BTB (no pattern-table training) and reports whether
    /// the entry was resident. Used for bulk-modelled structural branches
    /// whose direction accuracy is declared by the code block rather than
    /// simulated per instance; BTB *occupancy* is still real, so BTB pressure
    /// between code paths emerges from the simulation (the paper reports
    /// ≈50% BTB miss rates, §5.3).
    pub fn probe(&mut self, addr: u64, mostly_taken: bool) -> bool {
        match self.find(addr) {
            Some(idx) => {
                let base = idx - idx % self.geom.assoc as usize;
                let way = idx % self.geom.assoc as usize;
                self.touch(base, way);
                true
            }
            None => {
                if mostly_taken {
                    self.allocate(addr, true);
                }
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> BranchUnit {
        BranchUnit::new(BtbGeom {
            entries: 512,
            assoc: 4,
            history_bits: 4,
            pattern_entries: 1024,
        })
    }

    #[test]
    fn always_taken_branch_becomes_predictable() {
        let mut b = unit();
        let mut misses = 0;
        for _ in 0..100 {
            if b.execute(0x4000, true, true).mispredicted {
                misses += 1;
            }
        }
        assert!(
            misses <= 3,
            "saturating counters learn an always-taken branch, got {misses}"
        );
    }

    #[test]
    fn alternating_branch_learned_by_two_level_history() {
        let mut b = unit();
        let mut late_misses = 0;
        for i in 0..200 {
            let taken = i % 2 == 0;
            let out = b.execute(0x4000, taken, false);
            if i >= 50 && out.mispredicted {
                late_misses += 1;
            }
        }
        // A 2-bit counter alone would mispredict ~50%; local history should
        // learn the TNTN pattern almost perfectly.
        assert!(
            late_misses <= 5,
            "two-level predictor should learn alternation, got {late_misses}"
        );
    }

    #[test]
    fn static_prediction_on_btb_miss_backward_taken() {
        let mut b = unit();
        // Never-taken forward branch: never allocated, static predicts
        // not-taken, so never mispredicted.
        for _ in 0..10 {
            let out = b.execute(0x9000, false, false);
            assert!(!out.btb_hit);
            assert!(!out.mispredicted);
        }
        // First execution of a taken backward branch: BTB miss but static
        // prediction (backward ⇒ taken) is correct.
        let out = b.execute(0xa000, true, true);
        assert!(!out.btb_hit);
        assert!(!out.mispredicted);
        // Now it is in the BTB.
        assert!(b.execute(0xa000, true, true).btb_hit);
    }

    #[test]
    fn btb_capacity_pressure_causes_misses() {
        let mut b = unit();
        // 4096 hot taken branches through a 512-entry BTB: after warmup the
        // hit rate must stay well below 1.
        for _ in 0..3 {
            for i in 0..4096u64 {
                b.execute(0x1000 + i * 16, true, true);
            }
        }
        let mut hits = 0;
        for i in 0..4096u64 {
            if b.execute(0x1000 + i * 16, true, true).btb_hit {
                hits += 1;
            }
        }
        assert!(
            hits < 1024,
            "BTB thrashing expected, got {hits} hits of 4096"
        );
    }

    #[test]
    fn probe_allocates_only_taken() {
        let mut b = unit();
        assert!(!b.probe(0x5000, false));
        assert!(!b.probe(0x5000, false), "not allocated for not-taken");
        assert!(!b.probe(0x6000, true));
        assert!(b.probe(0x6000, true), "allocated after taken probe");
    }

    #[test]
    fn random_5050_branch_mispredicts_often() {
        let mut b = unit();
        // Deterministic pseudo-random direction stream.
        let mut x = 0x12345678u64;
        let mut miss = 0;
        for _ in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (x >> 33) & 1 == 1;
            if b.execute(0x7000, taken, false).mispredicted {
                miss += 1;
            }
        }
        assert!(
            miss > 300,
            "unpredictable branch should mispredict ~50%, got {miss}/1000"
        );
    }
}

//! Hardware configuration for the simulated processor.
//!
//! The default configuration ([`CpuConfig::pentium_ii_xeon`]) mirrors Table 4.1
//! of the paper: a 400 MHz Pentium II Xeon with split 16 KB L1 caches, a
//! unified 512 KB L2, 32-byte lines, 4-way associativity everywhere,
//! non-blocking caches with 4 outstanding misses, and a ~60–70 cycle main
//! memory latency.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeom {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line (block) size in bytes. Table 4.1: 32 bytes at both levels.
    pub line_bytes: u32,
    /// Set associativity. Table 4.1: 4-way at both levels.
    pub assoc: u32,
}

impl CacheGeom {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u32 {
        self.size_bytes / (self.line_bytes * self.assoc)
    }

    /// log2(line size), used to extract line addresses.
    pub fn line_shift(&self) -> u32 {
        self.line_bytes.trailing_zeros()
    }
}

/// Geometry of a translation look-aside buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbGeom {
    /// Number of entries.
    pub entries: u32,
    /// Associativity.
    pub assoc: u32,
    /// Page size in bytes (4 KB on the Pentium II under NT 4.0).
    pub page_bytes: u32,
}

/// Geometry of the branch target buffer and its two-level adaptive predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbGeom {
    /// Number of BTB entries (the Pentium II has a 512-entry BTB).
    pub entries: u32,
    /// BTB associativity (4-way on the Pentium II).
    pub assoc: u32,
    /// Bits of per-branch local history kept in each BTB entry (Yeh–Patt \[20\]).
    pub history_bits: u32,
    /// Number of 2-bit counters in the shared pattern history table.
    pub pattern_entries: u32,
}

/// Pipeline and penalty parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineCfg {
    /// Maximum µops decoded/retired per cycle (3 on the Pentium II).
    pub width: u32,
    /// Penalty in cycles for an L1 miss that hits in L2 (Table 4.1: 4 cycles).
    pub l1_miss_penalty: u32,
    /// Main-memory access latency in cycles (paper §5.2.1: 60–70 observed).
    pub mem_latency: u32,
    /// Extra bus occupancy per memory transaction; makes back-to-back misses
    /// slightly more expensive than a lone miss and bounds the benefit of
    /// overlapping (the workload stays latency-bound, §4.3).
    pub bus_occupancy: u32,
    /// Branch misprediction penalty in cycles (Table 4.2: 17 cycles).
    pub mispredict_penalty: u32,
    /// ITLB miss penalty in cycles (Table 4.2: 32 cycles).
    pub itlb_miss_penalty: u32,
    /// DTLB miss penalty (page-walk) in cycles. The paper could not measure
    /// T_DTLB (no event code); the simulator still models it.
    pub dtlb_miss_penalty: u32,
    /// Maximum outstanding cache misses that can overlap (Table 4.1: 4).
    pub outstanding_misses: u32,
    /// Whether the L2 enforces inclusion of the L1s. The Xeon does *not*
    /// (§5.2.2 discusses this when analysing L1I miss growth); the flag exists
    /// so the inclusion hypothesis can be tested as an ablation.
    pub inclusive_l2: bool,
    /// Whether the instruction-fetch unit has a sequential stream prefetcher
    /// ("the Xeon exploits spatial locality in the instruction stream with
    /// special instruction-prefetching hardware", §3.2).
    pub ifetch_stream_buffer: bool,
}

/// Periodic operating-system interrupt model (NT 4.0 timer/DPC activity).
///
/// §5.2.2 hypothesises that NT's periodic interrupts replace L1I contents with
/// operating-system code, which would explain why larger records (more cycles
/// per record) suffer more instruction misses. The model executes a kernel
/// code/data footprint every `period_cycles` cycles in supervisor mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterruptCfg {
    /// Cycles between interrupts. 0 disables the model.
    pub period_cycles: u64,
    /// Static code footprint of the interrupt path, in bytes.
    pub kernel_code_bytes: u32,
    /// Kernel data touched per interrupt, in bytes.
    pub kernel_data_bytes: u32,
}

impl InterruptCfg {
    /// Interrupts disabled (useful for ablations and unit tests).
    pub fn disabled() -> Self {
        InterruptCfg {
            period_cycles: 0,
            kernel_code_bytes: 0,
            kernel_data_bytes: 0,
        }
    }
}

/// Full configuration of the simulated processor.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuConfig {
    /// First-level instruction cache (Table 4.1: 16 KB, 4-way, 32 B lines).
    pub l1i: CacheGeom,
    /// First-level data cache (Table 4.1: 16 KB, 4-way, 32 B lines, write-back).
    pub l1d: CacheGeom,
    /// Unified second-level cache (Table 4.1: 512 KB, 4-way, 32 B lines).
    pub l2: CacheGeom,
    /// Instruction TLB.
    pub itlb: TlbGeom,
    /// Data TLB.
    pub dtlb: TlbGeom,
    /// Branch target buffer + predictor.
    pub btb: BtbGeom,
    /// Pipeline widths and penalties.
    pub pipe: PipelineCfg,
    /// OS interrupt model.
    pub interrupts: InterruptCfg,
}

impl CpuConfig {
    /// The configuration used for all experiments in the paper: a 400 MHz
    /// Pentium II Xeon with a 512 KB L2 cache (Table 4.1) running NT 4.0.
    pub fn pentium_ii_xeon() -> Self {
        CpuConfig {
            l1i: CacheGeom {
                size_bytes: 16 * 1024,
                line_bytes: 32,
                assoc: 4,
            },
            l1d: CacheGeom {
                size_bytes: 16 * 1024,
                line_bytes: 32,
                assoc: 4,
            },
            l2: CacheGeom {
                size_bytes: 512 * 1024,
                line_bytes: 32,
                assoc: 4,
            },
            itlb: TlbGeom {
                entries: 32,
                assoc: 4,
                page_bytes: 4096,
            },
            dtlb: TlbGeom {
                entries: 64,
                assoc: 4,
                page_bytes: 4096,
            },
            btb: BtbGeom {
                entries: 512,
                assoc: 4,
                history_bits: 4,
                pattern_entries: 1024,
            },
            pipe: PipelineCfg {
                width: 3,
                l1_miss_penalty: 4,
                mem_latency: 62,
                bus_occupancy: 6,
                mispredict_penalty: 17,
                itlb_miss_penalty: 32,
                dtlb_miss_penalty: 24,
                outstanding_misses: 4,
                inclusive_l2: false,
                ifetch_stream_buffer: true,
            },
            interrupts: InterruptCfg {
                period_cycles: 120_000,
                kernel_code_bytes: 10 * 1024,
                kernel_data_bytes: 3 * 1024,
            },
        }
    }

    /// Same processor with a different unified L2 capacity (ablation A2;
    /// §5.2.1 notes L2 sizes were growing towards 2 MB/8 MB).
    pub fn with_l2_size(mut self, size_bytes: u32) -> Self {
        self.l2.size_bytes = size_bytes;
        self
    }

    /// Same processor with a different BTB entry count (ablation A1; ref \[7\]
    /// evaluates BTBs up to 16 K entries).
    pub fn with_btb_entries(mut self, entries: u32) -> Self {
        self.btb.entries = entries;
        self
    }

    /// Same processor with a different branch-misprediction penalty — a
    /// deeper pipeline. §6 warns that "processors with longer pipelines
    /// will suffer more" from mispredictions; this knob moves the machine
    /// in that direction (the Pentium 4 generation paid ~2x the P6's
    /// 17 cycles) so branch-sensitive trade-offs like predication can be
    /// studied on both sides of their crossover.
    pub fn with_mispredict_penalty(mut self, cycles: u32) -> Self {
        self.pipe.mispredict_penalty = cycles;
        self
    }

    /// Same processor with L2 inclusion of the L1 caches forced on
    /// (the inclusion hypothesis of §5.2.2).
    pub fn with_inclusive_l2(mut self, on: bool) -> Self {
        self.pipe.inclusive_l2 = on;
        self
    }

    /// Same processor with the OS interrupt model replaced.
    pub fn with_interrupts(mut self, cfg: InterruptCfg) -> Self {
        self.interrupts = cfg;
        self
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::pentium_ii_xeon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_geometry_matches_table_4_1() {
        let c = CpuConfig::pentium_ii_xeon();
        assert_eq!(c.l1i.size_bytes, 16 * 1024);
        assert_eq!(c.l1d.size_bytes, 16 * 1024);
        assert_eq!(c.l2.size_bytes, 512 * 1024);
        assert_eq!(c.l1i.line_bytes, 32);
        assert_eq!(c.l2.line_bytes, 32);
        assert_eq!(c.l1d.assoc, 4);
        assert_eq!(c.l2.assoc, 4);
        assert_eq!(c.pipe.l1_miss_penalty, 4);
        assert_eq!(c.pipe.outstanding_misses, 4);
        assert!(!c.pipe.inclusive_l2, "the Xeon does not enforce inclusion");
    }

    #[test]
    fn cache_sets_derived_correctly() {
        let g = CacheGeom {
            size_bytes: 16 * 1024,
            line_bytes: 32,
            assoc: 4,
        };
        assert_eq!(g.sets(), 128);
        assert_eq!(g.line_shift(), 5);
        let l2 = CacheGeom {
            size_bytes: 512 * 1024,
            line_bytes: 32,
            assoc: 4,
        };
        assert_eq!(l2.sets(), 4096);
    }

    #[test]
    fn penalties_match_table_4_2() {
        let c = CpuConfig::pentium_ii_xeon();
        assert_eq!(c.pipe.mispredict_penalty, 17);
        assert_eq!(c.pipe.itlb_miss_penalty, 32);
        assert!((60..=70).contains(&c.pipe.mem_latency));
    }

    #[test]
    fn builders_modify_only_their_field() {
        let base = CpuConfig::pentium_ii_xeon();
        let big = base.clone().with_l2_size(8 * 1024 * 1024);
        assert_eq!(big.l2.size_bytes, 8 * 1024 * 1024);
        assert_eq!(big.l1d, base.l1d);
        let btb = base.clone().with_btb_entries(16 * 1024);
        assert_eq!(btb.btb.entries, 16 * 1024);
        assert_eq!(btb.l2, base.l2);
    }
}

//! Set-associative cache model with true LRU replacement.
//!
//! Used for the split L1 caches and the unified L2 (Table 4.1). The model is
//! functional: it tracks which line addresses are resident and reports
//! hit/miss plus any eviction (so an inclusive outer level can back-invalidate
//! inner levels, the ablation of §5.2.2). Timing is charged by the caller.
//!
//! # Accounting rules
//!
//! * A byte address maps to line `addr >> line_shift` and set
//!   `line % sets`; whether two fields share a line is therefore decided
//!   purely by the addresses storage hands out — which is how the NSM/PAX
//!   page-layout comparison works: PAX packs a column's values into
//!   adjacent addresses so a narrow projection occupies fewer lines, and
//!   this model observes that without any layout-specific code.
//! * Demand accesses count in `accesses`/`misses`; [`Cache::install`]
//!   (prefetch fill) and [`Cache::probe`] count in neither, so miss *rates*
//!   are demand-only, like the Pentium II counters the paper reads.
//! * Misses allocate (write-allocate) and evict the true-LRU way; evicting
//!   a dirty line counts one writeback (write-back policy, Table 4.1).
//! * [`Cache::access_run`] is the contiguous-span fast lane used by
//!   batched scans: residency, LRU state and statistics end up identical to
//!   per-line [`Cache::access_line`] calls — a property-tested invariant —
//!   only the per-call bookkeeping is amortized.
//!
//! Stall *cycles* for misses are charged by the [`crate::cpu::Cpu`] into the
//! [`crate::stalls::StallLedger`]; this module only decides hit or miss.

use crate::config::CacheGeom;

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the line was already resident.
    pub hit: bool,
    /// Line address (not byte address) evicted to make room, if any.
    /// Only reported for misses in a full set; clean and dirty evictions are
    /// both reported, `dirty_writeback` distinguishes them.
    pub evicted: Option<u64>,
    /// Whether the eviction wrote back a dirty line.
    pub dirty_writeback: bool,
}

const INVALID: u64 = u64::MAX;

/// Aggregate outcome of a contiguous run of line accesses
/// ([`Cache::access_run`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Lines that were already resident.
    pub hits: u64,
    /// Lines that missed (also appended to the caller's miss buffer).
    pub misses: u64,
    /// Dirty lines written back while allocating missed lines.
    pub dirty_writebacks: u64,
}

/// One cache level.
///
/// Lines are stored as a flat `Vec` of tags (`sets * assoc`); LRU state is an
/// explicit per-line rank (0 = most recently used) which is exact for the
/// small associativities used here (Table 4.1: 4-way).
#[derive(Debug, Clone)]
pub struct Cache {
    geom: CacheGeom,
    sets: u32,
    line_shift: u32,
    tags: Vec<u64>,
    dirty: Vec<bool>,
    lru: Vec<u8>,
    // statistics
    accesses: u64,
    misses: u64,
    writebacks: u64,
}

impl Cache {
    /// Creates an empty (cold) cache with the given geometry.
    pub fn new(geom: CacheGeom) -> Self {
        let sets = geom.sets();
        let n = (sets * geom.assoc) as usize;
        Cache {
            geom,
            sets,
            line_shift: geom.line_shift(),
            tags: vec![INVALID; n],
            dirty: vec![false; n],
            lru: (0..n).map(|i| (i as u32 % geom.assoc) as u8).collect(),
            accesses: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// Geometry this cache was built with.
    pub fn geom(&self) -> &CacheGeom {
        &self.geom
    }

    /// Converts a byte address to a line address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    #[inline]
    fn set_of(&self, line: u64) -> u32 {
        (line % self.sets as u64) as u32
    }

    /// Accesses the line containing byte address `addr`.
    ///
    /// On a miss the line is allocated (write-allocate); `write` marks the
    /// line dirty (write-back policy — Table 4.1: L1-D and L2 are write-back).
    #[inline]
    pub fn access(&mut self, addr: u64, write: bool) -> CacheAccess {
        let line = self.line_of(addr);
        self.access_line(line, write)
    }

    /// Same as [`Cache::access`] but takes a pre-computed line address.
    pub fn access_line(&mut self, line: u64, write: bool) -> CacheAccess {
        self.accesses += 1;
        let set = self.set_of(line);
        let base = (set * self.geom.assoc) as usize;
        if self.hit_way(base, line, write) {
            return CacheAccess {
                hit: true,
                evicted: None,
                dirty_writeback: false,
            };
        }
        self.misses += 1;
        let (evicted, dirty_writeback) = self.allocate_victim(base, line, write);
        CacheAccess {
            hit: false,
            evicted,
            dirty_writeback,
        }
    }

    /// Hit path shared by the per-line and run entry points: scans the set's
    /// ways for `line`, updating dirty/LRU state on a hit.
    #[inline]
    fn hit_way(&mut self, base: usize, line: u64, write: bool) -> bool {
        let assoc = self.geom.assoc as usize;
        for w in 0..assoc {
            if self.tags[base + w] == line {
                if write {
                    self.dirty[base + w] = true;
                }
                self.touch(base, w);
                return true;
            }
        }
        false
    }

    /// Miss path shared by the per-line and run entry points: LRU victim
    /// selection (preferring invalid ways), writeback accounting and line
    /// allocation. Returns `(evicted_line, dirty_writeback)`.
    #[inline]
    fn allocate_victim(&mut self, base: usize, line: u64, write: bool) -> (Option<u64>, bool) {
        let assoc = self.geom.assoc as usize;
        let mut victim = 0usize;
        let mut victim_rank = 0u8;
        for w in 0..assoc {
            if self.tags[base + w] == INVALID {
                victim = w;
                break;
            }
            if self.lru[base + w] >= victim_rank {
                victim = w;
                victim_rank = self.lru[base + w];
            }
        }
        let old = self.tags[base + victim];
        let was_dirty = self.dirty[base + victim];
        let evicted = (old != INVALID).then_some(old);
        let dirty_writeback = evicted.is_some() && was_dirty;
        if dirty_writeback {
            self.writebacks += 1;
        }
        self.tags[base + victim] = line;
        self.dirty[base + victim] = write;
        self.touch(base, victim);
        (evicted, dirty_writeback)
    }

    /// Contiguous-run fast path: accesses `lines` sequential line addresses
    /// starting at `first_line`, resolving set indices incrementally instead
    /// of re-deriving set/tag per byte address. Behaviour (residency, LRU
    /// state, statistics, writeback counting) is identical to calling
    /// [`Cache::access_line`] once per line; the saving is bookkeeping, not
    /// semantics. Missed lines are appended to `missed` in access order so
    /// an outer level can service them.
    pub fn access_run(
        &mut self,
        first_line: u64,
        lines: u64,
        write: bool,
        missed: &mut Vec<u64>,
    ) -> RunStats {
        self.accesses += lines;
        let mut stats = RunStats::default();
        let mut set = self.set_of(first_line);
        for line in first_line..first_line + lines {
            let base = (set * self.geom.assoc) as usize;
            if self.hit_way(base, line, write) {
                stats.hits += 1;
            } else {
                self.misses += 1;
                stats.misses += 1;
                missed.push(line);
                let (_, dirty_writeback) = self.allocate_victim(base, line, write);
                if dirty_writeback {
                    stats.dirty_writebacks += 1;
                }
            }
            set += 1;
            if set == self.sets {
                set = 0;
            }
        }
        stats
    }

    /// Returns whether the line containing `addr` is resident, without
    /// updating LRU state or statistics.
    pub fn probe(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        let base = (set * self.geom.assoc) as usize;
        self.tags[base..base + self.geom.assoc as usize].contains(&line)
    }

    /// Installs a line without counting an access or a miss (used for
    /// prefetches, which the hardware performs off the demand path).
    /// Returns the evicted line, if any.
    pub fn install(&mut self, addr: u64) -> Option<u64> {
        let line = self.line_of(addr);
        if self.probe(addr) {
            return None;
        }
        let acc = self.access_line(line, false);
        // Undo the demand-access accounting performed by `access_line`.
        self.accesses -= 1;
        self.misses -= 1;
        acc.evicted
    }

    /// Invalidates the line if resident (back-invalidation under inclusion).
    /// Returns true if a line was removed.
    pub fn invalidate_line(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        let base = (set * self.geom.assoc) as usize;
        for w in 0..self.geom.assoc as usize {
            if self.tags[base + w] == line {
                self.tags[base + w] = INVALID;
                self.dirty[base + w] = false;
                return true;
            }
        }
        false
    }

    #[inline]
    fn touch(&mut self, base: usize, way: usize) {
        let assoc = self.geom.assoc as usize;
        let old_rank = self.lru[base + way];
        for w in 0..assoc {
            if self.lru[base + w] < old_rank {
                self.lru[base + w] += 1;
            }
        }
        self.lru[base + way] = 0;
    }

    /// Total accesses since construction (demand only).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses since construction (demand only).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty lines written back since construction.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Demand miss rate (misses / accesses), 0 if never accessed.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Clears statistics but keeps cache contents (used between the warm-up
    /// runs and the measured runs, per the §4.3 methodology).
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
        self.misses = 0;
        self.writebacks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 32-byte lines = 256 bytes.
        Cache::new(CacheGeom {
            size_bytes: 256,
            line_bytes: 32,
            assoc: 2,
        })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = small();
        assert!(!c.access(0x1000, false).hit);
        assert!(c.access(0x1000, false).hit);
        assert!(c.access(0x101f, false).hit, "same 32-byte line");
        assert!(!c.access(0x1020, false).hit, "next line");
        assert_eq!(c.accesses(), 4);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small();
        // Three lines mapping to the same set (set stride = 4 lines = 128 B).
        let a = 0x0u64;
        let b = 0x80u64;
        let d = 0x100u64;
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a is now MRU
        let acc = c.access(d, false); // evicts b (LRU)
        assert_eq!(acc.evicted, Some(c.line_of(b)));
        assert!(c.access(a, false).hit);
        assert!(!c.access(b, false).hit, "b was evicted");
    }

    #[test]
    fn write_back_counts_dirty_evictions_only() {
        let mut c = small();
        c.access(0x0, true); // dirty
        c.access(0x80, false); // clean
        c.access(0x100, false); // evicts 0x0 (LRU, dirty) -> writeback
        assert_eq!(c.writebacks(), 1);
        let acc = c.access(0x180, false); // evicts 0x80, clean
        assert!(!acc.dirty_writeback);
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn install_does_not_count_stats() {
        let mut c = small();
        c.install(0x40);
        assert_eq!(c.accesses(), 0);
        assert_eq!(c.misses(), 0);
        assert!(c.access(0x40, false).hit);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.access(0x40, false);
        let line = c.line_of(0x40);
        assert!(c.invalidate_line(line));
        assert!(!c.access(0x40, false).hit);
        assert!(!c.invalidate_line(line + 99));
    }

    #[test]
    fn sequential_scan_larger_than_cache_always_misses_after_warmup() {
        let mut c = small();
        // 1 KB scan over a 256-byte cache: every line is evicted before reuse.
        for rep in 0..3 {
            for addr in (0..1024u64).step_by(32) {
                let acc = c.access(addr, false);
                if rep > 0 {
                    assert!(!acc.hit, "capacity misses expected on every pass");
                }
            }
        }
    }

    #[test]
    fn access_run_matches_per_line_accesses() {
        // Same interleaved trace through both paths must leave identical
        // tags, LRU state, stats and miss sequences.
        let mut per_line = small();
        let mut run = small();
        let spans: [(u64, u64, bool); 6] = [
            (0, 12, false),
            (4, 3, true),
            (100, 9, false),
            (0, 12, false),
            (7, 1, true),
            (2, 20, false),
        ];
        let mut want_missed = Vec::new();
        let mut got_missed = Vec::new();
        for &(first, lines, write) in &spans {
            for line in first..first + lines {
                if !per_line.access_line(line, write).hit {
                    want_missed.push(line);
                }
            }
            run.access_run(first, lines, write, &mut got_missed);
        }
        assert_eq!(got_missed, want_missed);
        assert_eq!(run.accesses(), per_line.accesses());
        assert_eq!(run.misses(), per_line.misses());
        assert_eq!(run.writebacks(), per_line.writebacks());
        assert_eq!(run.tags, per_line.tags);
        assert_eq!(run.lru, per_line.lru);
        assert_eq!(run.dirty, per_line.dirty);
    }

    #[test]
    fn working_set_within_capacity_has_no_misses_after_warmup() {
        let mut c = small();
        for _ in 0..4 {
            for addr in (0..256u64).step_by(32) {
                c.access(addr, false);
            }
        }
        c.reset_stats();
        for addr in (0..256u64).step_by(32) {
            assert!(c.access(addr, false).hit);
        }
        assert_eq!(c.miss_rate(), 0.0);
    }
}

//! # wdtg-sim — a Pentium II Xeon-class processor and memory-hierarchy model
//!
//! Substrate for reproducing *"DBMSs On A Modern Processor: Where Does Time
//! Go?"* (Ailamaki, DeWitt, Hill, Wood — VLDB 1999). The paper measures four
//! commercial DBMSs on a real 400 MHz Pentium II Xeon using the processor's
//! two hardware event counters; this crate provides the equivalent machine as
//! a deterministic, trace-driven timing model:
//!
//! * split 16 KB L1 caches and a unified 512 KB L2, 4-way, 32-byte lines,
//!   write-back, non-blocking (Table 4.1) — [`cache`], [`config`];
//! * instruction/data TLBs with 4 KB pages — [`tlb`];
//! * a 512-entry BTB with Yeh–Patt two-level adaptive prediction and a
//!   static backward-taken/forward-not-taken fallback — [`branch`];
//! * a 3-wide out-of-order core model with dependency/functional-unit
//!   stall accounting — [`pipeline`];
//! * the Pentium II event-counter file (74 hardware event types, §4.3) plus
//!   simulator-only ground truth — [`events`];
//! * exact per-component stall attribution per Table 3.1 — [`stalls`];
//! * an NT-style periodic interrupt model (supervisor mode, L1I pollution)
//!   and a memory-latency microbenchmark reproducing the paper's measured
//!   60–70 cycles — [`Cpu`], [`latency`].
//!
//! The DBMS substrate (`wdtg-memdb`) drives a [`Cpu`] online: operators
//! execute real Rust code over real bytes at simulated addresses, and every
//! cache line, TLB page, BTB entry and pipeline bubble emerges from the
//! model rather than being postulated.

#![warn(missing_docs)]

pub mod branch;
pub mod cache;
pub mod config;
pub mod cpu;
pub mod events;
pub mod latency;
pub mod mem;
pub mod pipeline;
pub mod stalls;
pub mod tlb;

pub use branch::{BranchOutcome, BranchUnit};
pub use cache::{Cache, CacheAccess};
pub use config::{BtbGeom, CacheGeom, CpuConfig, InterruptCfg, PipelineCfg, TlbGeom};
pub use cpu::{
    merge_cores, CoreMerge, Cpu, MemDep, Snapshot, LOOP_TRAINED_BIAS, SELECT_TC_PER_LANE,
    SELECT_TDEP_PER_LANE, SELECT_UOPS_PER_LANE, SELECT_X86_PER_LANE,
};
pub use events::{CounterFile, Event, Mode};
pub use latency::{measure_memory_latency, LatencyMeasurement};
pub use mem::{segment, Region, SegmentAlloc};
pub use pipeline::{block_cost, BlockCost, BranchSite, CodeBlock, CodeBlockBuilder};
pub use stalls::{Component, StallLedger};
pub use tlb::Tlb;

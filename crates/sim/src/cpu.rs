//! The simulated processor.
//!
//! [`Cpu`] is driven *online* by the instrumented DBMS: executing an operator
//! calls [`Cpu::exec_block`] for its instruction stream and pipeline cost,
//! [`Cpu::load`]/[`Cpu::store`] for each relation/index/private data access
//! (at real simulated addresses), and [`Cpu::branch`] for data-dependent
//! branches. Every cycle spent is charged to exactly one Table 3.1 component
//! in the [`StallLedger`], and every countable occurrence increments the
//! Pentium II counter file, so both the paper's `count × penalty`
//! reconstruction and the ground truth are available.

use std::collections::VecDeque;

use crate::branch::BranchUnit;
use crate::cache::Cache;
use crate::config::CpuConfig;
use crate::events::{CounterFile, Event, Mode};
use crate::mem::segment;
use crate::pipeline::{block_cost, BranchSite, CodeBlock};
use crate::stalls::{Component, StallLedger};
use crate::tlb::Tlb;

/// Cycles of an isolated demand L2 data miss hidden by the out-of-order
/// window (§3.2: data stalls can partially overlap with computation; §5.2.1:
/// the workload is latency-bound, so the overlap is small and the paper's
/// `misses × latency` estimate is close to the truth).
const DEMAND_OVERLAP_CREDIT: f64 = 10.0;

/// x86 instructions retired per conditional-select lane (a `setcc`-style
/// flag materialization plus the `cmov` itself).
pub const SELECT_X86_PER_LANE: u64 = 2;
/// µops retired per conditional-select lane.
pub const SELECT_UOPS_PER_LANE: u64 = 3;
/// Useful-computation cycles per conditional-select lane (µops / width).
pub const SELECT_TC_PER_LANE: f64 = 1.0;
/// Dependency-stall cycles per conditional-select lane: a cmov serializes on
/// both of its inputs, so the chain a predicted branch would have broken
/// stays intact (the classic predication tax).
pub const SELECT_TDEP_PER_LANE: f64 = 0.5;

/// Minimum dynamic-prediction accuracy of a structural branch during the
/// warm iterations of one scaled block run ([`Cpu::exec_block_scaled`]): a
/// tight loop's branches see a stationary pattern the two-level predictor
/// locks onto, so a trained back-edge mispredicts roughly once per thousand
/// iterations (≈ at loop exits) regardless of how the block predicts when
/// invoked once among other code.
pub const LOOP_TRAINED_BIAS: f64 = 0.999;

/// Dependence class of an explicit data access, which determines how much of
/// an L2 miss the out-of-order engine can hide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemDep {
    /// Ordinary demand access with some independent work available
    /// (sequential scan reads): a small fixed overlap credit applies.
    Demand,
    /// Pointer-chasing access (B+tree descent, hash-chain walk): the next
    /// access depends on this one, so the full latency is exposed.
    Chase,
}

/// A point-in-time copy of all observable CPU state, for delta measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Counter file at snapshot time.
    pub counters: CounterFile,
    /// Stall ledger at snapshot time.
    pub ledger: StallLedger,
    /// Cycle counter at snapshot time.
    pub cycles: f64,
}

impl Snapshot {
    /// Componentwise difference `self - earlier`.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            counters: self.counters.delta(&earlier.counters),
            ledger: self.ledger.delta(&earlier.ledger),
            cycles: self.cycles - earlier.cycles,
        }
    }

    /// Adds `other`'s counters, ledger and cycles into `self` (one core's
    /// measurement delta folded into a multi-core total).
    pub fn absorb(&mut self, other: &Snapshot) {
        self.counters.absorb(&other.counters);
        self.ledger.absorb(&other.ledger);
        self.cycles += other.cycles;
    }
}

/// The merged view of per-core measurement deltas from a sharded execution.
///
/// Shards run sequentially in simulation, each on its own [`Cpu`], so a
/// "parallel" phase is really N independent per-core deltas. Two summaries
/// matter and they are *different numbers*:
///
/// * [`CoreMerge::total`] — counters, stall ledger and cycles summed across
///   cores: the machine-wide *work* (what a fleet-wide emon would count);
/// * [`CoreMerge::wall_cycles`] — the maximum per-core cycle count: the
///   simulated wall clock of the phase, since the slowest core finishes
///   last. Speedup curves divide 1-core wall by N-core wall.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreMerge {
    /// Counters/ledger/cycles summed across cores (total work).
    pub total: Snapshot,
    /// Max per-core cycles (the merged wall clock).
    pub wall_cycles: f64,
    /// How many per-core deltas were merged.
    pub cores: usize,
}

/// Merges per-core measurement deltas (see [`CoreMerge`]). Deterministic:
/// summation order is the slice order, so identical inputs produce
/// bit-identical merges.
pub fn merge_cores(deltas: &[Snapshot]) -> CoreMerge {
    let mut total = Snapshot {
        counters: CounterFile::new(),
        ledger: StallLedger::new(),
        cycles: 0.0,
    };
    let mut wall = 0.0f64;
    for d in deltas {
        total.absorb(d);
        wall = wall.max(d.cycles);
    }
    CoreMerge {
        total,
        wall_cycles: wall,
        cores: deltas.len(),
    }
}

/// The simulated Pentium II Xeon-class processor.
#[derive(Debug)]
pub struct Cpu {
    cfg: CpuConfig,
    line_shift: u32,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    itlb: Tlb,
    dtlb: Tlb,
    branch_unit: BranchUnit,
    counters: CounterFile,
    residue: Box<[[f64; Event::COUNT]; 2]>,
    ledger: StallLedger,
    cycles: f64,
    cycles_by_mode: [f64; 2],
    mode: Mode,
    next_interrupt: f64,
    kernel_block: Option<CodeBlock>,
    prefetch_q: VecDeque<(u64, f64)>,
    prefetch_bus_free: f64,
    run_miss_buf: Vec<u64>,
}

impl Cpu {
    /// Creates a cold processor with the given configuration.
    pub fn new(cfg: CpuConfig) -> Self {
        assert_eq!(
            cfg.l1i.line_bytes, cfg.l2.line_bytes,
            "line sizes must agree"
        );
        assert_eq!(
            cfg.l1d.line_bytes, cfg.l2.line_bytes,
            "line sizes must agree"
        );
        let kernel_block = (cfg.interrupts.period_cycles > 0).then(|| {
            CodeBlock::builder("nt.kernel_interrupt", cfg.interrupts.kernel_code_bytes)
                .private(
                    segment::KERNEL_DATA,
                    cfg.interrupts.kernel_data_bytes.max(64),
                )
                .dep_frac(0.25)
                .fu_frac(0.2)
                .at(segment::KERNEL_CODE)
        });
        Cpu {
            line_shift: cfg.l2.line_shift(),
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            itlb: Tlb::new(cfg.itlb),
            dtlb: Tlb::new(cfg.dtlb),
            branch_unit: BranchUnit::new(cfg.btb),
            counters: CounterFile::new(),
            residue: Box::new([[0.0; Event::COUNT]; 2]),
            ledger: StallLedger::new(),
            cycles: 0.0,
            cycles_by_mode: [0.0; 2],
            mode: Mode::User,
            next_interrupt: cfg.interrupts.period_cycles as f64,
            kernel_block,
            prefetch_q: VecDeque::with_capacity(8),
            prefetch_bus_free: 0.0,
            run_miss_buf: Vec::with_capacity(64),
            cfg,
        }
    }

    /// The configuration this processor was built with.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Total elapsed cycles (both modes).
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    /// Elapsed cycles attributed to `mode`.
    pub fn cycles_in_mode(&self, mode: Mode) -> f64 {
        self.cycles_by_mode[mode as usize]
    }

    /// The hardware counter file (ground truth; `wdtg-emon` restricts reads
    /// to two events per run like the real tool).
    pub fn counters(&self) -> &CounterFile {
        &self.counters
    }

    /// The ground-truth stall ledger.
    pub fn ledger(&self) -> &StallLedger {
        &self.ledger
    }

    /// L1 instruction cache (read-only access for statistics).
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// L1 data cache.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// Unified L2 cache.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Captures counters, ledger and cycles for later delta measurement.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.clone(),
            ledger: self.ledger.clone(),
            cycles: self.cycles,
        }
    }

    /// Zeroes counters, ledger and the cycle clock but keeps all
    /// microarchitectural state (cache, TLB, BTB contents) warm — the §4.3
    /// methodology measures only after warm-up runs.
    pub fn reset_stats(&mut self) {
        self.counters.reset();
        self.ledger.reset();
        *self.residue = [[0.0; Event::COUNT]; 2];
        self.cycles = 0.0;
        self.cycles_by_mode = [0.0; 2];
        self.next_interrupt = self.cfg.interrupts.period_cycles as f64;
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.itlb.reset_stats();
        self.dtlb.reset_stats();
    }

    #[inline]
    fn charge(&mut self, component: Component, cycles: f64) {
        self.ledger.charge(self.mode, component, cycles);
        self.cycles += cycles;
        self.cycles_by_mode[self.mode as usize] += cycles;
        self.bump_frac(Event::CpuClkUnhalted, cycles);
    }

    #[inline]
    fn charge_ifu(&mut self, component: Component, cycles: f64) {
        self.charge(component, cycles);
        // IFU_MEM_STALL counts all cycles the fetch unit waits on memory
        // (L1I, L2 instruction and ITLB stalls) — the paper's "actual stall
        // time" source for T_L1I (Table 4.2).
        self.bump_frac(Event::IfuMemStall, cycles);
    }

    #[inline]
    fn bump(&mut self, event: Event, n: u64) {
        self.counters.bump(self.mode, event, n);
    }

    #[inline]
    fn bump_frac(&mut self, event: Event, amount: f64) {
        let r = &mut self.residue[self.mode as usize][event as usize];
        *r += amount;
        if *r >= 1.0 {
            let whole = r.floor();
            self.counters.bump(self.mode, event, whole as u64);
            *r -= whole;
        }
    }

    // ------------------------------------------------------------------
    // Instruction side
    // ------------------------------------------------------------------

    /// `run_lines`: sequential fetch-run length in lines (taken-branch
    /// spacing); the stream prefetcher can only hide misses inside a run.
    fn ifetch(&mut self, base: u64, bytes: u32, run_lines: u32) {
        let bytes = bytes.max(1);
        let pipe = self.cfg.pipe;
        // ITLB lookup per 4 KB page the path touches.
        let last = base + bytes as u64 - 1;
        for page in (base >> 12)..=(last >> 12) {
            if !self.itlb.access(page << 12) {
                self.bump(Event::ItlbMiss, 1);
                self.charge_ifu(Component::Titlb, pipe.itlb_miss_penalty as f64);
            }
        }
        let first_line = base >> self.line_shift;
        let last_line = last >> self.line_shift;
        for line in first_line..=last_line {
            self.bump(Event::IfuIfetch, 1);
            if self.l1i.access_line(line, false).hit {
                continue;
            }
            self.bump(Event::IfuIfetchMiss, 1);
            self.pop_completed_prefetches();
            self.bump(Event::L2Ifetch, 1);
            self.bump(Event::L2Rqsts, 1);
            self.bump(Event::L2Ads, 1);
            let l2acc = self.l2.access_line(line, false);
            if l2acc.hit {
                self.charge_ifu(Component::Tl1i, pipe.l1_miss_penalty as f64);
            } else {
                self.charge_ifu(Component::Tl2i, pipe.mem_latency as f64);
                self.bump(Event::SimL2IfetchMiss, 1);
                self.bump(Event::L2LinesIn, 1);
                self.bump(Event::BusTranIfetch, 1);
                self.bump(Event::BusTranMem, 1);
                self.bump(Event::BusTranAny, 1);
                self.bump(Event::BusTranBurst, 1);
                self.handle_l2_eviction(l2acc.evicted, l2acc.dirty_writeback);
            }
            // Xeon instruction stream prefetch: bring the next sequential
            // line close to the fetch unit so straight-line code misses at
            // most once per run (§3.2). A taken branch redirects the fetch
            // stream and ends the run, so branch-dense code (interpreters)
            // defeats the prefetcher — this couples T_L1I to branch
            // behaviour (§5.3).
            if pipe.ifetch_stream_buffer
                && run_lines >= 2
                && line < last_line
                && !(line - first_line + 1).is_multiple_of(run_lines as u64)
            {
                let next_addr = (line + 1) << self.line_shift;
                if !self.l1i.probe(next_addr) && self.l2.probe(next_addr) {
                    self.l1i.install(next_addr);
                    self.bump(Event::SimStreamBufHit, 1);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Data side
    // ------------------------------------------------------------------

    /// Explicit data read of `len` bytes at simulated address `addr`.
    pub fn load(&mut self, addr: u64, len: u32, dep: MemDep) {
        self.data_access(addr, len, dep, false);
    }

    /// Explicit data write of `len` bytes at simulated address `addr`.
    pub fn store(&mut self, addr: u64, len: u32, dep: MemDep) {
        self.data_access(addr, len, dep, true);
    }

    fn data_access(&mut self, addr: u64, len: u32, dep: MemDep, write: bool) {
        let len = len.max(1);
        self.bump(Event::DataMemRefs, 1);
        let last = addr + len as u64 - 1;
        for page in (addr >> 12)..=(last >> 12) {
            if !self.dtlb.access(page << 12) {
                self.bump(Event::SimDtlbMiss, 1);
                self.charge(Component::Tdtlb, self.cfg.pipe.dtlb_miss_penalty as f64);
            }
        }
        let first_line = addr >> self.line_shift;
        let last_line = last >> self.line_shift;
        if last_line > first_line {
            self.bump(Event::MisalignMemRef, 1);
        }
        for line in first_line..=last_line {
            self.data_line_access(line, dep, write);
        }
    }

    fn data_line_access(&mut self, line: u64, dep: MemDep, write: bool) {
        let acc = self.l1d.access_line(line, write);
        if acc.dirty_writeback {
            self.bump(Event::DcuMLinesOut, 1);
        }
        if acc.hit {
            return;
        }
        self.bump(Event::DcuLinesIn, 1);
        if write {
            self.bump(Event::DcuMLinesIn, 1);
        }
        self.l2_data_fill(line, dep, write);
    }

    /// Services an L1D-missed line from L2/memory: the shared tail of the
    /// per-line and contiguous-run data paths.
    fn l2_data_fill(&mut self, line: u64, dep: MemDep, write: bool) {
        let pipe = self.cfg.pipe;
        self.pop_completed_prefetches();
        self.bump(if write { Event::L2St } else { Event::L2Ld }, 1);
        self.bump(Event::L2Rqsts, 1);
        self.bump(Event::L2Ads, 1);
        let l2acc = self.l2.access_line(line, write);
        if l2acc.hit {
            self.charge(Component::Tl1d, pipe.l1_miss_penalty as f64);
            return;
        }
        // L2 miss: either a late prefetch is in flight or main memory is hit.
        self.bump(Event::SimL2DataMiss, 1);
        self.bump(Event::L2LinesIn, 1);
        self.bump(Event::BusTranMem, 1);
        self.bump(Event::BusTranAny, 1);
        self.bump(Event::BusTranBurst, 1);
        self.bump(
            if write {
                Event::BusTranRfo
            } else {
                Event::BusTranBrd
            },
            1,
        );
        let charged = if let Some(pos) = self.prefetch_q.iter().position(|&(l, _)| l == line) {
            let (_, ready) = self.prefetch_q.remove(pos).expect("position valid");
            self.bump(Event::SimPrefetchLate, 1);
            (ready - self.cycles).max(0.0) + pipe.l1_miss_penalty as f64
        } else {
            match dep {
                MemDep::Chase => pipe.mem_latency as f64,
                MemDep::Demand => {
                    (pipe.mem_latency as f64 - DEMAND_OVERLAP_CREDIT).max(pipe.bus_occupancy as f64)
                }
            }
        };
        self.charge(Component::Tl2d, charged);
        self.bump_frac(Event::DcuMissOutstanding, charged);
        self.handle_l2_eviction(l2acc.evicted, l2acc.dirty_writeback);
    }

    /// Contiguous-run data read: equivalent cache/TLB behaviour to reading
    /// `len` bytes at `addr` line by line, but with batched bookkeeping —
    /// one `DATA_MEM_REFS` count for the whole span, one DTLB check per 4 KB
    /// page, and the L1D walked through [`Cache::access_run`]. L1D-missed
    /// lines still take the exact per-line L2/memory path (prefetch matching
    /// included), so stall cycles and miss counters match the per-record
    /// equivalent; only access-granularity counters (`DATA_MEM_REFS`,
    /// `MISALIGN_MEM_REF`) are amortized. This is the simulator's fast lane
    /// for the DBMS's batched scans.
    pub fn load_run(&mut self, addr: u64, len: u32, dep: MemDep) {
        let len = len.max(1);
        self.bump(Event::DataMemRefs, 1);
        let last = addr + len as u64 - 1;
        for page in (addr >> 12)..=(last >> 12) {
            if !self.dtlb.access(page << 12) {
                self.bump(Event::SimDtlbMiss, 1);
                self.charge(Component::Tdtlb, self.cfg.pipe.dtlb_miss_penalty as f64);
            }
        }
        let first_line = addr >> self.line_shift;
        let last_line = last >> self.line_shift;
        if last_line > first_line {
            self.bump(Event::MisalignMemRef, 1);
        }
        let mut missed = std::mem::take(&mut self.run_miss_buf);
        missed.clear();
        let stats = self
            .l1d
            .access_run(first_line, last_line - first_line + 1, false, &mut missed);
        if stats.dirty_writebacks > 0 {
            self.bump(Event::DcuMLinesOut, stats.dirty_writebacks);
        }
        if !missed.is_empty() {
            self.bump(Event::DcuLinesIn, missed.len() as u64);
            for &line in &missed {
                self.l2_data_fill(line, dep, false);
            }
        }
        self.run_miss_buf = missed;
    }

    /// Contiguous-run data write: the store-side twin of [`Cpu::load_run`],
    /// added for the partitioned join's partition buffers — a radix scatter
    /// appends values to each partition's column buffer in contiguous spans,
    /// so the write traffic is run-shaped even though rows arrive in scatter
    /// order. Cache/TLB behaviour (lines allocated, RFO bus traffic, dirty
    /// state, stall cycles) is identical to storing the span value by value;
    /// only access-granularity counters are amortized, exactly like
    /// `load_run`.
    pub fn store_run(&mut self, addr: u64, len: u32, dep: MemDep) {
        let len = len.max(1);
        self.bump(Event::DataMemRefs, 1);
        let last = addr + len as u64 - 1;
        for page in (addr >> 12)..=(last >> 12) {
            if !self.dtlb.access(page << 12) {
                self.bump(Event::SimDtlbMiss, 1);
                self.charge(Component::Tdtlb, self.cfg.pipe.dtlb_miss_penalty as f64);
            }
        }
        let first_line = addr >> self.line_shift;
        let last_line = last >> self.line_shift;
        if last_line > first_line {
            self.bump(Event::MisalignMemRef, 1);
        }
        let mut missed = std::mem::take(&mut self.run_miss_buf);
        missed.clear();
        let stats = self
            .l1d
            .access_run(first_line, last_line - first_line + 1, true, &mut missed);
        if stats.dirty_writebacks > 0 {
            self.bump(Event::DcuMLinesOut, stats.dirty_writebacks);
        }
        if !missed.is_empty() {
            self.bump(Event::DcuLinesIn, missed.len() as u64);
            self.bump(Event::DcuMLinesIn, missed.len() as u64);
            for &line in &missed {
                self.l2_data_fill(line, dep, true);
            }
        }
        self.run_miss_buf = missed;
    }

    fn handle_l2_eviction(&mut self, evicted: Option<u64>, dirty: bool) {
        let Some(line) = evicted else { return };
        self.bump(Event::L2LinesOut, 1);
        if dirty {
            self.bump(Event::L2MLinesOut, 1);
            self.bump(Event::BusTransWb, 1);
            self.bump(Event::BusTranAny, 1);
        }
        if self.cfg.pipe.inclusive_l2 {
            // Inclusion forces the L1s to drop lines the L2 replaces — the
            // §5.2.2 mechanism by which L2 data pressure could cause L1I
            // misses (not the Xeon's behaviour; ablation A3).
            self.l1i.invalidate_line(line);
            self.l1d.invalidate_line(line);
        }
    }

    /// Issues a software/stream prefetch for the line containing `addr`.
    ///
    /// Completion takes a full memory latency, the bus serialises requests,
    /// and at most `outstanding_misses` prefetches may be in flight (excess
    /// requests are dropped, as MSHR-full prefetches are on real hardware).
    /// System B's cache-conscious scan is built on this (§5.2.1: B has an L2
    /// data miss rate of only 2% on the sequential selection).
    pub fn prefetch_data(&mut self, addr: u64) {
        self.pop_completed_prefetches();
        let line = addr >> self.line_shift;
        if self.l2.probe(addr) || self.prefetch_q.iter().any(|&(l, _)| l == line) {
            return;
        }
        if self.prefetch_q.len() >= self.cfg.pipe.outstanding_misses as usize {
            return;
        }
        self.bump(Event::SimPrefetchIssued, 1);
        let start = self.cycles.max(self.prefetch_bus_free);
        self.prefetch_bus_free = start + self.cfg.pipe.bus_occupancy as f64;
        self.prefetch_q
            .push_back((line, start + self.cfg.pipe.mem_latency as f64));
    }

    fn pop_completed_prefetches(&mut self) {
        while let Some(&(line, ready)) = self.prefetch_q.front() {
            if ready > self.cycles {
                break;
            }
            self.prefetch_q.pop_front();
            let evicted = self.l2.install(line << self.line_shift);
            // Prefetch fills are bus transactions but not demand-allocated
            // lines: L2_LINES_IN keeps its demand-miss semantics, so the
            // Table 4.2 formulae see prefetch-hidden lines as L2 hits —
            // exactly how System B's low L2 data miss rate shows up in §5.2.1.
            self.bump(Event::BusTranMem, 1);
            self.bump(Event::BusTranAny, 1);
            self.bump(Event::BusTranBurst, 1);
            self.handle_l2_eviction(evicted, false);
        }
    }

    // ------------------------------------------------------------------
    // Branches
    // ------------------------------------------------------------------

    /// Executes a data-dependent branch through the full BTB + two-level
    /// adaptive predictor. Mispredictions charge the 17-cycle penalty
    /// (Table 4.2).
    pub fn branch(&mut self, site: BranchSite, taken: bool) {
        self.bump(Event::BrInstRetired, 1);
        self.bump(Event::BrInstDecoded, 1);
        if taken {
            self.bump(Event::BrTakenRetired, 1);
        }
        let out = self.branch_unit.execute(site.addr, taken, site.backward);
        if !out.btb_hit {
            self.bump(Event::BtbMisses, 1);
        }
        if out.mispredicted {
            self.bump(Event::BrMissPredRetired, 1);
            self.bump(Event::SimDataBranchMiss, 1);
            if taken {
                self.bump(Event::BrMissPredTakenRet, 1);
            }
            self.bump(Event::Baclears, 1);
            self.charge(Component::Tb, self.cfg.pipe.mispredict_penalty as f64);
        }
    }

    /// Executes `lanes` conditional-select operations (cmov-style): the
    /// branch-free alternative to running a data-dependent branch per row.
    ///
    /// Where [`Cpu::branch`] routes each qualify decision through the BTB +
    /// two-level predictor and charges the 17-cycle penalty on every
    /// misprediction, a predicated executor computes the qualify bit
    /// arithmetically and *selects* the outcome — no branch instruction, no
    /// BTB entry, no possible misprediction. The price is paid up front and
    /// unconditionally: each lane retires [`SELECT_X86_PER_LANE`] extra x86
    /// instructions ([`SELECT_UOPS_PER_LANE`] µops, counted in
    /// [`Event::SimSelectOps`]), occupies the pipeline for
    /// [`SELECT_TC_PER_LANE`] cycles of useful work, and — because a
    /// conditional move joins both of its inputs into the dependent chain
    /// where a predicted branch would have cut it — adds
    /// [`SELECT_TDEP_PER_LANE`] cycles of dependency stall.
    ///
    /// This is the batch executor's fast lane: one call covers a whole
    /// vector of rows (the select loop's surrounding code is charged
    /// separately by the caller's `CodeBlock`s, exactly like the
    /// [`Cpu::load_run`] split between code blocks and data traffic). Row
    /// engines call it with `lanes == 1` per tuple.
    pub fn select_run(&mut self, lanes: u32) {
        if lanes == 0 {
            return;
        }
        let lanes_f = lanes as f64;
        self.bump(Event::SimSelectOps, lanes as u64);
        self.bump(Event::InstRetired, SELECT_X86_PER_LANE * lanes as u64);
        self.bump(Event::InstDecoded, SELECT_X86_PER_LANE * lanes as u64);
        self.bump(Event::UopsRetired, SELECT_UOPS_PER_LANE * lanes as u64);
        self.charge(Component::Tc, SELECT_TC_PER_LANE * lanes_f);
        self.charge(Component::Tdep, SELECT_TDEP_PER_LANE * lanes_f);
        self.bump_frac(Event::PartialRatStalls, SELECT_TDEP_PER_LANE * lanes_f);
    }

    // ------------------------------------------------------------------
    // Blocks
    // ------------------------------------------------------------------

    /// Executes one invocation of an instrumented code block: instruction
    /// fetch over its path, pipeline cost, implicit private-data references
    /// and bulk-modelled structural branches.
    pub fn exec_block(&mut self, block: &CodeBlock) {
        self.exec_block_scaled_inner(block, 1, true);
    }

    /// Executes `times` back-to-back invocations of a block (e.g. a
    /// field-extraction loop running once per column). The code is fetched
    /// once — consecutive iterations stay I-cache resident — while pipeline
    /// cost, retirement counts, data references and branches scale with
    /// `times`.
    pub fn exec_block_scaled(&mut self, block: &CodeBlock, times: u32) {
        if times > 0 {
            self.exec_block_scaled_inner(block, times, true);
        }
    }

    fn exec_block_inner(&mut self, block: &CodeBlock, allow_interrupt: bool) {
        self.exec_block_scaled_inner(block, 1, allow_interrupt);
    }

    fn exec_block_scaled_inner(&mut self, block: &CodeBlock, times: u32, allow_interrupt: bool) {
        let run_lines = block.seq_run_lines(self.cfg.l1i.line_bytes);
        // Successive invocations take different branches through the
        // function, so the fetched window shifts within the function's
        // extent (functions are laid out with ~1.5x their hot-path size).
        // This makes a block's effective footprint larger than one path and
        // produces the partial L1I miss rates real engines show, instead of
        // all-or-nothing residency.
        let phase = (block.next_rot() % 5) as u64;
        let offset = phase * (block.path_bytes as u64 / 8);
        self.ifetch(block.base + offset, block.path_bytes, run_lines);

        let times_f = times as f64;
        let cost = block_cost(&self.cfg.pipe, block);
        self.charge(Component::Tc, cost.tc * times_f);
        if cost.tdep > 0.0 {
            self.charge(Component::Tdep, cost.tdep * times_f);
            self.bump_frac(Event::PartialRatStalls, cost.tdep * times_f);
        }
        if cost.tfu > 0.0 {
            self.charge(Component::Tfu, cost.tfu * times_f);
            self.bump_frac(Event::ResourceStalls, cost.tfu * times_f);
        }
        if cost.tild > 0.0 {
            self.charge(Component::Tild, cost.tild * times_f);
            self.bump_frac(Event::IldStall, cost.tild * times_f);
        }
        self.bump(Event::InstRetired, block.x86_instrs as u64 * times as u64);
        self.bump(Event::InstDecoded, block.x86_instrs as u64 * times as u64);
        self.bump(Event::UopsRetired, block.uops as u64 * times as u64);

        // Implicit private-data references: counted in bulk, cache behaviour
        // sampled with a few rotating representative probes over the block's
        // private working set (each `data_access` below counts one reference,
        // the rest are pre-counted so the total equals `mem_refs × times`).
        let mem_refs = block.mem_refs as u64 * times as u64;
        if mem_refs > 0 {
            let probes = (block.mem_refs / 8).clamp(1, 4).min(block.mem_refs) as u64;
            let probes = probes.min(mem_refs);
            self.bump(Event::DataMemRefs, mem_refs - probes);
            for _ in 0..probes {
                let r = block.next_rot() as u64;
                let off = (r.wrapping_mul(197) << self.line_shift) % block.private_bytes as u64;
                self.data_access(block.private_base + off, 4, MemDep::Demand, false);
            }
        }

        // Structural branches, bulk-modelled: BTB occupancy is simulated with
        // rotating representative sites; direction accuracy is the declared
        // bias (dynamic) or the static rule's accuracy (on BTB miss). A
        // scaled execution is a loop running `times` back-to-back
        // iterations, and the prediction hardware trains within it:
        //
        // * a site that misses the BTB pays the static rule only for its
        //   first iteration — the taken execution allocates the entry,
        //   exactly what `BranchUnit::probe` has just simulated — and runs
        //   under the dynamic predictor for the remaining `times - 1`;
        // * the dynamic accuracy of those warm iterations is at least
        //   [`LOOP_TRAINED_BIAS`]: inside one tight run the loop's few
        //   branches see a stationary pattern the two-level predictor locks
        //   onto (a trained back-edge mispredicts about once, at loop
        //   exit), whereas the *declared* bias describes the block invoked
        //   once among other code, histories polluted.
        //
        // With `times == 1` both refinements vanish and this degenerates to
        // the single-invocation model.
        if block.dyn_branches > 0 {
            let dynamic = block.dyn_branches as u64 * times as u64;
            self.bump(Event::BrInstRetired, dynamic);
            self.bump(Event::BrInstDecoded, dynamic);
            self.bump_frac(Event::BrTakenRetired, dynamic as f64 * block.taken_frac);
            let sites = block.branch_sites.max(1) as u32;
            let probes = sites.min(4);
            let weight = dynamic as f64 / probes as f64;
            let spacing = (block.path_bytes / (sites + 1)).max(4) as u64;
            let penalty = self.cfg.pipe.mispredict_penalty as f64;
            let warm_bias = if times > 1 {
                block.dyn_bias.max(LOOP_TRAINED_BIAS)
            } else {
                block.dyn_bias
            };
            for _ in 0..probes {
                let idx = (block.next_rot() % sites) as u64;
                let addr = block.base + 2 + idx * spacing;
                let hit = self.branch_unit.probe(addr, block.taken_frac >= 0.5);
                let (cold, warm) = if hit {
                    (0.0, weight)
                } else {
                    let cold = weight / times_f;
                    (cold, weight - cold)
                };
                if cold > 0.0 {
                    self.bump_frac(Event::BtbMisses, cold);
                }
                let mispred = cold * (1.0 - block.static_acc) + warm * (1.0 - warm_bias);
                if mispred > 0.0 {
                    self.bump_frac(Event::BrMissPredRetired, mispred);
                    self.bump_frac(Event::BrMissPredTakenRet, mispred * block.taken_frac);
                    self.charge(Component::Tb, mispred * penalty);
                }
            }
        }

        if allow_interrupt {
            self.maybe_interrupt();
        }
    }

    // ------------------------------------------------------------------
    // OS interrupt model
    // ------------------------------------------------------------------

    fn maybe_interrupt(&mut self) {
        if self.cfg.interrupts.period_cycles == 0 {
            return;
        }
        while self.cycles >= self.next_interrupt {
            self.next_interrupt += self.cfg.interrupts.period_cycles as f64;
            self.bump(Event::HwIntRx, 1);
            let prev = self.mode;
            self.mode = Mode::Sup;
            self.bump(Event::SimKernelEntries, 1);
            let block = self.kernel_block.take().expect("kernel block configured");
            self.exec_block_inner(&block, false);
            self.kernel_block = Some(block);
            self.mode = prev;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InterruptCfg;

    fn quiet_cpu() -> Cpu {
        Cpu::new(CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled()))
    }

    fn block(path_bytes: u32) -> CodeBlock {
        CodeBlock::builder("t", path_bytes)
            .private(segment::PRIVATE, 2048)
            .at(segment::CODE)
    }

    /// The simulated core must be freely movable across OS threads (the
    /// morsel executor ships each shard's `Cpu` with its task) — a
    /// compile-time lock against reintroducing `Rc`/`Cell`/`thread_local!`
    /// state into the simulator.
    #[test]
    fn cpu_and_snapshots_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Cpu>();
        assert_send_sync::<CpuConfig>();
        assert_send_sync::<Snapshot>();
        assert_send_sync::<CodeBlock>();
    }

    #[test]
    fn ledger_total_equals_cycle_counter() {
        let mut cpu = quiet_cpu();
        let b = block(900);
        for _ in 0..100 {
            cpu.exec_block(&b);
            cpu.load(segment::HEAP + 128, 4, MemDep::Demand);
            cpu.branch(
                BranchSite {
                    addr: segment::CODE + 10,
                    backward: false,
                },
                true,
            );
        }
        assert!(
            (cpu.ledger().grand_total() - cpu.cycles()).abs() < 1e-6,
            "every cycle must be charged to exactly one component"
        );
    }

    #[test]
    fn repeated_block_becomes_l1i_resident() {
        let mut cpu = quiet_cpu();
        let b = block(4096); // extent fits comfortably in 16 KB L1I
                             // Warm all fetch phases of the block.
        for _ in 0..8 {
            cpu.exec_block(&b);
        }
        let snap = cpu.snapshot();
        cpu.exec_block(&b);
        let d = cpu.snapshot().delta(&snap);
        assert_eq!(
            d.counters.total(Event::IfuIfetchMiss),
            0,
            "warm code must hit L1I"
        );
        assert_eq!(d.ledger.total(Component::Tl1i), 0.0);
    }

    #[test]
    fn code_larger_than_l1i_keeps_missing() {
        let mut cpu = quiet_cpu();
        let b = block(48 * 1024); // 3x the 16 KB L1I
                                  // Warm every fetch phase so the whole 72 KB extent is L2-resident.
        for _ in 0..8 {
            cpu.exec_block(&b);
        }
        let snap = cpu.snapshot();
        cpu.exec_block(&b);
        let d = cpu.snapshot().delta(&snap);
        assert!(
            d.counters.total(Event::IfuIfetchMiss) > 1000,
            "a 48 KB path cannot fit the 16 KB L1I"
        );
        // But it fits in the 512 KB L2, so these are L1I (not L2I) stalls.
        assert_eq!(d.counters.total(Event::SimL2IfetchMiss), 0);
        assert!(d.ledger.total(Component::Tl1i) > 0.0);
    }

    #[test]
    fn sequential_data_misses_once_per_line() {
        let mut cpu = quiet_cpu();
        // 256 4-byte loads over 1 KB = 32 lines.
        for i in 0..256u64 {
            cpu.load(segment::HEAP + i * 4, 4, MemDep::Demand);
        }
        let c = cpu.counters();
        assert_eq!(c.total(Event::DataMemRefs), 256);
        assert_eq!(c.total(Event::DcuLinesIn), 32);
        assert_eq!(c.total(Event::SimL2DataMiss), 32);
    }

    #[test]
    fn load_run_matches_per_record_loads_on_misses_and_stalls() {
        // A 64 KB span read as 100-byte records vs. as contiguous runs: the
        // line sequence is identical, so cache misses and memory stall
        // cycles must agree exactly; only access-granularity counters
        // (DATA_MEM_REFS) are amortized.
        let mut row = quiet_cpu();
        let mut run = quiet_cpu();
        for rep in 0..2 {
            for rec in 0..655u64 {
                row.load(segment::HEAP + rec * 100, 100, MemDep::Demand);
            }
            run.load_run(segment::HEAP, 65500, MemDep::Demand);
            if rep == 0 {
                // Also exercise the warm (all-hit) fast path on pass 2.
                row.reset_stats();
                run.reset_stats();
            }
        }
        let (cr, cu) = (row.counters(), run.counters());
        assert_eq!(cu.total(Event::DcuLinesIn), cr.total(Event::DcuLinesIn));
        assert_eq!(
            cu.total(Event::SimL2DataMiss),
            cr.total(Event::SimL2DataMiss)
        );
        assert_eq!(cu.total(Event::SimDtlbMiss), cr.total(Event::SimDtlbMiss));
        assert!(
            (run.ledger().total(Component::Tl2d) - row.ledger().total(Component::Tl2d)).abs()
                < 1e-6
        );
        assert!(
            (run.ledger().total(Component::Tl1d) - row.ledger().total(Component::Tl1d)).abs()
                < 1e-6
        );
        assert_eq!(
            cu.total(Event::DataMemRefs),
            1,
            "one bookkeeping ref per run"
        );
        assert_eq!(cr.total(Event::DataMemRefs), 655);
    }

    #[test]
    fn store_run_matches_per_record_stores_on_misses_and_stalls() {
        // The write twin of the load_run parity test: a 64 KB span written
        // as 8-byte appends vs. as contiguous runs must allocate the same
        // lines, mark the same dirty state and charge the same stall cycles.
        let mut row = quiet_cpu();
        let mut run = quiet_cpu();
        for rep in 0..2 {
            for rec in 0..8192u64 {
                row.store(segment::HEAP + rec * 8, 8, MemDep::Demand);
            }
            run.store_run(segment::HEAP, 8192 * 8, MemDep::Demand);
            if rep == 0 {
                row.reset_stats();
                run.reset_stats();
            }
        }
        let (cr, cu) = (row.counters(), run.counters());
        assert_eq!(cu.total(Event::DcuLinesIn), cr.total(Event::DcuLinesIn));
        assert_eq!(cu.total(Event::DcuMLinesIn), cr.total(Event::DcuMLinesIn));
        assert_eq!(
            cu.total(Event::SimL2DataMiss),
            cr.total(Event::SimL2DataMiss)
        );
        assert_eq!(cu.total(Event::BusTranRfo), cr.total(Event::BusTranRfo));
        assert!(
            (run.ledger().total(Component::Tl2d) - row.ledger().total(Component::Tl2d)).abs()
                < 1e-6
        );
        assert_eq!(cu.total(Event::DataMemRefs), 1);
        assert_eq!(cr.total(Event::DataMemRefs), 8192);
    }

    #[test]
    fn chase_misses_cost_more_than_demand_misses() {
        let mut a = quiet_cpu();
        let mut b = quiet_cpu();
        for i in 0..64u64 {
            a.load(segment::HEAP + i * 64, 4, MemDep::Demand);
            b.load(segment::HEAP + i * 64, 4, MemDep::Chase);
        }
        let ta = a.ledger().total(Component::Tl2d);
        let tb = b.ledger().total(Component::Tl2d);
        assert!(
            tb > ta,
            "pointer chasing exposes full latency: {tb} <= {ta}"
        );
    }

    #[test]
    fn timely_prefetch_converts_misses_to_l2_hits() {
        let mut cpu = quiet_cpu();
        let addr = segment::HEAP + 4096;
        cpu.prefetch_data(addr);
        // Burn enough cycles for the prefetch to complete.
        let b = block(512);
        for _ in 0..20 {
            cpu.exec_block(&b);
        }
        let snap = cpu.snapshot();
        cpu.load(addr, 4, MemDep::Demand);
        let d = cpu.snapshot().delta(&snap);
        assert_eq!(
            d.counters.total(Event::SimL2DataMiss),
            0,
            "prefetched line is an L2 hit"
        );
        assert!(d.ledger.total(Component::Tl2d) == 0.0);
        assert!(
            d.ledger.total(Component::Tl1d) > 0.0,
            "still an L1 miss that hit L2"
        );
    }

    #[test]
    fn late_prefetch_charges_partial_latency() {
        let mut cpu = quiet_cpu();
        let addr = segment::HEAP + 8192;
        cpu.prefetch_data(addr);
        let snap = cpu.snapshot();
        cpu.load(addr, 4, MemDep::Demand); // immediately: prefetch still in flight
        let d = cpu.snapshot().delta(&snap);
        assert_eq!(d.counters.total(Event::SimPrefetchLate), 1);
        let charged = d.ledger.total(Component::Tl2d);
        let full = CpuConfig::pentium_ii_xeon().pipe.mem_latency as f64;
        assert!(charged > 0.0 && charged <= full + 4.0);
    }

    #[test]
    fn select_run_charges_compute_not_branch_stalls() {
        let mut cpu = quiet_cpu();
        let snap = cpu.snapshot();
        cpu.select_run(1000);
        let d = cpu.snapshot().delta(&snap);
        assert_eq!(d.counters.total(Event::SimSelectOps), 1000);
        assert_eq!(
            d.counters.total(Event::InstRetired),
            SELECT_X86_PER_LANE * 1000
        );
        assert_eq!(d.counters.total(Event::BrInstRetired), 0, "no branches");
        assert_eq!(d.ledger.total(Component::Tb), 0.0, "no mispredict stalls");
        assert!((d.ledger.total(Component::Tc) - SELECT_TC_PER_LANE * 1000.0).abs() < 1e-9);
        assert!((d.ledger.total(Component::Tdep) - SELECT_TDEP_PER_LANE * 1000.0).abs() < 1e-9);
        assert!((d.ledger.grand_total() - d.cycles).abs() < 1e-6);
    }

    #[test]
    fn merge_cores_sums_work_and_takes_max_wall() {
        // Two cores doing different amounts of the same kind of work: the
        // merged total must equal the sum, the wall clock the slower core.
        let mut fast = quiet_cpu();
        let mut slow = quiet_cpu();
        let b = block(900);
        for _ in 0..10 {
            fast.exec_block(&b);
            fast.load(segment::HEAP + 64, 4, MemDep::Demand);
        }
        for _ in 0..30 {
            slow.exec_block(&b);
            slow.load(segment::HEAP + 4096, 4, MemDep::Demand);
        }
        let deltas = [fast.snapshot(), slow.snapshot()];
        let m = merge_cores(&deltas);
        assert_eq!(m.cores, 2);
        assert!((m.total.cycles - (fast.cycles() + slow.cycles())).abs() < 1e-9);
        assert_eq!(m.wall_cycles, slow.cycles().max(fast.cycles()));
        assert_eq!(
            m.total.counters.total(Event::InstRetired),
            fast.counters().total(Event::InstRetired) + slow.counters().total(Event::InstRetired)
        );
        assert!(
            (m.total.ledger.grand_total() - m.total.cycles).abs() < 1e-6,
            "merged ledger must still account for every merged cycle"
        );
        // Merging is deterministic: same inputs, bit-identical result.
        assert_eq!(m, merge_cores(&deltas));
    }

    #[test]
    fn data_branch_misses_are_counted_separately() {
        let mut cpu = quiet_cpu();
        let site = BranchSite {
            addr: segment::CODE + 40,
            backward: false,
        };
        // Forward branch, first execution taken: static predicts not-taken.
        cpu.branch(site, true);
        assert_eq!(cpu.counters().total(Event::SimDataBranchMiss), 1);
        // select_run never touches the data-branch counter.
        cpu.select_run(64);
        assert_eq!(cpu.counters().total(Event::SimDataBranchMiss), 1);
    }

    #[test]
    fn mispredicted_branch_charges_17_cycles() {
        let mut cpu = quiet_cpu();
        let site = BranchSite {
            addr: segment::CODE + 100,
            backward: false,
        };
        // Train taken... static predicts not-taken for forward: first taken
        // execution mispredicts.
        let snap = cpu.snapshot();
        cpu.branch(site, true);
        let d = cpu.snapshot().delta(&snap);
        assert_eq!(d.counters.total(Event::BrMissPredRetired), 1);
        assert_eq!(d.ledger.total(Component::Tb), 17.0);
    }

    #[test]
    fn interrupts_run_in_supervisor_mode_and_pollute_l1i() {
        let cfg = CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg {
            period_cycles: 5_000,
            kernel_code_bytes: 12 * 1024,
            kernel_data_bytes: 2048,
        });
        let mut cpu = Cpu::new(cfg);
        let b = block(8 * 1024);
        for _ in 0..200 {
            cpu.exec_block(&b);
        }
        assert!(cpu.counters().total(Event::HwIntRx) > 10);
        assert!(cpu.cycles_in_mode(Mode::Sup) > 0.0);
        assert!(
            cpu.counters().get(Mode::Sup, Event::InstRetired) > 0,
            "kernel instructions are counted in supervisor mode"
        );
        // User-mode L1I misses persist at steady state because the kernel
        // footprint keeps evicting the loop's code (§5.2.2 hypothesis).
        let snap = cpu.snapshot();
        for _ in 0..200 {
            cpu.exec_block(&b);
        }
        let d = cpu.snapshot().delta(&snap);
        assert!(
            d.counters.get(Mode::User, Event::IfuIfetchMiss) > 0,
            "kernel pollution must cause steady-state user L1I misses"
        );
    }

    #[test]
    fn no_interrupts_means_pure_user_mode() {
        let mut cpu = quiet_cpu();
        let b = block(2048);
        for _ in 0..100 {
            cpu.exec_block(&b);
        }
        assert_eq!(cpu.cycles_in_mode(Mode::Sup), 0.0);
        assert_eq!(cpu.counters().total(Event::HwIntRx), 0);
    }

    #[test]
    fn reset_stats_keeps_caches_warm() {
        let mut cpu = quiet_cpu();
        let b = block(4096);
        for _ in 0..8 {
            cpu.exec_block(&b); // warm every fetch phase
        }
        cpu.reset_stats();
        assert_eq!(cpu.cycles(), 0.0);
        cpu.exec_block(&b);
        assert_eq!(
            cpu.counters().total(Event::IfuIfetchMiss),
            0,
            "caches stayed warm"
        );
    }

    #[test]
    fn inclusive_l2_back_invalidates_l1() {
        // Force inclusion with a tiny L2 so evictions are frequent, then
        // check L1D lines disappear when their L2 lines are replaced.
        let mut cfg = CpuConfig::pentium_ii_xeon()
            .with_interrupts(InterruptCfg::disabled())
            .with_inclusive_l2(true);
        cfg.l2.size_bytes = 4 * 1024; // smaller than L1s, extreme inclusion pressure
        let mut cpu = Cpu::new(cfg);
        for i in 0..4096u64 {
            cpu.load(segment::HEAP + i * 32, 4, MemDep::Demand);
        }
        let snap = cpu.snapshot();
        for i in 0..4096u64 {
            cpu.load(segment::HEAP + i * 32, 4, MemDep::Demand);
        }
        let d = cpu.snapshot().delta(&snap);
        // Without inclusion the 16 KB L1D would keep ~512 hot lines; with a
        // 4 KB inclusive L2 nearly everything is invalidated before reuse.
        assert!(d.counters.total(Event::DcuLinesIn) > 3500);
    }

    #[test]
    fn user_and_kernel_counters_are_separated() {
        let cfg = CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg {
            period_cycles: 20_000,
            kernel_code_bytes: 2048,
            kernel_data_bytes: 1024,
        });
        let mut cpu = Cpu::new(cfg);
        let b = block(1024);
        for _ in 0..500 {
            cpu.exec_block(&b);
        }
        let user_instr = cpu.counters().get(Mode::User, Event::InstRetired);
        let sup_instr = cpu.counters().get(Mode::Sup, Event::InstRetired);
        assert!(user_instr > sup_instr, "most work is user mode");
        assert!(sup_instr > 0);
    }
}

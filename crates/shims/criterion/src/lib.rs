//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! crate implements the subset of the criterion API the `wdtg-bench` bench
//! targets use (`criterion_group!`/`criterion_main!`, benchmark groups,
//! throughput annotation, `Bencher::iter`). Measurement is a plain
//! wall-clock mean over a fixed number of timed iterations after a warm-up
//! pass — adequate for smoke benchmarking and regression eyeballing, without
//! criterion's statistical machinery.

#![warn(missing_docs)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Work performed per iteration, used to derive a throughput figure.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (rows, accesses, ...) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to each benchmark closure; `iter` runs and times the payload.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over a fixed batch of iterations (after one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        // Scale iteration count to the payload so quick benches get stable
        // means and slow benches still finish promptly.
        let probe_start = Instant::now();
        black_box(f());
        let probe = probe_start.elapsed();
        let iters = if probe > Duration::from_millis(200) {
            3
        } else if probe > Duration::from_millis(10) {
            10
        } else {
            50
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    /// Mean wall-clock time per iteration.
    pub fn mean(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.elapsed / self.iters as u32
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Records the per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim sizes samples itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark and prints its mean time (and throughput).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        let mean = b.mean();
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!(" ({:.0} elem/s)", n as f64 / mean.as_secs_f64().max(1e-12))
            }
            Throughput::Bytes(n) => {
                format!(" ({:.0} B/s)", n as f64 / mean.as_secs_f64().max(1e-12))
            }
        });
        println!(
            "{}/{}: {:?}/iter{}",
            self.name,
            id,
            mean,
            rate.unwrap_or_default()
        );
        self
    }

    /// Ends the group (no-op; printed incrementally).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a function running the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a bench target (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! crate provides the (small) subset of the `rand 0.9` API the workload
//! generators use: `rngs::StdRng`, `SeedableRng::seed_from_u64` and
//! `Rng::random_range` over integer ranges. The generator is SplitMix64 —
//! deterministic, seedable, and statistically far better than the workload
//! generators need. It is **not** the same stream as the real `StdRng`
//! (ChaCha12), which only matters if datasets generated here were compared
//! byte-for-byte against ones generated with the real crate.

#![warn(missing_docs)]

/// Random number generator implementations.
pub mod rngs {
    /// Deterministic seedable generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for rngs::StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014).
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng {
            state: seed ^ 0x5851_f42d_4c95_7f2d,
        }
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = rng.next_u64() as u128 % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let r = rng.next_u64() as u128 % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from an integer range (`lo..hi` or `lo..=hi`).
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<i32> = (0..32).map(|_| a.random_range(-100..100)).collect();
        let vb: Vec<i32> = (0..32).map(|_| b.random_range(-100..100)).collect();
        let vc: Vec<i32> = (0..32).map(|_| c.random_range(-100..100)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: i32 = rng.random_range(-5..7);
            assert!((-5..7).contains(&v));
            let w: u64 = rng.random_range(3..=9);
            assert!((3..=9).contains(&w));
            let x: i64 = rng.random_range(1..=1);
            assert_eq!(x, 1);
        }
    }

    #[test]
    fn covers_full_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

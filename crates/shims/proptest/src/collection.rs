//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Accepted element-count specifications for [`vec()`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Strategy generating a `Vec` of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_inclusive - self.size.min + 1) as u64;
        let len = self.size.min + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// Generates vectors whose elements come from `elem` and whose length falls
/// in `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

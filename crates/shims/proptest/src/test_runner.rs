//! Test configuration and the deterministic case generator.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test random source (SplitMix64 seeded from the test
/// name, so every run of a test sees the same case sequence).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

//! The usual `use proptest::prelude::*` imports.

pub use crate::strategy::{any, Arbitrary, Strategy};
pub use crate::test_runner::{ProptestConfig, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

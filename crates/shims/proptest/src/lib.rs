//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! crate implements the subset of the proptest API the test suites use: the
//! `proptest!` macro with `#![proptest_config]`, integer-range / tuple /
//! `collection::vec` / `any::<bool>()` strategies, and the `prop_assert*`
//! macros. Cases are generated from a deterministic per-test seed (hash of
//! the test name), so failures reproduce exactly; there is no shrinking —
//! a failing case panics with the values visible via the assert message.

#![warn(missing_docs)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Strategy};
pub use test_runner::{ProptestConfig, TestRng};

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test function at a
/// time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for __case in 0..config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)*
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

//! Value-generation strategies.

use core::marker::PhantomData;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            #[inline]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = rng.next_u64() as u128 % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            #[inline]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let r = rng.next_u64() as u128 % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+ ))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        rng.next_u64() as i32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

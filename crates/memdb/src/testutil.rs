//! Shared test support: the one place the equivalence suites, the
//! workspace-level paper-claims tests and the examples get their quiet
//! processor configs and pre-loaded databases from.
//!
//! Before this module existed the same helpers were copy-pasted between
//! `crates/memdb/tests/common/mod.rs` and the workspace `tests/` suite;
//! they live in the library (like `JoinHashTable::get_all`, the testing
//! oracle) so every crate in the workspace shares one definition. Both
//! comparison suites measure two configurations of the same engine, so they
//! must build databases under *identical* conditions — quiet interrupts,
//! uninstrumented loading, one warm-up run before the measured run — which
//! is exactly what these helpers enforce.

use crate::db::Database;
use crate::heap::PageLayout;
use crate::profiles::{EngineProfile, SystemId};
use crate::query::{Query, QueryResult};
use wdtg_sim::{CpuConfig, InterruptCfg, Snapshot};

/// The Xeon config with the interrupt model off, so miss counts are exact.
pub fn quiet() -> CpuConfig {
    CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled())
}

/// Builds a database in the given page layout and loads 20-byte-record
/// tables uninstrumented, optionally indexing `R.a2`.
pub fn build_db_layout(
    sys: SystemId,
    layout: PageLayout,
    tables: &[(&str, &[Vec<i32>])],
    index_a2: bool,
) -> Database {
    let indexes: &[(&str, &str)] = if index_a2 { &[("R", "a2")] } else { &[] };
    build_db_with_indexes(sys, layout, tables, indexes)
}

/// [`build_db_layout`] with an arbitrary set of `(table, column)` secondary
/// indexes (the join suites index the inner relation's key for the
/// index-nested-loop strategy).
pub fn build_db_with_indexes(
    sys: SystemId,
    layout: PageLayout,
    tables: &[(&str, &[Vec<i32>])],
    indexes: &[(&str, &str)],
) -> Database {
    let mut db = Database::new(EngineProfile::system(sys), quiet()).with_page_layout(layout);
    db.ctx.instrument = false;
    for (name, rows) in tables {
        db.create_table(name, crate::schema::Schema::paper_relation(20))
            .unwrap();
        db.load_rows(name, rows.iter().cloned()).unwrap();
    }
    for (table, col) in indexes {
        db.create_index(table, col).unwrap();
    }
    db.ctx.instrument = true;
    db
}

/// Runs `q` once to warm the machine, then measures a second execution.
pub fn measure(db: &mut Database, q: &Query) -> (QueryResult, Snapshot) {
    db.run(q).expect("warm-up run");
    let before = db.cpu().snapshot();
    let res = db.run(q).expect("measured run");
    (res, db.cpu().snapshot().delta(&before))
}

/// 5-column (20-byte) rows with `a1` sequential, `a2`/`a3` pseudo-random.
pub fn rows_for(n: usize, seed: u64) -> Vec<Vec<i32>> {
    (0..n)
        .map(|i| {
            let x = (i as u64).wrapping_mul(seed | 1).wrapping_mul(0x9e37_79b9);
            vec![
                i as i32,
                (x % 512) as i32,
                (x % 1009) as i32,
                (x % 7) as i32,
                0,
            ]
        })
        .collect()
}

//! Abstract syntax for the engine's SQL dialect.
//!
//! The AST is deliberately close to the dialect the executor already runs
//! ([`crate::query::Query`]): single-table aggregates with conjunctive
//! predicates, optional GROUP BY, two-table equi-joins, point selects, and
//! the two mutations. The binder ([`crate::sql::bind`]) narrows these to
//! bound queries; nothing here knows about the catalog.

use crate::query::AggKind;

/// A possibly table-qualified column reference, with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRef {
    /// Optional qualifying table name (`R.a2`).
    pub table: Option<String>,
    /// Column name.
    pub col: String,
    /// Byte span in the statement text.
    pub span: (usize, usize),
}

impl ColRef {
    /// `"t.c"` or `"c"` for diagnostics.
    pub fn display(&self) -> String {
        match &self.table {
            Some(t) => format!("{t}.{}", self.col),
            None => self.col.clone(),
        }
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Projection {
    /// `AVG(col)`, `SUM(col)`, `MIN(col)`, `MAX(col)`, `COUNT(*)` or
    /// `COUNT(col)`.
    Agg {
        /// Aggregate function.
        kind: AggKind,
        /// Aggregated column; `None` only for `COUNT(*)`.
        col: Option<ColRef>,
        /// Span of the whole aggregate call.
        span: (usize, usize),
    },
    /// A bare column (legal as the GROUP BY key or a point-select read).
    Col(ColRef),
}

/// Comparison operator as written (the binder maps to [`crate::expr::CmpOp`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CmpKind {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// One conjunct of the WHERE clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WhereAtom {
    /// `col OP literal` (or the mirrored `literal OP col`, normalized by
    /// the parser so the column is always on the left).
    Cmp {
        /// Column operand.
        col: ColRef,
        /// Operator, after normalization.
        op: CmpKind,
        /// Literal operand.
        value: i64,
        /// Span of the whole comparison.
        span: (usize, usize),
    },
    /// `left_col = right_col` — the equi-join condition.
    ColEq {
        /// Left column.
        left: ColRef,
        /// Right column.
        right: ColRef,
        /// Span of the whole comparison.
        span: (usize, usize),
    },
}

impl WhereAtom {
    /// The atom's source span.
    pub fn span(&self) -> (usize, usize) {
        match self {
            WhereAtom::Cmp { span, .. } | WhereAtom::ColEq { span, .. } => *span,
        }
    }
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectStmt {
    /// SELECT-list items, in order.
    pub projections: Vec<Projection>,
    /// FROM tables (1 or 2; `JOIN ... ON` folds into `tables` + a
    /// [`WhereAtom::ColEq`] conjunct), with spans.
    pub tables: Vec<(String, (usize, usize))>,
    /// WHERE conjuncts (ANDed).
    pub where_atoms: Vec<WhereAtom>,
    /// GROUP BY key, if present.
    pub group_by: Option<ColRef>,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// `SELECT ...`.
    Select(SelectStmt),
    /// `INSERT INTO table VALUES (v, ...)`.
    Insert {
        /// Target table and its span.
        table: (String, (usize, usize)),
        /// Literal row values, with the span of each literal.
        values: Vec<(i64, (usize, usize))>,
    },
    /// `UPDATE table SET col = col + delta WHERE key_col = key`.
    Update {
        /// Target table and its span.
        table: (String, (usize, usize)),
        /// Column assigned.
        set_col: ColRef,
        /// Column read on the right-hand side (must rebind to `set_col`).
        read_col: ColRef,
        /// Signed increment.
        delta: i64,
        /// Key column of the WHERE equality.
        key_col: ColRef,
        /// Key value.
        key: i64,
    },
}

//! Recursive-descent parser for the engine's SQL dialect.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! stmt      := select | insert | update
//! select    := SELECT proj (',' proj)* FROM table_ref [WHERE conj] [GROUP BY colref]
//! table_ref := ident (',' ident | [INNER] JOIN ident ON colref '=' colref)*
//! proj      := agg '(' ('*' | colref) ')' | colref
//! agg       := AVG | SUM | COUNT | MIN | MAX
//! conj      := atom (AND atom)*
//! atom      := operand cmp operand
//! operand   := colref | ['-'] int
//! colref    := ident ['.' ident]
//! insert    := INSERT INTO ident VALUES '(' ['-']int (',' ['-']int)* ')'
//! update    := UPDATE ident SET colref '=' colref ('+'|'-') int
//!              WHERE colref '=' ['-']int
//! ```
//!
//! Every error is a [`DbError::ParseError`] with the offending token's byte
//! span and a snippet — malformed SQL never panics.

use crate::error::{DbError, DbResult};
use crate::query::AggKind;

use super::ast::{CmpKind, ColRef, Projection, SelectStmt, Statement, WhereAtom};
use super::token::{lex, parse_err, Tok, Token};

/// Parses one statement (an optional trailing `;` is allowed).
pub fn parse(src: &str) -> DbResult<Statement> {
    let toks = lex(src)?;
    let mut p = Parser { src, toks, pos: 0 };
    let stmt = match p.peek().clone() {
        Tok::Kw("SELECT") => Statement::Select(p.select()?),
        Tok::Kw("INSERT") => p.insert()?,
        Tok::Kw("UPDATE") => p.update()?,
        _ => {
            return Err(p.err_here("expected SELECT, INSERT or UPDATE"));
        }
    };
    p.eat_sym(";");
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser<'a> {
    src: &'a str,
    toks: Vec<Token>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek_span(&self) -> (usize, usize) {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: impl Into<String>) -> DbError {
        parse_err(self.src, self.peek_span(), msg)
    }

    fn eat_kw(&mut self, kw: &'static str) -> bool {
        if *self.peek() == Tok::Kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_sym(&mut self, sym: &'static str) -> bool {
        if *self.peek() == Tok::Sym(sym) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &'static str) -> DbResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected {kw}")))
        }
    }

    fn expect_sym(&mut self, sym: &'static str) -> DbResult<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected `{sym}`")))
        }
    }

    fn expect_eof(&self) -> DbResult<()> {
        if *self.peek() == Tok::Eof {
            Ok(())
        } else {
            Err(self.err_here("unexpected trailing input"))
        }
    }

    fn ident(&mut self, what: &str) -> DbResult<(String, (usize, usize))> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                let span = self.peek_span();
                self.bump();
                Ok((name, span))
            }
            _ => Err(self.err_here(format!("expected {what} name"))),
        }
    }

    /// `ident ['.' ident]`.
    fn colref(&mut self) -> DbResult<ColRef> {
        let (first, span1) = self.ident("column")?;
        if self.eat_sym(".") {
            let (col, span2) = self.ident("column")?;
            Ok(ColRef {
                table: Some(first),
                col,
                span: (span1.0, span2.1),
            })
        } else {
            Ok(ColRef {
                table: None,
                col: first,
                span: span1,
            })
        }
    }

    /// `['-'] int`, returning the signed value and its span.
    fn int(&mut self) -> DbResult<(i64, (usize, usize))> {
        let neg_span = if self.eat_sym("-") {
            Some(self.toks[self.pos - 1].span)
        } else {
            None
        };
        match *self.peek() {
            Tok::Int(v) => {
                let span = self.peek_span();
                self.bump();
                match neg_span {
                    Some(ns) => Ok((-v, (ns.0, span.1))),
                    None => Ok((v, span)),
                }
            }
            _ => Err(self.err_here("expected integer literal")),
        }
    }

    fn agg_kind(&mut self) -> Option<AggKind> {
        let kind = match self.peek() {
            Tok::Kw("AVG") => AggKind::Avg,
            Tok::Kw("SUM") => AggKind::Sum,
            Tok::Kw("COUNT") => AggKind::Count,
            Tok::Kw("MIN") => AggKind::Min,
            Tok::Kw("MAX") => AggKind::Max,
            _ => return None,
        };
        self.bump();
        Some(kind)
    }

    fn projection(&mut self) -> DbResult<Projection> {
        let start = self.peek_span().0;
        if let Some(kind) = self.agg_kind() {
            self.expect_sym("(")?;
            let col = if self.eat_sym("*") {
                if kind != AggKind::Count {
                    return Err(parse_err(
                        self.src,
                        (start, self.peek_span().1),
                        "`*` is only valid in COUNT(*)",
                    ));
                }
                None
            } else {
                Some(self.colref()?)
            };
            self.expect_sym(")")?;
            let end = self.toks[self.pos - 1].span.1;
            Ok(Projection::Agg {
                kind,
                col,
                span: (start, end),
            })
        } else {
            Ok(Projection::Col(self.colref()?))
        }
    }

    /// One comparison; column/literal sides are normalized so the column is
    /// on the left (mirroring flips the operator).
    fn where_atom(&mut self) -> DbResult<WhereAtom> {
        enum Operand {
            Col(ColRef),
            Lit(i64),
        }
        let start = self.peek_span().0;
        let operand = |p: &mut Self| -> DbResult<Operand> {
            if matches!(p.peek(), Tok::Ident(_)) {
                Ok(Operand::Col(p.colref()?))
            } else {
                let (v, _) = p.int()?;
                Ok(Operand::Lit(v))
            }
        };
        let lhs = operand(self)?;
        let op = match self.peek() {
            Tok::Sym("<") => CmpKind::Lt,
            Tok::Sym("<=") => CmpKind::Le,
            Tok::Sym(">") => CmpKind::Gt,
            Tok::Sym(">=") => CmpKind::Ge,
            Tok::Sym("=") => CmpKind::Eq,
            Tok::Sym("<>") => CmpKind::Ne,
            _ => return Err(self.err_here("expected comparison operator")),
        };
        self.bump();
        let rhs = operand(self)?;
        let end = self.toks[self.pos - 1].span.1;
        let span = (start, end);
        let mirrored = |op: CmpKind| match op {
            CmpKind::Lt => CmpKind::Gt,
            CmpKind::Le => CmpKind::Ge,
            CmpKind::Gt => CmpKind::Lt,
            CmpKind::Ge => CmpKind::Le,
            CmpKind::Eq => CmpKind::Eq,
            CmpKind::Ne => CmpKind::Ne,
        };
        match (lhs, rhs) {
            (Operand::Col(left), Operand::Col(right)) => {
                if op != CmpKind::Eq {
                    return Err(parse_err(
                        self.src,
                        span,
                        "column-to-column comparison must be `=` (an equi-join condition)",
                    ));
                }
                Ok(WhereAtom::ColEq { left, right, span })
            }
            (Operand::Col(col), Operand::Lit(value)) => Ok(WhereAtom::Cmp {
                col,
                op,
                value,
                span,
            }),
            (Operand::Lit(value), Operand::Col(col)) => Ok(WhereAtom::Cmp {
                col,
                op: mirrored(op),
                value,
                span,
            }),
            (Operand::Lit(..), Operand::Lit(..)) => Err(parse_err(
                self.src,
                span,
                "comparison must reference a column",
            )),
        }
    }

    fn select(&mut self) -> DbResult<SelectStmt> {
        self.expect_kw("SELECT")?;
        let mut projections = vec![self.projection()?];
        while self.eat_sym(",") {
            projections.push(self.projection()?);
        }
        self.expect_kw("FROM")?;
        let mut tables = vec![self.ident("table")?];
        let mut where_atoms: Vec<WhereAtom> = Vec::new();
        loop {
            if self.eat_sym(",") {
                tables.push(self.ident("table")?);
            } else if *self.peek() == Tok::Kw("JOIN") || *self.peek() == Tok::Kw("INNER") {
                self.eat_kw("INNER");
                self.expect_kw("JOIN")?;
                tables.push(self.ident("table")?);
                self.expect_kw("ON")?;
                let atom = self.where_atom()?;
                match atom {
                    WhereAtom::ColEq { .. } => where_atoms.push(atom),
                    other => {
                        return Err(parse_err(
                            self.src,
                            other.span(),
                            "ON clause must be an equi-join condition `t1.c1 = t2.c2`",
                        ))
                    }
                }
            } else {
                break;
            }
        }
        if self.eat_kw("WHERE") {
            where_atoms.push(self.where_atom()?);
            while self.eat_kw("AND") {
                where_atoms.push(self.where_atom()?);
            }
            if *self.peek() == Tok::Kw("OR") || *self.peek() == Tok::Kw("NOT") {
                return Err(self
                    .err_here("only conjunctive (AND) predicates are supported in this dialect"));
            }
        }
        let group_by = if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            Some(self.colref()?)
        } else {
            None
        };
        Ok(SelectStmt {
            projections,
            tables,
            where_atoms,
            group_by,
        })
    }

    fn insert(&mut self) -> DbResult<Statement> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.ident("table")?;
        self.expect_kw("VALUES")?;
        self.expect_sym("(")?;
        let mut values = vec![self.int()?];
        while self.eat_sym(",") {
            values.push(self.int()?);
        }
        self.expect_sym(")")?;
        Ok(Statement::Insert { table, values })
    }

    fn update(&mut self) -> DbResult<Statement> {
        self.expect_kw("UPDATE")?;
        let table = self.ident("table")?;
        self.expect_kw("SET")?;
        let set_col = self.colref()?;
        self.expect_sym("=")?;
        let read_col = self.colref()?;
        let delta = if self.eat_sym("+") {
            self.int()?.0
        } else if self.eat_sym("-") {
            -self.int()?.0
        } else {
            return Err(
                self.err_here("UPDATE supports the form `SET col = col + n` (or `- n`) only")
            );
        };
        self.expect_kw("WHERE")?;
        let key_col = self.colref()?;
        self.expect_sym("=")?;
        let (key, _) = self.int()?;
        Ok(Statement::Update {
            table,
            set_col,
            read_col,
            delta,
            key_col,
            key,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_range_selection() {
        let s = parse("SELECT AVG(a3) FROM R WHERE a2 > 900 AND a2 < 1101").unwrap();
        let Statement::Select(sel) = s else {
            panic!("expected select")
        };
        assert_eq!(sel.tables[0].0, "R");
        assert_eq!(sel.where_atoms.len(), 2);
        assert!(sel.group_by.is_none());
    }

    /// Span-free fingerprint of a select, for comparing spellings.
    fn shape(src: &str) -> String {
        let Statement::Select(sel) = parse(src).unwrap() else {
            panic!("expected select")
        };
        let mut out = String::new();
        for t in &sel.tables {
            out.push_str(&format!("table {};", t.0));
        }
        for a in &sel.where_atoms {
            match a {
                WhereAtom::Cmp { col, op, value, .. } => {
                    out.push_str(&format!("cmp {} {op:?} {value};", col.display()))
                }
                WhereAtom::ColEq { left, right, .. } => {
                    out.push_str(&format!("eq {} {};", left.display(), right.display()))
                }
            }
        }
        out
    }

    #[test]
    fn parses_join_in_both_spellings() {
        // The two spellings have different byte spans but identical shape.
        assert_eq!(
            shape("SELECT AVG(R.a3) FROM R, S WHERE R.a2 = S.a1"),
            shape("SELECT AVG(R.a3) FROM R JOIN S ON R.a2 = S.a1"),
        );
    }

    #[test]
    fn normalizes_mirrored_literal_comparisons() {
        assert_eq!(
            shape("SELECT COUNT(*) FROM R WHERE 900 < a2"),
            shape("SELECT COUNT(*) FROM R WHERE a2 > 900"),
        );
    }

    #[test]
    fn errors_carry_spans() {
        let err = parse("SELECT AVG(a3) FROM R WHERE").unwrap_err();
        match err {
            DbError::ParseError { span, .. } => assert_eq!(span.0, 27),
            other => panic!("expected ParseError, got {other:?}"),
        }
    }
}

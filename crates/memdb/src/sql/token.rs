//! Hand-rolled lexer for the engine's SQL dialect.
//!
//! Every token carries its byte span in the source text; parse and bind
//! errors are reported against those spans with a snippet, so a typo in a
//! 200-byte statement points at the offending bytes instead of "syntax
//! error" ([`DbError::ParseError`]).

use crate::error::{DbError, DbResult};

/// A lexical token kind. Keywords are case-insensitive; identifiers keep
/// their original spelling (the catalog is case-sensitive, like the rest of
/// the engine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Keyword (uppercased spelling, e.g. `SELECT`).
    Kw(&'static str),
    /// Identifier (table/column name).
    Ident(String),
    /// Integer literal (sign handled by the parser).
    Int(i64),
    /// One of `( ) , . ; * = + -` or a comparison operator.
    Sym(&'static str),
    /// End of input (simplifies the parser's lookahead).
    Eof,
}

/// A token plus its byte span `[start, end)` in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Byte range in the statement text.
    pub span: (usize, usize),
}

/// The dialect's keywords (uppercase canonical spellings).
const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "GROUP", "BY", "AVG", "SUM", "COUNT", "MIN",
    "MAX", "INSERT", "INTO", "VALUES", "UPDATE", "SET", "JOIN", "INNER", "ON", "AS",
];

/// A one-line excerpt of `src` centered on `span`, for error messages.
/// Collapses the window to at most 40 bytes so diagnostics stay on one line.
pub fn snippet(src: &str, span: (usize, usize)) -> String {
    let (lo, hi) = (span.0.min(src.len()), span.1.min(src.len()));
    let start = lo.saturating_sub(15);
    let end = (hi + 15).min(src.len());
    // Don't split multi-byte chars (identifiers are ASCII but input is not).
    let mut s = start;
    while s > 0 && !src.is_char_boundary(s) {
        s -= 1;
    }
    let mut e = end;
    while e < src.len() && !src.is_char_boundary(e) {
        e += 1;
    }
    let mut out = String::new();
    if s > 0 {
        out.push('…');
    }
    out.push_str(src[s..e].trim_matches('\n'));
    if e < src.len() {
        out.push('…');
    }
    out
}

/// Builds a [`DbError::ParseError`] against `src` at `span`.
pub fn parse_err(src: &str, span: (usize, usize), msg: impl Into<String>) -> DbError {
    DbError::ParseError {
        msg: msg.into(),
        span,
        snippet: snippet(src, span),
    }
}

/// Builds a [`DbError::BindError`] against `src` at `span`.
pub fn bind_err(src: &str, span: (usize, usize), msg: impl Into<String>) -> DbError {
    DbError::BindError {
        msg: msg.into(),
        span,
        snippet: snippet(src, span),
    }
}

/// Tokenizes `src`, appending a final [`Tok::Eof`]. The only lexical errors
/// are an unknown character and an integer literal out of `i64` range.
pub fn lex(src: &str) -> DbResult<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        if b.is_ascii_alphabetic() || b == b'_' {
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = &src[start..i];
            let upper = word.to_ascii_uppercase();
            let tok = match KEYWORDS.iter().find(|k| **k == upper) {
                Some(kw) => Tok::Kw(kw),
                None => Tok::Ident(word.to_string()),
            };
            out.push(Token {
                tok,
                span: (start, i),
            });
        } else if b.is_ascii_digit() {
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let text = &src[start..i];
            let v: i64 = text
                .parse()
                .map_err(|_| parse_err(src, (start, i), format!("integer `{text}` overflows")))?;
            out.push(Token {
                tok: Tok::Int(v),
                span: (start, i),
            });
        } else {
            let (sym, len): (&'static str, usize) = match b {
                b'<' if bytes.get(i + 1) == Some(&b'=') => ("<=", 2),
                b'>' if bytes.get(i + 1) == Some(&b'=') => (">=", 2),
                b'<' if bytes.get(i + 1) == Some(&b'>') => ("<>", 2),
                b'!' if bytes.get(i + 1) == Some(&b'=') => ("<>", 2),
                b'<' => ("<", 1),
                b'>' => (">", 1),
                b'=' => ("=", 1),
                b'(' => ("(", 1),
                b')' => (")", 1),
                b',' => (",", 1),
                b'.' => (".", 1),
                b';' => (";", 1),
                b'*' => ("*", 1),
                b'+' => ("+", 1),
                b'-' => ("-", 1),
                _ => {
                    return Err(parse_err(
                        src,
                        (start, start + 1),
                        format!("unexpected character `{}`", &src[start..][..1]),
                    ))
                }
            };
            i += len;
            out.push(Token {
                tok: Tok::Sym(sym),
                span: (start, i),
            });
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        span: (src.len(), src.len()),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_keywords_idents_ints_and_symbols() {
        let toks = lex("select avg(a3) from R where a2 > 900").unwrap();
        assert_eq!(toks[0].tok, Tok::Kw("SELECT"));
        assert_eq!(toks[1].tok, Tok::Kw("AVG"));
        assert_eq!(toks[2].tok, Tok::Sym("("));
        assert_eq!(toks[3].tok, Tok::Ident("a3".into()));
        assert!(matches!(toks.last().unwrap().tok, Tok::Eof));
    }

    #[test]
    fn rejects_unknown_characters_with_span() {
        let err = lex("select @ from R").unwrap_err();
        match err {
            DbError::ParseError { span, .. } => assert_eq!(span, (7, 8)),
            other => panic!("expected ParseError, got {other:?}"),
        }
    }
}

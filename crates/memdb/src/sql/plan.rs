//! The simulator-costed physical planner.
//!
//! For a bound aggregate query the planner enumerates every candidate
//! physical configuration over the engine's knobs — execution mode
//! ([`ExecMode`]), qualification strategy ([`SelectionMode`]) and join
//! algorithm ([`JoinAlgo`]) — and *measures* each candidate by running it on
//! a **pilot database**: a fresh [`Database`] (its own simulated processor,
//! so the session's counters are untouched) loaded with a sampled prefix of
//! the real tables in the same page layouts. The cost model is the paper's
//! execution-time breakdown itself: each candidate's simulated
//! `T_Q = T_C + T_M + T_B + T_R` on the pilot, extrapolated to full size.
//!
//! * **Scans / grouped aggregates** are page-linear: the pilot holds a
//!   row prefix (up to [`PILOT_SCAN_ROWS`]) and costs scale by
//!   `full_rows / pilot_rows`.
//! * **Joins** are *not* linear in the build side — the hash table's
//!   residency in L2 is exactly what separates the naive and partitioned
//!   joins — so the pilot keeps the **full build side** and samples only
//!   the probe side, at two sizes; per-probe-row cost comes from the linear
//!   fit through the two measurements (`cost(n) = fixed + rate·n`), which
//!   separates the build-side fixed cost from the probe rate instead of
//!   wrongly scaling both.
//!
//! Candidates are enumerated in a fixed order and ties keep the earlier
//! candidate, so planning is deterministic. A warm-up run precedes every
//! measured pilot run, mirroring the §4.3 methodology.

use wdtg_sim::{Component, Mode, Snapshot};

use crate::db::Database;
use crate::error::{DbError, DbResult};
use crate::exec::{ExecMode, SelectionMode};
use crate::profiles::JoinAlgo;
use crate::query::{AggSpec, Query, QueryPredicate};

use super::bind::BoundStatement;

/// Max pilot rows for page-linear plans (scans, grouped aggregates).
pub const PILOT_SCAN_ROWS: usize = 2048;
/// The two probe-side sample sizes of the join pilot's linear fit.
pub const PILOT_PROBE_ROWS: (usize, usize) = (512, 1536);

/// One knob setting the planner can choose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysicalConfig {
    /// Row-at-a-time or vectorized execution.
    pub exec_mode: ExecMode,
    /// Qualification strategy; `None` when the plan has no filter.
    pub selection_mode: Option<SelectionMode>,
    /// Join algorithm; `None` for non-join plans.
    pub join_algo: Option<JoinAlgo>,
}

impl PhysicalConfig {
    /// Compact human label, e.g. `batch/predicated` or `row/partitioned`.
    pub fn label(&self) -> String {
        let mut parts = vec![match self.exec_mode {
            ExecMode::Row => "row",
            ExecMode::Batch => "batch",
        }
        .to_string()];
        if let Some(s) = self.selection_mode {
            parts.push(
                match s {
                    SelectionMode::Branching => "branching",
                    SelectionMode::Predicated => "predicated",
                }
                .to_string(),
            );
        }
        if let Some(j) = self.join_algo {
            parts.push(
                match j {
                    JoinAlgo::Hash => "hash",
                    JoinAlgo::PartitionedHash => "partitioned",
                    JoinAlgo::IndexNestedLoop => "index-nl",
                }
                .to_string(),
            );
        }
        parts.join("/")
    }

    /// Applies the chosen knobs to a database.
    pub fn apply(&self, db: &mut Database) {
        db.set_exec_mode(self.exec_mode);
        if let Some(s) = self.selection_mode {
            db.set_selection_mode(s);
        }
        if let Some(j) = self.join_algo {
            db.set_join_algo(j);
        }
    }
}

/// One candidate's estimated full-size cost, with the paper's breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateCost {
    /// The knob setting measured.
    pub config: PhysicalConfig,
    /// Estimated full-size simulated cycles (T_Q), the ranking key.
    pub est_cycles: f64,
    /// Estimated computation cycles (T_C).
    pub t_c: f64,
    /// Estimated memory-stall cycles (T_M).
    pub t_m: f64,
    /// Estimated branch-misprediction cycles (T_B).
    pub t_b: f64,
    /// Estimated resource-stall cycles (T_R).
    pub t_r: f64,
    /// Rows the pilot measured (probe-side rows for joins).
    pub pilot_rows: u64,
}

/// The planner's verdict for one statement: every candidate's simulated
/// stall-term cost and which one won.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    /// The statement text.
    pub sql: String,
    /// Plan shape of the chosen candidate (the engine's structural explain).
    pub shape: String,
    /// Every candidate, in enumeration order.
    pub candidates: Vec<CandidateCost>,
    /// Index of the winner in `candidates`.
    pub chosen: usize,
    /// Driving cardinality the estimates extrapolate to (outer-table rows).
    pub full_rows: u64,
}

impl PlanReport {
    /// The winning candidate.
    pub fn chosen(&self) -> &CandidateCost {
        &self.candidates[self.chosen]
    }

    /// Renders the candidate table, winner starred — `EXPLAIN` output.
    pub fn render(&self) -> String {
        let mut out = format!("sql: {}\nplan:\n", self.sql);
        for line in self.shape.lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        out.push_str(&format!(
            "candidates (pilot-simulated T_Q over {} rows, extrapolated):\n",
            self.full_rows
        ));
        for (i, c) in self.candidates.iter().enumerate() {
            out.push_str(&format!(
                "{} {:24} T_Q {:>14.0}  = T_C {:>12.0} + T_M {:>12.0} + T_B {:>10.0} + T_R {:>10.0}\n",
                if i == self.chosen { "*" } else { " " },
                c.config.label(),
                c.est_cycles,
                c.t_c,
                c.t_m,
                c.t_b,
                c.t_r,
            ));
        }
        out
    }
}

/// The four stall terms + total of one pilot measurement (user mode).
#[derive(Debug, Clone, Copy, Default)]
struct Measured {
    cycles: f64,
    t_c: f64,
    t_m: f64,
    t_b: f64,
    t_r: f64,
}

impl Measured {
    fn from_delta(d: &Snapshot) -> Measured {
        let l = &d.ledger;
        Measured {
            cycles: d.cycles,
            t_c: l.get(Mode::User, Component::Tc),
            t_m: l.memory_total(Mode::User),
            t_b: l.get(Mode::User, Component::Tb),
            t_r: l.resource_total(Mode::User),
        }
    }

    fn scale(&self, f: f64) -> Measured {
        Measured {
            cycles: self.cycles * f,
            t_c: self.t_c * f,
            t_m: self.t_m * f,
            t_b: self.t_b * f,
            t_r: self.t_r * f,
        }
    }

    /// Linear fit through `(n1, self)` and `(n2, m2)` evaluated at `n`,
    /// per component, clamped at zero (a negative extrapolation is noise).
    fn extrapolate(&self, m2: &Measured, n1: f64, n2: f64, n: f64) -> Measured {
        let at = |a: f64, b: f64| {
            let rate = (b - a) / (n2 - n1).max(1.0);
            (b + rate * (n - n2)).max(0.0)
        };
        Measured {
            cycles: at(self.cycles, m2.cycles),
            t_c: at(self.t_c, m2.t_c),
            t_m: at(self.t_m, m2.t_m),
            t_b: at(self.t_b, m2.t_b),
            t_r: at(self.t_r, m2.t_r),
        }
    }
}

/// Warm-up run, then a measured run, of `go` on `db`.
fn measure(
    db: &mut Database,
    mut go: impl FnMut(&mut Database) -> DbResult<()>,
) -> DbResult<Measured> {
    go(db)?;
    let before = db.cpu().snapshot();
    go(db)?;
    Ok(Measured::from_delta(&db.cpu().snapshot().delta(&before)))
}

/// Builds a pilot database mirroring `db`'s profile, processor config and
/// per-table page layouts, loaded (uninstrumented) with the given rows, and
/// reproducing `db`'s secondary indexes on those tables.
fn pilot_db(db: &Database, tables: &[(&str, &[Vec<i32>])]) -> DbResult<Database> {
    let total_rows: usize = tables.iter().map(|(_, r)| r.len()).sum();
    let mut profile = db.profile().clone();
    // Private code blocks: the pilot is its own simulated core, and must not
    // advance the session's block-rotation state.
    profile.privatize_blocks();
    let mut pilot = Database::with_capacity(
        profile,
        db.cpu().config().clone(),
        (total_rows as u64 / 8).max(1024),
    );
    pilot.ctx.instrument = false;
    for (name, rows) in tables {
        let ti = db.table_idx(name)?;
        let t = db.table(name)?;
        pilot.create_table_with_layout(name, t.schema.clone(), t.heap.layout)?;
        pilot.load_rows(name, rows.iter().cloned())?;
        for ci in 0..t.schema.arity() {
            if db.index_on(ti, ci).is_some() {
                pilot.create_index(name, &t.schema.columns()[ci].name)?;
            }
        }
    }
    pilot.ctx.instrument = true;
    Ok(pilot)
}

fn candidate(config: PhysicalConfig, m: &Measured, pilot_rows: u64) -> CandidateCost {
    CandidateCost {
        config,
        est_cycles: m.cycles,
        t_c: m.t_c,
        t_m: m.t_m,
        t_b: m.t_b,
        t_r: m.t_r,
        pilot_rows,
    }
}

/// Index of the minimum-cost candidate (first wins ties — deterministic).
fn pick(cands: &[CandidateCost]) -> usize {
    let mut best = 0;
    for (i, c) in cands.iter().enumerate().skip(1) {
        if c.est_cycles < cands[best].est_cycles {
            best = i;
        }
    }
    best
}

/// Plans a bound statement against `db`. Returns `None` for statements with
/// no physical choice to make (point reads and mutations run as-is).
pub(crate) fn plan(
    db: &Database,
    sql: &str,
    stmt: &BoundStatement,
) -> DbResult<Option<PlanReport>> {
    match stmt {
        BoundStatement::Scalar(q) => match q {
            Query::SelectAgg {
                table, predicate, ..
            } => plan_scan(db, sql, q, table, predicate.as_ref(), None).map(Some),
            Query::JoinAgg { .. } => plan_join(db, sql, q).map(Some),
            _ => Ok(None),
        },
        BoundStatement::Grouped {
            table,
            group_col,
            predicate,
            agg,
        } => plan_grouped(db, sql, table, group_col, predicate.as_ref(), agg).map(Some),
    }
}

/// Exec-mode × selection-mode candidates for a filtered plan; exec modes
/// only when there is no filter to qualify.
fn scan_configs(has_filter: bool) -> Vec<PhysicalConfig> {
    let mut out = Vec::new();
    for mode in [ExecMode::Row, ExecMode::Batch] {
        if has_filter {
            for sel in [SelectionMode::Branching, SelectionMode::Predicated] {
                out.push(PhysicalConfig {
                    exec_mode: mode,
                    selection_mode: Some(sel),
                    join_algo: None,
                });
            }
        } else {
            out.push(PhysicalConfig {
                exec_mode: mode,
                selection_mode: None,
                join_algo: None,
            });
        }
    }
    out
}

fn plan_scan(
    db: &Database,
    sql: &str,
    q: &Query,
    table: &str,
    predicate: Option<&QueryPredicate>,
    grouped: Option<(&str, &AggSpec)>,
) -> DbResult<PlanReport> {
    let ti = db.table_idx(table)?;
    let rows = db.table_rows(ti)?;
    let full = rows.len();
    let n = full.clamp(1, PILOT_SCAN_ROWS);
    let prefix = &rows[..full.min(n)];
    let mut pilot = pilot_db(db, &[(table, prefix)])?;
    let factor = full as f64 / prefix.len().max(1) as f64;

    let mut candidates = Vec::new();
    for config in scan_configs(predicate.is_some()) {
        config.apply(&mut pilot);
        let m = match grouped {
            None => measure(&mut pilot, |p| p.run(q).map(|_| ()))?,
            Some((group_col, agg)) => measure(&mut pilot, |p| {
                p.run_grouped(table, group_col, predicate, agg).map(|_| ())
            })?,
        };
        candidates.push(candidate(config, &m.scale(factor), prefix.len() as u64));
    }
    let chosen = pick(&candidates);
    let shape = {
        let mut shaped = pilot;
        candidates[chosen].config.apply(&mut shaped);
        shaped.explain(q)?
    };
    Ok(PlanReport {
        sql: sql.to_string(),
        shape,
        candidates,
        chosen,
        full_rows: full as u64,
    })
}

fn plan_grouped(
    db: &Database,
    sql: &str,
    table: &str,
    group_col: &str,
    predicate: Option<&QueryPredicate>,
    agg: &AggSpec,
) -> DbResult<PlanReport> {
    // The grouped plan is the scan plan plus a group map; reuse the scan
    // pilot with the grouped runner. The structural explain renders the
    // equivalent ungrouped aggregate (grouping adds no physical choice).
    let q = Query::SelectAgg {
        table: table.to_string(),
        predicate: predicate.cloned(),
        agg: agg.clone(),
    };
    plan_scan(db, sql, &q, table, predicate, Some((group_col, agg)))
}

fn plan_join(db: &Database, sql: &str, q: &Query) -> DbResult<PlanReport> {
    let Query::JoinAgg {
        left,
        right,
        right_col,
        ..
    } = q
    else {
        return Err(DbError::PlanError("plan_join on a non-join".into()));
    };
    let li = db.table_idx(left)?;
    let ri = db.table_idx(right)?;
    let probe_rows = db.table_rows(li)?;
    let build_rows = db.table_rows(ri)?;
    let full = probe_rows.len();

    // Full build side, two probe prefixes: the hash table the pilot builds
    // is the real one, so its (non-)residency in L2 — the crossover the
    // partitioned join exists for — is measured, not modeled.
    let (p1, p2) = (
        full.min(PILOT_PROBE_ROWS.0).max(1),
        full.min(PILOT_PROBE_ROWS.1).max(1),
    );
    let mut pilot1 = pilot_db(db, &[(left, &probe_rows[..p1]), (right, &build_rows[..])])?;
    let mut pilot2 = if p2 > p1 {
        Some(pilot_db(
            db,
            &[(left, &probe_rows[..p2]), (right, &build_rows[..])],
        )?)
    } else {
        None
    };

    let rkey = db.table(right)?.schema.col(right_col)?;
    let mut algos = vec![JoinAlgo::Hash, JoinAlgo::PartitionedHash];
    if db.index_on(ri, rkey).is_some() {
        algos.push(JoinAlgo::IndexNestedLoop);
    }

    let mut candidates = Vec::new();
    for mode in [ExecMode::Row, ExecMode::Batch] {
        for &algo in &algos {
            let config = PhysicalConfig {
                exec_mode: mode,
                selection_mode: None,
                join_algo: Some(algo),
            };
            config.apply(&mut pilot1);
            let m1 = measure(&mut pilot1, |p| p.run(q).map(|_| ()))?;
            let est = match pilot2.as_mut() {
                None => m1,
                Some(pilot2) => {
                    config.apply(pilot2);
                    let m2 = measure(pilot2, |p| p.run(q).map(|_| ()))?;
                    m1.extrapolate(&m2, p1 as f64, p2 as f64, full as f64)
                }
            };
            candidates.push(candidate(config, &est, p2 as u64));
        }
    }
    let chosen = pick(&candidates);
    let shape = {
        let mut shaped = pilot1;
        candidates[chosen].config.apply(&mut shaped);
        shaped.explain(q)?
    };
    Ok(PlanReport {
        sql: sql.to_string(),
        shape,
        candidates,
        chosen,
        full_rows: full as u64,
    })
}

//! Binder: resolves a parsed [`Statement`] against a database catalog into
//! a bound query the executor understands.
//!
//! Name resolution errors are [`DbError::BindError`](crate::error::DbError::BindError)s carrying the source
//! span of the offending name. The binder also classifies plan shape:
//!
//! * two tables → [`Query::JoinAgg`] (sides oriented so the aggregate's
//!   table is the probe side);
//! * one table + aggregate → [`Query::SelectAgg`], with the WHERE conjuncts
//!   collapsed to the native range predicate when they form exactly
//!   `lo < col AND col < hi`, and to an [`Expr`] tree otherwise;
//! * `key, AGG(x) ... GROUP BY key` → a grouped aggregate
//!   ([`BoundStatement::Grouped`]);
//! * one bare column + `key = k` → [`Query::PointSelect`].

use crate::db::Database;
use crate::error::DbResult;
use crate::expr::{CmpOp, Expr};
use crate::query::{AggKind, AggSpec, Query, QueryPredicate};
use crate::schema::Schema;

use super::ast::{CmpKind, ColRef, Projection, SelectStmt, Statement, WhereAtom};
use super::token::bind_err;

/// A statement after name resolution: either a scalar-result query in the
/// executor's native form, or a grouped aggregate (which has its own entry
/// point and result shape).
#[derive(Debug, Clone, PartialEq)]
pub enum BoundStatement {
    /// A query returning one [`crate::query::QueryResult`].
    Scalar(Query),
    /// `SELECT g, AGG(x) FROM t [WHERE range] GROUP BY g`.
    Grouped {
        /// Table name.
        table: String,
        /// Grouping column name.
        group_col: String,
        /// Optional predicate (the grouped executor takes range predicates).
        predicate: Option<QueryPredicate>,
        /// Aggregate.
        agg: AggSpec,
    },
}

/// Minimal catalog view the binder needs; implemented by [`Database`] and by
/// shard 0 of a sharded database (all shards share one catalog).
pub trait CatalogView {
    /// The schema of `table`, if it exists.
    fn table_schema(&self, table: &str) -> Option<&Schema>;
}

impl CatalogView for Database {
    fn table_schema(&self, table: &str) -> Option<&Schema> {
        self.table(table).ok().map(|t| &t.schema)
    }
}

/// Parses and binds `src` against `catalog` without planning or executing —
/// the compile-only path benches use to express workloads as SQL strings.
pub fn compile(catalog: &impl CatalogView, src: &str) -> DbResult<BoundStatement> {
    bind(catalog, src, &super::parser::parse(src)?)
}

/// Binds a parsed statement. `src` is the original text, for error spans.
pub fn bind(catalog: &impl CatalogView, src: &str, stmt: &Statement) -> DbResult<BoundStatement> {
    match stmt {
        Statement::Select(sel) => bind_select(catalog, src, sel),
        Statement::Insert { table, values } => {
            let schema = lookup_table(catalog, src, table)?;
            let vals = values
                .iter()
                .map(|(v, span)| int32(src, *v, *span))
                .collect::<DbResult<Vec<i32>>>()?;
            if vals.len() != schema.arity() {
                return Err(bind_err(
                    src,
                    table.1,
                    format!(
                        "INSERT supplies {} values but `{}` has {} columns",
                        vals.len(),
                        table.0,
                        schema.arity()
                    ),
                ));
            }
            Ok(BoundStatement::Scalar(Query::InsertRow {
                table: table.0.clone(),
                values: vals,
            }))
        }
        Statement::Update {
            table,
            set_col,
            read_col,
            delta,
            key_col,
            key,
        } => {
            let schema = lookup_table(catalog, src, table)?;
            let set = resolve_col(src, schema, &table.0, set_col)?;
            let read = resolve_col(src, schema, &table.0, read_col)?;
            if set != read {
                return Err(bind_err(
                    src,
                    read_col.span,
                    format!(
                        "UPDATE increments must read the assigned column \
                         (`SET {c} = {c} + n`)",
                        c = set_col.col
                    ),
                ));
            }
            resolve_col(src, schema, &table.0, key_col)?;
            Ok(BoundStatement::Scalar(Query::UpdateAdd {
                table: table.0.clone(),
                key_col: key_col.col.clone(),
                key: int32(src, *key, key_col.span)?,
                set_col: set_col.col.clone(),
                delta: int32(src, *delta, set_col.span)?,
            }))
        }
    }
}

fn lookup_table<'a>(
    catalog: &'a impl CatalogView,
    src: &str,
    table: &(String, (usize, usize)),
) -> DbResult<&'a Schema> {
    catalog
        .table_schema(&table.0)
        .ok_or_else(|| bind_err(src, table.1, format!("unknown table `{}`", table.0)))
}

/// Checks `c` names a column of `table` (and its qualifier, if any, names
/// `table`); returns the column index.
fn resolve_col(src: &str, schema: &Schema, table: &str, c: &ColRef) -> DbResult<usize> {
    if let Some(q) = &c.table {
        if q != table {
            return Err(bind_err(
                src,
                c.span,
                format!("`{}` does not name a table in FROM", q),
            ));
        }
    }
    schema.col(&c.col).map_err(|_| {
        bind_err(
            src,
            c.span,
            format!("unknown column `{}` in table `{table}`", c.col),
        )
    })
}

fn int32(src: &str, v: i64, span: (usize, usize)) -> DbResult<i32> {
    i32::try_from(v).map_err(|_| {
        bind_err(
            src,
            span,
            format!("literal {v} does not fit in a 32-bit column"),
        )
    })
}

fn cmp_op(k: CmpKind) -> CmpOp {
    match k {
        CmpKind::Lt => CmpOp::Lt,
        CmpKind::Le => CmpOp::Le,
        CmpKind::Gt => CmpOp::Gt,
        CmpKind::Ge => CmpOp::Ge,
        CmpKind::Eq => CmpOp::Eq,
        CmpKind::Ne => CmpOp::Ne,
    }
}

fn bind_select(
    catalog: &impl CatalogView,
    src: &str,
    sel: &SelectStmt,
) -> DbResult<BoundStatement> {
    match sel.tables.len() {
        1 => bind_single_table(catalog, src, sel),
        2 => bind_join(catalog, src, sel),
        n => Err(bind_err(
            src,
            sel.tables[2].1,
            format!("at most two tables are supported, FROM lists {n}"),
        )),
    }
}

/// Extracts the single aggregate projection, or `None` when the SELECT list
/// is not of the `[key,] AGG(x)` shape.
fn the_agg(projs: &[Projection]) -> Option<(&AggKind, Option<&ColRef>, (usize, usize))> {
    let aggs: Vec<_> = projs
        .iter()
        .filter_map(|p| match p {
            Projection::Agg { kind, col, span } => Some((kind, col.as_ref(), *span)),
            Projection::Col(_) => None,
        })
        .collect();
    match aggs.as_slice() {
        [one] => Some(*one),
        _ => None,
    }
}

fn agg_spec(
    src: &str,
    schema: &Schema,
    table: &str,
    kind: AggKind,
    col: Option<&ColRef>,
) -> DbResult<AggSpec> {
    match col {
        None => Ok(AggSpec::count()),
        Some(c) => {
            resolve_col(src, schema, table, c)?;
            Ok(AggSpec {
                kind,
                col: c.col.clone(),
            })
        }
    }
}

fn bind_single_table(
    catalog: &impl CatalogView,
    src: &str,
    sel: &SelectStmt,
) -> DbResult<BoundStatement> {
    let (tname, tspan) = (&sel.tables[0].0, sel.tables[0].1);
    let schema = lookup_table(catalog, src, &sel.tables[0])?;

    // Every WHERE conjunct must be a column-vs-literal comparison here; a
    // join condition with one table in FROM is a bind error.
    let mut cmps: Vec<(&ColRef, CmpKind, i64, (usize, usize))> = Vec::new();
    for atom in &sel.where_atoms {
        match atom {
            WhereAtom::Cmp {
                col,
                op,
                value,
                span,
            } => {
                resolve_col(src, schema, tname, col)?;
                cmps.push((col, *op, *value, *span));
            }
            WhereAtom::ColEq { span, .. } => {
                return Err(bind_err(
                    src,
                    *span,
                    "join condition needs two tables in FROM",
                ))
            }
        }
    }

    // Point select: `SELECT read_col FROM t WHERE key_col = k`.
    if sel.group_by.is_none() && sel.projections.len() == 1 {
        if let Projection::Col(read) = &sel.projections[0] {
            let [(key_col, CmpKind::Eq, key, span)] = cmps.as_slice() else {
                return Err(bind_err(
                    src,
                    read.span,
                    "a bare column projection is a point select: \
                     `SELECT col FROM t WHERE key_col = k` (aggregate otherwise)",
                ));
            };
            resolve_col(src, schema, tname, read)?;
            return Ok(BoundStatement::Scalar(Query::PointSelect {
                table: tname.clone(),
                key_col: key_col.col.clone(),
                key: int32(src, *key, *span)?,
                read_col: read.col.clone(),
            }));
        }
    }

    let Some((kind, agg_col, agg_span)) = the_agg(&sel.projections) else {
        return Err(bind_err(
            src,
            tspan,
            "SELECT list must contain exactly one aggregate \
             (plus the GROUP BY key, if grouping)",
        ));
    };
    let agg = agg_spec(src, schema, tname, *kind, agg_col)?;
    let predicate = predicate_from_cmps(src, schema, &cmps)?;

    if let Some(g) = &sel.group_by {
        resolve_col(src, schema, tname, g)?;
        // The other projection (if any) must be the grouping key itself.
        for p in &sel.projections {
            if let Projection::Col(c) = p {
                if c.col != g.col {
                    return Err(bind_err(
                        src,
                        c.span,
                        format!("`{}` is not the GROUP BY key `{}`", c.display(), g.col),
                    ));
                }
            }
        }
        if matches!(predicate, Some(QueryPredicate::Expr(_))) {
            return Err(bind_err(
                src,
                agg_span,
                "grouped aggregates support range predicates \
                 (`lo < col AND col < hi`) only",
            ));
        }
        return Ok(BoundStatement::Grouped {
            table: tname.clone(),
            group_col: g.col.clone(),
            predicate,
            agg,
        });
    }
    // A bare-column projection without GROUP BY slipped past the point-
    // select shape above (e.g. two projections); refuse it explicitly.
    if let Some(Projection::Col(c)) = sel
        .projections
        .iter()
        .find(|p| matches!(p, Projection::Col(_)))
    {
        return Err(bind_err(
            src,
            c.span,
            format!("bare column `{}` requires GROUP BY {}", c.display(), c.col),
        ));
    }
    Ok(BoundStatement::Scalar(Query::SelectAgg {
        table: tname.clone(),
        predicate,
        agg,
    }))
}

/// Collapses WHERE conjuncts to the native exclusive range when they form
/// exactly `col > lo AND col < hi` on one column, else builds an [`Expr`]
/// conjunction over column indexes. `None` for an empty WHERE.
fn predicate_from_cmps(
    src: &str,
    schema: &Schema,
    cmps: &[(&ColRef, CmpKind, i64, (usize, usize))],
) -> DbResult<Option<QueryPredicate>> {
    match cmps {
        [] => Ok(None),
        [(c1, CmpKind::Gt, lo, s1), (c2, CmpKind::Lt, hi, s2)]
        | [(c2, CmpKind::Lt, hi, s2), (c1, CmpKind::Gt, lo, s1)]
            if c1.col == c2.col =>
        {
            Ok(Some(QueryPredicate::Range {
                col: c1.col.clone(),
                lo: int32(src, *lo, *s1)?,
                hi: int32(src, *hi, *s2)?,
            }))
        }
        _ => {
            let mut expr: Option<Expr> = None;
            for (col, op, value, span) in cmps {
                let ci = schema.col(&col.col).map_err(|_| {
                    bind_err(src, col.span, format!("unknown column `{}`", col.col))
                })?;
                let atom = Expr::Cmp(
                    cmp_op(*op),
                    Box::new(Expr::Col(ci)),
                    Box::new(Expr::Const(int32(src, *value, *span)?)),
                );
                expr = Some(match expr {
                    None => atom,
                    Some(e) => Expr::And(Box::new(e), Box::new(atom)),
                });
            }
            Ok(expr.map(QueryPredicate::Expr))
        }
    }
}

fn bind_join(catalog: &impl CatalogView, src: &str, sel: &SelectStmt) -> DbResult<BoundStatement> {
    let (t1, t2) = (&sel.tables[0], &sel.tables[1]);
    let s1 = lookup_table(catalog, src, t1)?;
    let s2 = lookup_table(catalog, src, t2)?;
    if let Some(g) = &sel.group_by {
        return Err(bind_err(
            src,
            g.span,
            "GROUP BY over a join is not supported",
        ));
    }

    // Exactly one equi-join conjunct; no residual filters in this dialect.
    let mut eq: Option<(&ColRef, &ColRef)> = None;
    for atom in &sel.where_atoms {
        match atom {
            WhereAtom::ColEq { left, right, span } => {
                if eq.is_some() {
                    return Err(bind_err(src, *span, "only one join condition is supported"));
                }
                eq = Some((left, right));
            }
            WhereAtom::Cmp { span, .. } => {
                return Err(bind_err(
                    src,
                    *span,
                    "joins take the equi-join condition only (no residual filters)",
                ))
            }
        }
    }
    let Some((l, r)) = eq else {
        return Err(bind_err(
            src,
            t2.1,
            format!(
                "two-table FROM needs a join condition `{}.c = {}.c`",
                t1.0, t2.0
            ),
        ));
    };

    // Columns in a join must be table-qualified; orient the condition's
    // sides to (t1, t2) order first.
    let side_of = |c: &ColRef| -> DbResult<usize> {
        match &c.table {
            Some(q) if *q == t1.0 => Ok(0),
            Some(q) if *q == t2.0 => Ok(1),
            Some(q) => Err(bind_err(
                src,
                c.span,
                format!("`{q}` does not name a table in FROM"),
            )),
            None => Err(bind_err(
                src,
                c.span,
                format!("`{}` must be table-qualified in a join", c.col),
            )),
        }
    };
    let (c1, c2) = match (side_of(l)?, side_of(r)?) {
        (0, 1) => (l, r),
        (1, 0) => (r, l),
        _ => {
            return Err(bind_err(
                src,
                l.span,
                "join condition must reference both tables",
            ))
        }
    };
    resolve_col(src, s1, &t1.0, c1)?;
    resolve_col(src, s2, &t2.0, c2)?;

    let Some((kind, agg_col, agg_span)) = the_agg(&sel.projections) else {
        return Err(bind_err(
            src,
            t1.1,
            "join SELECT list must be exactly one aggregate",
        ));
    };
    if sel.projections.len() != 1 {
        return Err(bind_err(
            src,
            agg_span,
            "join SELECT list must be exactly one aggregate",
        ));
    }

    // The executor aggregates a probe-side (left) column: orient the join so
    // the aggregate's table is the probe side. COUNT(*) defaults to t1.
    let (probe, probe_schema, probe_key, build, build_key) = match agg_col {
        Some(c) if side_of(c)? == 1 => (t2, s2, c2, t1, c1),
        _ => (t1, s1, c1, t2, c2),
    };
    let agg = match agg_col {
        // The join executor reads its aggregate column from the probe side;
        // COUNT(*) counts matches, so count over the (always-read) probe key.
        None => AggSpec {
            kind: AggKind::Count,
            col: probe_key.col.clone(),
        },
        Some(c) => {
            resolve_col(src, probe_schema, &probe.0, c)?;
            AggSpec {
                kind: *kind,
                col: c.col.clone(),
            }
        }
    };
    Ok(BoundStatement::Scalar(Query::JoinAgg {
        left: probe.0.clone(),
        right: build.0.clone(),
        left_col: probe_key.col.clone(),
        right_col: build_key.col.clone(),
        agg,
    }))
}

//! SQL frontend: lexer → parser → binder → simulator-costed planner.
//!
//! This module is the engine's front door. [`Session`] owns a database and
//! turns SQL text into execution:
//!
//! ```text
//!   "SELECT AVG(a3) FROM R WHERE …"
//!        │ lex (token.rs)          tokens + byte spans
//!        │ parse (parser.rs)       Statement AST
//!        │ bind (bind.rs)          BoundStatement over the catalog
//!        │ plan (plan.rs)          pilot-simulated candidate costs
//!        ▼ execute (session.rs)    chosen knobs → Database::dispatch
//! ```
//!
//! The dialect covers exactly what the executor runs: single-table
//! aggregates (`AVG`/`SUM`/`COUNT`/`MIN`/`MAX`) with conjunctive `WHERE`
//! clauses, `GROUP BY` on one key, two-table equi-joins (comma or
//! `JOIN … ON` spelling), indexed point selects, `INSERT`, and the
//! read-modify-write `UPDATE`. Anything else is a typed
//! [`crate::DbError::ParseError`] or [`crate::DbError::BindError`] carrying
//! the byte span and a source snippet.
//!
//! Planning is measurement, not formulas: each candidate knob setting
//! (execution mode × qualification strategy × join algorithm) runs on a
//! sampled **pilot database** with its own simulated processor, and the
//! winner is whichever setting minimizes the extrapolated simulated
//! `T_Q = T_C + T_M + T_B + T_R` — the paper's §3 time breakdown used as
//! a cost model. See [`plan`] for the sampling and extrapolation rules.

pub mod ast;
pub mod bind;
pub mod parser;
pub mod plan;
pub mod session;
pub mod token;

pub use bind::{compile, BoundStatement, CatalogView};
pub use plan::{CandidateCost, PhysicalConfig, PlanReport};
pub use session::Session;

//! The unified front door: [`Session`] wraps a database (single-core or
//! sharded), accepts SQL text, and drives the full pipeline —
//! lex → parse → bind → simulator-costed plan → execute.
//!
//! ```
//! use wdtg_memdb::prelude::*;
//! use wdtg_sim::{CpuConfig, InterruptCfg};
//! use wdtg_memdb::{EngineProfile, Schema, SystemId};
//!
//! let cfg = CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled());
//! let mut db = Database::new(EngineProfile::system(SystemId::D), cfg);
//! db.create_table("R", Schema::paper_relation(20)).unwrap();
//! db.load_rows("R", (0..500).map(|i| vec![i, i % 512, i % 1009, 0, 0])).unwrap();
//!
//! let mut sess = Session::open(db);
//! let r = sess.sql("SELECT AVG(a3) FROM R WHERE a2 > 100 AND a2 < 300").unwrap();
//! assert!(r.rows > 0);
//! println!("{}", sess.explain("SELECT AVG(a3) FROM R WHERE a2 > 100 AND a2 < 300").unwrap());
//! ```

use std::collections::HashMap;

use crate::db::Database;
use crate::error::{DbError, DbResult};
use crate::query::{Query, QueryPredicate, QueryResult};
use crate::shard::ShardedDatabase;
use crate::txn::TxnId;

use super::bind::{compile, BoundStatement};
use super::plan::{plan, PhysicalConfig, PlanReport};

/// The engine behind a session: one simulated core, or a sharded router.
enum Backend {
    Single(Box<Database>),
    Sharded(Box<ShardedDatabase>),
}

/// A SQL session over one database.
///
/// The session owns the database, a plan cache (keyed by statement text),
/// and the report of the last planning decision. Aggregate queries are
/// physically planned on first sight — every knob candidate is costed on a
/// sampled pilot run of the cycle simulator (see [`crate::sql::plan`]) —
/// and the winning configuration is cached and re-applied on repeats.
/// Point reads and mutations have no physical choice and bypass planning.
pub struct Session {
    backend: Backend,
    plans: HashMap<String, Option<PhysicalConfig>>,
    last_report: Option<PlanReport>,
    /// The open transaction statements are routed through, if any.
    current: Option<TxnId>,
}

impl Session {
    /// Opens a session over a single-core database.
    pub fn open(db: Database) -> Session {
        Session {
            backend: Backend::Single(Box::new(db)),
            plans: HashMap::new(),
            last_report: None,
            current: None,
        }
    }

    /// Opens a session over a sharded database. Planning runs against
    /// shard 0 — with co-partitioned data each shard sees the same regime
    /// (per-shard partition sizes are what the join actually runs over),
    /// and the chosen knobs are applied to every shard.
    pub fn open_sharded(db: ShardedDatabase) -> Session {
        Session {
            backend: Backend::Sharded(Box::new(db)),
            plans: HashMap::new(),
            last_report: None,
            current: None,
        }
    }

    /// The underlying single-core database, if this session is single-core.
    pub fn db(&self) -> Option<&Database> {
        match &self.backend {
            Backend::Single(db) => Some(db),
            Backend::Sharded(_) => None,
        }
    }

    /// Mutable access to the single-core database (knobs, snapshots).
    pub fn db_mut(&mut self) -> Option<&mut Database> {
        match &mut self.backend {
            Backend::Single(db) => Some(db),
            Backend::Sharded(_) => None,
        }
    }

    /// The underlying sharded database, if this session is sharded.
    pub fn sharded(&self) -> Option<&ShardedDatabase> {
        match &self.backend {
            Backend::Sharded(db) => Some(db),
            Backend::Single(_) => None,
        }
    }

    /// Mutable access to the sharded database.
    pub fn sharded_mut(&mut self) -> Option<&mut ShardedDatabase> {
        match &mut self.backend {
            Backend::Sharded(db) => Some(db),
            Backend::Single(_) => None,
        }
    }

    /// Consumes the session, returning the single-core database.
    ///
    /// # Panics
    /// Panics if the session is sharded.
    pub fn into_db(self) -> Database {
        match self.backend {
            Backend::Single(db) => *db,
            Backend::Sharded(_) => panic!("into_db on a sharded session"),
        }
    }

    /// The planner report of the most recent planned statement (from
    /// [`Session::sql`], [`Session::sql_grouped`] or [`Session::explain`]).
    /// Cache hits do not refresh it.
    pub fn last_plan(&self) -> Option<&PlanReport> {
        self.last_report.as_ref()
    }

    /// The planning database: shard 0 for sharded sessions.
    fn plan_db(&self) -> &Database {
        match &self.backend {
            Backend::Single(db) => db,
            Backend::Sharded(db) => &db.shards()[0],
        }
    }

    /// Plans `stmt` (or reuses the cached choice) and applies the winning
    /// knobs to the backend. Returns whether the statement was planned.
    fn plan_and_apply(&mut self, text: &str, stmt: &BoundStatement) -> DbResult<()> {
        let config = match self.plans.get(text) {
            Some(cached) => *cached,
            None => {
                let report = plan(self.plan_db(), text, stmt)?;
                let config = report.as_ref().map(|r| r.chosen().config);
                if let Some(r) = report {
                    self.last_report = Some(r);
                }
                self.plans.insert(text.to_string(), config);
                config
            }
        };
        if let Some(config) = config {
            match &mut self.backend {
                Backend::Single(db) => config.apply(db),
                Backend::Sharded(db) => {
                    db.set_exec_mode(config.exec_mode);
                    if let Some(s) = config.selection_mode {
                        db.set_selection_mode(s);
                    }
                    if let Some(j) = config.join_algo {
                        db.set_join_algo(j);
                    }
                }
            }
        }
        Ok(())
    }

    /// Executes one SQL statement and returns its scalar result.
    ///
    /// Grouped queries (`GROUP BY`) return per-group rows, not a scalar —
    /// submit them through [`Session::sql_grouped`]; this method reports a
    /// [`DbError::PlanError`] for them.
    pub fn sql(&mut self, text: &str) -> DbResult<QueryResult> {
        let stmt = compile(self.plan_db(), text)?;
        match stmt {
            BoundStatement::Scalar(q) => {
                self.plan_and_apply(text, &BoundStatement::Scalar(q.clone()))?;
                // An open transaction captures point reads and mutations:
                // reads see the snapshot (plus the session's own staged
                // writes), mutations stage until COMMIT. Aggregates have no
                // snapshot-aware path and keep running in autocommit.
                let routed = matches!(
                    q,
                    Query::PointSelect { .. } | Query::UpdateAdd { .. } | Query::InsertRow { .. }
                );
                match (&mut self.backend, self.current) {
                    (Backend::Single(db), Some(tid)) if routed => db.txn_run(tid, &q),
                    (Backend::Single(db), _) => db.run(&q),
                    (Backend::Sharded(db), _) => db.run(&q),
                }
            }
            BoundStatement::Grouped { .. } => Err(DbError::PlanError(
                "grouped query returns per-group rows; use Session::sql_grouped".into(),
            )),
        }
    }

    /// Executes a `GROUP BY` aggregate, returning `(group key, value)`
    /// pairs in ascending key order.
    pub fn sql_grouped(&mut self, text: &str) -> DbResult<Vec<(i32, f64)>> {
        let stmt = compile(self.plan_db(), text)?;
        let BoundStatement::Grouped {
            table,
            group_col,
            predicate,
            agg,
        } = stmt
        else {
            return Err(DbError::PlanError(
                "statement is not grouped; use Session::sql".into(),
            ));
        };
        self.plan_and_apply(
            text,
            &BoundStatement::Grouped {
                table: table.clone(),
                group_col: group_col.clone(),
                predicate: predicate.clone(),
                agg: agg.clone(),
            },
        )?;
        let pred: Option<&QueryPredicate> = predicate.as_ref();
        match &mut self.backend {
            Backend::Single(db) => db.run_grouped(&table, &group_col, pred, &agg),
            Backend::Sharded(db) => db.run_grouped(&table, &group_col, pred, &agg),
        }
    }

    /// Plans a statement without executing it and renders the decision:
    /// the chosen plan shape plus every candidate's simulated stall-term
    /// cost (`T_C`/`T_M`/`T_B`/`T_R`), winner starred. Unplanned statements
    /// (point reads, mutations) render their structural plan only.
    ///
    /// `EXPLAIN` always re-plans (and refreshes [`Session::last_plan`]);
    /// the resulting choice is cached for subsequent executions.
    pub fn explain(&mut self, text: &str) -> DbResult<String> {
        let stmt = compile(self.plan_db(), text)?;
        match plan(self.plan_db(), text, &stmt)? {
            Some(report) => {
                let rendered = report.render();
                self.plans
                    .insert(text.to_string(), Some(report.chosen().config));
                self.last_report = Some(report);
                Ok(rendered)
            }
            None => {
                let BoundStatement::Scalar(q) = &stmt else {
                    return Err(DbError::Internal("unplanned grouped statement".into()));
                };
                let shape = self.plan_db().explain(q)?;
                Ok(format!(
                    "sql: {text}\nplan:\n  {shape}\n(no physical alternatives; runs as-is)\n"
                ))
            }
        }
    }

    /// Opens a transaction; subsequent point reads and mutations through
    /// [`Session::sql`] run against its snapshot until [`Session::commit`]
    /// or [`Session::abort`]. One transaction at a time per session;
    /// beginning while one is open reports a [`DbError::PlanError`], as
    /// does beginning on a sharded session (the transaction machinery is
    /// single-core; see [`crate::txn`]).
    pub fn begin(&mut self) -> DbResult<TxnId> {
        if self.current.is_some() {
            return Err(DbError::PlanError(
                "a transaction is already open on this session".into(),
            ));
        }
        let Backend::Single(db) = &mut self.backend else {
            return Err(DbError::PlanError(
                "transactions are not supported on sharded sessions".into(),
            ));
        };
        let tid = db.begin();
        self.current = Some(tid);
        Ok(tid)
    }

    /// Commits the session's open transaction, returning its commit
    /// timestamp. On [`DbError::TxnConflict`] the transaction was aborted
    /// (first committer wins) — the session is ready for a fresh
    /// [`Session::begin`] retry.
    pub fn commit(&mut self) -> DbResult<u64> {
        let tid = self.current.take().ok_or(DbError::PlanError(
            "no transaction is open on this session".to_string(),
        ))?;
        let Backend::Single(db) = &mut self.backend else {
            return Err(DbError::Internal("txn open on sharded session".into()));
        };
        db.commit(tid)
    }

    /// Aborts the session's open transaction, discarding its staged writes.
    pub fn abort(&mut self) -> DbResult<()> {
        let tid = self.current.take().ok_or(DbError::PlanError(
            "no transaction is open on this session".to_string(),
        ))?;
        let Backend::Single(db) = &mut self.backend else {
            return Err(DbError::Internal("txn open on sharded session".into()));
        };
        db.abort(tid)
    }

    /// The open transaction's id, if one is active.
    pub fn current_txn(&self) -> Option<TxnId> {
        self.current
    }

    /// Compiles a statement to the engine's [`Query`] IR without planning
    /// or executing — the bridge for callers that want the classic API.
    pub fn compile_only(&self, text: &str) -> DbResult<Query> {
        match compile(self.plan_db(), text)? {
            BoundStatement::Scalar(q) => Ok(q),
            BoundStatement::Grouped { .. } => Err(DbError::PlanError(
                "grouped statement has no scalar Query form".into(),
            )),
        }
    }
}

//! The database facade: catalog, storage, instrumented execution context and
//! the query planner/runner.

use std::sync::Arc;

use wdtg_sim::{segment, BranchSite, CodeBlock, Cpu, CpuConfig, MemDep};

use crate::arena::SimArena;
use crate::buffer::BufferPool;
use crate::error::{DbError, DbResult};
use crate::exec::agg::AggExec;
use crate::exec::filter::{Filter, PredicateExec, SelectionMode};
use crate::exec::indexscan::{descend_to_leaf, IndexRangeScan, LeafCursor};
use crate::exec::join_hash::HashJoin;
use crate::exec::join_nl::IndexNlJoin;
use crate::exec::join_partitioned::PartitionedHashJoin;
use crate::exec::partial::AggState;
use crate::exec::seqscan::SeqScan;
use crate::exec::{ExecEnv, ExecMode, Operator};
use crate::fault::{CancelToken, FaultInjector, FaultPlan, FaultSite, ResourceBudget};
use crate::heap::{HeapFile, PageLayout, Rid, HDR_NRECS, HDR_PAGEID};
use crate::index::btree::BTree;
use crate::profiles::{EngineProfile, EvalMode, JoinAlgo};
use crate::query::{AggKind, Query, QueryPredicate, QueryResult};
use crate::schema::Schema;
use crate::shard::{shard_of, ShardedDatabase};
use crate::txn::TxnState;

/// Instrumented access to simulated memory: every load/store both returns
/// real bytes and drives the cache simulator, unless instrumentation is off
/// (bulk loads and index builds happen before measurement, as in §4.3).
#[derive(Debug)]
pub struct DbCtx {
    /// The simulated processor.
    pub cpu: Cpu,
    /// Relation heap pages.
    pub heap: SimArena,
    /// Index structures (B+trees, join hash tables).
    pub index: SimArena,
    /// Catalog/page-table/miscellaneous structures.
    pub misc: SimArena,
    /// Whether accesses are simulated (off during data loading).
    pub instrument: bool,
    /// Deterministic fault injection state (plan, draw counters, stats).
    pub fault: FaultInjector,
    /// Per-query resource guardrails (default: unlimited).
    pub(crate) budget: ResourceBudget,
    /// Cooperative cancellation flag shared with [`CancelToken`] clones.
    pub(crate) cancel: CancelToken,
    /// Simulated cycle count at the start of the current query (budget base).
    pub(crate) query_start_cycles: f64,
    /// Total arena bytes in use at the start of the current query.
    pub(crate) query_start_arena: u64,
    /// Reusable buffer for page-table probe addresses, so the executor hot
    /// path performs no per-lookup allocation.
    pub(crate) probe_scratch: Vec<u64>,
}

impl DbCtx {
    /// Creates a context with a fresh processor.
    pub fn new(cfg: CpuConfig) -> Self {
        DbCtx {
            cpu: Cpu::new(cfg),
            heap: SimArena::new(segment::HEAP, 0x3000_0000),
            index: SimArena::new(segment::INDEX, 0x2000_0000),
            misc: SimArena::new(segment::MISC, 0x1000_0000),
            instrument: true,
            fault: FaultInjector::new(FaultPlan::disabled()),
            budget: ResourceBudget::unlimited(),
            cancel: CancelToken::new(),
            query_start_cycles: 0.0,
            query_start_arena: 0,
            probe_scratch: Vec::with_capacity(8),
        }
    }

    /// Total bytes currently allocated across the three arenas.
    pub fn arena_used(&self) -> u64 {
        self.heap.used() + self.index.used() + self.misc.used()
    }

    /// Marks the start of a query: the budget baselines (cycles, arena
    /// bytes) reset here, so limits are per-query rather than per-session.
    pub(crate) fn begin_query(&mut self) {
        self.query_start_cycles = self.cpu.cycles();
        self.query_start_arena = self.arena_used();
    }

    /// Enforces the active [`ResourceBudget`] against consumption since
    /// [`DbCtx::begin_query`]. Called from cooperative checkpoints; the
    /// checkpoint charges the `budget_check` code block separately (only
    /// when a limit is armed, so an unlimited budget costs nothing).
    pub(crate) fn enforce_budget(&mut self) -> DbResult<()> {
        if let Some(limit) = self.budget.max_cycles {
            let used = (self.cpu.cycles() - self.query_start_cycles).max(0.0) as u64;
            if used > limit {
                self.fault.note_budget_stop();
                return Err(DbError::BudgetExceeded {
                    resource: "cycles",
                    used,
                    limit,
                });
            }
        }
        if let Some(limit) = self.budget.max_arena_bytes {
            let used = self.arena_used().saturating_sub(self.query_start_arena);
            if used > limit {
                self.fault.note_budget_stop();
                return Err(DbError::BudgetExceeded {
                    resource: "arena_bytes",
                    used,
                    limit,
                });
            }
        }
        Ok(())
    }

    /// Fallible index-arena allocation with the fault-injection and budget
    /// seams applied: an injected [`FaultSite::ArenaAlloc`] hit or a breach
    /// of the arena-bytes budget surfaces *before* the bump, and genuine
    /// exhaustion comes back as [`DbError::ArenaExhausted`] instead of a
    /// panic. The partitioned join allocates its partition chunks through
    /// this, which is what lets it degrade instead of die.
    pub(crate) fn try_alloc_index(&mut self, len: u64, align: u64) -> DbResult<u64> {
        if self.fault.should_fault(FaultSite::ArenaAlloc) {
            return Err(DbError::ArenaExhausted {
                requested: len,
                used: self.index.used(),
                capacity: self.index.region().len,
            });
        }
        if let Some(limit) = self.budget.max_arena_bytes {
            let used = self.arena_used().saturating_sub(self.query_start_arena);
            if used + len > limit {
                self.fault.note_budget_stop();
                return Err(DbError::BudgetExceeded {
                    resource: "arena_bytes",
                    used: used + len,
                    limit,
                });
            }
        }
        self.index
            .try_alloc(len, align)
            .ok_or(DbError::ArenaExhausted {
                requested: len,
                used: self.index.used(),
                capacity: self.index.region().len,
            })
    }

    fn arena(&self, addr: u64) -> &SimArena {
        if addr >= segment::MISC {
            &self.misc
        } else if addr >= segment::INDEX {
            &self.index
        } else {
            &self.heap
        }
    }

    fn arena_mut(&mut self, addr: u64) -> &mut SimArena {
        if addr >= segment::MISC {
            &mut self.misc
        } else if addr >= segment::INDEX {
            &mut self.index
        } else {
            &mut self.heap
        }
    }

    /// Instrumented 4-byte load.
    #[inline]
    pub fn load_i32(&mut self, addr: u64, dep: MemDep) -> i32 {
        if self.instrument {
            self.cpu.load(addr, 4, dep);
        }
        self.arena(addr).read_i32(addr)
    }

    /// Instrumented 8-byte load.
    #[inline]
    pub fn load_u64(&mut self, addr: u64, dep: MemDep) -> u64 {
        if self.instrument {
            self.cpu.load(addr, 8, dep);
        }
        self.arena(addr).read_u64(addr)
    }

    /// Instrumented 4-byte store.
    #[inline]
    pub fn store_i32(&mut self, addr: u64, v: i32, dep: MemDep) {
        if self.instrument {
            self.cpu.store(addr, 4, dep);
        }
        self.arena_mut(addr).write_i32(addr, v);
    }

    /// Instrumented 8-byte store.
    #[inline]
    pub fn store_u64(&mut self, addr: u64, v: u64, dep: MemDep) {
        if self.instrument {
            self.cpu.store(addr, 8, dep);
        }
        self.arena_mut(addr).write_u64(addr, v);
    }

    /// Charges a read of `len` bytes without transferring data (used when a
    /// record is materialized wholesale; values are then read raw).
    #[inline]
    pub fn touch(&mut self, addr: u64, len: u32, dep: MemDep) {
        if self.instrument {
            self.cpu.load(addr, len, dep);
        }
    }

    /// Charges a write of `len` bytes (e.g. into a private tuple buffer that
    /// has no arena backing).
    #[inline]
    pub fn store_touch(&mut self, addr: u64, len: u32, dep: MemDep) {
        if self.instrument {
            self.cpu.store(addr, len, dep);
        }
    }

    /// Charges a contiguous read of `len` bytes through the simulator's
    /// run fast path ([`Cpu::load_run`]): identical cache/TLB/stall
    /// behaviour to touching the span record by record, with the per-record
    /// bookkeeping amortized. Used by batched scans over whole-page record
    /// runs.
    #[inline]
    pub fn touch_run(&mut self, addr: u64, len: u32, dep: MemDep) {
        if self.instrument {
            self.cpu.load_run(addr, len, dep);
        }
    }

    /// The store-side twin of [`DbCtx::touch_run`]
    /// ([`wdtg_sim::Cpu::store_run`]): charges a contiguous write of `len`
    /// bytes with amortized bookkeeping. Used by the partitioned join's
    /// batched scatter, whose appends land in contiguous spans of each
    /// partition's column buffers.
    #[inline]
    pub fn store_run(&mut self, addr: u64, len: u32, dep: MemDep) {
        if self.instrument {
            self.cpu.store_run(addr, len, dep);
        }
    }

    /// Uninstrumented raw read (after the covering [`DbCtx::touch`]).
    #[inline]
    pub fn read_raw_i32(&self, addr: u64) -> i32 {
        self.arena(addr).read_i32(addr)
    }

    /// Executes an instrumented code block.
    #[inline]
    pub fn exec(&mut self, block: &CodeBlock) {
        if self.instrument {
            self.cpu.exec_block(block);
        }
    }

    /// Executes `times` back-to-back invocations of a block (fetched once).
    #[inline]
    pub fn exec_scaled(&mut self, block: &CodeBlock, times: u32) {
        if self.instrument {
            self.cpu.exec_block_scaled(block, times);
        }
    }

    /// Executes a data-dependent branch.
    #[inline]
    pub fn branch(&mut self, site: BranchSite, taken: bool) {
        if self.instrument {
            self.cpu.branch(site, taken);
        }
    }

    /// Executes `lanes` branch-free conditional selects
    /// ([`wdtg_sim::Cpu::select_run`]): the predicated filter's qualify
    /// cost — unconditional extra instructions instead of a possible
    /// misprediction.
    #[inline]
    pub fn select_ops(&mut self, lanes: u32) {
        if self.instrument {
            self.cpu.select_run(lanes);
        }
    }

    /// Issues a data prefetch.
    #[inline]
    pub fn prefetch(&mut self, addr: u64) {
        if self.instrument {
            self.cpu.prefetch_data(addr);
        }
    }
}

/// A table: schema plus heap file.
#[derive(Debug)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Schema (fixed-length integer columns).
    pub schema: Schema,
    /// Heap storage.
    pub heap: HeapFile,
    /// Column whose hash routes rows to shards under
    /// [`Database::shard`] (default 0; see [`Database::set_shard_key`]).
    pub shard_col: usize,
}

/// A secondary index registered in the catalog.
#[derive(Debug)]
pub struct IndexMeta {
    /// Index of the table in the catalog.
    pub table: usize,
    /// Indexed column.
    pub col: usize,
    /// The B+tree.
    pub btree: BTree,
}

/// A memory-resident single-user relational database bound to one simulated
/// processor and one engine profile (one of the paper's four systems).
#[derive(Debug)]
pub struct Database {
    /// Execution context (processor + arenas).
    pub ctx: DbCtx,
    pub(crate) tables: Vec<Table>,
    pub(crate) indexes: Vec<IndexMeta>,
    pub(crate) bufpool: BufferPool,
    pub(crate) profile: EngineProfile,
    pub(crate) exec_mode: ExecMode,
    page_layout: PageLayout,
    selection_mode: SelectionMode,
    /// MVCC version chains, open transactions and the write-ahead log
    /// (see [`crate::txn`]).
    pub(crate) txn: TxnState,
}

impl Database {
    /// Creates an empty database for `profile` on a processor configured by
    /// `cfg`, sized for up to `expected_pages` heap pages.
    pub fn with_capacity(profile: EngineProfile, cfg: CpuConfig, expected_pages: u64) -> Self {
        let mut ctx = DbCtx::new(cfg);
        let bufpool = BufferPool::new(&mut ctx.misc, expected_pages);
        Database {
            ctx,
            tables: Vec::new(),
            indexes: Vec::new(),
            bufpool,
            profile,
            exec_mode: ExecMode::Row,
            page_layout: PageLayout::Nsm,
            selection_mode: SelectionMode::Branching,
            txn: TxnState::default(),
        }
    }

    /// Creates an empty database with a default page-table capacity (64 K
    /// pages = 512 MB of heap).
    pub fn new(profile: EngineProfile, cfg: CpuConfig) -> Self {
        Self::with_capacity(profile, cfg, 64 * 1024)
    }

    /// The engine profile in use.
    pub fn profile(&self) -> &EngineProfile {
        &self.profile
    }

    /// The execution mode queries run under.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Selects row-at-a-time or vectorized execution for subsequent queries.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
    }

    /// Builder-style [`Database::set_exec_mode`].
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = mode;
        self
    }

    /// The page layout newly created tables get.
    pub fn page_layout(&self) -> PageLayout {
        self.page_layout
    }

    /// Selects the page layout for tables created after this call (existing
    /// tables keep the layout they were created with).
    pub fn set_page_layout(&mut self, layout: PageLayout) {
        self.page_layout = layout;
    }

    /// Builder-style [`Database::set_page_layout`].
    pub fn with_page_layout(mut self, layout: PageLayout) -> Self {
        self.page_layout = layout;
        self
    }

    /// How filters qualify rows (branching vs predicated).
    pub fn selection_mode(&self) -> SelectionMode {
        self.selection_mode
    }

    /// Selects branching or predicated (branch-free) row qualification for
    /// subsequent queries — the knob that attacks the T_B term, orthogonal
    /// to [`Database::set_exec_mode`] and [`Database::set_page_layout`].
    pub fn set_selection_mode(&mut self, mode: SelectionMode) {
        self.selection_mode = mode;
    }

    /// Builder-style [`Database::set_selection_mode`].
    pub fn with_selection_mode(mut self, mode: SelectionMode) -> Self {
        self.selection_mode = mode;
        self
    }

    /// The join algorithm the planner picks for equijoins.
    pub fn join_algo(&self) -> JoinAlgo {
        self.profile.join_algo
    }

    /// Overrides the engine profile's join algorithm for subsequent queries
    /// (the knob the join-strategy comparisons turn; everything else about
    /// the profile — code paths, materialization, prefetching — stays as
    /// the system under test had it).
    pub fn set_join_algo(&mut self, algo: JoinAlgo) {
        self.profile.join_algo = algo;
    }

    /// Builder-style [`Database::set_join_algo`].
    pub fn with_join_algo(mut self, algo: JoinAlgo) -> Self {
        self.profile.join_algo = algo;
        self
    }

    /// The active fault plan.
    pub fn fault_plan(&self) -> FaultPlan {
        self.ctx.fault.plan()
    }

    /// Installs a deterministic fault plan for subsequent queries (fresh
    /// draw counters, fresh stats). [`FaultPlan::disabled`] turns injection
    /// off.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.ctx.fault = FaultInjector::new(plan);
    }

    /// Builder-style [`Database::set_fault_plan`].
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.set_fault_plan(plan);
        self
    }

    /// The per-query resource budget.
    pub fn budget(&self) -> ResourceBudget {
        self.ctx.budget
    }

    /// Installs per-query resource guardrails, enforced cooperatively at
    /// batch/partition boundaries of subsequent queries.
    pub fn set_budget(&mut self, budget: ResourceBudget) {
        self.ctx.budget = budget;
    }

    /// Builder-style [`Database::set_budget`].
    pub fn with_budget(mut self, budget: ResourceBudget) -> Self {
        self.ctx.budget = budget;
        self
    }

    /// A handle that cancels queries on this database: after
    /// [`CancelToken::cancel`], in-flight and future queries return
    /// [`DbError::Cancelled`] at their next checkpoint until the token is
    /// cleared.
    pub fn cancel_token(&self) -> CancelToken {
        self.ctx.cancel.clone()
    }

    /// Fault-injection and recovery counters collected since the plan was
    /// installed (or last [`Database::reset_robustness_stats`]).
    pub fn robustness_stats(&self) -> crate::fault::RobustnessStats {
        self.ctx.fault.stats()
    }

    /// Clears the robustness counters without disturbing the fault
    /// sequence.
    pub fn reset_robustness_stats(&mut self) {
        self.ctx.fault.reset_stats();
    }

    /// Charges the shard router's deterministic retry backoff on this
    /// database's simulated core: an exponential number of `budget_check`
    /// spins (64 · 2^attempt, capped), so backoff is visible simulated
    /// time, not hidden host sleeping, and identical runs stay cycle-exact.
    pub(crate) fn charge_backoff(&mut self, attempt: u32) {
        let blocks = Arc::clone(&self.profile.blocks);
        self.ctx
            .exec_scaled(&blocks.budget_check, 64u32 << attempt.min(8));
    }

    /// The simulated processor (counters, ledger, cycles).
    pub fn cpu(&self) -> &Cpu {
        &self.ctx.cpu
    }

    /// Mutable access to the processor (snapshots, stat resets).
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.ctx.cpu
    }

    pub(crate) fn table_idx(&self, name: &str) -> DbResult<usize> {
        self.tables
            .iter()
            .position(|t| t.name == name)
            .ok_or_else(|| DbError::TableNotFound(name.to_string()))
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> DbResult<&Table> {
        Ok(&self.tables[self.table_idx(name)?])
    }

    pub(crate) fn index_on(&self, table: usize, col: usize) -> Option<&IndexMeta> {
        self.indexes
            .iter()
            .find(|i| i.table == table && i.col == col)
    }

    /// Creates an empty table in the database's current page layout.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> DbResult<usize> {
        self.create_table_with_layout(name, schema, self.page_layout)
    }

    /// Creates an empty table with an explicit page layout.
    pub fn create_table_with_layout(
        &mut self,
        name: &str,
        schema: Schema,
        layout: PageLayout,
    ) -> DbResult<usize> {
        if self.tables.iter().any(|t| t.name == name) {
            return Err(DbError::TableExists(name.to_string()));
        }
        // Global page-id space: 2^20 pages per table.
        let first_page_id = (self.tables.len() as u64) << 20;
        let heap = HeapFile::with_layout(schema.record_bytes(), first_page_id, layout);
        self.tables.push(Table {
            name: name.to_string(),
            schema,
            heap,
            shard_col: 0,
        });
        Ok(self.tables.len() - 1)
    }

    /// Declares the column whose hash routes this table's rows to shards
    /// under [`Database::shard`]. Tables joined in sharded execution must be
    /// co-partitioned: both sides sharded on their join key, so matching
    /// rows land on the same shard and every shard's join is local.
    pub fn set_shard_key(&mut self, table: &str, col: &str) -> DbResult<()> {
        let ti = self.table_idx(table)?;
        let ci = self.tables[ti].schema.col(col)?;
        self.tables[ti].shard_col = ci;
        Ok(())
    }

    /// Bulk-loads rows (uninstrumented, like the paper's pre-measurement
    /// load). Returns the number of rows loaded.
    pub fn load_rows<I>(&mut self, name: &str, rows: I) -> DbResult<u64>
    where
        I: IntoIterator<Item = Vec<i32>>,
    {
        let ti = self.table_idx(name)?;
        let arity = self.tables[ti].schema.arity();
        let mut buf = Vec::with_capacity(arity * 4);
        let mut n = 0u64;
        for row in rows {
            if row.len() != arity {
                return Err(DbError::ArityMismatch {
                    expected: arity,
                    got: row.len(),
                });
            }
            buf.clear();
            for v in &row {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            let table = &mut self.tables[ti];
            let pages_before = table.heap.n_pages();
            let rid = table.heap.insert_raw(&mut self.ctx.heap, &buf)?;
            if table.heap.n_pages() != pages_before {
                let page_no = table.heap.n_pages() - 1;
                let addr = table.heap.page_addr(page_no)?;
                self.bufpool
                    .register(&mut self.ctx.misc, table.heap.page_id(page_no), addr);
            }
            // Maintain any existing indexes.
            let indexed: Vec<(usize, usize)> = self
                .indexes
                .iter()
                .enumerate()
                .filter(|(_, ix)| ix.table == ti)
                .map(|(i, ix)| (i, ix.col))
                .collect();
            for (ix_pos, col) in indexed {
                let key = row[col];
                self.indexes[ix_pos]
                    .btree
                    .insert(&mut self.ctx.index, key, rid.pack());
            }
            n += 1;
        }
        Ok(n)
    }

    /// Builds a non-clustered B+tree index on `table.col` (uninstrumented —
    /// "the range selection was resubmitted after constructing a
    /// non-clustered index on R.a2", §3.3).
    pub fn create_index(&mut self, name: &str, col: &str) -> DbResult<()> {
        let ti = self.table_idx(name)?;
        let ci = self.tables[ti].schema.col(col)?;
        if self.index_on(ti, ci).is_some() {
            return Err(DbError::IndexExists(format!("{name}.{col}")));
        }
        let mut btree = BTree::new(&mut self.ctx.index);
        let table = &self.tables[ti];
        for page_no in 0..table.heap.n_pages() {
            let page = table.heap.page_addr(page_no)?;
            let nrecs = self.ctx.heap.read_i32(page + HDR_NRECS) as u32;
            for slot in 0..nrecs {
                let key = self
                    .ctx
                    .heap
                    .read_i32(table.heap.field_addr_at(page, slot, ci));
                btree.insert(
                    &mut self.ctx.index,
                    key,
                    Rid {
                        page: page_no,
                        slot,
                    }
                    .pack(),
                );
            }
        }
        self.indexes.push(IndexMeta {
            table: ti,
            col: ci,
            btree,
        });
        Ok(())
    }

    /// Charges the per-transaction begin/commit overhead path (logging,
    /// latching, connection bookkeeping). OLTP drivers call this once per
    /// transaction; its large, rarely-resident footprint is one reason the
    /// paper's TPC-C profile is instruction-miss heavy (§5.5).
    pub fn txn_overhead(&mut self) {
        let blocks = Arc::clone(&self.profile.blocks);
        self.ctx.exec(&blocks.txn_begin_commit);
    }

    /// Touches one client connection's session working memory (sort areas,
    /// private SQL area, network buffers). With ~10 concurrent clients the
    /// combined session state exceeds the L2, so every transaction drags its
    /// client's state back through memory — a large share of TPC-C's L2
    /// data stalls (§5.5: "60%-80% of the time is spent in memory-related
    /// stalls", dominated by L2).
    pub fn session_touch(&mut self, client: u32, bytes: u32) {
        const CLIENT_STRIDE: u64 = 128 * 1024;
        let base = segment::MISC + 0x0800_0000 + client as u64 * CLIENT_STRIDE;
        let lines = (bytes.min(CLIENT_STRIDE as u32) / 32).max(1);
        for l in 0..lines as u64 {
            let addr = base + l * 32;
            if l % 3 == 0 {
                self.ctx.store_touch(addr, 8, MemDep::Demand);
            } else {
                self.ctx.touch(addr, 8, MemDep::Demand);
            }
        }
    }

    /// Runs a grouped aggregation: `select group_col, AGG(agg_col) from
    /// table [where predicate] group by group_col`, returning
    /// `(group, value)` pairs in ascending group order. TPC-D's original
    /// queries are grouped aggregates (e.g. Q1 groups on return flag).
    ///
    /// Thin shim over the unified `Database::dispatch` path; prefer
    /// [`crate::sql::Session::sql_grouped`] for new code.
    pub fn run_grouped(
        &mut self,
        table: &str,
        group_col: &str,
        predicate: Option<&QueryPredicate>,
        agg: &crate::query::AggSpec,
    ) -> DbResult<Vec<(i32, f64)>> {
        let kind = agg.kind;
        Ok(self
            .run_grouped_partial(table, group_col, predicate, agg)?
            .into_iter()
            .map(|(k, st)| (k, st.value(kind)))
            .collect())
    }

    /// [`Database::run_grouped`] stopping short of rendering values: each
    /// group's exact accumulator, in ascending group order. The shard router
    /// merges these per key across partitions, so a sharded grouped answer
    /// is bit-identical to the single-shard one.
    pub fn run_grouped_partial(
        &mut self,
        table: &str,
        group_col: &str,
        predicate: Option<&QueryPredicate>,
        agg: &crate::query::AggSpec,
    ) -> DbResult<Vec<(i32, AggState)>> {
        match self.dispatch(ExecRequest::Grouped {
            table,
            group_col,
            predicate,
            agg,
            morsel_rows: None,
        })? {
            ExecOutcome::Grouped(v) => Ok(v),
            _ => Err(DbError::Internal("grouped dispatch shape".into())),
        }
    }

    fn run_grouped_inner(
        &mut self,
        table: &str,
        group_col: &str,
        predicate: Option<&QueryPredicate>,
        agg: &crate::query::AggSpec,
        range: Option<(u32, u32)>,
        charge_setup: bool,
    ) -> DbResult<Vec<(i32, AggState)>> {
        let ti = self.table_idx(table)?;
        let schema = &self.tables[ti].schema;
        let gc = schema.col(group_col)?;
        let ac = schema.col(&agg.col)?;
        let blocks = Arc::clone(&self.profile.blocks);

        let mut cols = vec![gc, ac];
        let pred_remapped = match predicate {
            None => None,
            Some(QueryPredicate::Range { col, lo, hi }) => {
                let ci = schema.col(col)?;
                cols.push(ci);
                Some((ci, *lo, *hi))
            }
            Some(QueryPredicate::Expr(_)) => {
                return Err(DbError::PlanError(
                    "run_grouped supports range predicates; use run() for expressions".into(),
                ))
            }
        };
        cols.sort_unstable();
        cols.dedup();
        let g_pos = scan_pos(&cols, gc)?;
        let a_pos = scan_pos(&cols, ac)?;

        let mut scan = SeqScan::new(
            self.tables[ti].heap.clone(),
            cols.clone(),
            Arc::clone(&blocks),
            self.profile.materialize,
            self.profile.prefetch_lines_ahead,
        );
        if let Some((first, end)) = range {
            scan = scan.with_page_range(first, end);
        }
        let child: Box<dyn Operator> = match pred_remapped {
            None => Box::new(scan),
            Some((ci, lo, hi)) => {
                let pos = scan_pos(&cols, ci)?;
                Box::new(Filter::new(
                    Box::new(scan),
                    PredicateExec::Range { col: pos, lo, hi },
                    Arc::clone(&blocks),
                    self.profile.eval_mode == EvalMode::Interpreted,
                    self.selection_mode,
                ))
            }
        };
        let mut gb = crate::exec::groupby::GroupByExec::new(
            child,
            g_pos,
            a_pos,
            agg.kind,
            Arc::clone(&blocks),
        );
        let Database {
            ctx,
            bufpool,
            profile,
            exec_mode,
            ..
        } = self;
        let mut env = ExecEnv {
            ctx,
            bufpool,
            mode: *exec_mode,
        };
        if charge_setup {
            env.ctx.exec(&profile.blocks.query_setup);
        }
        gb.run_to_end_partial(&mut env)
    }

    /// Explains how this engine would execute `q` (the plan shape and the
    /// profile-specific execution strategy) without running it.
    pub fn explain(&self, q: &Query) -> DbResult<String> {
        let strategy = |interp: bool| if interp { "interpreted" } else { "compiled" };
        let interp = self.profile.eval_mode == EvalMode::Interpreted;
        match q {
            Query::SelectAgg {
                table,
                predicate,
                agg,
            } => {
                let ti = self.table_idx(table)?;
                let schema = &self.tables[ti].schema;
                let agg_str = format!("{:?}({})", agg.kind, agg.col);
                match predicate {
                    Some(QueryPredicate::Range { col, lo, hi }) => {
                        let ci = schema.col(col)?;
                        if self.profile.use_index_for_range && self.index_on(ti, ci).is_some() {
                            Ok(format!(
                                "Agg[{agg_str}]\n  IndexRangeScan[{table}.{col} in ({lo},{hi}), \
                                 non-clustered B+tree, fetch via buffer pool]"
                            ))
                        } else {
                            Ok(format!(
                                "Agg[{agg_str}]\n  Filter[{lo} < {col} < {hi}, {} range check]\n    \
                                 SeqScan[{table}, {:?}{}]",
                                strategy(interp),
                                self.profile.materialize,
                                if self.profile.prefetch_lines_ahead > 0 {
                                    format!(
                                        ", prefetch {} lines ahead",
                                        self.profile.prefetch_lines_ahead
                                    )
                                } else {
                                    String::new()
                                }
                            ))
                        }
                    }
                    Some(QueryPredicate::Expr(e)) => Ok(format!(
                        "Agg[{agg_str}]\n  Filter[{} expression, {} nodes]\n    SeqScan[{table}]",
                        strategy(interp),
                        e.node_count()
                    )),
                    None => Ok(format!("Agg[{agg_str}]\n  SeqScan[{table}]")),
                }
            }
            Query::JoinAgg {
                left,
                right,
                left_col,
                right_col,
                agg,
            } => {
                let ri = self.table_idx(right)?;
                let rkey = self.tables[ri].schema.col(right_col)?;
                let algo = match self.profile.join_algo {
                    JoinAlgo::IndexNestedLoop if self.index_on(ri, rkey).is_some() => {
                        format!("IndexNLJoin[{right}.{right_col} B+tree probe per outer row]")
                    }
                    JoinAlgo::PartitionedHash => format!(
                        "PartitionedHashJoin[radix-scatter {right}.{right_col} and \
                         {left}.{left_col} into L2-sized partitions, build+probe per partition]"
                    ),
                    _ => format!("HashJoin[build {right}.{right_col}, probe {left}.{left_col}]"),
                };
                Ok(format!(
                    "Agg[{:?}({})]\n  {algo}\n    SeqScan[{left}] / SeqScan[{right}]",
                    agg.kind, agg.col
                ))
            }
            Query::PointSelect {
                table,
                key_col,
                key,
                ..
            } => Ok(format!(
                "PointSelect[{table}.{key_col} = {key} via B+tree, fetch via buffer pool]"
            )),
            Query::UpdateAdd {
                table,
                key_col,
                key,
                set_col,
                delta,
            } => Ok(format!(
                "Update[{table}.{set_col} += {delta} where {key_col} = {key}, via B+tree]"
            )),
            Query::InsertRow { table, .. } => {
                Ok(format!("Insert[{table} heap append + index maintenance]"))
            }
        }
    }

    /// Runs a query through the engine's planner and instrumented executor.
    ///
    /// This is also the engine's survival boundary: the per-query budget
    /// baselines reset here, a pending [`CancelToken::cancel`] is honored
    /// before any work, and any residual executor panic (an invariant
    /// violation rather than a typed error) is caught and converted to
    /// [`DbError::Internal`], so one bad query can never take down the
    /// engine.
    ///
    /// Thin shim over the unified `Database::dispatch` path (as are all
    /// six `run*` entry points); prefer [`crate::sql::Session::sql`], which
    /// also picks the physical knobs, for new code.
    pub fn run(&mut self, q: &Query) -> DbResult<QueryResult> {
        match self.dispatch(ExecRequest::Scalar(q))? {
            ExecOutcome::Scalar(r) => Ok(r),
            _ => Err(DbError::Internal("scalar dispatch shape".into())),
        }
    }

    /// The single entry gate every `run*` shim funnels through: per-query
    /// budget baselines reset, pending cancellation honored, panic firewall
    /// armed — exactly once, in one place, for all six public entry points.
    pub(crate) fn dispatch(&mut self, req: ExecRequest<'_>) -> DbResult<ExecOutcome> {
        self.ctx.begin_query();
        if self.ctx.cancel.is_cancelled() {
            return Err(DbError::Cancelled);
        }
        catch_internal(|| self.dispatch_inner(req))
    }

    /// Cancellation + budget checkpoint between morsels (not before the
    /// first — `Database::dispatch` already checked). A pure check: no
    /// simulated cost, so the counter stream depends only on the morsel
    /// decomposition.
    fn morsel_checkpoint(&mut self, morsel_no: usize) -> DbResult<()> {
        if morsel_no > 0 {
            if self.ctx.cancel.is_cancelled() {
                return Err(DbError::Cancelled);
            }
            self.ctx.enforce_budget()?;
        }
        Ok(())
    }

    fn dispatch_inner(&mut self, req: ExecRequest<'_>) -> DbResult<ExecOutcome> {
        match req {
            ExecRequest::Scalar(q) => self.run_inner(q).map(ExecOutcome::Scalar),
            ExecRequest::Partial { q, morsel_rows } => {
                let ranges = match morsel_rows {
                    None => vec![(0, u32::MAX)],
                    Some(m) => self.morsel_ranges(q, m)?,
                };
                let mut acc = AggState::new();
                for (i, r) in ranges.into_iter().enumerate() {
                    self.morsel_checkpoint(i)?;
                    // An unbounded request plans with no page range at all
                    // (not a `(0, MAX)` bound), keeping its plan identical
                    // to the historical `run_partial`.
                    let range = if morsel_rows.is_some() { Some(r) } else { None };
                    let mut agg_exec = self.plan_agg_ranged(q, range)?;
                    acc.merge(&self.finish_agg_opts(&mut agg_exec, i == 0)?);
                }
                Ok(ExecOutcome::Partial(acc))
            }
            ExecRequest::Grouped {
                table,
                group_col,
                predicate,
                agg,
                morsel_rows,
            } => {
                let ranges = match morsel_rows {
                    None => vec![None],
                    Some(m) => {
                        let ti = self.table_idx(table)?;
                        self.heap_morsel_ranges(ti, m)
                            .into_iter()
                            .map(Some)
                            .collect()
                    }
                };
                let mut merged: std::collections::BTreeMap<i32, AggState> =
                    std::collections::BTreeMap::new();
                for (i, r) in ranges.into_iter().enumerate() {
                    self.morsel_checkpoint(i)?;
                    for (k, st) in
                        self.run_grouped_inner(table, group_col, predicate, agg, r, i == 0)?
                    {
                        merged.entry(k).or_default().merge(&st);
                    }
                }
                Ok(ExecOutcome::Grouped(merged.into_iter().collect()))
            }
        }
    }

    fn run_inner(&mut self, q: &Query) -> DbResult<QueryResult> {
        match q {
            Query::SelectAgg { agg, .. } | Query::JoinAgg { agg, .. } => {
                let kind = agg.kind;
                let mut agg_exec = self.plan_agg(q)?;
                Ok(self.finish_agg(&mut agg_exec)?.result(kind))
            }
            Query::PointSelect {
                table,
                key_col,
                key,
                read_col,
            } => self.point_select(table, key_col, *key, read_col),
            Query::UpdateAdd {
                table,
                key_col,
                key,
                set_col,
                delta,
            } => self.update_add(table, key_col, *key, set_col, *delta),
            Query::InsertRow { table, values } => self.insert_row(table, values.clone()),
        }
    }

    /// Runs an aggregate query ([`Query::SelectAgg`] / [`Query::JoinAgg`])
    /// but returns the exact partial accumulator instead of the rendered
    /// value. Sharded execution runs this per shard and merges the partials
    /// ([`AggState::merge`]), so the merged answer is bit-identical to a
    /// single-shard [`Database::run`].
    pub fn run_partial(&mut self, q: &Query) -> DbResult<AggState> {
        match self.dispatch(ExecRequest::Partial {
            q,
            morsel_rows: None,
        })? {
            ExecOutcome::Partial(st) => Ok(st),
            _ => Err(DbError::Internal("partial dispatch shape".into())),
        }
    }

    /// [`Database::run_partial`] executed as a sequence of page-aligned
    /// morsels of roughly `morsel_rows` rows each.
    ///
    /// The morsels of one database run **in order on its own simulated
    /// core**, so the instruction/data stream the cache and branch
    /// simulators see is a pure function of the morsel decomposition —
    /// never of which OS thread runs it or when. That is the determinism
    /// contract the parallel executor is built on: for a fixed
    /// `morsel_rows`, any schedule produces bit-identical counters, and a
    /// single whole-table morsel (`morsel_rows ≥ rows`) reproduces
    /// [`Database::run_partial`] cycle-exactly.
    ///
    /// Each morsel boundary is also a cancellation and budget checkpoint
    /// (a pure check — no simulated cost — so the counter stream still
    /// depends only on the morsel decomposition), and `query_setup` is
    /// charged on the first morsel only.
    pub fn run_partial_morsels(&mut self, q: &Query, morsel_rows: u32) -> DbResult<AggState> {
        match self.dispatch(ExecRequest::Partial {
            q,
            morsel_rows: Some(morsel_rows),
        })? {
            ExecOutcome::Partial(st) => Ok(st),
            _ => Err(DbError::Internal("partial dispatch shape".into())),
        }
    }

    /// [`Database::run_grouped_partial`] executed morsel-by-morsel; same
    /// contract as [`Database::run_partial_morsels`]. Per-morsel group maps
    /// merge through [`AggState::merge`] (exact integer arithmetic), so the
    /// merged groups are bit-identical to the unbounded run's.
    pub fn run_grouped_partial_morsels(
        &mut self,
        table: &str,
        group_col: &str,
        predicate: Option<&QueryPredicate>,
        agg: &crate::query::AggSpec,
        morsel_rows: u32,
    ) -> DbResult<Vec<(i32, AggState)>> {
        match self.dispatch(ExecRequest::Grouped {
            table,
            group_col,
            predicate,
            agg,
            morsel_rows: Some(morsel_rows),
        })? {
            ExecOutcome::Grouped(v) => Ok(v),
            _ => Err(DbError::Internal("grouped dispatch shape".into())),
        }
    }

    /// Splits `q`'s outer scan into page-aligned morsel ranges of roughly
    /// `morsel_rows` rows each. Plan shapes whose cost is not page-linear —
    /// joins (the build side reads the whole inner table) and B+tree index
    /// range scans — get a single whole-table morsel, so morselization
    /// never changes *what* a plan does, only how a seq scan is sliced.
    fn morsel_ranges(&self, q: &Query, morsel_rows: u32) -> DbResult<Vec<(u32, u32)>> {
        let Query::SelectAgg {
            table, predicate, ..
        } = q
        else {
            return Ok(vec![(0, u32::MAX)]);
        };
        let ti = self.table_idx(table)?;
        if let Some(QueryPredicate::Range { col, .. }) = predicate {
            let ci = self.tables[ti].schema.col(col)?;
            if self.profile.use_index_for_range && self.index_on(ti, ci).is_some() {
                return Ok(vec![(0, u32::MAX)]);
            }
        }
        Ok(self.heap_morsel_ranges(ti, morsel_rows))
    }

    /// Page-aligned morsel ranges over one table's heap. A morsel is at
    /// least one page (the page is the unit of the buffer-pool open path);
    /// an empty heap still yields one `(0, 0)` morsel so `query_setup` is
    /// charged exactly once, as in an unbounded scan.
    fn heap_morsel_ranges(&self, ti: usize, morsel_rows: u32) -> Vec<(u32, u32)> {
        let heap = &self.tables[ti].heap;
        let n_pages = heap.n_pages();
        if n_pages == 0 {
            return vec![(0, 0)];
        }
        let per = (morsel_rows.max(1) as u64)
            .div_ceil(heap.page_cap as u64)
            .max(1) as u32;
        (0..n_pages)
            .step_by(per as usize)
            .map(|p| (p, (p + per).min(n_pages)))
            .collect()
    }

    /// The planner half of [`Database::run`] for aggregate queries, shared
    /// with [`Database::run_partial`] so both paths plan identically.
    fn plan_agg(&self, q: &Query) -> DbResult<AggExec> {
        self.plan_agg_ranged(q, None)
    }

    /// [`Database::plan_agg`] with an optional heap-page bound on the
    /// outer sequential scan — the morsel hook. `None` plans the whole
    /// table; `Some((first, end))` plans one morsel's page range. Only the
    /// seq-scan path of [`Query::SelectAgg`] is ever planned with a bound
    /// ([`Database::morsel_ranges`] hands every other plan shape a single
    /// whole-table morsel), so index and join plans are unaffected.
    fn plan_agg_ranged(&self, q: &Query, range: Option<(u32, u32)>) -> DbResult<AggExec> {
        let blocks = Arc::clone(&self.profile.blocks);
        match q {
            Query::SelectAgg {
                table,
                predicate,
                agg,
            } => {
                let ti = self.table_idx(table)?;
                let schema = &self.tables[ti].schema;
                let agg_col = if matches!(agg.kind, AggKind::Count) && agg.col.is_empty() {
                    0
                } else {
                    schema.col(&agg.col)?
                };

                // Column set the scan must produce: aggregate column plus
                // predicate columns.
                let mut cols = vec![agg_col];
                let pred = match predicate {
                    None => None,
                    Some(QueryPredicate::Range { col, lo, hi }) => {
                        let ci = schema.col(col)?;
                        cols.push(ci);
                        Some((PredKind::Range(ci, *lo, *hi), ci))
                    }
                    Some(QueryPredicate::Expr(e)) => {
                        if e.max_col().unwrap_or(0) >= schema.arity() {
                            return Err(DbError::PlanError("predicate column out of range".into()));
                        }
                        cols.extend(e.cols());
                        Some((PredKind::Expr(e.clone()), 0))
                    }
                };
                cols.sort_unstable();
                cols.dedup();
                let agg_pos = scan_pos(&cols, agg_col)?;

                // Index path: range predicate on an indexed column, if the
                // engine's optimizer uses indexes for range selections.
                if let Some((PredKind::Range(ci, lo, hi), _)) = &pred {
                    if self.profile.use_index_for_range {
                        if let Some(ix) = self.index_on(ti, *ci) {
                            let scan = IndexRangeScan::new(
                                ix.btree.clone(),
                                *lo,
                                *hi,
                                self.tables[ti].heap.clone(),
                                cols.clone(),
                                Arc::clone(&blocks),
                            )
                            .with_full_materialization(
                                self.profile.materialize
                                    == crate::profiles::Materialize::FullRecord,
                            );
                            return Ok(AggExec::new(
                                Box::new(scan),
                                agg.kind,
                                agg_pos,
                                Arc::clone(&blocks),
                            ));
                        }
                    }
                }

                // Sequential scan + filter path.
                let mut scan = SeqScan::new(
                    self.tables[ti].heap.clone(),
                    cols.clone(),
                    Arc::clone(&blocks),
                    self.profile.materialize,
                    self.profile.prefetch_lines_ahead,
                );
                if let Some((first, end)) = range {
                    scan = scan.with_page_range(first, end);
                }
                let child: Box<dyn Operator> = match pred {
                    None => Box::new(scan),
                    Some((kind, _)) => {
                        let pexec = match kind {
                            PredKind::Range(ci, lo, hi) => {
                                let pos = scan_pos(&cols, ci)?;
                                PredicateExec::Range { col: pos, lo, hi }
                            }
                            PredKind::Expr(e) => {
                                // Remap expression columns to scan output.
                                let remapped = remap_expr(&e, &cols)?;
                                PredicateExec::Expr(remapped)
                            }
                        };
                        Box::new(Filter::new(
                            Box::new(scan),
                            pexec,
                            Arc::clone(&blocks),
                            self.profile.eval_mode == EvalMode::Interpreted,
                            self.selection_mode,
                        ))
                    }
                };
                Ok(AggExec::new(child, agg.kind, agg_pos, Arc::clone(&blocks)))
            }

            Query::JoinAgg {
                left,
                right,
                left_col,
                right_col,
                agg,
            } => {
                let li = self.table_idx(left)?;
                let ri = self.table_idx(right)?;
                let lschema = &self.tables[li].schema;
                let rschema = &self.tables[ri].schema;
                let lkey = lschema.col(left_col)?;
                let rkey = rschema.col(right_col)?;
                let agg_col = lschema.col(&agg.col)?;
                let mut lcols = vec![lkey, agg_col];
                lcols.sort_unstable();
                lcols.dedup();
                let lkey_pos = scan_pos(&lcols, lkey)?;
                let agg_pos = scan_pos(&lcols, agg_col)?;

                let probe = SeqScan::new(
                    self.tables[li].heap.clone(),
                    lcols,
                    Arc::clone(&blocks),
                    self.profile.materialize,
                    self.profile.prefetch_lines_ahead,
                );

                // Index-nested-loop wants the inner index; resolve it once
                // so the fallback path needs no re-lookup (and no unwrap).
                let inl_index = if self.profile.join_algo == JoinAlgo::IndexNestedLoop {
                    self.index_on(ri, rkey)
                } else {
                    None
                };
                let join: Box<dyn Operator> = if let Some(ix) = inl_index {
                    Box::new(IndexNlJoin::new(
                        Box::new(probe),
                        lkey_pos,
                        ix.btree.clone(),
                        self.tables[ri].heap.clone(),
                        vec![rkey],
                        Arc::clone(&blocks),
                    ))
                } else {
                    match self.profile.join_algo {
                        JoinAlgo::PartitionedHash => {
                            let build = SeqScan::new(
                                self.tables[ri].heap.clone(),
                                vec![rkey],
                                Arc::clone(&blocks),
                                self.profile.materialize,
                                self.profile.prefetch_lines_ahead,
                            );
                            Box::new(PartitionedHashJoin::new(
                                Box::new(build),
                                0,
                                Box::new(probe),
                                lkey_pos,
                                Arc::clone(&blocks),
                                self.ctx.cpu.config().l2.size_bytes,
                            ))
                        }
                        _ => {
                            let build = SeqScan::new(
                                self.tables[ri].heap.clone(),
                                vec![rkey],
                                Arc::clone(&blocks),
                                self.profile.materialize,
                                self.profile.prefetch_lines_ahead,
                            );
                            Box::new(HashJoin::new(
                                Box::new(build),
                                0,
                                Box::new(probe),
                                lkey_pos,
                                Arc::clone(&blocks),
                            ))
                        }
                    }
                };
                Ok(AggExec::new(join, agg.kind, agg_pos, Arc::clone(&blocks)))
            }

            _ => Err(DbError::PlanError(
                "not an aggregate query (point operations have no partial form)".into(),
            )),
        }
    }

    fn finish_agg(&mut self, agg: &mut AggExec) -> DbResult<AggState> {
        self.finish_agg_opts(agg, true)
    }

    /// [`Database::finish_agg`] with control over the one-time query-setup
    /// charge: a morselized query charges it on its first morsel only, so
    /// the whole morsel sequence costs exactly what one unbounded run does.
    fn finish_agg_opts(&mut self, agg: &mut AggExec, charge_setup: bool) -> DbResult<AggState> {
        let Database {
            ctx,
            bufpool,
            profile,
            exec_mode,
            ..
        } = self;
        let mut env = ExecEnv {
            ctx,
            bufpool,
            mode: *exec_mode,
        };
        if charge_setup {
            env.ctx.exec(&profile.blocks.query_setup);
        }
        agg.run_partial(&mut env)
    }

    /// Instrumented point lookup through the index on `key_col`; returns the
    /// value of `read_col` of the first match plus the match count.
    pub fn point_select(
        &mut self,
        table: &str,
        key_col: &str,
        key: i32,
        read_col: &str,
    ) -> DbResult<QueryResult> {
        let ti = self.table_idx(table)?;
        let kc = self.tables[ti].schema.col(key_col)?;
        let rc = self.tables[ti].schema.col(read_col)?;
        let ix = self
            .index_on(ti, kc)
            .ok_or_else(|| DbError::IndexNotFound(format!("{table}.{key_col}")))?;
        let btree = ix.btree.clone();
        let heap = self.tables[ti].heap.clone();
        let blocks = Arc::clone(&self.profile.blocks);

        let Database {
            ctx,
            bufpool,
            exec_mode,
            ..
        } = self;
        let mut env = ExecEnv {
            ctx,
            bufpool,
            mode: *exec_mode,
        };
        let mut cursor: LeafCursor = descend_to_leaf(&mut env, &btree, key, &blocks);
        let mut value = 0f64;
        let mut rows = 0u64;
        while let Some((k, rid)) = cursor.next_entry(&mut env, &blocks) {
            if k != key {
                break;
            }
            let rid = Rid::unpack(rid);
            let frame = fetch_record(&mut env, &heap, rid, &blocks)?;
            let v = env
                .ctx
                .load_i32(heap.field_addr_at(frame, rid.slot, rc), MemDep::Chase);
            if rows == 0 {
                value = v as f64;
            }
            rows += 1;
        }
        Ok(QueryResult { value, rows })
    }

    /// Instrumented single-row update: adds `delta` to `set_col` of every
    /// row whose `key_col` equals `key` (found via the index), as an
    /// implicit single-statement transaction (WAL-logged and versioned).
    ///
    /// Two-phase: every row is located and its new value computed with
    /// `checked_add` *before* anything mutates, so an overflowing addition
    /// ([`DbError::ValueOverflow`]) or a mid-statement fault
    /// ([`DbError::PageCorrupt`], ...) leaves the table untouched — no
    /// silent wraparound and no partially-applied multi-row update.
    pub fn update_add(
        &mut self,
        table: &str,
        key_col: &str,
        key: i32,
        set_col: &str,
        delta: i32,
    ) -> DbResult<QueryResult> {
        let ti = self.table_idx(table)?;
        let kc = self.tables[ti].schema.col(key_col)?;
        let sc = self.tables[ti].schema.col(set_col)?;
        let ix = self
            .index_on(ti, kc)
            .ok_or_else(|| DbError::IndexNotFound(format!("{table}.{key_col}")))?;
        let btree = ix.btree.clone();
        let heap = self.tables[ti].heap.clone();
        let blocks = Arc::clone(&self.profile.blocks);

        // Phase 1: locate and compute (instrumented reads, no mutation).
        let mut updates: Vec<(u64, i32, i32)> = Vec::new();
        {
            let Database {
                ctx,
                bufpool,
                exec_mode,
                ..
            } = &mut *self;
            let mut env = ExecEnv {
                ctx,
                bufpool,
                mode: *exec_mode,
            };
            let mut cursor = descend_to_leaf(&mut env, &btree, key, &blocks);
            while let Some((k, rid)) = cursor.next_entry(&mut env, &blocks) {
                if k != key {
                    break;
                }
                let rid = Rid::unpack(rid);
                let frame = fetch_record(&mut env, &heap, rid, &blocks)?;
                env.ctx.exec(&blocks.update_step);
                let set_addr = heap.field_addr_at(frame, rid.slot, sc);
                let v = env.ctx.load_i32(set_addr, MemDep::Chase);
                let nv = v.checked_add(delta).ok_or_else(|| DbError::ValueOverflow {
                    table: table.to_string(),
                    col: set_col.to_string(),
                    key,
                })?;
                updates.push((rid.pack(), v, nv));
            }
        }
        if updates.is_empty() {
            return Ok(QueryResult {
                value: 0.0,
                rows: 0,
            });
        }
        // Phase 2: install as an implicit commit (WAL append-before-apply,
        // version push, instrumented stores).
        let last = updates.last().map(|&(_, _, nv)| nv).unwrap_or(0);
        let rows = updates.len() as u64;
        self.autocommit_apply_update(ti, sc, &updates)?;
        Ok(QueryResult {
            value: last as f64,
            rows,
        })
    }

    /// Instrumented single-row insert (heap append + index maintenance), as
    /// an implicit single-statement transaction. All-or-nothing: every
    /// fallible step (arena headroom, fault-injection seams) is validated
    /// before any byte changes, and a residual index-maintenance failure
    /// unwinds the heap append — a fault can no longer strand a heap record
    /// that no index can reach.
    pub fn insert_row(&mut self, table: &str, values: Vec<i32>) -> DbResult<QueryResult> {
        let ti = self.table_idx(table)?;
        let arity = self.tables[ti].schema.arity();
        if values.len() != arity {
            return Err(DbError::ArityMismatch {
                expected: arity,
                got: values.len(),
            });
        }
        self.autocommit_insert(ti, values)?;
        Ok(QueryResult {
            value: 0.0,
            rows: 1,
        })
    }

    /// All rows of table `ti`, read raw (uninstrumented) in heap order.
    /// Used by [`Database::shard`] to re-partition loaded data and by the
    /// SQL planner ([`crate::sql`]) to build its pilot databases.
    pub(crate) fn table_rows(&self, ti: usize) -> DbResult<Vec<Vec<i32>>> {
        let t = &self.tables[ti];
        let arity = t.schema.arity();
        let mut rows = Vec::new();
        for page_no in 0..t.heap.n_pages() {
            let page = t.heap.page_addr(page_no)?;
            let nrecs = self.ctx.heap.read_i32(page + HDR_NRECS) as u32;
            for slot in 0..nrecs {
                let mut row = Vec::with_capacity(arity);
                for c in 0..arity {
                    row.push(self.ctx.heap.read_i32(t.heap.field_addr_at(page, slot, c)));
                }
                rows.push(row);
            }
        }
        Ok(rows)
    }

    /// Splits this database into `n` hash-partitioned shards.
    ///
    /// Each shard is a complete [`Database`] — its own deterministic
    /// [`Cpu`], arenas, buffer pool, catalog and indexes — holding the rows
    /// whose shard-key hash routes to it (see [`Database::set_shard_key`];
    /// the routing hash is the radix-join multiplicative hash, taken from
    /// the *high* bits so it composes with the partitioned join's low-bit
    /// scatter inside each shard). Engine profile, execution mode, page
    /// layouts, selection mode and secondary indexes are all reproduced per
    /// shard, so every existing operator runs unchanged on its partition.
    ///
    /// Re-partitioning is an uninstrumented bulk operation, like the
    /// paper's pre-measurement loads (§4.3). `n = 1` yields a trivially
    /// sharded database with identical behaviour to `self`.
    pub fn shard(self, n: usize) -> DbResult<ShardedDatabase> {
        let n = n.max(1);
        let cfg = self.ctx.cpu.config().clone();
        // Every shard's page table is sized for the WHOLE table set, not a
        // uniform 1/n split: hash partitioning guarantees no balance (a
        // skewed — or constant — shard key can route every row to one
        // shard), and an undersized table panics "page table full" during
        // the re-partition. Page-table slots are cheap simulated memory,
        // and full-size tables also give every shard the same probe
        // geometry as the 1-shard pool.
        let total_pages: u64 = self.tables.iter().map(|t| t.heap.n_pages() as u64).sum();
        let per_shard_pages = total_pages + 1024;
        let mut shards: Vec<Database> = (0..n)
            .map(|_| {
                let mut db =
                    Database::with_capacity(self.profile.clone(), cfg.clone(), per_shard_pages);
                // Each shard is its own simulated core: give it a private
                // block set so probe-address rotation state is per-core and
                // the core's stream stays schedule-independent (see
                // EngineProfile::privatize_blocks).
                db.profile.privatize_blocks();
                db.exec_mode = self.exec_mode;
                db.page_layout = self.page_layout;
                db.selection_mode = self.selection_mode;
                db.ctx.instrument = false;
                db
            })
            .collect();
        for (ti, t) in self.tables.iter().enumerate() {
            let mut routed: Vec<Vec<Vec<i32>>> = vec![Vec::new(); n];
            for row in self.table_rows(ti)? {
                routed[shard_of(row[t.shard_col], n)].push(row);
            }
            for (s, part) in shards.iter_mut().zip(routed) {
                let created =
                    s.create_table_with_layout(&t.name, t.schema.clone(), t.heap.layout)?;
                s.tables[created].shard_col = t.shard_col;
                s.load_rows(&t.name, part)?;
            }
        }
        for ix in &self.indexes {
            let tname = &self.tables[ix.table].name;
            let cname = &self.tables[ix.table].schema.columns()[ix.col].name;
            for s in &mut shards {
                s.create_index(tname, cname)?;
            }
        }
        for (i, s) in shards.iter_mut().enumerate() {
            s.ctx.instrument = self.ctx.instrument;
            // Robustness knobs carry over: every shard runs under the same
            // budget, and under a per-shard salted derivation of the fault
            // plan (deterministic, but shards do not fault in lockstep).
            s.set_fault_plan(self.ctx.fault.plan().for_shard(i));
            s.set_budget(self.ctx.budget);
            // All shards share the parent's cancellation flag, so one token
            // (possibly held by another thread) cancels the whole sharded
            // query — including morsels already in flight on worker threads.
            s.ctx.cancel = self.ctx.cancel.clone();
        }
        Ok(ShardedDatabase::from_shards(shards))
    }
}

/// One request on the unified execution path. Every public `run*` entry
/// point (and the SQL [`crate::sql::Session`]) lowers to one of these and
/// goes through `Database::dispatch`, so query setup, cancellation,
/// budget checkpoints and the panic firewall exist exactly once.
#[derive(Debug)]
pub(crate) enum ExecRequest<'a> {
    /// A scalar-result query ([`Database::run`]).
    Scalar(&'a Query),
    /// An aggregate returning its exact partial accumulator, optionally
    /// morselized ([`Database::run_partial`] /
    /// [`Database::run_partial_morsels`]).
    Partial {
        /// The aggregate query.
        q: &'a Query,
        /// `Some(rows)` slices the outer scan into page-aligned morsels.
        morsel_rows: Option<u32>,
    },
    /// A grouped aggregate returning per-group partials, optionally
    /// morselized ([`Database::run_grouped_partial`] /
    /// [`Database::run_grouped_partial_morsels`]).
    Grouped {
        /// Table name.
        table: &'a str,
        /// Grouping column.
        group_col: &'a str,
        /// Optional predicate (range form).
        predicate: Option<&'a QueryPredicate>,
        /// Aggregate.
        agg: &'a crate::query::AggSpec,
        /// `Some(rows)` slices the scan into page-aligned morsels.
        morsel_rows: Option<u32>,
    },
}

/// What `Database::dispatch` produced; each shim unwraps its own shape.
#[derive(Debug)]
pub(crate) enum ExecOutcome {
    /// Scalar result.
    Scalar(QueryResult),
    /// Exact aggregate partial.
    Partial(AggState),
    /// Per-group partials in ascending group order.
    Grouped(Vec<(i32, AggState)>),
}

/// Runs `f`, converting any panic into [`DbError::Internal`] so executor
/// invariant violations surface as query errors instead of aborting the
/// process. `AssertUnwindSafe` is sound here: the database is only observed
/// again after the next query's [`DbCtx::begin_query`] resets per-query
/// state, and the arenas/counters tolerate a half-finished query (bump
/// allocation never leaves dangling references).
pub(crate) fn catch_internal<T>(f: impl FnOnce() -> DbResult<T>) -> DbResult<T> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "executor panicked".to_string()
            };
            Err(DbError::Internal(msg))
        }
    }
}

/// Fetches a record's page by rid through the buffer pool (instrumented);
/// returns the page frame address. Field addresses within the page come from
/// [`HeapFile::field_addr_at`], which resolves the file's layout (NSM record
/// offset or PAX minipage entry). Shared by index scans and point ops.
pub(crate) fn fetch_record(
    env: &mut ExecEnv<'_>,
    heap: &HeapFile,
    rid: Rid,
    blocks: &crate::profiles::EngineBlocks,
) -> DbResult<u64> {
    env.ctx.exec(&blocks.rid_fetch);
    env.ctx.exec(&blocks.bufpool_get);
    fetch_record_data(env, heap, rid)
}

/// The data-access half of [`fetch_record`]: page-table probe traffic and
/// the page-header read, without the per-call code blocks. Batched index
/// scans charge the blocks once per batch and call this per record.
pub(crate) fn fetch_record_data(env: &mut ExecEnv<'_>, heap: &HeapFile, rid: Rid) -> DbResult<u64> {
    if rid.slot >= heap.page_cap {
        return Err(DbError::BadRid);
    }
    let page_id = heap.page_id(rid.page);
    let frame = env.lookup_page(page_id, MemDep::Chase)?;
    // Page header read (latch/validity check) — the page is random, so this
    // is usually another cold line. The stored page id rides on the same
    // header line, so verifying it costs no extra simulated traffic; a
    // mismatch means the frame does not hold the page the page table said
    // it does, reported as corruption rather than silently reading garbage.
    env.ctx.touch(frame + HDR_NRECS, 8, MemDep::Chase);
    if env.ctx.heap.read_u64(frame + HDR_PAGEID) != page_id {
        return Err(DbError::PageCorrupt { page_id });
    }
    debug_assert_eq!(frame, heap.page_addr(rid.page)?);
    Ok(frame)
}

/// Charges the demand reads of every field of `slot` on the page at
/// `page_addr`: one contiguous `record_size` span under NSM, one 4-byte
/// touch per minipage under PAX (same bytes, different lines). Used by
/// full-record materialization paths.
pub(crate) fn touch_record_fields(
    ctx: &mut DbCtx,
    heap: &HeapFile,
    page_addr: u64,
    slot: u32,
    dep: MemDep,
) {
    match heap.layout {
        PageLayout::Nsm => {
            ctx.touch(
                heap.field_addr_at(page_addr, slot, 0),
                heap.record_size,
                dep,
            );
        }
        PageLayout::Pax => {
            for c in 0..heap.n_fields() as usize {
                ctx.touch(heap.field_addr_at(page_addr, slot, c), 4, dep);
            }
        }
    }
}

/// The store-side twin of [`touch_record_fields`] (heap appends/updates).
pub(crate) fn store_record_fields(
    ctx: &mut DbCtx,
    heap: &HeapFile,
    page_addr: u64,
    slot: u32,
    dep: MemDep,
) {
    match heap.layout {
        PageLayout::Nsm => {
            ctx.store_touch(
                heap.field_addr_at(page_addr, slot, 0),
                heap.record_size,
                dep,
            );
        }
        PageLayout::Pax => {
            for c in 0..heap.n_fields() as usize {
                ctx.store_touch(heap.field_addr_at(page_addr, slot, c), 4, dep);
            }
        }
    }
}

enum PredKind {
    Range(usize, i32, i32),
    Expr(crate::expr::Expr),
}

/// Position of table column `c` in the scan's output column set.
///
/// The planner builds `cols` to contain every column a plan references, so
/// a miss means a plan-construction bug (a column referenced after being
/// projected away). It used to be an `.expect("present")` — which in a
/// release build would take the whole process down on a malformed plan —
/// and is now surfaced as a [`DbError::PlanError`] the caller can handle.
fn scan_pos(cols: &[usize], c: usize) -> DbResult<usize> {
    cols.iter().position(|&x| x == c).ok_or_else(|| {
        DbError::PlanError(format!(
            "column {c} is not in the scan's output column set {cols:?} \
             (referenced after being projected away)"
        ))
    })
}

/// Rewrites an expression over table columns into one over the scan's output
/// column positions. A column outside the scan set is a planner bug,
/// reported as a [`DbError::PlanError`] rather than a panic.
fn remap_expr(e: &crate::expr::Expr, cols: &[usize]) -> DbResult<crate::expr::Expr> {
    use crate::expr::Expr;
    Ok(match e {
        Expr::Col(c) => Expr::Col(scan_pos(cols, *c)?),
        Expr::Const(v) => Expr::Const(*v),
        Expr::Cmp(op, a, b) => Expr::Cmp(
            *op,
            Box::new(remap_expr(a, cols)?),
            Box::new(remap_expr(b, cols)?),
        ),
        Expr::And(a, b) => Expr::And(
            Box::new(remap_expr(a, cols)?),
            Box::new(remap_expr(b, cols)?),
        ),
        Expr::Or(a, b) => Expr::Or(
            Box::new(remap_expr(a, cols)?),
            Box::new(remap_expr(b, cols)?),
        ),
        Expr::Not(a) => Expr::Not(Box::new(remap_expr(a, cols)?)),
        Expr::Arith(op, a, b) => Expr::Arith(
            *op,
            Box::new(remap_expr(a, cols)?),
            Box::new(remap_expr(b, cols)?),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catch_internal_converts_panics_to_typed_errors() {
        // Silence the default hook's stderr backtrace for the deliberate
        // panic; restore it so other tests report normally.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let str_panic: DbResult<()> = catch_internal(|| panic!("invariant broken"));
        let string_panic: DbResult<()> = catch_internal(|| panic!("rid {} out of bounds", 42));
        let ok: DbResult<u32> = catch_internal(|| Ok(7));
        let passthrough: DbResult<()> = catch_internal(|| Err(DbError::Cancelled));
        std::panic::set_hook(prev);

        assert_eq!(
            str_panic,
            Err(DbError::Internal("invariant broken".to_string()))
        );
        assert_eq!(
            string_panic,
            Err(DbError::Internal("rid 42 out of bounds".to_string()))
        );
        assert_eq!(ok, Ok(7));
        assert_eq!(passthrough, Err(DbError::Cancelled));
    }
}

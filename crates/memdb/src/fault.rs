//! Deterministic fault injection and per-query resource guardrails.
//!
//! A production engine survives page corruption, allocation failure and
//! flaky shards; a simulator that panics on any of them cannot be used to
//! study that survival. This module gives the engine a *seeded, bit
//! reproducible* fault model: a [`FaultPlan`] carries per-site fault rates
//! and a seed, and the [`FaultInjector`] turns each potential fault site
//! crossing into a pure function of `(seed, site, draw counter)` — so two
//! runs of the same plan over the same data inject byte-identical fault
//! sequences, and a chaos test that fails is trivially replayable.
//!
//! # Injection seams
//!
//! Faults fire at four well-defined seams ([`FaultSite`]):
//!
//! * **Buffer-pool fetch** — the executor's single page-access choke point
//!   (`ExecEnv::lookup_page`) fails with [`crate::DbError::IoFault`], the
//!   moral equivalent of a read error on the frame.
//! * **Page checksum** — the same seam reports
//!   [`crate::DbError::PageCorrupt`], modelling a latched page whose
//!   checksum does not verify.
//! * **Arena allocation** — the partitioned join's chunk allocator
//!   (`DbCtx::try_alloc_index`) reports
//!   [`crate::DbError::ArenaExhausted`], the trigger for its graceful
//!   downgrade to the naive hash join.
//! * **Shard execution** — the shard router draws once per shard sub-query
//!   and treats a hit as a transient executor failure
//!   ([`crate::DbError::ShardFault`]), which its bounded retry loop absorbs.
//!
//! Draw counters advance only for sites with a non-zero rate, so a disabled
//! plan costs nothing and a single-site plan's sequence does not shift when
//! other sites are enabled later.
//!
//! # Guardrails
//!
//! Orthogonally to injection, a [`ResourceBudget`] bounds what one query may
//! consume (arena bytes, simulated cycles); the executor checks it
//! cooperatively at batch/partition boundaries and surfaces
//! [`crate::DbError::BudgetExceeded`] instead of running away. A
//! [`CancelToken`] cancels a query at the same checkpoints.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The seams at which the engine can inject a deterministic fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Buffer-pool page fetch (the executor's single page-access choke
    /// point, `ExecEnv::lookup_page`).
    BufpoolFetch,
    /// Page checksum verification after a successful fetch.
    PageChecksum,
    /// Partition-chunk arena allocation in the radix join.
    ArenaAlloc,
    /// Per-shard sub-query execution in the shard router.
    ShardExec,
}

impl FaultSite {
    /// All sites, in declaration order.
    pub const ALL: [FaultSite; 4] = [
        FaultSite::BufpoolFetch,
        FaultSite::PageChecksum,
        FaultSite::ArenaAlloc,
        FaultSite::ShardExec,
    ];

    #[inline]
    fn index(self) -> usize {
        match self {
            FaultSite::BufpoolFetch => 0,
            FaultSite::PageChecksum => 1,
            FaultSite::ArenaAlloc => 2,
            FaultSite::ShardExec => 3,
        }
    }

    /// Per-site hash salt, so two sites with the same rate and seed draw
    /// independent sequences.
    #[inline]
    fn salt(self) -> u64 {
        match self {
            FaultSite::BufpoolFetch => 0x4255_4650_4f4f_4c00,
            FaultSite::PageChecksum => 0x4348_4543_4b53_554d,
            FaultSite::ArenaAlloc => 0x4152_454e_414c_4c4f,
            FaultSite::ShardExec => 0x5348_4152_4445_5845,
        }
    }
}

/// A seeded, bit-reproducible fault schedule: one injection rate per
/// [`FaultSite`]. The default plan is fully disabled.
///
/// Whether draw `n` at a site faults is a pure function of
/// `(seed, site, n)`, so a plan replays identically across runs, and
/// [`FaultPlan::for_shard`] derives per-shard plans whose sequences are
/// deterministic but mutually independent.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed of the per-draw hash.
    pub seed: u64,
    /// Fault probability per buffer-pool page fetch.
    pub bufpool_fetch: f64,
    /// Fault probability per page checksum verification.
    pub page_checksum: f64,
    /// Fault probability per partition-chunk arena allocation.
    pub arena_alloc: f64,
    /// Fault probability per shard sub-query execution.
    pub shard_exec: f64,
}

impl FaultPlan {
    /// The disabled plan: no site ever faults, no draw counters advance.
    pub fn disabled() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan injecting at every site with the same `rate`.
    pub fn uniform(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            bufpool_fetch: rate,
            page_checksum: rate,
            arena_alloc: rate,
            shard_exec: rate,
        }
    }

    /// Builder: sets the rate of one site.
    pub fn with_rate(mut self, site: FaultSite, rate: f64) -> FaultPlan {
        match site {
            FaultSite::BufpoolFetch => self.bufpool_fetch = rate,
            FaultSite::PageChecksum => self.page_checksum = rate,
            FaultSite::ArenaAlloc => self.arena_alloc = rate,
            FaultSite::ShardExec => self.shard_exec = rate,
        }
        self
    }

    /// Builder: sets the seed.
    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// The rate of one site.
    pub fn rate(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::BufpoolFetch => self.bufpool_fetch,
            FaultSite::PageChecksum => self.page_checksum,
            FaultSite::ArenaAlloc => self.arena_alloc,
            FaultSite::ShardExec => self.shard_exec,
        }
    }

    /// Whether any site has a non-zero rate.
    pub fn armed(&self) -> bool {
        self.bufpool_fetch > 0.0
            || self.page_checksum > 0.0
            || self.arena_alloc > 0.0
            || self.shard_exec > 0.0
    }

    /// The plan shard `shard` runs under: same rates, a seed derived from
    /// this plan's seed and the shard index — deterministic, but shards do
    /// not fault in lockstep.
    pub fn for_shard(&self, shard: usize) -> FaultPlan {
        FaultPlan {
            seed: splitmix64(self.seed ^ (0x5348_4152_4400_0000 + shard as u64)),
            ..*self
        }
    }
}

/// Counters the engine keeps while a plan is active: injected faults per
/// site, plus the recovery actions the executor took. Exposed through
/// [`crate::Database::robustness_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RobustnessStats {
    /// Injected buffer-pool fetch failures.
    pub bufpool_fetch_faults: u64,
    /// Injected page-checksum mismatches.
    pub page_checksum_faults: u64,
    /// Injected partition-chunk allocation failures.
    pub arena_alloc_faults: u64,
    /// Injected shard execution failures.
    pub shard_exec_faults: u64,
    /// Partitioned-join downgrades to the naive hash join.
    pub join_downgrades: u64,
    /// Queries stopped by a [`ResourceBudget`] breach.
    pub budget_stops: u64,
}

impl RobustnessStats {
    /// Total injected faults across all sites.
    pub fn total_faults(&self) -> u64 {
        self.bufpool_fetch_faults
            + self.page_checksum_faults
            + self.arena_alloc_faults
            + self.shard_exec_faults
    }

    /// Adds `other`'s counters into `self` (shard aggregation).
    pub fn absorb(&mut self, other: &RobustnessStats) {
        self.bufpool_fetch_faults += other.bufpool_fetch_faults;
        self.page_checksum_faults += other.page_checksum_faults;
        self.arena_alloc_faults += other.arena_alloc_faults;
        self.shard_exec_faults += other.shard_exec_faults;
        self.join_downgrades += other.join_downgrades;
        self.budget_stops += other.budget_stops;
    }
}

/// The mutable half of the fault model: a [`FaultPlan`] plus per-site draw
/// counters and [`RobustnessStats`]. Lives on [`crate::db::DbCtx`]; one per
/// database (per shard, under sharded execution).
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    draws: [u64; 4],
    stats: RobustnessStats,
}

impl FaultInjector {
    /// An injector for `plan` with fresh counters.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            draws: [0; 4],
            stats: RobustnessStats::default(),
        }
    }

    /// The active plan.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Whether any site can fault (fast gate for hot paths).
    #[inline]
    pub fn armed(&self) -> bool {
        self.plan.armed()
    }

    /// Draws the next decision for `site`: true means inject. Sites with a
    /// zero rate never draw (their counter does not advance), so a disabled
    /// plan is free and per-site sequences are independent.
    #[inline]
    pub fn should_fault(&mut self, site: FaultSite) -> bool {
        let rate = self.plan.rate(site);
        if rate <= 0.0 {
            return false;
        }
        let i = site.index();
        let n = self.draws[i];
        self.draws[i] += 1;
        let h = splitmix64(self.plan.seed ^ site.salt() ^ n);
        // 53 high bits -> uniform f64 in [0, 1).
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let hit = u < rate;
        if hit {
            match site {
                FaultSite::BufpoolFetch => self.stats.bufpool_fetch_faults += 1,
                FaultSite::PageChecksum => self.stats.page_checksum_faults += 1,
                FaultSite::ArenaAlloc => self.stats.arena_alloc_faults += 1,
                FaultSite::ShardExec => self.stats.shard_exec_faults += 1,
            }
        }
        hit
    }

    /// Records a partitioned-join downgrade.
    pub fn note_downgrade(&mut self) {
        self.stats.join_downgrades += 1;
    }

    /// Records a budget-enforced query stop.
    pub fn note_budget_stop(&mut self) {
        self.stats.budget_stops += 1;
    }

    /// The counters collected so far.
    pub fn stats(&self) -> RobustnessStats {
        self.stats
    }

    /// Clears the counters (draw positions are kept: the fault sequence is
    /// a property of the plan, not of when stats were last read).
    pub fn reset_stats(&mut self) {
        self.stats = RobustnessStats::default();
    }
}

/// Per-query resource guardrails, checked cooperatively at batch and
/// partition boundaries. `None` means unlimited; the default budget is
/// fully unlimited and adds zero simulated overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceBudget {
    /// Arena bytes one query may allocate across all arenas.
    pub max_arena_bytes: Option<u64>,
    /// Simulated cycles one query may consume.
    pub max_cycles: Option<u64>,
}

impl ResourceBudget {
    /// The unlimited budget (no checks charged, no limits enforced).
    pub fn unlimited() -> ResourceBudget {
        ResourceBudget::default()
    }

    /// Builder: bounds per-query arena allocation.
    pub fn with_max_arena_bytes(mut self, bytes: u64) -> ResourceBudget {
        self.max_arena_bytes = Some(bytes);
        self
    }

    /// Builder: bounds per-query simulated cycles.
    pub fn with_max_cycles(mut self, cycles: u64) -> ResourceBudget {
        self.max_cycles = Some(cycles);
        self
    }

    /// Whether any limit is set (and checkpoints must therefore charge the
    /// guardrail-check code block).
    #[inline]
    pub fn is_limited(&self) -> bool {
        self.max_arena_bytes.is_some() || self.max_cycles.is_some()
    }
}

/// A shared cancellation flag for cooperative query cancellation.
///
/// Clones share one flag; [`CancelToken::cancel`] makes every in-flight and
/// future query on the owning [`crate::Database`] return
/// [`crate::DbError::Cancelled`] at its next checkpoint, until
/// [`CancelToken::clear`] re-arms the database.
///
/// The flag is an [`AtomicBool`] so a token cloned onto another OS thread can
/// cancel a query mid-flight on the parallel executor; `SeqCst` ordering keeps
/// the cancel/clear edges totally ordered with the worker-side checkpoints.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Clears a previous cancellation so the database is usable again.
    pub fn clear(&self) {
        self.0.store(false, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// SplitMix64: the standard 64-bit finalizer-style mixer; statistically
/// strong enough for fault scheduling and trivially reproducible.
#[inline]
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_faults_and_never_draws() {
        let mut inj = FaultInjector::new(FaultPlan::disabled());
        for _ in 0..1000 {
            for site in FaultSite::ALL {
                assert!(!inj.should_fault(site));
            }
        }
        assert_eq!(inj.stats().total_faults(), 0);
        assert_eq!(inj.draws, [0; 4]);
    }

    #[test]
    fn fault_sequences_are_bit_reproducible() {
        let plan = FaultPlan::uniform(0xDEAD_BEEF, 0.05);
        let seq = |mut inj: FaultInjector| -> Vec<bool> {
            (0..500)
                .map(|_| inj.should_fault(FaultSite::BufpoolFetch))
                .collect()
        };
        assert_eq!(seq(FaultInjector::new(plan)), seq(FaultInjector::new(plan)));
    }

    #[test]
    fn sites_draw_independently() {
        // Enabling a second site must not shift the first site's sequence.
        let only = FaultPlan::disabled()
            .with_seed(7)
            .with_rate(FaultSite::BufpoolFetch, 0.1);
        let both = only.with_rate(FaultSite::ArenaAlloc, 0.5);
        let mut a = FaultInjector::new(only);
        let mut b = FaultInjector::new(both);
        for _ in 0..300 {
            let fa = a.should_fault(FaultSite::BufpoolFetch);
            b.should_fault(FaultSite::ArenaAlloc);
            let fb = b.should_fault(FaultSite::BufpoolFetch);
            assert_eq!(fa, fb);
        }
    }

    #[test]
    fn rates_are_roughly_honored() {
        let mut inj = FaultInjector::new(
            FaultPlan::disabled()
                .with_seed(42)
                .with_rate(FaultSite::PageChecksum, 0.1),
        );
        let hits = (0..20_000)
            .filter(|_| inj.should_fault(FaultSite::PageChecksum))
            .count();
        assert!(
            (1_500..2_500).contains(&hits),
            "expected ~2000 faults at rate 0.1, got {hits}"
        );
    }

    #[test]
    fn shard_plans_differ_but_are_deterministic() {
        let plan = FaultPlan::uniform(99, 0.01);
        assert_ne!(plan.for_shard(0).seed, plan.for_shard(1).seed);
        assert_eq!(plan.for_shard(3), plan.for_shard(3));
        assert_eq!(plan.for_shard(2).bufpool_fetch, plan.bufpool_fetch);
    }

    #[test]
    fn cancel_token_round_trip() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled());
        t.clear();
        assert!(!u.is_cancelled());
    }

    #[test]
    fn budget_builders_compose() {
        let b = ResourceBudget::unlimited()
            .with_max_arena_bytes(1 << 20)
            .with_max_cycles(1_000_000);
        assert!(b.is_limited());
        assert_eq!(b.max_arena_bytes, Some(1 << 20));
        assert_eq!(b.max_cycles, Some(1_000_000));
        assert!(!ResourceBudget::unlimited().is_limited());
    }
}

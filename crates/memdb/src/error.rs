//! Error type for the DBMS substrate.

use std::fmt;

/// Errors raised by catalog, storage and execution operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Named table does not exist.
    TableNotFound(String),
    /// Named column does not exist in the table's schema.
    ColumnNotFound(String),
    /// No index exists on the requested (table, column).
    IndexNotFound(String),
    /// A table with this name already exists.
    TableExists(String),
    /// An index on this column already exists.
    IndexExists(String),
    /// Row arity does not match the table schema.
    ArityMismatch {
        /// Columns the schema defines.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// A record id referenced a slot that does not exist.
    BadRid,
    /// A raw record's byte length does not match the heap file's fixed
    /// record size.
    RecordSizeMismatch {
        /// Bytes the heap file's records occupy.
        expected: u32,
        /// Bytes supplied.
        got: usize,
    },
    /// A heap page was not registered in the buffer pool's page table —
    /// storage and page table disagree (a bug or corruption surfaced as a
    /// query error rather than a crash).
    PageNotRegistered {
        /// Global page id the lookup missed.
        page_id: u64,
    },
    /// The query referenced tables/columns in an unsupported combination.
    PlanError(String),
    /// SQL text failed to lex/parse. Carries the byte span of the offending
    /// token and a one-line snippet of the statement around it, so callers
    /// can render a caret diagnostic without re-tokenizing.
    ParseError {
        /// What the parser expected / found.
        msg: String,
        /// Byte range `[start, end)` of the offending token in the input.
        span: (usize, usize),
        /// The input text around the span (see [`crate::sql`]).
        snippet: String,
    },
    /// Parsed SQL referenced a name or shape the catalog cannot satisfy
    /// (unknown table/column, unsupported projection mix, ...). Same span +
    /// snippet contract as [`DbError::ParseError`].
    BindError {
        /// Why binding failed.
        msg: String,
        /// Byte range `[start, end)` of the offending name in the input.
        span: (usize, usize),
        /// The input text around the span.
        snippet: String,
    },
    /// A buffer-pool page fetch failed (injected or real I/O failure).
    /// Transient: shard retries may succeed.
    IoFault {
        /// Global page id whose fetch failed.
        page_id: u64,
    },
    /// A fetched page failed checksum verification. Transient for the shard
    /// retry loop (a re-fetch gets a fresh frame).
    PageCorrupt {
        /// Global page id that failed verification.
        page_id: u64,
    },
    /// An arena could not satisfy an allocation — the fallible counterpart
    /// of the arena's panicking bump path, and the memory-pressure signal
    /// that triggers the partitioned join's downgrade.
    ArenaExhausted {
        /// Bytes the allocation asked for.
        requested: u64,
        /// Bytes already allocated in the arena.
        used: u64,
        /// Total arena capacity in bytes.
        capacity: u64,
    },
    /// A per-query [`crate::ResourceBudget`] limit was breached at a
    /// cooperative checkpoint.
    BudgetExceeded {
        /// Which limit: `"arena_bytes"` or `"cycles"`.
        resource: &'static str,
        /// Consumption observed at the checkpoint.
        used: u64,
        /// The configured limit.
        limit: u64,
    },
    /// The query was cancelled through its [`crate::CancelToken`].
    Cancelled,
    /// A shard's sub-query execution failed transiently (injected via
    /// [`crate::FaultSite::ShardExec`]); the router retries these.
    ShardFault {
        /// Index of the failing shard.
        shard: usize,
    },
    /// A shard kept failing after the router's bounded retries; the merged
    /// query errors with the last underlying cause.
    ShardFailed {
        /// Index of the failing shard.
        shard: usize,
        /// Attempts made before giving up.
        attempts: u32,
        /// The error the final attempt returned.
        cause: Box<DbError>,
    },
    /// An arithmetic update would overflow the column's `i32` range. The
    /// engine refuses the mutation (nothing is applied) instead of silently
    /// wrapping — a balance must never jump sign because it crossed
    /// `i32::MAX`.
    ValueOverflow {
        /// Table whose column would overflow.
        table: String,
        /// Column the update targets.
        col: String,
        /// Key value of the row whose update overflowed.
        key: i32,
    },
    /// Snapshot-isolation write conflict: another transaction committed a
    /// write to the same row after this transaction's snapshot was taken.
    /// First committer wins; the losing transaction is aborted (its staged
    /// writes are discarded) and may be retried on a fresh snapshot.
    TxnConflict {
        /// Table of the conflicted row.
        table: String,
        /// Packed record id of the conflicted row.
        rid: u64,
    },
    /// A transaction handle does not name an open transaction (already
    /// committed, already aborted, or never begun).
    TxnUnknown {
        /// The stale transaction id.
        txn: u64,
    },
    /// An executor invariant was violated (including a caught panic) —
    /// always a bug, surfaced as an error so one query cannot take down the
    /// engine.
    Internal(String),
}

impl DbError {
    /// Whether a retry of the same operation can plausibly succeed: the
    /// shard router only retries transient failures (injected fault draws
    /// advance, so a retry really can come back clean).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            DbError::IoFault { .. } | DbError::PageCorrupt { .. } | DbError::ShardFault { .. }
        )
    }

    /// Whether this error signals memory pressure — the condition under
    /// which the partitioned hash join degrades to the naive hash join
    /// rather than failing the query. Cycle-budget breaches are *not*
    /// memory pressure: a query out of time must stop, not switch plans.
    pub fn is_memory_pressure(&self) -> bool {
        matches!(
            self,
            DbError::ArenaExhausted { .. }
                | DbError::BudgetExceeded {
                    resource: "arena_bytes",
                    ..
                }
        )
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::TableNotFound(t) => write!(f, "table not found: {t}"),
            DbError::ColumnNotFound(c) => write!(f, "column not found: {c}"),
            DbError::IndexNotFound(c) => write!(f, "no index on: {c}"),
            DbError::TableExists(t) => write!(f, "table already exists: {t}"),
            DbError::IndexExists(c) => write!(f, "index already exists on: {c}"),
            DbError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "arity mismatch: schema has {expected} columns, row has {got}"
                )
            }
            DbError::BadRid => write!(f, "invalid record id"),
            DbError::RecordSizeMismatch { expected, got } => {
                write!(
                    f,
                    "record size mismatch: heap stores {expected}-byte records, got {got} bytes"
                )
            }
            DbError::PageNotRegistered { page_id } => {
                write!(
                    f,
                    "heap page {page_id} is not registered in the buffer pool"
                )
            }
            DbError::PlanError(m) => write!(f, "cannot plan query: {m}"),
            DbError::ParseError { msg, span, snippet } => {
                write!(
                    f,
                    "syntax error at byte {}..{}: {msg} (near `{snippet}`)",
                    span.0, span.1
                )
            }
            DbError::BindError { msg, span, snippet } => {
                write!(
                    f,
                    "bind error at byte {}..{}: {msg} (near `{snippet}`)",
                    span.0, span.1
                )
            }
            DbError::IoFault { page_id } => {
                write!(f, "buffer-pool fetch of page {page_id} failed")
            }
            DbError::PageCorrupt { page_id } => {
                write!(f, "page {page_id} failed checksum verification")
            }
            DbError::ArenaExhausted {
                requested,
                used,
                capacity,
            } => {
                write!(
                    f,
                    "arena exhausted: {requested} bytes requested, {used}/{capacity} in use"
                )
            }
            DbError::BudgetExceeded {
                resource,
                used,
                limit,
            } => {
                write!(
                    f,
                    "query budget exceeded: {resource} {used} > limit {limit}"
                )
            }
            DbError::Cancelled => write!(f, "query cancelled"),
            DbError::ShardFault { shard } => {
                write!(f, "shard {shard} sub-query failed transiently")
            }
            DbError::ShardFailed {
                shard,
                attempts,
                cause,
            } => {
                write!(f, "shard {shard} failed after {attempts} attempts: {cause}")
            }
            DbError::ValueOverflow { table, col, key } => {
                write!(
                    f,
                    "update of {table}.{col} (key {key}) would overflow i32; mutation refused"
                )
            }
            DbError::TxnConflict { table, rid } => {
                write!(
                    f,
                    "write conflict on {table} rid {rid:#x}: a concurrent transaction \
                     committed first (snapshot isolation, first committer wins)"
                )
            }
            DbError::TxnUnknown { txn } => {
                write!(f, "transaction {txn} is not open")
            }
            DbError::Internal(m) => write!(f, "internal engine error: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Result alias used across the crate.
pub type DbResult<T> = Result<T, DbError>;

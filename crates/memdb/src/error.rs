//! Error type for the DBMS substrate.

use std::fmt;

/// Errors raised by catalog, storage and execution operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Named table does not exist.
    TableNotFound(String),
    /// Named column does not exist in the table's schema.
    ColumnNotFound(String),
    /// No index exists on the requested (table, column).
    IndexNotFound(String),
    /// A table with this name already exists.
    TableExists(String),
    /// An index on this column already exists.
    IndexExists(String),
    /// Row arity does not match the table schema.
    ArityMismatch {
        /// Columns the schema defines.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// A record id referenced a slot that does not exist.
    BadRid,
    /// A heap page was not registered in the buffer pool's page table —
    /// storage and page table disagree (a bug or corruption surfaced as a
    /// query error rather than a crash).
    PageNotRegistered {
        /// Global page id the lookup missed.
        page_id: u64,
    },
    /// The query referenced tables/columns in an unsupported combination.
    PlanError(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::TableNotFound(t) => write!(f, "table not found: {t}"),
            DbError::ColumnNotFound(c) => write!(f, "column not found: {c}"),
            DbError::IndexNotFound(c) => write!(f, "no index on: {c}"),
            DbError::TableExists(t) => write!(f, "table already exists: {t}"),
            DbError::IndexExists(c) => write!(f, "index already exists on: {c}"),
            DbError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "arity mismatch: schema has {expected} columns, row has {got}"
                )
            }
            DbError::BadRid => write!(f, "invalid record id"),
            DbError::PageNotRegistered { page_id } => {
                write!(
                    f,
                    "heap page {page_id} is not registered in the buffer pool"
                )
            }
            DbError::PlanError(m) => write!(f, "cannot plan query: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Result alias used across the crate.
pub type DbResult<T> = Result<T, DbError>;

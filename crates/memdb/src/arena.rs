//! Backing storage for the simulated address space.
//!
//! Every page, index node and hash bucket lives in a [`SimArena`]: a byte
//! vector mapped at a fixed simulated base address. Reading or writing
//! through the instrumented accessors in [`crate::db::DbCtx`] both performs
//! the real byte access (so query answers are real) and drives the cache
//! simulator at the same address (so stall behaviour is real too).

use wdtg_sim::Region;

/// A growable byte arena pinned at a simulated base address.
#[derive(Debug)]
pub struct SimArena {
    region: Region,
    bytes: Vec<u8>,
    next: u64,
}

impl SimArena {
    /// Creates an arena at `base` that may grow up to `capacity` bytes.
    pub fn new(base: u64, capacity: u64) -> Self {
        SimArena {
            region: Region {
                base,
                len: capacity,
            },
            bytes: Vec::new(),
            next: 0,
        }
    }

    /// The simulated address range reserved for this arena.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.next
    }

    /// Allocates `len` zeroed bytes aligned to `align`; returns the simulated
    /// address. Panics when the arena is exhausted — use [`SimArena::try_alloc`]
    /// where exhaustion must surface as an observable failure instead.
    pub fn alloc(&mut self, len: u64, align: u64) -> u64 {
        match self.try_alloc(len, align) {
            Some(addr) => addr,
            None => panic!("arena at {:#x} exhausted", self.region.base),
        }
    }

    /// Fallible allocation: `None` when `len` bytes at `align` do not fit in
    /// the remaining capacity, leaving the arena untouched so callers can
    /// degrade (switch join strategy, fail one query) rather than abort.
    pub fn try_alloc(&mut self, len: u64, align: u64) -> Option<u64> {
        debug_assert!(align.is_power_of_two());
        let start = (self.next + align - 1) & !(align - 1);
        let end = start.checked_add(len)?;
        if end > self.region.len {
            return None;
        }
        if end as usize > self.bytes.len() {
            self.bytes.resize(end as usize, 0);
        }
        self.next = end;
        Some(self.region.base + start)
    }

    #[inline]
    fn off(&self, addr: u64) -> usize {
        debug_assert!(
            addr >= self.region.base && addr < self.region.base + self.next,
            "address {addr:#x} outside arena"
        );
        (addr - self.region.base) as usize
    }

    /// Raw (uninstrumented) 4-byte read.
    #[inline]
    pub fn read_i32(&self, addr: u64) -> i32 {
        let o = self.off(addr);
        i32::from_le_bytes(self.bytes[o..o + 4].try_into().expect("in bounds"))
    }

    /// Raw (uninstrumented) 4-byte write.
    #[inline]
    pub fn write_i32(&mut self, addr: u64, v: i32) {
        let o = self.off(addr);
        self.bytes[o..o + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Raw 8-byte read.
    #[inline]
    pub fn read_u64(&self, addr: u64) -> u64 {
        let o = self.off(addr);
        u64::from_le_bytes(self.bytes[o..o + 8].try_into().expect("in bounds"))
    }

    /// Raw 8-byte write.
    #[inline]
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        let o = self.off(addr);
        self.bytes[o..o + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Raw byte-slice read.
    pub fn read_bytes(&self, addr: u64, len: u32) -> &[u8] {
        let o = self.off(addr);
        &self.bytes[o..o + len as usize]
    }

    /// Raw byte-slice write.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        let o = self.off(addr);
        self.bytes[o..o + data.len()].copy_from_slice(data);
    }

    /// Whether `addr` falls inside this arena's reserved range.
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        self.region.contains(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_round_trip() {
        let mut a = SimArena::new(0x1000_0000, 1 << 20);
        let p = a.alloc(128, 64);
        assert_eq!(p % 64, 0);
        a.write_i32(p, -42);
        a.write_i32(p + 4, 7);
        a.write_u64(p + 8, 0xdead_beef);
        assert_eq!(a.read_i32(p), -42);
        assert_eq!(a.read_i32(p + 4), 7);
        assert_eq!(a.read_u64(p + 8), 0xdead_beef);
    }

    #[test]
    fn allocations_are_disjoint() {
        let mut a = SimArena::new(0x1000_0000, 1 << 20);
        let p1 = a.alloc(100, 8);
        let p2 = a.alloc(100, 8);
        assert!(p2 >= p1 + 100);
        a.write_bytes(p1, &[1u8; 100]);
        a.write_bytes(p2, &[2u8; 100]);
        assert!(a.read_bytes(p1, 100).iter().all(|&b| b == 1));
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn overflow_panics() {
        let mut a = SimArena::new(0x1000_0000, 256);
        a.alloc(512, 8);
    }

    #[test]
    fn try_alloc_fails_cleanly_and_leaves_arena_usable() {
        let mut a = SimArena::new(0x1000_0000, 256);
        assert_eq!(a.try_alloc(512, 8), None);
        assert_eq!(a.used(), 0);
        let p = a.try_alloc(128, 64).expect("fits");
        assert_eq!(p % 64, 0);
        a.write_i32(p, 9);
        assert_eq!(a.read_i32(p), 9);
        // Alignment padding counts against capacity.
        assert_eq!(a.try_alloc(256, 64), None);
    }
}

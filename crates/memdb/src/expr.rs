//! Expression trees over integer rows.
//!
//! Two evaluation strategies exist, matching how differently the four
//! commercial systems plausibly executed predicates:
//!
//! * **compiled** — the whole predicate is one lean code path (System A/B
//!   style); the engine charges one `pred_eval` block per row;
//! * **interpreted** — a tree-walking evaluator dispatches per node (System
//!   C/D style); the engine charges a `pred_node` block *per node* per row,
//!   with branch-dense dispatch code that defeats the instruction
//!   prefetcher and pressures the BTB (§5.3).
//!
//! Evaluation itself is ordinary Rust and always produces the correct value;
//! the strategy only changes the *instrumentation* the filter operator emits.

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
}

/// An integer expression over a row; booleans are 0/1 like C.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference (index into the operator's output row).
    Col(usize),
    /// Integer literal.
    Const(i32),
    /// Comparison, yields 0/1.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical and (non-short-circuit, like most eval loops of the era).
    And(Box<Expr>, Box<Expr>),
    /// Logical or.
    Or(Box<Expr>, Box<Expr>),
    /// Logical not.
    Not(Box<Expr>),
    /// Arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
}

#[allow(clippy::should_implement_trait)] // builder DSL: col(a).add(col(b))
impl Expr {
    /// Column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Literal.
    pub fn lit(v: i32) -> Expr {
        Expr::Const(v)
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(rhs))
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(rhs))
    }

    /// `self == rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(rhs))
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(rhs))
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(rhs))
    }

    /// `self != rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(rhs))
    }

    /// `self AND rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    /// `self OR rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Add, Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// The paper's range predicate `lo < col AND col < hi`
    /// (`where a2 < Hi and a2 > Lo`).
    pub fn range(col: usize, lo: i32, hi: i32) -> Expr {
        Expr::col(col)
            .gt(Expr::lit(lo))
            .and(Expr::col(col).lt(Expr::lit(hi)))
    }

    /// Evaluates the expression against `row`.
    pub fn eval(&self, row: &[i32]) -> i32 {
        match self {
            Expr::Col(i) => row[*i],
            Expr::Const(v) => *v,
            Expr::Cmp(op, a, b) => {
                let (a, b) = (a.eval(row), b.eval(row));
                let r = match op {
                    CmpOp::Lt => a < b,
                    CmpOp::Le => a <= b,
                    CmpOp::Gt => a > b,
                    CmpOp::Ge => a >= b,
                    CmpOp::Eq => a == b,
                    CmpOp::Ne => a != b,
                };
                r as i32
            }
            Expr::And(a, b) => ((a.eval(row) != 0) & (b.eval(row) != 0)) as i32,
            Expr::Or(a, b) => ((a.eval(row) != 0) | (b.eval(row) != 0)) as i32,
            Expr::Not(a) => (a.eval(row) == 0) as i32,
            Expr::Arith(op, a, b) => {
                let (a, b) = (a.eval(row), b.eval(row));
                match op {
                    ArithOp::Add => a.wrapping_add(b),
                    ArithOp::Sub => a.wrapping_sub(b),
                    ArithOp::Mul => a.wrapping_mul(b),
                }
            }
        }
    }

    /// True if `eval` is nonzero.
    pub fn eval_bool(&self, row: &[i32]) -> bool {
        self.eval(row) != 0
    }

    /// Number of nodes (the interpreter dispatches once per node).
    pub fn node_count(&self) -> u32 {
        match self {
            Expr::Col(_) | Expr::Const(_) => 1,
            Expr::Cmp(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) | Expr::Arith(_, a, b) => {
                1 + a.node_count() + b.node_count()
            }
            Expr::Not(a) => 1 + a.node_count(),
        }
    }

    /// Largest column index referenced, if any.
    pub fn max_col(&self) -> Option<usize> {
        match self {
            Expr::Col(i) => Some(*i),
            Expr::Const(_) => None,
            Expr::Cmp(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) | Expr::Arith(_, a, b) => {
                match (a.max_col(), b.max_col()) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (x, y) => x.or(y),
                }
            }
            Expr::Not(a) => a.max_col(),
        }
    }

    /// Collects all referenced column indexes (deduplicated, sorted).
    pub fn cols(&self) -> Vec<usize> {
        fn walk(e: &Expr, out: &mut Vec<usize>) {
            match e {
                Expr::Col(i) => out.push(*i),
                Expr::Const(_) => {}
                Expr::Cmp(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) | Expr::Arith(_, a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Expr::Not(a) => walk(a, out),
            }
        }
        let mut v = Vec::new();
        walk(self, &mut v);
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_predicate_matches_paper_semantics() {
        // where a2 < Hi and a2 > Lo — strict on both ends.
        let p = Expr::range(1, 10, 20);
        assert!(!p.eval_bool(&[0, 10, 0]));
        assert!(p.eval_bool(&[0, 11, 0]));
        assert!(p.eval_bool(&[0, 19, 0]));
        assert!(!p.eval_bool(&[0, 20, 0]));
        assert_eq!(p.node_count(), 7, "And + 2 Cmp + 2 Col + 2 Const");
    }

    #[test]
    fn arithmetic_and_logic() {
        let e = Expr::col(0).add(Expr::col(1)).mul(Expr::lit(3));
        assert_eq!(e.eval(&[2, 4]), 18);
        let b = Expr::col(0)
            .eq(Expr::lit(5))
            .or(Expr::col(1).ne(Expr::lit(0)));
        assert_eq!(b.eval(&[5, 0]), 1);
        assert_eq!(b.eval(&[4, 0]), 0);
        assert_eq!(b.eval(&[4, 9]), 1);
        let n = Expr::Not(Box::new(Expr::lit(0)));
        assert_eq!(n.eval(&[]), 1);
    }

    #[test]
    fn cols_and_max_col() {
        let e = Expr::range(3, 1, 2).and(Expr::col(7).ge(Expr::col(3)));
        assert_eq!(e.cols(), vec![3, 7]);
        assert_eq!(e.max_col(), Some(7));
        assert_eq!(Expr::lit(1).max_col(), None);
    }

    #[test]
    fn wrapping_arithmetic_does_not_panic() {
        let e = Expr::lit(i32::MAX).add(Expr::lit(1));
        assert_eq!(e.eval(&[]), i32::MIN);
    }
}

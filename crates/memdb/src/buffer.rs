//! Buffer-pool page table.
//!
//! The database is memory resident (§4.2), so frames never get evicted —
//! but commercial systems still go through buffer-pool logic on every page
//! boundary: hash the page id, probe the page table, latch the frame. That
//! per-page code and its data traffic are exactly the "buffer pool
//! management instructions" the paper's third hypothesis (§5.2.2) blames for
//! extra L1I misses with larger records, so the page table is simulated
//! memory and the lookup is an instrumented code path.
//!
//! # Table layout and stall accounting
//!
//! The table is open-addressed (Fibonacci hash, linear probing) at a fixed
//! load factor ≤ 0.5, stored in the MISC segment as 16-byte entries:
//!
//! ```text
//! entry  +0            +8
//!        +-------------+---------------+
//!        | page_id + 1 | frame address |   (key 0 = empty slot)
//!        +-------------+---------------+
//! ```
//!
//! [`BufferPool::lookup_into`] itself reads host memory only; the caller
//! (`ExecEnv::lookup_page`) charges one instrumented 16-byte touch per
//! *probed* entry, with the access's [`wdtg_sim::MemDep`] class deciding how
//! a miss stalls the pipeline: sequential scans probe with `Demand`
//! (overlappable), rid fetches with `Chase` (serialized pointer chase).
//! Registration happens at load time and is deliberately uninstrumented,
//! matching the paper's pre-measurement loading phase (§4.3).
//!
//! The lookup cost is identical under both page layouts
//! ([`crate::heap::PageLayout`]): PAX reorganizes bytes *within* a frame,
//! not the page-id → frame mapping.

use crate::arena::SimArena;

/// Open-addressed page table mapping page id → frame address, stored in
/// simulated memory (MISC segment).
#[derive(Debug)]
pub struct BufferPool {
    table_base: u64,
    slots: u64,
    entries: u64,
}

/// Bytes per page-table entry: page id (8) + frame address (8).
const ENTRY_BYTES: u64 = 16;

impl BufferPool {
    /// Creates a page table sized for `expected_pages` registrations.
    pub fn new(misc: &mut SimArena, expected_pages: u64) -> Self {
        let slots = (expected_pages * 2).next_power_of_two().max(64);
        let table_base = misc.alloc(slots * ENTRY_BYTES, 64);
        BufferPool {
            table_base,
            slots,
            entries: 0,
        }
    }

    fn slot_of(&self, page_id: u64, probe: u64) -> u64 {
        // Fibonacci hashing; linear probing.
        let h = page_id.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> (64 - self.slots.trailing_zeros());
        (h + probe) & (self.slots - 1)
    }

    /// Registers a page (uninstrumented — done at load time).
    /// Panics if the table fills up; size it correctly at creation.
    pub fn register(&mut self, misc: &mut SimArena, page_id: u64, frame_addr: u64) {
        assert!(self.entries < self.slots, "page table full");
        for probe in 0..self.slots {
            let slot = self.slot_of(page_id, probe);
            let entry = self.table_base + slot * ENTRY_BYTES;
            let existing = misc.read_u64(entry);
            if existing == 0 || existing == page_id + 1 {
                if existing == 0 {
                    self.entries += 1;
                }
                // Keys are stored +1 so 0 means empty.
                misc.write_u64(entry, page_id + 1);
                misc.write_u64(entry + 8, frame_addr);
                return;
            }
        }
        unreachable!("probed every slot");
    }

    /// Looks up a page id, appending the probed entry addresses to a
    /// caller-owned buffer (the executor hot path reuses one buffer per
    /// query instead of allocating per page). The caller issues the
    /// instrumented loads for each probed entry — the data traffic of the
    /// lookup is part of the measured workload.
    pub fn lookup_into(&self, misc: &SimArena, page_id: u64, probed: &mut Vec<u64>) -> Option<u64> {
        for probe in 0..self.slots {
            let slot = self.slot_of(page_id, probe);
            let entry = self.table_base + slot * ENTRY_BYTES;
            probed.push(entry);
            let key = misc.read_u64(entry);
            if key == 0 {
                return None;
            }
            if key == page_id + 1 {
                return Some(misc.read_u64(entry + 8));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdtg_sim::segment;

    fn lookup(bp: &BufferPool, misc: &SimArena, page_id: u64) -> Option<(u64, Vec<u64>)> {
        let mut probed = Vec::new();
        let frame = bp.lookup_into(misc, page_id, &mut probed)?;
        Some((frame, probed))
    }

    #[test]
    fn register_and_lookup() {
        let mut misc = SimArena::new(segment::MISC, 1 << 20);
        let mut bp = BufferPool::new(&mut misc, 100);
        for i in 0..100u64 {
            bp.register(&mut misc, i, 0x1000_0000 + i * 8192);
        }
        for i in 0..100u64 {
            let (addr, probed) = lookup(&bp, &misc, i).expect("registered");
            assert_eq!(addr, 0x1000_0000 + i * 8192);
            assert!(!probed.is_empty());
        }
        assert!(lookup(&bp, &misc, 999).is_none());
    }

    #[test]
    fn reregistering_updates_in_place() {
        let mut misc = SimArena::new(segment::MISC, 1 << 20);
        let mut bp = BufferPool::new(&mut misc, 8);
        bp.register(&mut misc, 7, 0xaaaa0000);
        bp.register(&mut misc, 7, 0xbbbb0000);
        let (addr, _) = lookup(&bp, &misc, 7).unwrap();
        assert_eq!(addr, 0xbbbb0000);
    }

    #[test]
    fn lookup_into_reuses_the_caller_buffer() {
        let mut misc = SimArena::new(segment::MISC, 1 << 20);
        let mut bp = BufferPool::new(&mut misc, 8);
        bp.register(&mut misc, 1, 0x1000);
        bp.register(&mut misc, 2, 0x2000);
        let mut probed = Vec::new();
        assert_eq!(bp.lookup_into(&misc, 1, &mut probed), Some(0x1000));
        let first_len = probed.len();
        probed.clear();
        assert_eq!(bp.lookup_into(&misc, 2, &mut probed), Some(0x2000));
        assert!(
            !probed.is_empty() && first_len > 0,
            "probe addresses are appended"
        );
    }

    #[test]
    fn lookups_usually_probe_once() {
        let mut misc = SimArena::new(segment::MISC, 1 << 20);
        let mut bp = BufferPool::new(&mut misc, 1000);
        for i in 0..1000u64 {
            bp.register(&mut misc, i, 0x1000 + i);
        }
        let total: usize = (0..1000u64)
            .map(|i| lookup(&bp, &misc, i).unwrap().1.len())
            .sum();
        assert!(
            total < 1600,
            "load factor 0.5 should keep probes short, got {total}"
        );
    }
}

//! # wdtg-memdb — an instrumented memory-resident relational DBMS
//!
//! The DBMS substrate for reproducing *"DBMSs On A Modern Processor: Where
//! Does Time Go?"* (VLDB 1999). One relational engine — slotted heap pages,
//! buffer pool, B+tree secondary indexes, hash joins, Volcano-style
//! iterators, interpreted and compiled predicate evaluation — configured
//! four ways ([`profiles::EngineProfile`]) to model the paper's anonymous
//! commercial Systems A–D.
//!
//! Every byte of table, index and working memory lives at a simulated
//! address; every operator invocation drives a [`wdtg_sim::Cpu`] with its
//! declared code path and its real data accesses. Query answers are computed
//! by ordinary Rust over real bytes (and are checked against naive oracles in
//! tests); the processor model makes the *cost* of computing them observable
//! through Pentium II-style counters.

#![warn(missing_docs)]

pub mod arena;
pub mod buffer;
pub mod db;
pub mod error;
pub mod exec;
pub mod expr;
pub mod fault;
pub mod heap;
pub mod index;
pub mod parallel;
pub mod profiles;
pub mod query;
pub mod schema;
pub mod shard;
pub mod sql;
pub mod testutil;
pub mod txn;

pub use arena::SimArena;
pub use db::{Database, DbCtx, IndexMeta, Table};
pub use error::{DbError, DbResult};
pub use exec::{AggState, Batch, ExecMode, SelectionMode, BATCH_ROWS};
pub use expr::{ArithOp, CmpOp, Expr};
pub use fault::{CancelToken, FaultPlan, FaultSite, ResourceBudget, RobustnessStats};
pub use heap::{HeapFile, PageLayout, Rid, PAGE_HDR, PAGE_SIZE};
pub use parallel::{run_jobs_parallel, ParallelConfig};
pub use profiles::{EngineBlocks, EngineProfile, EvalMode, JoinAlgo, Materialize, SystemId};
pub use query::{AggKind, AggSpec, Query, QueryPredicate, QueryResult};
pub use schema::{Column, Schema};
pub use shard::{RouterStats, ShardedDatabase};
pub use sql::Session;
pub use txn::{TxnId, TxnStats, Wal, WalOp, WalRecord};

/// The one-stop import for driving the engine through SQL.
///
/// ```
/// use wdtg_memdb::prelude::*;
/// ```
/// brings in the [`Session`] front door, both database types, the physical
/// knob enums a session tunes ([`ExecMode`], [`SelectionMode`], [`JoinAlgo`],
/// [`PageLayout`]) and the result/error types SQL calls return.
pub mod prelude {
    pub use crate::db::Database;
    pub use crate::error::{DbError, DbResult};
    pub use crate::exec::{ExecMode, SelectionMode};
    pub use crate::heap::PageLayout;
    pub use crate::profiles::JoinAlgo;
    pub use crate::query::{AggKind, AggSpec, Query, QueryPredicate, QueryResult};
    pub use crate::shard::ShardedDatabase;
    pub use crate::sql::{CandidateCost, PhysicalConfig, PlanReport, Session};
    pub use crate::txn::{TxnId, WalRecord};
}

//! Radix-partitioned hash join: the cache-conscious answer to the paper's
//! join finding.
//!
//! The paper's sequential join (§5, "SJ") spends its time in L2 *data*
//! misses: the naive [`crate::exec::join_hash::HashJoin`] builds one hash
//! table whose bucket directory plus entry pool exceed the 512 KB L2 (or is
//! steadily evicted by the probe-side scan streaming past it), so every
//! probe is a pointer chase into cold memory. Sirin & Ailamaki's
//! micro-architectural OLAP analysis shows the same story on modern cores,
//! and Durner et al. show the partitioning phase's allocation behaviour is a
//! first-order effect — which is why this operator scatters through
//! *arena-backed* column buffers (bump-allocated 4 KB chunks, no per-row
//! allocation) rather than growing per-partition vectors.
//!
//! # Algorithm
//!
//! 1. **Partition.** Both inputs are drained at `open` and radix-scattered
//!    into `2^k` partitions by the low bits of a multiplicative hash of the
//!    join key (the per-partition hash *table* uses the high bits, so
//!    partitioning steals no bucket entropy). `2^k` is chosen so one build
//!    partition's hash table fits comfortably in a quarter of the L2. Each
//!    partition stores its rows column-major in chunked
//!    [`crate::arena::SimArena`] buffers; appends are sequential per
//!    partition, so the scatter's data traffic is streaming stores.
//! 2. **Build + probe per partition.** For each partition, a hash table
//!    over its build rows is (re)built — it fits in cache — and its probe
//!    rows are replayed sequentially against it. Probe-side bucket and
//!    chain accesses keep their pointer-chasing character
//!    ([`wdtg_sim::MemDep::Chase`]) but now land in cache-resident lines.
//!
//! The trade the simulator must (and does) see: partitioning charges one
//! `part_scatter` path per input row plus the scatter/replay store and load
//! traffic of every partition buffer, and in exchange the probe phase's L2
//! data misses collapse. Batch mode amortizes the scatter and probe *code*
//! per batch ([`crate::profiles::BatchBlocks::partition_step`]) and streams
//! the buffer traffic through the simulator's contiguous-run fast lanes
//! ([`wdtg_sim::Cpu::store_run`], [`wdtg_sim::Cpu::load_run`]); the line
//! traffic itself is identical in both modes.

use std::sync::Arc;

use wdtg_sim::MemDep;

use crate::db::DbCtx;
use crate::error::DbResult;
use crate::exec::batch::{Batch, ExecMode};
use crate::exec::join_hash::HashJoin;
use crate::exec::{ExecEnv, Operator, BATCH_ROWS};
use crate::index::hash::{JoinHashTable, ENTRY_BYTES};
use crate::profiles::EngineBlocks;

/// Rows per arena chunk of one partition column (4 KB of `i32`s — one
/// allocation amortizes a thousand appends, the Durner et al. lesson).
const CHUNK_ROWS: u32 = 1024;

/// One partition's rows, stored column-major in chunked arena buffers.
///
/// Each column is a list of fixed-size arena chunks; row `r` of column `c`
/// lives at `chunks[r / CHUNK_ROWS] + (r % CHUNK_ROWS) * 4`. Appends within
/// a partition are sequential, which is what makes the scatter's store
/// traffic streaming rather than random.
struct Partition {
    /// Per-column chunk base addresses (all columns share `rows`).
    col_chunks: Vec<Vec<u64>>,
    /// Rows appended so far.
    rows: u32,
}

impl Partition {
    fn new(arity: usize) -> Partition {
        Partition {
            col_chunks: vec![Vec::new(); arity],
            rows: 0,
        }
    }

    /// Simulated address of `(row, col)`.
    #[inline]
    fn addr(&self, row: u32, col: usize) -> u64 {
        self.col_chunks[col][(row / CHUNK_ROWS) as usize] + (row % CHUNK_ROWS) as u64 * 4
    }

    /// Grows every column's chunk list to hold `rows + extra` rows, through
    /// the fallible allocation seam ([`DbCtx::try_alloc_index`], which
    /// applies the injected-fault and arena-budget checks). On failure no
    /// column is grown, so a partition stays structurally consistent while
    /// the join abandons the partitioned plan and degrades.
    fn reserve(&mut self, ctx: &mut DbCtx, extra: u32) -> DbResult<()> {
        let need_chunks = (self.rows + extra).div_ceil(CHUNK_ROWS) as usize;
        while self.col_chunks[0].len() < need_chunks {
            let mut fresh = Vec::with_capacity(self.col_chunks.len());
            for _ in 0..self.col_chunks.len() {
                fresh.push(ctx.try_alloc_index(CHUNK_ROWS as u64 * 4, 64)?);
            }
            for (chunks, addr) in self.col_chunks.iter_mut().zip(fresh) {
                chunks.push(addr);
            }
        }
        Ok(())
    }

    /// Appends one row with instrumented stores (row-mode scatter).
    fn append_row(&mut self, ctx: &mut DbCtx, row: &[i32]) -> DbResult<()> {
        debug_assert_eq!(row.len(), self.col_chunks.len());
        self.reserve(ctx, 1)?;
        for (c, &v) in row.iter().enumerate() {
            ctx.store_i32(self.addr(self.rows, c), v, MemDep::Demand);
        }
        self.rows += 1;
        Ok(())
    }

    /// Appends a group of rows gathered from `batch` (batch-mode scatter):
    /// values are written raw, then each column's new span is charged as
    /// contiguous store runs — the same lines row-mode appends would dirty,
    /// with the per-value bookkeeping amortized. Callers reserve capacity
    /// for the whole batch first, so a memory-pressure failure never leaves
    /// a batch half-absorbed.
    fn append_batch_rows(
        &mut self,
        ctx: &mut DbCtx,
        batch: &Batch,
        rows: &[usize],
    ) -> DbResult<()> {
        self.reserve(ctx, rows.len() as u32)?;
        let start = self.rows;
        for (k, &r) in rows.iter().enumerate() {
            let row_no = start + k as u32;
            for c in 0..self.col_chunks.len() {
                ctx.index.write_i32(self.addr(row_no, c), batch.value(c, r));
            }
        }
        self.rows = start + rows.len() as u32;
        for c in 0..self.col_chunks.len() {
            self.charge_spans(ctx, c, start, self.rows, true);
        }
        Ok(())
    }

    /// Charges the contiguous chunk-bounded spans of column `c` covering
    /// rows `[from, to)` as run stores (`write`) or run loads.
    fn charge_spans(&self, ctx: &mut DbCtx, c: usize, from: u32, to: u32, write: bool) {
        let mut row = from;
        while row < to {
            let end = ((row / CHUNK_ROWS) + 1) * CHUNK_ROWS;
            let end = end.min(to);
            let len = (end - row) * 4;
            if write {
                ctx.store_run(self.addr(row, c), len, MemDep::Demand);
            } else {
                ctx.touch_run(self.addr(row, c), len, MemDep::Demand);
            }
            row = end;
        }
    }
}

/// Radix-partitioned hash join emitting `probe_row ++ build_row`.
pub struct PartitionedHashJoin {
    build: Box<dyn Operator>,
    build_key: usize,
    probe: Box<dyn Operator>,
    probe_key: usize,
    blocks: Arc<EngineBlocks>,
    l2_bytes: u32,
    // partition state (after open)
    build_parts: Vec<Partition>,
    probe_parts: Vec<Partition>,
    cur_part: usize,
    /// Hash table over the current partition's build rows.
    table: Option<JoinHashTable>,
    /// The current partition's build rows, replayed out of its buffers.
    part_build_rows: Vec<Vec<i32>>,
    // probe cursor within the current partition
    probe_pos: u32,
    probe_row: Vec<i32>,
    chain: u64,
    // batch-mode probe staging
    probe_batch: Batch,
    probe_batch_pos: usize,
    out_scratch: Vec<i32>,
    scatter_groups: Vec<Vec<usize>>,
    // graceful-degradation state: when partition arenas hit memory
    // pressure the join downgrades to one naive hash table (see
    // `downgrade_open`) instead of failing the query.
    /// True once the join has downgraded to the naive single-table plan.
    fallback: bool,
    /// Probe rows consumed from the child but not recorded in any
    /// partition at downgrade time (at most one in-flight batch); the
    /// fallback re-probes these before streaming the rest of the child.
    fb_pending: Vec<Vec<i32>>,
    fb_pending_pos: usize,
    /// True once the fallback has replayed every scattered probe partition
    /// and now streams the probe child directly.
    fb_stream: bool,
}

impl PartitionedHashJoin {
    /// Creates the join; both children are drained and partitioned at
    /// `open`. `l2_bytes` is the simulated L2 capacity the partition fan-out
    /// is sized against.
    pub fn new(
        build: Box<dyn Operator>,
        build_key: usize,
        probe: Box<dyn Operator>,
        probe_key: usize,
        blocks: Arc<EngineBlocks>,
        l2_bytes: u32,
    ) -> Self {
        PartitionedHashJoin {
            build,
            build_key,
            probe,
            probe_key,
            blocks,
            l2_bytes,
            build_parts: Vec::new(),
            probe_parts: Vec::new(),
            cur_part: 0,
            table: None,
            part_build_rows: Vec::new(),
            probe_pos: 0,
            probe_row: Vec::new(),
            chain: 0,
            probe_batch: Batch::default(),
            probe_batch_pos: 0,
            out_scratch: Vec::new(),
            scatter_groups: Vec::new(),
            fallback: false,
            fb_pending: Vec::new(),
            fb_pending_pos: 0,
            fb_stream: false,
        }
    }

    /// Partition index of `key`: the *low* bits of the multiplicative hash.
    /// [`JoinHashTable::bucket_of`] uses the high bits, so rows that share a
    /// partition still spread over the whole per-partition directory — the
    /// classic radix-join pitfall (partition bits aliasing bucket bits,
    /// which collapses every partition onto a sliver of its directory) is
    /// avoided by construction.
    #[inline]
    fn part_of(key: i32, n_parts: usize) -> usize {
        let h = (key as u32 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h & (n_parts as u64 - 1)) as usize
    }

    /// Fan-out so one build partition's table (directory + entry pool) fits
    /// in a quarter of the L2, leaving room for the sequential probe stream
    /// and the engine's code. Power of two, capped so tiny inputs do not
    /// shatter into empty partitions.
    fn fanout(l2_bytes: u32, build_rows: u64) -> usize {
        let per_row = ENTRY_BYTES + 8; // entry + its share of the directory
        let target = (l2_bytes as u64 / 4).max(4096);
        let parts = (build_rows * per_row).div_ceil(target);
        parts.next_power_of_two().clamp(1, 512) as usize
    }

    /// Drains the build child (mode-appropriate) into a staging vector.
    /// The child charges its own scan costs here; scatter costs are charged
    /// when the staged rows are scattered, once the fan-out is known.
    fn drain_build(&mut self, env: &mut ExecEnv<'_>) -> DbResult<Vec<Vec<i32>>> {
        let mut staged = Vec::new();
        match env.mode {
            ExecMode::Row => {
                let mut row = Vec::with_capacity(self.build.arity());
                while self.build.next(env, &mut row)? {
                    staged.push(row.clone());
                }
            }
            ExecMode::Batch => {
                let mut batch = Batch::new(self.build.arity());
                let mut row = Vec::with_capacity(self.build.arity());
                while self.build.next_batch(env, &mut batch)? {
                    for i in 0..batch.live_rows() {
                        batch.read_row(batch.live_index(i), &mut row);
                        staged.push(row.clone());
                    }
                }
            }
        }
        Ok(staged)
    }

    /// Scatters one batch of probe/build rows into `parts`, charging the
    /// batched scatter path: one `part_scatter` dispatch per batch, the
    /// tight `partition_step` loop per row, and per-partition contiguous
    /// store runs for the buffer appends.
    ///
    /// Capacity for every partition's share is reserved before any row is
    /// recorded, so a memory-pressure failure leaves the entire batch
    /// unabsorbed — the downgrade path can then re-probe it wholesale
    /// without double-counting rows already recorded in partitions.
    fn scatter_batch(
        env: &mut ExecEnv<'_>,
        blocks: &EngineBlocks,
        parts: &mut [Partition],
        batch: &Batch,
        key_col: usize,
        groups: &mut Vec<Vec<usize>>,
    ) -> DbResult<()> {
        env.ctx.exec(&blocks.part_scatter);
        env.ctx
            .exec_scaled(&blocks.batch.partition_step, batch.live_rows() as u32);
        groups.resize(parts.len(), Vec::new());
        for g in groups.iter_mut() {
            g.clear();
        }
        for i in 0..batch.live_rows() {
            let r = batch.live_index(i);
            let key = batch.value(key_col, r);
            groups[Self::part_of(key, parts.len())].push(r);
        }
        for (p, group) in groups.iter().enumerate() {
            if !group.is_empty() {
                parts[p].reserve(env.ctx, group.len() as u32)?;
            }
        }
        for (p, group) in groups.iter().enumerate() {
            if !group.is_empty() {
                parts[p].append_batch_rows(env.ctx, batch, group)?;
            }
        }
        Ok(())
    }

    /// Builds the cache-resident hash table over partition `p`'s build rows,
    /// replaying them out of the partition buffers (sequential loads) and
    /// charging the same per-insert bucket/entry traffic as the naive join.
    fn build_partition_table(&mut self, env: &mut ExecEnv<'_>, p: usize) {
        let part = &self.build_parts[p];
        let arity = self.build.arity();
        let mut table = JoinHashTable::new(&mut env.ctx.index, part.rows.max(1) as u64);
        self.part_build_rows.clear();
        match env.mode {
            ExecMode::Row => {
                for i in 0..part.rows {
                    let mut row = Vec::with_capacity(arity);
                    for c in 0..arity {
                        row.push(env.ctx.load_i32(part.addr(i, c), MemDep::Demand));
                    }
                    env.ctx.exec(&self.blocks.hash_build);
                    HashJoin::insert_staged(env, &mut table, row[self.build_key], i as u64);
                    self.part_build_rows.push(row);
                }
            }
            ExecMode::Batch => {
                let mut i = 0u32;
                while i < part.rows {
                    let n = (part.rows - i).min(BATCH_ROWS as u32);
                    env.ctx.exec(&self.blocks.hash_build);
                    env.ctx.exec_scaled(&self.blocks.batch.hash_step, n);
                    for c in 0..arity {
                        part.charge_spans(env.ctx, c, i, i + n, false);
                    }
                    for k in i..i + n {
                        let mut row = Vec::with_capacity(arity);
                        for c in 0..arity {
                            row.push(env.ctx.read_raw_i32(part.addr(k, c)));
                        }
                        HashJoin::insert_staged(env, &mut table, row[self.build_key], k as u64);
                        self.part_build_rows.push(row);
                    }
                    i += n;
                }
            }
        }
        self.table = Some(table);
    }

    /// Advances to the next partition with probe rows left to replay;
    /// returns false when all partitions are exhausted. Entering a fresh
    /// partition builds its table; partitions with no probe rows are
    /// skipped without building (nothing would be probed). Partition entry
    /// is the join's natural cooperative guardrail checkpoint.
    fn enter_next_partition(&mut self, env: &mut ExecEnv<'_>) -> DbResult<bool> {
        if self.table.is_some() {
            if self.probe_pos < self.probe_parts[self.cur_part].rows {
                return Ok(true);
            }
            self.table = None;
            self.cur_part += 1;
        }
        while self.cur_part < self.build_parts.len() {
            if self.probe_parts[self.cur_part].rows == 0 {
                self.cur_part += 1;
                continue;
            }
            env.budget_checkpoint(&self.blocks.budget_check)?;
            self.build_partition_table(env, self.cur_part);
            self.probe_pos = 0;
            self.probe_batch.reset(self.probe.arity());
            self.probe_batch_pos = 0;
            return Ok(true);
        }
        Ok(false)
    }

    /// Reads the next probe row of the current partition (row mode):
    /// sequential instrumented loads from the partition buffers, then the
    /// probe path and the bucket-head chase.
    fn load_next_probe_row(&mut self, env: &mut ExecEnv<'_>) {
        let part = &self.probe_parts[self.cur_part];
        let arity = self.probe.arity();
        self.probe_row.clear();
        for c in 0..arity {
            self.probe_row.push(
                env.ctx
                    .load_i32(part.addr(self.probe_pos, c), MemDep::Demand),
            );
        }
        self.probe_pos += 1;
        env.ctx.exec(&self.blocks.hash_probe);
        let key = self.probe_row[self.probe_key];
        let table = self.table.as_ref().expect("partition table built");
        env.ctx.touch(table.bucket_addr(key), 8, MemDep::Chase);
        self.chain = table.chain_head(&env.ctx.index, key);
    }

    /// Refills the batch-mode probe staging batch from the current
    /// partition's buffers: per-column contiguous load runs plus the batched
    /// probe code (one `hash_probe` dispatch, the tight loop per row).
    fn refill_probe_batch(&mut self, env: &mut ExecEnv<'_>) {
        let part = &self.probe_parts[self.cur_part];
        let arity = self.probe.arity();
        let n = (part.rows - self.probe_pos).min(BATCH_ROWS as u32);
        self.probe_batch.reset(arity);
        env.ctx.exec(&self.blocks.hash_probe);
        env.ctx.exec_scaled(&self.blocks.batch.hash_step, n);
        for c in 0..arity {
            part.charge_spans(env.ctx, c, self.probe_pos, self.probe_pos + n, false);
            let col = self.probe_batch.col_mut(c);
            for k in 0..n {
                col.push(env.ctx.read_raw_i32(part.addr(self.probe_pos + k, c)));
            }
        }
        self.probe_batch.set_rows(n as usize);
        self.probe_batch_pos = 0;
        self.probe_pos += n;
    }

    /// Scatters the staged build rows into their partitions (mode-appropriate
    /// charging). `staged` stays owned by the caller: it is the downgrade
    /// path's build input if a partition arena hits memory pressure.
    fn scatter_build_side(
        &mut self,
        env: &mut ExecEnv<'_>,
        staged: &[Vec<i32>],
        n_parts: usize,
    ) -> DbResult<()> {
        match env.mode {
            ExecMode::Row => {
                for row in staged {
                    env.ctx.exec(&self.blocks.part_scatter);
                    let p = Self::part_of(row[self.build_key], n_parts);
                    self.build_parts[p].append_row(env.ctx, row)?;
                }
            }
            ExecMode::Batch => {
                let mut groups = std::mem::take(&mut self.scatter_groups);
                let mut batch = Batch::new(self.build.arity());
                let mut result = Ok(());
                for chunk in staged.chunks(BATCH_ROWS) {
                    batch.reset(self.build.arity());
                    for row in chunk {
                        batch.push_row(row);
                    }
                    if let Err(e) = Self::scatter_batch(
                        env,
                        &self.blocks,
                        &mut self.build_parts,
                        &batch,
                        self.build_key,
                        &mut groups,
                    ) {
                        result = Err(e);
                        break;
                    }
                }
                self.scatter_groups = groups;
                result?;
            }
        }
        Ok(())
    }

    /// Streams the probe child into its partitions. On memory pressure, any
    /// probe rows already consumed from the child but not recorded in a
    /// partition are stashed in `fb_pending` so the downgrade path loses
    /// nothing: row mode stashes the single in-flight row, batch mode the
    /// whole failed batch (which `scatter_batch`'s reserve-first ordering
    /// guarantees is entirely unabsorbed).
    fn scatter_probe_side(&mut self, env: &mut ExecEnv<'_>, n_parts: usize) -> DbResult<()> {
        match env.mode {
            ExecMode::Row => {
                let mut row = Vec::with_capacity(self.probe.arity());
                while self.probe.next(env, &mut row)? {
                    env.ctx.exec(&self.blocks.part_scatter);
                    let p = Self::part_of(row[self.probe_key], n_parts);
                    if let Err(e) = self.probe_parts[p].append_row(env.ctx, &row) {
                        if e.is_memory_pressure() {
                            self.fb_pending.push(row.clone());
                        }
                        return Err(e);
                    }
                }
            }
            ExecMode::Batch => {
                let mut groups = std::mem::take(&mut self.scatter_groups);
                let mut batch = Batch::new(self.probe.arity());
                let result = loop {
                    match self.probe.next_batch(env, &mut batch) {
                        Ok(true) => {}
                        Ok(false) => break Ok(()),
                        Err(e) => break Err(e),
                    }
                    if let Err(e) = Self::scatter_batch(
                        env,
                        &self.blocks,
                        &mut self.probe_parts,
                        &batch,
                        self.probe_key,
                        &mut groups,
                    ) {
                        if e.is_memory_pressure() {
                            let mut row = Vec::with_capacity(self.probe.arity());
                            for i in 0..batch.live_rows() {
                                batch.read_row(batch.live_index(i), &mut row);
                                self.fb_pending.push(row.clone());
                            }
                        }
                        break Err(e);
                    }
                };
                self.scatter_groups = groups;
                result?;
            }
        }
        Ok(())
    }

    /// Graceful degradation: a partition arena hit memory pressure (an
    /// arena-budget breach, an injected allocation fault, or genuine
    /// exhaustion), so the partitioned plan is abandoned and one naive hash
    /// table — the [`HashJoin`] strategy, with its cache behaviour honestly
    /// charged per insert — is built over the staged build rows. Probe rows
    /// already recorded in partitions are replayed out of their buffers;
    /// the in-flight remainder (`fb_pending`) and the rest of the probe
    /// stream are probed directly. The downgrade is recorded in
    /// [`crate::RobustnessStats::join_downgrades`].
    fn downgrade_open(&mut self, env: &mut ExecEnv<'_>, staged: Vec<Vec<i32>>) -> DbResult<()> {
        env.ctx.fault.note_downgrade();
        let mut table = JoinHashTable::new(&mut env.ctx.index, staged.len().max(1) as u64);
        for (i, row) in staged.iter().enumerate() {
            env.ctx.exec(&self.blocks.hash_build);
            HashJoin::insert_staged(env, &mut table, row[self.build_key], i as u64);
        }
        // The degraded plan is the engine's memory floor: the partition
        // chunks it abandoned plus this one compact table. Restart the
        // query's arena accounting here so an armed arena budget governs
        // the fallback's *further* growth at later checkpoints instead of
        // instantly re-failing the query the downgrade just saved.
        env.ctx.query_start_arena = env.ctx.arena_used();
        self.part_build_rows = staged;
        self.table = Some(table);
        self.build_parts = Vec::new();
        self.fallback = true;
        self.fb_pending_pos = 0;
        self.fb_stream = false;
        self.cur_part = 0;
        self.probe_pos = 0;
        self.chain = 0;
        self.probe_batch.reset(self.probe.arity());
        self.probe_batch_pos = 0;
        Ok(())
    }

    /// Fallback probe-row acquisition: pending rows first, then replay of
    /// the already-scattered probe partitions (instrumented sequential
    /// loads), then the rest of the probe child stream. Charges the naive
    /// probe path per row and primes the chain cursor.
    fn next_fallback_probe_row(&mut self, env: &mut ExecEnv<'_>) -> DbResult<bool> {
        let got = loop {
            if self.fb_pending_pos < self.fb_pending.len() {
                let row = &self.fb_pending[self.fb_pending_pos];
                self.probe_row.clear();
                self.probe_row.extend_from_slice(row);
                self.fb_pending_pos += 1;
                break true;
            }
            if !self.fb_stream {
                if self.cur_part < self.probe_parts.len() {
                    if self.probe_pos < self.probe_parts[self.cur_part].rows {
                        let part = &self.probe_parts[self.cur_part];
                        self.probe_row.clear();
                        for c in 0..self.probe.arity() {
                            self.probe_row.push(
                                env.ctx
                                    .load_i32(part.addr(self.probe_pos, c), MemDep::Demand),
                            );
                        }
                        self.probe_pos += 1;
                        break true;
                    }
                    self.cur_part += 1;
                    self.probe_pos = 0;
                    continue;
                }
                self.fb_stream = true;
                continue;
            }
            if !self.probe.next(env, &mut self.probe_row)? {
                break false;
            }
            break true;
        };
        if !got {
            return Ok(false);
        }
        env.ctx.exec(&self.blocks.hash_probe);
        let key = self.probe_row[self.probe_key];
        let table = self.table.as_ref().expect("fallback table built");
        env.ctx.touch(table.bucket_addr(key), 8, MemDep::Chase);
        self.chain = table.chain_head(&env.ctx.index, key);
        Ok(true)
    }
}

impl Operator for PartitionedHashJoin {
    fn open(&mut self, env: &mut ExecEnv<'_>) -> DbResult<()> {
        self.fallback = false;
        self.fb_pending.clear();
        self.fb_pending_pos = 0;
        self.fb_stream = false;

        // Drain the build side first: its cardinality sizes the fan-out
        // (real engines know |S| from the catalog or a sample; the staging
        // copy is host bookkeeping, the scatter below charges the work).
        self.build.open(env)?;
        let staged = self.drain_build(env)?;
        let n_parts = Self::fanout(self.l2_bytes, staged.len() as u64);
        self.build_parts = (0..n_parts)
            .map(|_| Partition::new(self.build.arity()))
            .collect();
        self.probe_parts = (0..n_parts)
            .map(|_| Partition::new(self.probe.arity()))
            .collect();

        // Scatter the build side. `staged` is kept alive through the probe
        // scatter: it is the downgrade path's build input if the partition
        // arenas hit memory pressure (anything else propagates unchanged).
        if let Err(e) = self.scatter_build_side(env, &staged, n_parts) {
            if e.is_memory_pressure() {
                self.probe.open(env)?;
                return self.downgrade_open(env, staged);
            }
            return Err(e);
        }

        // Stream the probe side straight into its partitions.
        self.probe.open(env)?;
        if let Err(e) = self.scatter_probe_side(env, n_parts) {
            if e.is_memory_pressure() {
                return self.downgrade_open(env, staged);
            }
            return Err(e);
        }

        self.cur_part = 0;
        self.table = None;
        self.chain = 0;
        self.probe_pos = 0;
        self.probe_batch.reset(self.probe.arity());
        self.probe_batch_pos = 0;
        Ok(())
    }

    fn next(&mut self, env: &mut ExecEnv<'_>, out: &mut Vec<i32>) -> DbResult<bool> {
        loop {
            // Walk the pending chain of the current probe row.
            while self.chain != 0 {
                let entry_addr = self.chain;
                env.ctx.touch(entry_addr, 20, MemDep::Chase);
                let table = self.table.as_ref().expect("partition table built");
                let (k, payload, next) = table.entry(&env.ctx.index, entry_addr);
                self.chain = next;
                let key = self.probe_row[self.probe_key];
                let matched = k == key;
                env.ctx.branch(self.blocks.match_site, matched);
                if matched {
                    env.ctx.exec(&self.blocks.join_match);
                    out.clear();
                    out.extend_from_slice(&self.probe_row);
                    out.extend_from_slice(&self.part_build_rows[payload as usize]);
                    return Ok(true);
                }
            }
            if self.fallback {
                if !self.next_fallback_probe_row(env)? {
                    return Ok(false);
                }
            } else {
                if !self.enter_next_partition(env)? {
                    return Ok(false);
                }
                self.load_next_probe_row(env);
            }
        }
    }

    fn next_batch(&mut self, env: &mut ExecEnv<'_>, out: &mut Batch) -> DbResult<bool> {
        if self.fallback {
            // Degraded path: row-at-a-time probing shaped into batches —
            // the downgrade trades vectorized probing for survival, and
            // that cost is honestly charged through the row path.
            out.reset(self.arity());
            let mut row = Vec::with_capacity(self.arity());
            while !out.is_full() {
                if !self.next(env, &mut row)? {
                    break;
                }
                out.push_row(&row);
            }
            return Ok(!out.is_empty());
        }
        out.reset(self.arity());
        let mut matches_in_batch: u32 = 0;
        loop {
            // Drain the pending chain, pausing at batch capacity (skewed
            // keys must not balloon one output batch).
            while self.chain != 0 && !out.is_full() {
                let entry_addr = self.chain;
                env.ctx.touch(entry_addr, 20, MemDep::Chase);
                let table = self.table.as_ref().expect("partition table built");
                let (k, payload, next) = table.entry(&env.ctx.index, entry_addr);
                self.chain = next;
                let key = self.probe_row[self.probe_key];
                let matched = k == key;
                env.ctx.branch(self.blocks.match_site, matched);
                if matched {
                    matches_in_batch += 1;
                    self.out_scratch.clear();
                    self.out_scratch.extend_from_slice(&self.probe_row);
                    self.out_scratch
                        .extend_from_slice(&self.part_build_rows[payload as usize]);
                    out.push_row(&self.out_scratch);
                }
            }
            if out.is_full() {
                break;
            }
            // Next probe row from the staged probe batch.
            if self.probe_batch_pos < self.probe_batch.len() {
                self.probe_batch
                    .read_row(self.probe_batch_pos, &mut self.probe_row);
                self.probe_batch_pos += 1;
                let table = self.table.as_ref().expect("partition table built");
                let key = self.probe_row[self.probe_key];
                env.ctx.touch(table.bucket_addr(key), 8, MemDep::Chase);
                self.chain = table.chain_head(&env.ctx.index, key);
                continue;
            }
            // Refill from the current partition, or move to the next one.
            if !self.enter_next_partition(env)? {
                break;
            }
            self.refill_probe_batch(env);
        }
        if matches_in_batch > 0 {
            env.ctx
                .exec_scaled(&self.blocks.join_match, matches_in_batch);
        }
        Ok(!out.is_empty())
    }

    fn arity(&self) -> usize {
        self.probe.arity() + self.build.arity()
    }
}

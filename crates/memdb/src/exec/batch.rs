//! Column-major tuple batches for the vectorized execution path.
//!
//! A [`Batch`] holds up to [`BATCH_ROWS`] rows decomposed into per-column
//! vectors, the layout MonetDB/X100-style engines use so that operator inner
//! loops run over contiguous arrays instead of dispatching once per tuple.
//! Operators fill batches through [`crate::exec::Operator::next_batch`];
//! which execution path a query uses is selected per database via
//! [`ExecMode`].

/// Which executor drives a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecMode {
    /// Volcano row-at-a-time pulls: one `next()` call — and one pass through
    /// every operator's code path — per tuple (the late-90s engines the
    /// paper measures).
    #[default]
    Row,
    /// Vectorized pulls: operators exchange [`Batch`]es and charge the
    /// engine's per-batch dispatch plus an amortized tight-loop cost per
    /// tuple, collapsing the per-tuple instruction footprint.
    Batch,
}

/// Target number of rows per batch: large enough to amortize per-batch
/// dispatch to noise, small enough that a batch of a few columns stays
/// cache-resident (the classic vector-size sweet spot).
pub const BATCH_ROWS: usize = 1024;

/// A column-major batch of `i32` tuples.
///
/// A batch optionally carries a **selection vector** — ascending physical
/// row indices naming the rows that are logically alive. The predicated
/// filter ([`crate::exec::filter::SelectionMode::Predicated`]) qualifies
/// rows by *installing* a selection instead of compacting the columns, so
/// no data-dependent copy (and no data-dependent branch) happens; downstream
/// operators iterate `0..live_rows()` and resolve physical positions with
/// [`Batch::live_index`], which is the identity when no selection is set.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    cols: Vec<Vec<i32>>,
    rows: usize,
    sel: Vec<u32>,
    has_sel: bool,
}

impl Batch {
    /// Creates an empty batch with `arity` columns.
    pub fn new(arity: usize) -> Batch {
        let mut b = Batch::default();
        b.reset(arity);
        b
    }

    /// Clears the batch and (re)shapes it to `arity` columns, keeping the
    /// column allocations.
    pub fn reset(&mut self, arity: usize) {
        if self.cols.len() > arity {
            self.cols.truncate(arity);
        } else {
            while self.cols.len() < arity {
                self.cols.push(Vec::with_capacity(BATCH_ROWS));
            }
        }
        for c in &mut self.cols {
            c.clear();
        }
        self.rows = 0;
        self.clear_selection();
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Whether the batch reached its target size.
    pub fn is_full(&self) -> bool {
        self.rows >= BATCH_ROWS
    }

    /// One column as a slice.
    pub fn col(&self, c: usize) -> &[i32] {
        &self.cols[c]
    }

    /// Mutable access to one column's backing vector, for columnar fills.
    /// The caller must leave all columns at equal length and then call
    /// [`Batch::set_rows`].
    pub fn col_mut(&mut self, c: usize) -> &mut Vec<i32> {
        &mut self.cols[c]
    }

    /// Declares the row count after a columnar fill via [`Batch::col_mut`].
    pub fn set_rows(&mut self, rows: usize) {
        debug_assert!(self.cols.iter().all(|c| c.len() == rows), "ragged batch");
        self.rows = rows;
    }

    /// Installs `sel` as the selection vector: ascending physical row
    /// indices of the logically live rows. The column data is untouched —
    /// this is the whole point of predicated selection: qualifying rows
    /// costs no data-dependent copy and no data-dependent branch.
    ///
    /// # Panics
    ///
    /// Panics if `sel` is not strictly ascending or indexes past the
    /// batch's rows. These are real checks, not `debug_assert!`s: every
    /// downstream operator trusts [`Batch::live_index`] unconditionally, so
    /// in a release build a malformed selection would silently return the
    /// wrong rows or index out of bounds — a corrupt-answer path, which is
    /// worse than a loud panic at the point of corruption.
    pub fn set_selection(&mut self, sel: &[u32]) {
        assert!(
            sel.windows(2).all(|w| w[0] < w[1]),
            "selection must be ascending and duplicate-free"
        );
        assert!(
            sel.last().is_none_or(|&r| (r as usize) < self.rows),
            "selection index out of range"
        );
        self.sel.clear();
        self.sel.extend_from_slice(sel);
        self.has_sel = true;
    }

    /// The selection vector, if one is installed.
    pub fn selection(&self) -> Option<&[u32]> {
        self.has_sel.then_some(self.sel.as_slice())
    }

    /// Drops the selection vector: every physical row is live again.
    pub fn clear_selection(&mut self) {
        self.has_sel = false;
        self.sel.clear();
    }

    /// Number of logically live rows: the selection's length if one is
    /// installed, all physical rows otherwise.
    pub fn live_rows(&self) -> usize {
        if self.has_sel {
            self.sel.len()
        } else {
            self.rows
        }
    }

    /// Physical row index of the `i`-th live row (`i < live_rows()`).
    #[inline]
    pub fn live_index(&self, i: usize) -> usize {
        if self.has_sel {
            self.sel[i] as usize
        } else {
            i
        }
    }

    /// Appends one row (arity must match).
    pub fn push_row(&mut self, row: &[i32]) {
        debug_assert_eq!(row.len(), self.cols.len(), "row arity mismatch");
        debug_assert!(!self.has_sel, "cannot append under a selection vector");
        for (c, &v) in self.cols.iter_mut().zip(row) {
            c.push(v);
        }
        self.rows += 1;
    }

    /// Value at (column, row).
    pub fn value(&self, c: usize, r: usize) -> i32 {
        self.cols[c][r]
    }

    /// Gathers row `r` into `out` (cleared first).
    pub fn read_row(&self, r: usize, out: &mut Vec<i32>) {
        out.clear();
        for c in &self.cols {
            out.push(c[r]);
        }
    }

    /// Keeps only the rows whose `keep` flag is set, compacting every column
    /// in place (the branching vectorized selection primitive; `keep` is
    /// indexed by physical row). Any installed selection vector is consumed:
    /// the caller is expected to have pre-masked `keep` with it, and the
    /// compacted batch is fully live.
    pub fn retain_rows(&mut self, keep: &[bool]) {
        debug_assert_eq!(keep.len(), self.rows);
        for c in &mut self.cols {
            let mut w = 0;
            for r in 0..keep.len() {
                if keep[r] {
                    c[w] = c[r];
                    w += 1;
                }
            }
            c.truncate(w);
        }
        self.rows = keep.iter().filter(|&&k| k).count();
        self.clear_selection();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_round_trip() {
        let mut b = Batch::new(3);
        b.push_row(&[1, 2, 3]);
        b.push_row(&[4, 5, 6]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.col(1), &[2, 5]);
        let mut row = Vec::new();
        b.read_row(1, &mut row);
        assert_eq!(row, vec![4, 5, 6]);
    }

    #[test]
    fn retain_rows_compacts_all_columns() {
        let mut b = Batch::new(2);
        for i in 0..6 {
            b.push_row(&[i, 10 * i]);
        }
        b.retain_rows(&[true, false, true, false, false, true]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.col(0), &[0, 2, 5]);
        assert_eq!(b.col(1), &[0, 20, 50]);
    }

    #[test]
    fn reset_reshapes_and_keeps_capacity() {
        let mut b = Batch::new(2);
        b.push_row(&[1, 2]);
        b.reset(4);
        assert_eq!(b.arity(), 4);
        assert!(b.is_empty());
        b.reset(1);
        assert_eq!(b.arity(), 1);
    }

    #[test]
    fn selection_vector_leaves_columns_untouched() {
        let mut b = Batch::new(2);
        for i in 0..6 {
            b.push_row(&[i, 10 * i]);
        }
        b.set_selection(&[1, 4]);
        assert_eq!(b.len(), 6, "physical rows unchanged");
        assert_eq!(b.live_rows(), 2);
        assert_eq!(b.live_index(0), 1);
        assert_eq!(b.value(1, b.live_index(1)), 40);
        assert_eq!(b.col(0), &[0, 1, 2, 3, 4, 5], "no compaction happened");
        b.clear_selection();
        assert_eq!(b.live_rows(), 6);
    }

    #[test]
    fn reset_drops_the_selection() {
        let mut b = Batch::new(1);
        b.push_row(&[7]);
        b.set_selection(&[0]);
        b.reset(1);
        assert!(b.selection().is_none());
        assert_eq!(b.live_rows(), 0);
    }

    #[test]
    fn retain_rows_consumes_the_selection() {
        let mut b = Batch::new(1);
        for i in 0..4 {
            b.push_row(&[i]);
        }
        b.set_selection(&[0, 2]);
        // keep pre-masked with the selection, as the branching filter does.
        b.retain_rows(&[true, false, true, false]);
        assert!(b.selection().is_none());
        assert_eq!(b.col(0), &[0, 2]);
        assert_eq!(b.live_rows(), 2);
    }

    // The set_selection invariants are enforced with real `assert!`s (not
    // `debug_assert!`s), so these regression tests hold in release builds
    // too — `cargo test --release` exercises exactly the same checks.
    #[test]
    #[should_panic(expected = "selection must be ascending")]
    fn unsorted_selection_is_rejected_in_every_profile() {
        let mut b = Batch::new(1);
        for i in 0..4 {
            b.push_row(&[i]);
        }
        b.set_selection(&[2, 1]);
    }

    #[test]
    #[should_panic(expected = "selection must be ascending")]
    fn duplicate_selection_indices_are_rejected() {
        let mut b = Batch::new(1);
        for i in 0..4 {
            b.push_row(&[i]);
        }
        b.set_selection(&[1, 1]);
    }

    #[test]
    #[should_panic(expected = "selection index out of range")]
    fn out_of_range_selection_is_rejected_in_every_profile() {
        let mut b = Batch::new(1);
        for i in 0..4 {
            b.push_row(&[i]);
        }
        // Would read past every column in live_index/value downstream.
        b.set_selection(&[0, 4]);
    }

    #[test]
    fn columnar_fill_via_col_mut() {
        let mut b = Batch::new(2);
        b.col_mut(0).extend_from_slice(&[7, 8]);
        b.col_mut(1).extend_from_slice(&[9, 10]);
        b.set_rows(2);
        assert_eq!(b.len(), 2);
        assert_eq!(b.value(1, 0), 9);
    }
}

//! Sequential heap scan.
//!
//! The workhorse of the paper's sequential range selection. Per page it runs
//! the page-open path (buffer-pool lookup + page latch/header decode — the
//! "buffer pool management instructions" of §5.2.2's third hypothesis); per
//! record it runs the scan-advance path and touches record bytes according
//! to the engine's materialization strategy. Cache-conscious engines
//! (System B) issue line prefetches ahead of the scan cursor, which converts
//! L2 data misses into hits (§5.2.1: B's L2 data miss rate is ≈2% on SRS).
//!
//! The batched path (`next_batch`) keeps the *data* side identical — the
//! same record touches and prefetches in the same order — but charges the
//! per-record code as one page-run of the engine's tight batch loop instead
//! of one full `scan_next` path per record, and streams whole-record runs
//! through the simulator's contiguous-run fast lane when the engine
//! materializes full records.

use std::rc::Rc;

use wdtg_sim::MemDep;

use crate::error::DbResult;
use crate::exec::batch::Batch;
use crate::exec::{ExecEnv, Operator};
use crate::heap::{HeapFile, HDR_NRECS, PAGE_HDR, PAGE_SIZE};
use crate::profiles::{EngineBlocks, Materialize};

/// Sequential scan over a heap file, projecting `cols`.
pub struct SeqScan {
    heap: HeapFile,
    cols: Vec<usize>,
    blocks: Rc<EngineBlocks>,
    materialize: Materialize,
    prefetch_lines_ahead: u32,
    // cursor state
    cur_page: u32,
    cur_slot: u32,
    page_addr: u64,
    page_records: u32,
    opened: bool,
}

impl SeqScan {
    /// Creates a scan over `heap` producing the given column positions.
    pub fn new(
        heap: HeapFile,
        cols: Vec<usize>,
        blocks: Rc<EngineBlocks>,
        materialize: Materialize,
        prefetch_lines_ahead: u32,
    ) -> Self {
        SeqScan {
            heap,
            cols,
            blocks,
            materialize,
            prefetch_lines_ahead,
            cur_page: 0,
            cur_slot: 0,
            page_addr: 0,
            page_records: 0,
            opened: false,
        }
    }

    /// Opens the next page through the buffer pool; false if no more pages.
    fn open_page(&mut self, env: &mut ExecEnv<'_>) -> DbResult<bool> {
        if self.cur_page >= self.heap.n_pages() {
            return Ok(false);
        }
        env.ctx.exec(&self.blocks.scan_page);
        env.ctx.exec(&self.blocks.bufpool_get);
        let page_id = self.heap.page_id(self.cur_page);
        let frame = env.lookup_page(page_id, MemDep::Demand)?;
        self.page_addr = frame;
        self.page_records = env.ctx.load_i32(frame + HDR_NRECS, MemDep::Demand) as u32;
        self.cur_slot = 0;
        // A prefetching scan also primes the head of the fresh page so the
        // scan-ahead window does not stall at every page boundary.
        if self.prefetch_lines_ahead > 0 {
            for l in 0..self.prefetch_lines_ahead.min(8) as u64 {
                env.ctx.prefetch(frame + 32 + l * 32);
            }
        }
        Ok(true)
    }

    /// Issues the cache-conscious scan-ahead prefetches for the record at
    /// `addr` (identical in row and batch mode, so System B's L2 data miss
    /// behaviour carries over).
    fn prefetch_record(&self, env: &mut ExecEnv<'_>, addr: u64) {
        let ahead = addr + self.prefetch_lines_ahead as u64 * 32;
        let lines_per_record = (self.heap.record_size as u64).div_ceil(32);
        for l in 0..lines_per_record {
            let target = ahead + l * 32;
            // Stay within the page; the next page is prefetched when
            // reached (its address is not known to scan-ahead hardware).
            if target < self.page_addr + PAGE_SIZE {
                env.ctx.prefetch(target);
            }
        }
    }
}

impl Operator for SeqScan {
    fn open(&mut self, env: &mut ExecEnv<'_>) -> DbResult<()> {
        self.cur_page = 0;
        self.opened = self.open_page(env)?;
        Ok(())
    }

    fn next(&mut self, env: &mut ExecEnv<'_>, out: &mut Vec<i32>) -> DbResult<bool> {
        if !self.opened {
            return Ok(false);
        }
        while self.cur_slot >= self.page_records {
            self.cur_page += 1;
            if !self.open_page(env)? {
                return Ok(false);
            }
        }
        let rec_size = self.heap.record_size as u64;
        let addr = self.page_addr + PAGE_HDR + self.cur_slot as u64 * rec_size;
        env.ctx.exec(&self.blocks.scan_next);

        // Cache-conscious scan: prefetch the lines the cursor will need
        // `prefetch_lines_ahead` lines from now, one record's worth per step
        // to keep pace with consumption.
        if self.prefetch_lines_ahead > 0 {
            self.prefetch_record(env, addr);
        }

        match self.materialize {
            Materialize::FullRecord => {
                // Copy the record into the private tuple buffer: read every
                // line of the record, write the tuple (hot, L1-resident),
                // and run the per-field extraction path once per column —
                // the per-record work that scales with record width
                // (§5.2.2's 2.5-4x growth from 20B to 200B records).
                env.ctx.touch(addr, self.heap.record_size, MemDep::Demand);
                env.ctx
                    .store_touch(self.blocks.tuple_buf, self.heap.record_size, MemDep::Demand);
                env.ctx
                    .exec_scaled(&self.blocks.field_extract, self.heap.record_size / 4);
            }
            Materialize::FieldsOnly => {
                for &c in &self.cols {
                    env.ctx.touch(addr + (c as u64) * 4, 4, MemDep::Demand);
                }
                env.ctx
                    .exec_scaled(&self.blocks.field_extract, self.cols.len() as u32);
            }
        }
        out.clear();
        for &c in &self.cols {
            out.push(env.ctx.read_raw_i32(addr + (c as u64) * 4));
        }
        self.cur_slot += 1;
        Ok(true)
    }

    fn next_batch(&mut self, env: &mut ExecEnv<'_>, out: &mut Batch) -> DbResult<bool> {
        out.reset(self.cols.len());
        if !self.opened {
            return Ok(false);
        }
        // One vector-dispatch per batch; page opens keep their row-mode cost
        // (the page-boundary code is per page either way).
        env.ctx.exec(&self.blocks.batch.dispatch);
        let rec_size = self.heap.record_size as u64;
        while !out.is_full() {
            if self.cur_slot >= self.page_records {
                self.cur_page += 1;
                if !self.open_page(env)? {
                    break;
                }
                continue;
            }
            // The run: the rest of this page, capped by batch capacity.
            let n = (self.page_records - self.cur_slot)
                .min((crate::exec::BATCH_ROWS - out.len()) as u32);
            let run_start = self.page_addr + PAGE_HDR + self.cur_slot as u64 * rec_size;

            // Per-tuple code, amortized: the tight loop is fetched once (or
            // once per chunk) and its pipeline cost scales with the run.
            // Cache-conscious engines interleave compute and prefetch in
            // small chunks: the hardware retires at most
            // `outstanding_misses` prefetches per memory latency, so a
            // chunk must not issue more than that before its compute
            // advances the clock — otherwise the bounded queue drops the
            // excess and the scan loses its prefetch hit rate. Row mode
            // paces issues naturally (one fat code path per record); the
            // vectorized loop paces them by chunking.
            let chunk = if self.prefetch_lines_ahead > 0 {
                let lines_per_record = (self.heap.record_size as u64).div_ceil(32) as u32;
                (env.ctx.cpu.config().pipe.outstanding_misses / lines_per_record).max(1)
            } else {
                n.max(1)
            };
            let mut done = 0u32;
            while done < n {
                let c = chunk.min(n - done);
                let chunk_start = run_start + done as u64 * rec_size;
                env.ctx.exec_scaled(&self.blocks.batch.scan_step, c);
                match self.materialize {
                    Materialize::FullRecord => {
                        if self.prefetch_lines_ahead > 0 {
                            // Row-mode issue-then-touch order per record.
                            for slot in 0..c {
                                let addr = chunk_start + slot as u64 * rec_size;
                                self.prefetch_record(env, addr);
                                env.ctx
                                    .touch_run(addr, self.heap.record_size, MemDep::Demand);
                            }
                        } else {
                            // Same line sequence as c per-record touches,
                            // resolved through the simulator's
                            // contiguous-run fast lane in one pass.
                            env.ctx.touch_run(
                                chunk_start,
                                c * self.heap.record_size,
                                MemDep::Demand,
                            );
                        }
                        // The batch is columnar: even a full-materialization
                        // engine's vectorized scan extracts only the
                        // projected attributes (the record span is still
                        // streamed in full above, so data traffic keeps the
                        // engine's row-mode character — the savings are
                        // compute, not cache behaviour).
                        env.ctx
                            .exec_scaled(&self.blocks.field_extract, c * self.cols.len() as u32);
                    }
                    Materialize::FieldsOnly => {
                        // Field-at-a-time engines touch only the projected
                        // columns; keep the exact row-mode touch sequence.
                        for slot in 0..c {
                            let addr = chunk_start + slot as u64 * rec_size;
                            if self.prefetch_lines_ahead > 0 {
                                self.prefetch_record(env, addr);
                            }
                            for &col in &self.cols {
                                env.ctx.touch(addr + (col as u64) * 4, 4, MemDep::Demand);
                            }
                        }
                        env.ctx
                            .exec_scaled(&self.blocks.field_extract, c * self.cols.len() as u32);
                    }
                }
                done += c;
            }
            if self.materialize == Materialize::FullRecord {
                // The tuple buffer stays L1-resident across the loop; one
                // representative write per run instead of n.
                env.ctx
                    .store_touch(self.blocks.tuple_buf, self.heap.record_size, MemDep::Demand);
            }

            // Columnar gather of the projected values (uninstrumented reads,
            // as in row mode's post-touch raw reads).
            let filled = out.len();
            for (ci, &c) in self.cols.iter().enumerate() {
                let col = out.col_mut(ci);
                for slot in 0..n {
                    let addr = run_start + slot as u64 * rec_size + (c as u64) * 4;
                    col.push(env.ctx.read_raw_i32(addr));
                }
            }
            out.set_rows(filled + n as usize);
            self.cur_slot += n;
        }
        Ok(!out.is_empty())
    }

    fn arity(&self) -> usize {
        self.cols.len()
    }
}

//! Sequential heap scan.
//!
//! The workhorse of the paper's sequential range selection. Per page it runs
//! the page-open path (buffer-pool lookup + page latch/header decode — the
//! "buffer pool management instructions" of §5.2.2's third hypothesis); per
//! record it runs the scan-advance path and touches record bytes according
//! to the engine's materialization strategy. Cache-conscious engines
//! (System B) issue line prefetches ahead of the scan cursor, which converts
//! L2 data misses into hits (§5.2.1: B's L2 data miss rate is ≈2% on SRS).

use std::rc::Rc;

use wdtg_sim::MemDep;

use crate::error::DbResult;
use crate::exec::{ExecEnv, Operator};
use crate::heap::{HeapFile, HDR_NRECS, PAGE_HDR};
use crate::profiles::{EngineBlocks, Materialize};

/// Sequential scan over a heap file, projecting `cols`.
pub struct SeqScan {
    heap: HeapFile,
    cols: Vec<usize>,
    blocks: Rc<EngineBlocks>,
    materialize: Materialize,
    prefetch_lines_ahead: u32,
    // cursor state
    cur_page: u32,
    cur_slot: u32,
    page_addr: u64,
    page_records: u32,
    opened: bool,
}

impl SeqScan {
    /// Creates a scan over `heap` producing the given column positions.
    pub fn new(
        heap: HeapFile,
        cols: Vec<usize>,
        blocks: Rc<EngineBlocks>,
        materialize: Materialize,
        prefetch_lines_ahead: u32,
    ) -> Self {
        SeqScan {
            heap,
            cols,
            blocks,
            materialize,
            prefetch_lines_ahead,
            cur_page: 0,
            cur_slot: 0,
            page_addr: 0,
            page_records: 0,
            opened: false,
        }
    }

    /// Opens the next page through the buffer pool; false if no more pages.
    fn open_page(&mut self, env: &mut ExecEnv<'_>) -> DbResult<bool> {
        if self.cur_page >= self.heap.n_pages() {
            return Ok(false);
        }
        env.ctx.exec(&self.blocks.scan_page);
        env.ctx.exec(&self.blocks.bufpool_get);
        let page_id = self.heap.page_id(self.cur_page);
        let lookup = env.bufpool.lookup(&env.ctx.misc, page_id);
        let (frame, probed) = lookup.expect("scanned page is registered");
        for entry in probed {
            env.ctx.touch(entry, 16, MemDep::Demand);
        }
        self.page_addr = frame;
        self.page_records = env.ctx.load_i32(frame + HDR_NRECS, MemDep::Demand) as u32;
        self.cur_slot = 0;
        // A prefetching scan also primes the head of the fresh page so the
        // scan-ahead window does not stall at every page boundary.
        if self.prefetch_lines_ahead > 0 {
            for l in 0..self.prefetch_lines_ahead.min(8) as u64 {
                env.ctx.prefetch(frame + 32 + l * 32);
            }
        }
        Ok(true)
    }
}

impl Operator for SeqScan {
    fn open(&mut self, env: &mut ExecEnv<'_>) -> DbResult<()> {
        self.cur_page = 0;
        self.opened = self.open_page(env)?;
        Ok(())
    }

    fn next(&mut self, env: &mut ExecEnv<'_>, out: &mut Vec<i32>) -> DbResult<bool> {
        if !self.opened {
            return Ok(false);
        }
        while self.cur_slot >= self.page_records {
            self.cur_page += 1;
            if !self.open_page(env)? {
                return Ok(false);
            }
        }
        let rec_size = self.heap.record_size as u64;
        let addr = self.page_addr + PAGE_HDR + self.cur_slot as u64 * rec_size;
        env.ctx.exec(&self.blocks.scan_next);

        // Cache-conscious scan: prefetch the lines the cursor will need
        // `prefetch_lines_ahead` lines from now, one record's worth per step
        // to keep pace with consumption.
        if self.prefetch_lines_ahead > 0 {
            let ahead = addr + self.prefetch_lines_ahead as u64 * 32;
            let lines_per_record = (self.heap.record_size as u64).div_ceil(32);
            for l in 0..lines_per_record {
                let target = ahead + l * 32;
                // Stay within the page; the next page is prefetched when
                // reached (its address is not known to scan-ahead hardware).
                if target < self.page_addr + 8192 {
                    env.ctx.prefetch(target);
                }
            }
        }

        match self.materialize {
            Materialize::FullRecord => {
                // Copy the record into the private tuple buffer: read every
                // line of the record, write the tuple (hot, L1-resident),
                // and run the per-field extraction path once per column —
                // the per-record work that scales with record width
                // (§5.2.2's 2.5-4x growth from 20B to 200B records).
                env.ctx.touch(addr, self.heap.record_size, MemDep::Demand);
                env.ctx.store_touch(self.blocks.tuple_buf, self.heap.record_size, MemDep::Demand);
                env.ctx.exec_scaled(&self.blocks.field_extract, self.heap.record_size / 4);
            }
            Materialize::FieldsOnly => {
                for &c in &self.cols {
                    env.ctx.touch(addr + (c as u64) * 4, 4, MemDep::Demand);
                }
                env.ctx.exec_scaled(&self.blocks.field_extract, self.cols.len() as u32);
            }
        }
        out.clear();
        for &c in &self.cols {
            out.push(env.ctx.read_raw_i32(addr + (c as u64) * 4));
        }
        self.cur_slot += 1;
        Ok(true)
    }

    fn arity(&self) -> usize {
        self.cols.len()
    }
}

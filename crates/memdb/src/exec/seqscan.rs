//! Sequential heap scan over either page layout.
//!
//! The workhorse of the paper's sequential range selection. Per page it runs
//! the page-open path (buffer-pool lookup + page latch/header decode — the
//! "buffer pool management instructions" of §5.2.2's third hypothesis); per
//! record it runs the scan-advance path and touches record bytes according
//! to the engine's materialization strategy. Cache-conscious engines
//! (System B) issue line prefetches ahead of the scan cursor, which converts
//! L2 data misses into hits (§5.2.1: B's L2 data miss rate is ≈2% on SRS).
//!
//! # Layouts
//!
//! Data addresses come from [`HeapFile::field_addr_at`], so the same scan
//! code walks both page layouts and the simulated cache sees their true
//! line-level difference:
//!
//! * **NSM** — fields of a record are contiguous; full-record
//!   materialization touches one `record_size` span, field-at-a-time engines
//!   touch projected fields at `record_size` stride (≈ one fresh line per
//!   record regardless of how few columns the query needs).
//! * **PAX** — each column is contiguous within its minipage; projected
//!   fields advance at 4-byte stride, so a scan touching `k` of `n` columns
//!   pulls only those `k` minipages' lines. Full-record materialization
//!   gathers one field per minipage — the same lines NSM touches, so wide
//!   access keeps near-parity.
//!
//! The batched path (`next_batch`) keeps the *data* side equivalent — the
//! same lines in the same page order — but charges the per-record code as
//! one page-run of the engine's tight batch loop instead of one full
//! `scan_next` path per record, and streams contiguous spans (NSM records,
//! PAX minipage runs) through the simulator's contiguous-run fast lane.

use std::sync::Arc;

use wdtg_sim::MemDep;

use crate::error::DbResult;
use crate::exec::batch::Batch;
use crate::exec::{ExecEnv, Operator};
use crate::heap::{HeapFile, PageLayout, HDR_NRECS, PAGE_SIZE};
use crate::profiles::{EngineBlocks, Materialize};

/// Sequential scan over a heap file, projecting `cols`.
pub struct SeqScan {
    heap: HeapFile,
    cols: Vec<usize>,
    /// Columns whose minipages a PAX scan touches: every column under
    /// full-record materialization, the projected set otherwise.
    touch_cols: Vec<usize>,
    blocks: Arc<EngineBlocks>,
    materialize: Materialize,
    prefetch_lines_ahead: u32,
    /// First heap page this scan visits (inclusive). Morsel-driven execution
    /// bounds one scan per morsel; the default covers the whole heap.
    first_page: u32,
    /// One past the last heap page this scan visits (clamped to the heap).
    end_page: u32,
    // cursor state
    cur_page: u32,
    cur_slot: u32,
    page_addr: u64,
    page_records: u32,
    opened: bool,
}

impl SeqScan {
    /// Creates a scan over `heap` producing the given column positions.
    pub fn new(
        heap: HeapFile,
        cols: Vec<usize>,
        blocks: Arc<EngineBlocks>,
        materialize: Materialize,
        prefetch_lines_ahead: u32,
    ) -> Self {
        let touch_cols = match materialize {
            Materialize::FullRecord => (0..heap.n_fields() as usize).collect(),
            Materialize::FieldsOnly => cols.clone(),
        };
        SeqScan {
            first_page: 0,
            end_page: heap.n_pages(),
            heap,
            cols,
            touch_cols,
            blocks,
            materialize,
            prefetch_lines_ahead,
            cur_page: 0,
            cur_slot: 0,
            page_addr: 0,
            page_records: 0,
            opened: false,
        }
    }

    /// Restricts the scan to heap pages `[first, end)` — the morsel hook.
    /// Both row and batch cursors stop at the bound, so a sequence of
    /// adjacent ranges visits exactly the pages (and charges exactly the
    /// page-open paths) of one unbounded scan.
    pub fn with_page_range(mut self, first: u32, end: u32) -> Self {
        self.first_page = first.min(self.heap.n_pages());
        self.end_page = end.min(self.heap.n_pages());
        self
    }

    /// Opens the next page through the buffer pool; false if no more pages.
    fn open_page(&mut self, env: &mut ExecEnv<'_>) -> DbResult<bool> {
        if self.cur_page >= self.end_page {
            return Ok(false);
        }
        env.ctx.exec(&self.blocks.scan_page);
        env.ctx.exec(&self.blocks.bufpool_get);
        let page_id = self.heap.page_id(self.cur_page);
        let frame = env.lookup_page(page_id, MemDep::Demand)?;
        self.page_addr = frame;
        self.page_records = env.ctx.load_i32(frame + HDR_NRECS, MemDep::Demand) as u32;
        self.cur_slot = 0;
        // A prefetching scan also primes the head of the fresh page so the
        // scan-ahead window does not stall at every page boundary. Under PAX
        // the scan consumes the heads of the touched minipages instead of
        // the record area, so prime the window's worth of lines there.
        if self.prefetch_lines_ahead > 0 {
            match self.heap.layout {
                PageLayout::Nsm => {
                    for l in 0..self.prefetch_lines_ahead.min(8) as u64 {
                        env.ctx.prefetch(frame + 32 + l * 32);
                    }
                }
                PageLayout::Pax => {
                    let window_bytes = self.slots_ahead() * 4;
                    for &c in &self.touch_cols {
                        let base = self.heap.minipage_base(frame, c);
                        for off in (0..=window_bytes).step_by(32) {
                            env.ctx.prefetch(base + off);
                        }
                    }
                }
            }
        }
        Ok(true)
    }

    /// The prefetch distance expressed in slots: NSM's
    /// `prefetch_lines_ahead` lines cover `lines × 32 / record_size` records
    /// of scan progress, and a PAX scan-ahead must run the same distance
    /// *in consumption time* — in minipage terms that is only
    /// `slots_ahead × 4` bytes per column, because each slot contributes 4
    /// bytes per minipage instead of a whole record.
    fn slots_ahead(&self) -> u64 {
        (self.prefetch_lines_ahead as u64 * 32 / self.heap.record_size as u64).max(1)
    }

    /// Issues the cache-conscious scan-ahead prefetches for `slot`
    /// (identical in row and batch mode, so System B's L2 data miss
    /// behaviour carries over). NSM prefetches the record lines
    /// `prefetch_lines_ahead` lines from now; PAX prefetches the lines its
    /// touched minipages will need the same number of *slots* from now.
    fn prefetch_slot(&self, env: &mut ExecEnv<'_>, slot: u32) {
        match self.heap.layout {
            PageLayout::Nsm => {
                let ahead_bytes = self.prefetch_lines_ahead as u64 * 32;
                let addr = self.heap.field_addr_at(self.page_addr, slot, 0);
                let ahead = addr + ahead_bytes;
                let lines_per_record = (self.heap.record_size as u64).div_ceil(32);
                for l in 0..lines_per_record {
                    let target = ahead + l * 32;
                    // Stay within the page; the next page is prefetched when
                    // reached (its address is not known to scan-ahead
                    // hardware).
                    if target < self.page_addr + PAGE_SIZE {
                        env.ctx.prefetch(target);
                    }
                }
            }
            PageLayout::Pax => {
                let target_slot = slot as u64 + self.slots_ahead();
                // Stay within the minipage (equivalently: the slot range);
                // the next page's minipages are primed on page open.
                if target_slot >= self.heap.page_cap as u64 {
                    return;
                }
                for &c in &self.touch_cols {
                    env.ctx.prefetch(self.heap.field_addr_at(
                        self.page_addr,
                        target_slot as u32,
                        c,
                    ));
                }
            }
        }
    }

    /// Lines the cursor dirties per slot step, for pacing batch-mode
    /// prefetch issue: a whole record's lines under NSM, one line per
    /// `32 / 4 = 8` slots per touched minipage under PAX.
    fn lines_per_slot(&self) -> u32 {
        match self.heap.layout {
            PageLayout::Nsm => (self.heap.record_size as u64).div_ceil(32) as u32,
            PageLayout::Pax => (self.touch_cols.len() as u32).div_ceil(8).max(1),
        }
    }
}

impl Operator for SeqScan {
    fn open(&mut self, env: &mut ExecEnv<'_>) -> DbResult<()> {
        self.cur_page = self.first_page;
        self.opened = self.open_page(env)?;
        Ok(())
    }

    fn next(&mut self, env: &mut ExecEnv<'_>, out: &mut Vec<i32>) -> DbResult<bool> {
        if !self.opened {
            return Ok(false);
        }
        while self.cur_slot >= self.page_records {
            self.cur_page += 1;
            if !self.open_page(env)? {
                return Ok(false);
            }
        }
        env.ctx.exec(&self.blocks.scan_next);

        // Cache-conscious scan: prefetch the lines the cursor will need
        // `prefetch_lines_ahead` lines from now, one slot's worth per step
        // to keep pace with consumption.
        if self.prefetch_lines_ahead > 0 {
            self.prefetch_slot(env, self.cur_slot);
        }

        match (self.materialize, self.heap.layout) {
            (Materialize::FullRecord, PageLayout::Nsm) => {
                // Copy the record into the private tuple buffer: read every
                // line of the record, write the tuple (hot, L1-resident),
                // and run the per-field extraction path once per column —
                // the per-record work that scales with record width
                // (§5.2.2's 2.5-4x growth from 20B to 200B records).
                let addr = self.heap.field_addr_at(self.page_addr, self.cur_slot, 0);
                env.ctx.touch(addr, self.heap.record_size, MemDep::Demand);
                env.ctx
                    .store_touch(self.blocks.tuple_buf, self.heap.record_size, MemDep::Demand);
                env.ctx
                    .exec_scaled(&self.blocks.field_extract, self.heap.record_size / 4);
            }
            (Materialize::FullRecord, PageLayout::Pax) => {
                // Reconstructing the full record gathers one field from each
                // minipage — the same bytes, scattered across the page.
                for &c in &self.touch_cols {
                    let addr = self.heap.field_addr_at(self.page_addr, self.cur_slot, c);
                    env.ctx.touch(addr, 4, MemDep::Demand);
                }
                env.ctx
                    .store_touch(self.blocks.tuple_buf, self.heap.record_size, MemDep::Demand);
                env.ctx
                    .exec_scaled(&self.blocks.field_extract, self.heap.record_size / 4);
            }
            (Materialize::FieldsOnly, _) => {
                // Field-at-a-time engines touch only the projected columns —
                // at record stride under NSM, at 4-byte minipage stride
                // under PAX (where the layout's line savings come from).
                for &c in &self.cols {
                    let addr = self.heap.field_addr_at(self.page_addr, self.cur_slot, c);
                    env.ctx.touch(addr, 4, MemDep::Demand);
                }
                env.ctx
                    .exec_scaled(&self.blocks.field_extract, self.cols.len() as u32);
            }
        }
        out.clear();
        for &c in &self.cols {
            out.push(env.ctx.read_raw_i32(self.heap.field_addr_at(
                self.page_addr,
                self.cur_slot,
                c,
            )));
        }
        self.cur_slot += 1;
        Ok(true)
    }

    fn next_batch(&mut self, env: &mut ExecEnv<'_>, out: &mut Batch) -> DbResult<bool> {
        out.reset(self.cols.len());
        if !self.opened {
            return Ok(false);
        }
        // One vector-dispatch per batch; page opens keep their row-mode cost
        // (the page-boundary code is per page either way).
        env.ctx.exec(&self.blocks.batch.dispatch);
        let rec_size = self.heap.record_size as u64;
        while !out.is_full() {
            if self.cur_slot >= self.page_records {
                self.cur_page += 1;
                if !self.open_page(env)? {
                    break;
                }
                continue;
            }
            // The run: the rest of this page, capped by batch capacity.
            let n = (self.page_records - self.cur_slot)
                .min((crate::exec::BATCH_ROWS - out.len()) as u32);
            let run_first_slot = self.cur_slot;

            // Per-tuple code, amortized: the tight loop is fetched once (or
            // once per chunk) and its pipeline cost scales with the run.
            // Cache-conscious engines interleave compute and prefetch in
            // small chunks: the hardware retires at most
            // `outstanding_misses` prefetches per memory latency, so a
            // chunk must not issue more than that before its compute
            // advances the clock — otherwise the bounded queue drops the
            // excess and the scan loses its prefetch hit rate. Row mode
            // paces issues naturally (one fat code path per record); the
            // vectorized loop paces them by chunking.
            let chunk = if self.prefetch_lines_ahead > 0 {
                (env.ctx.cpu.config().pipe.outstanding_misses / self.lines_per_slot()).max(1)
            } else {
                n.max(1)
            };
            let mut done = 0u32;
            while done < n {
                let c = chunk.min(n - done);
                let chunk_slot = run_first_slot + done;
                env.ctx.exec_scaled(&self.blocks.batch.scan_step, c);
                match (self.materialize, self.heap.layout) {
                    (Materialize::FullRecord, PageLayout::Nsm) => {
                        let chunk_start = self.heap.field_addr_at(self.page_addr, chunk_slot, 0);
                        if self.prefetch_lines_ahead > 0 {
                            // Row-mode issue-then-touch order per record.
                            for slot in 0..c {
                                let addr = chunk_start + slot as u64 * rec_size;
                                self.prefetch_slot(env, chunk_slot + slot);
                                env.ctx
                                    .touch_run(addr, self.heap.record_size, MemDep::Demand);
                            }
                        } else {
                            // Same line sequence as c per-record touches,
                            // resolved through the simulator's
                            // contiguous-run fast lane in one pass.
                            env.ctx.touch_run(
                                chunk_start,
                                c * self.heap.record_size,
                                MemDep::Demand,
                            );
                        }
                        // The batch is columnar: even a full-materialization
                        // engine's vectorized scan extracts only the
                        // projected attributes (the record span is still
                        // streamed in full above, so data traffic keeps the
                        // engine's row-mode character — the savings are
                        // compute, not cache behaviour).
                        env.ctx
                            .exec_scaled(&self.blocks.field_extract, c * self.cols.len() as u32);
                    }
                    (_, PageLayout::Pax) => {
                        // Column-major over the touched minipages: each
                        // column's chunk span is contiguous, so it streams
                        // through the run fast lane — the same lines the
                        // row path touches slot by slot.
                        for &col in &self.touch_cols {
                            let start = self.heap.field_addr_at(self.page_addr, chunk_slot, col);
                            if self.prefetch_lines_ahead > 0 {
                                // Row-mode scan-ahead distance in slots
                                // (see `slots_ahead`), covering this
                                // chunk's span of the minipage.
                                let mp_end = self.heap.minipage_base(self.page_addr, col)
                                    + self.heap.minipage_bytes();
                                let ahead = self.slots_ahead() * 4;
                                let mut target = start + ahead;
                                let end = (start + c as u64 * 4 + ahead).min(mp_end);
                                while target < end {
                                    env.ctx.prefetch(target);
                                    target += 32;
                                }
                            }
                            env.ctx.touch_run(start, c * 4, MemDep::Demand);
                        }
                        env.ctx
                            .exec_scaled(&self.blocks.field_extract, c * self.cols.len() as u32);
                    }
                    (Materialize::FieldsOnly, PageLayout::Nsm) => {
                        // Field-at-a-time engines touch only the projected
                        // columns; keep the exact row-mode touch sequence.
                        for slot in 0..c {
                            if self.prefetch_lines_ahead > 0 {
                                self.prefetch_slot(env, chunk_slot + slot);
                            }
                            for &col in &self.cols {
                                let addr =
                                    self.heap
                                        .field_addr_at(self.page_addr, chunk_slot + slot, col);
                                env.ctx.touch(addr, 4, MemDep::Demand);
                            }
                        }
                        env.ctx
                            .exec_scaled(&self.blocks.field_extract, c * self.cols.len() as u32);
                    }
                }
                done += c;
            }
            if self.materialize == Materialize::FullRecord {
                // The tuple buffer stays L1-resident across the loop; one
                // representative write per run instead of n.
                env.ctx
                    .store_touch(self.blocks.tuple_buf, self.heap.record_size, MemDep::Demand);
            }

            // Columnar gather of the projected values (uninstrumented reads,
            // as in row mode's post-touch raw reads).
            let filled = out.len();
            for (ci, &c) in self.cols.iter().enumerate() {
                let col = out.col_mut(ci);
                for slot in 0..n {
                    let addr = self
                        .heap
                        .field_addr_at(self.page_addr, run_first_slot + slot, c);
                    col.push(env.ctx.read_raw_i32(addr));
                }
            }
            out.set_rows(filled + n as usize);
            self.cur_slot += n;
        }
        Ok(!out.is_empty())
    }

    fn arity(&self) -> usize {
        self.cols.len()
    }
}

//! Selection filter.
//!
//! The qualify branch is simulated individually ([`wdtg_sim::BranchSite`]):
//! its direction depends on the data, so its misprediction behaviour varies
//! with selectivity exactly as §5.3/Fig 5.4 studies. Interpreted engines
//! additionally dispatch one `pred_node` block per expression node per row —
//! branch-dense code that pressures the BTB and the L1 I-cache.

use std::rc::Rc;

use crate::error::DbResult;
use crate::exec::batch::Batch;
use crate::exec::{ExecEnv, Operator};
use crate::expr::Expr;
use crate::profiles::EngineBlocks;

/// Executable predicate form.
pub enum PredicateExec {
    /// The paper's range predicate `lo < col < hi` over output column `col`.
    Range {
        /// Output-row position of the filter column.
        col: usize,
        /// Exclusive lower bound.
        lo: i32,
        /// Exclusive upper bound.
        hi: i32,
    },
    /// General expression over output-row positions.
    Expr(Expr),
}

impl PredicateExec {
    fn eval(&self, row: &[i32]) -> bool {
        match self {
            PredicateExec::Range { col, lo, hi } => {
                let v = row[*col];
                v > *lo && v < *hi
            }
            PredicateExec::Expr(e) => e.eval_bool(row),
        }
    }

    /// Interpreter handler class for each node of the tree, in evaluation
    /// order: 0 = comparison, 1 = logic, 2 = column load, 3 = constant /
    /// arithmetic.
    fn handler_sequence(&self) -> Vec<u8> {
        fn walk(e: &Expr, out: &mut Vec<u8>) {
            match e {
                Expr::Cmp(_, a, b) => {
                    out.push(0);
                    walk(a, out);
                    walk(b, out);
                }
                Expr::And(a, b) | Expr::Or(a, b) => {
                    out.push(1);
                    walk(a, out);
                    walk(b, out);
                }
                Expr::Not(a) => {
                    out.push(1);
                    walk(a, out);
                }
                Expr::Col(_) => out.push(2),
                Expr::Const(_) => out.push(3),
                Expr::Arith(_, a, b) => {
                    out.push(3);
                    walk(a, out);
                    walk(b, out);
                }
            }
        }
        let mut seq = Vec::new();
        match self {
            // And + two comparisons over column/constant leaves.
            PredicateExec::Range { .. } => seq.extend_from_slice(&[1, 0, 2, 3, 0, 2, 3]),
            PredicateExec::Expr(e) => walk(e, &mut seq),
        }
        seq
    }
}

/// Filter operator.
pub struct Filter {
    child: Box<dyn Operator>,
    pred: PredicateExec,
    blocks: Rc<EngineBlocks>,
    interpreted: bool,
    handlers: Vec<u8>,
    // batch-mode scratch (reused across batches; no per-batch allocation)
    keep: Vec<bool>,
    row_scratch: Vec<i32>,
}

impl Filter {
    /// Wraps `child` with a predicate; `interpreted` selects the
    /// tree-walking evaluator cost model.
    pub fn new(
        child: Box<dyn Operator>,
        pred: PredicateExec,
        blocks: Rc<EngineBlocks>,
        interpreted: bool,
    ) -> Self {
        let handlers = pred.handler_sequence();
        Filter {
            child,
            pred,
            blocks,
            interpreted,
            handlers,
            keep: Vec::new(),
            row_scratch: Vec::new(),
        }
    }
}

impl Operator for Filter {
    fn open(&mut self, env: &mut ExecEnv<'_>) -> DbResult<()> {
        self.child.open(env)
    }

    fn next(&mut self, env: &mut ExecEnv<'_>, out: &mut Vec<i32>) -> DbResult<bool> {
        loop {
            if !self.child.next(env, out)? {
                return Ok(false);
            }
            if self.interpreted {
                // Tree-walking evaluation: one dispatch plus one per-node
                // handler call; the handlers are distinct functions, so the
                // interpreter's instruction footprint scales with predicate
                // complexity (→ L1I pressure, §5.2.2).
                env.ctx.exec(&self.blocks.pred_node);
                for &h in &self.handlers {
                    env.ctx.exec(&self.blocks.pred_handlers[h as usize]);
                }
            } else {
                env.ctx.exec(&self.blocks.pred_eval);
            }
            let pass = self.pred.eval(out);
            env.ctx.branch(self.blocks.qualify_site, pass);
            if pass {
                return Ok(true);
            }
        }
    }

    fn next_batch(&mut self, env: &mut ExecEnv<'_>, out: &mut Batch) -> DbResult<bool> {
        loop {
            if !self.child.next_batch(env, out)? {
                return Ok(false);
            }
            let n = out.len();
            // Vectorized predicate evaluation. Compiled engines charge the
            // evaluation path once per batch plus a tight per-tuple loop.
            // Interpreted engines become a vector-at-a-time interpreter
            // (X100-style): one dispatch and one handler-body pass per
            // expression *node* per batch — instead of per row — with a
            // tight per-tuple primitive loop per node. Interpretation
            // overhead becomes O(nodes) per batch, not O(nodes × rows): the
            // dispatch collapse that makes vectorized interpreters viable.
            if self.interpreted {
                env.ctx.exec(&self.blocks.pred_node);
                for &h in &self.handlers {
                    env.ctx.exec(&self.blocks.pred_handlers[h as usize]);
                    env.ctx.exec_scaled(&self.blocks.batch.pred_step, n as u32);
                }
            } else {
                env.ctx.exec(&self.blocks.pred_eval);
                env.ctx.exec_scaled(&self.blocks.batch.pred_step, n as u32);
            }
            // Evaluate per row; the qualify branch stays individually
            // simulated so its selectivity-dependent misprediction
            // behaviour (§5.3, Fig 5.4) is identical in both modes.
            self.keep.clear();
            match &self.pred {
                PredicateExec::Range { col, lo, hi } => {
                    for &v in out.col(*col) {
                        self.keep.push(v > *lo && v < *hi);
                    }
                }
                PredicateExec::Expr(e) => {
                    for r in 0..n {
                        out.read_row(r, &mut self.row_scratch);
                        self.keep.push(e.eval_bool(&self.row_scratch));
                    }
                }
            }
            for &pass in &self.keep {
                env.ctx.branch(self.blocks.qualify_site, pass);
            }
            out.retain_rows(&self.keep);
            if !out.is_empty() {
                return Ok(true);
            }
        }
    }

    fn arity(&self) -> usize {
        self.child.arity()
    }
}

//! Selection filter.
//!
//! Under [`SelectionMode::Branching`] the qualify branch is simulated
//! individually ([`wdtg_sim::BranchSite`]): its direction depends on the
//! data, so its misprediction behaviour varies with selectivity exactly as
//! §5.3/Fig 5.4 studies. Interpreted engines additionally dispatch one
//! `pred_node` block per expression node per row — branch-dense code that
//! pressures the BTB and the L1 I-cache.
//!
//! Under [`SelectionMode::Predicated`] the qualify bit is computed
//! arithmetically (cmov-style, [`wdtg_sim::Cpu::select_run`]) and no
//! data-dependent branch exists to mispredict. In batch mode the passing
//! rows are published as a **selection vector** on the [`Batch`] instead of
//! compacting the columns, so qualification costs neither a branch nor a
//! data-dependent copy — the vectorized form compiled/branch-free engines
//! use ("Code Generation Techniques for Raw Data Processing"; Sirin &
//! Ailamaki's OLAP analysis).

use std::sync::Arc;

use crate::error::DbResult;
use crate::exec::batch::Batch;
use crate::exec::{ExecEnv, Operator};
use crate::expr::Expr;
use crate::profiles::EngineBlocks;

/// How the filter turns a predicate result into control/data flow — the
/// knob that attacks the paper's T_B term, orthogonal to
/// [`crate::exec::ExecMode`] and [`crate::heap::PageLayout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SelectionMode {
    /// One data-dependent qualify branch per row (every system the paper
    /// measures): mispredictions peak near 50% selectivity (§5.3/Fig 5.4)
    /// and charge the 17-cycle penalty each.
    #[default]
    Branching,
    /// Branch-free qualification: the qualify bit is computed with
    /// cmov-style arithmetic (extra unconditional instructions, zero
    /// possible mispredictions); batch mode drives downstream operators
    /// through a selection vector instead of compacting rows.
    Predicated,
}

impl SelectionMode {
    /// Both modes, in presentation order.
    pub const ALL: [SelectionMode; 2] = [SelectionMode::Branching, SelectionMode::Predicated];
}

/// Executable predicate form.
pub enum PredicateExec {
    /// The paper's range predicate `lo < col < hi` over output column `col`.
    Range {
        /// Output-row position of the filter column.
        col: usize,
        /// Exclusive lower bound.
        lo: i32,
        /// Exclusive upper bound.
        hi: i32,
    },
    /// General expression over output-row positions.
    Expr(Expr),
}

impl PredicateExec {
    fn eval(&self, row: &[i32]) -> bool {
        match self {
            PredicateExec::Range { col, lo, hi } => {
                let v = row[*col];
                v > *lo && v < *hi
            }
            PredicateExec::Expr(e) => e.eval_bool(row),
        }
    }

    /// Interpreter handler class for each node of the tree, in evaluation
    /// order: 0 = comparison, 1 = logic, 2 = column load, 3 = constant /
    /// arithmetic.
    fn handler_sequence(&self) -> Vec<u8> {
        fn walk(e: &Expr, out: &mut Vec<u8>) {
            match e {
                Expr::Cmp(_, a, b) => {
                    out.push(0);
                    walk(a, out);
                    walk(b, out);
                }
                Expr::And(a, b) | Expr::Or(a, b) => {
                    out.push(1);
                    walk(a, out);
                    walk(b, out);
                }
                Expr::Not(a) => {
                    out.push(1);
                    walk(a, out);
                }
                Expr::Col(_) => out.push(2),
                Expr::Const(_) => out.push(3),
                Expr::Arith(_, a, b) => {
                    out.push(3);
                    walk(a, out);
                    walk(b, out);
                }
            }
        }
        let mut seq = Vec::new();
        match self {
            // And + two comparisons over column/constant leaves.
            PredicateExec::Range { .. } => seq.extend_from_slice(&[1, 0, 2, 3, 0, 2, 3]),
            PredicateExec::Expr(e) => walk(e, &mut seq),
        }
        seq
    }
}

/// Filter operator.
pub struct Filter {
    child: Box<dyn Operator>,
    pred: PredicateExec,
    blocks: Arc<EngineBlocks>,
    interpreted: bool,
    selection: SelectionMode,
    handlers: Vec<u8>,
    // batch-mode scratch (reused across batches; no per-batch allocation)
    keep: Vec<bool>,
    sel_scratch: Vec<u32>,
    row_scratch: Vec<i32>,
}

impl Filter {
    /// Wraps `child` with a predicate; `interpreted` selects the
    /// tree-walking evaluator cost model, `selection` the qualify strategy.
    pub fn new(
        child: Box<dyn Operator>,
        pred: PredicateExec,
        blocks: Arc<EngineBlocks>,
        interpreted: bool,
        selection: SelectionMode,
    ) -> Self {
        let handlers = pred.handler_sequence();
        Filter {
            child,
            pred,
            blocks,
            interpreted,
            selection,
            handlers,
            keep: Vec::new(),
            sel_scratch: Vec::new(),
            row_scratch: Vec::new(),
        }
    }

    /// Evaluates the predicate on physical row `r` of `batch`.
    fn eval_batch_row(&mut self, batch: &Batch, r: usize) -> bool {
        match &self.pred {
            PredicateExec::Range { col, lo, hi } => {
                let v = batch.value(*col, r);
                v > *lo && v < *hi
            }
            PredicateExec::Expr(e) => {
                batch.read_row(r, &mut self.row_scratch);
                e.eval_bool(&self.row_scratch)
            }
        }
    }
}

impl Operator for Filter {
    fn open(&mut self, env: &mut ExecEnv<'_>) -> DbResult<()> {
        self.child.open(env)
    }

    fn next(&mut self, env: &mut ExecEnv<'_>, out: &mut Vec<i32>) -> DbResult<bool> {
        loop {
            if !self.child.next(env, out)? {
                return Ok(false);
            }
            if self.interpreted {
                // Tree-walking evaluation: one dispatch plus one per-node
                // handler call; the handlers are distinct functions, so the
                // interpreter's instruction footprint scales with predicate
                // complexity (→ L1I pressure, §5.2.2).
                env.ctx.exec(&self.blocks.pred_node);
                for &h in &self.handlers {
                    env.ctx.exec(&self.blocks.pred_handlers[h as usize]);
                }
            } else {
                env.ctx.exec(&self.blocks.pred_eval);
            }
            let pass = self.pred.eval(out);
            match self.selection {
                SelectionMode::Branching => {
                    env.ctx.branch(self.blocks.qualify_site, pass);
                }
                SelectionMode::Predicated => {
                    // Branch-free qualify: the masking tail plus one cmov
                    // lane per row, pass or fail — the cost is paid
                    // unconditionally, which is why nothing here can
                    // mispredict.
                    env.ctx.exec(&self.blocks.pred_select);
                    env.ctx.select_ops(1);
                }
            }
            if pass {
                return Ok(true);
            }
        }
    }

    fn next_batch(&mut self, env: &mut ExecEnv<'_>, out: &mut Batch) -> DbResult<bool> {
        loop {
            if !self.child.next_batch(env, out)? {
                return Ok(false);
            }
            let live = out.live_rows();
            // Vectorized predicate evaluation. Compiled engines charge the
            // evaluation path once per batch plus a tight per-tuple loop.
            // Interpreted engines become a vector-at-a-time interpreter
            // (X100-style): one dispatch and one handler-body pass per
            // expression *node* per batch — instead of per row — with a
            // tight per-tuple primitive loop per node. Interpretation
            // overhead becomes O(nodes) per batch, not O(nodes × rows): the
            // dispatch collapse that makes vectorized interpreters viable.
            if self.interpreted {
                env.ctx.exec(&self.blocks.pred_node);
                for &h in &self.handlers {
                    env.ctx.exec(&self.blocks.pred_handlers[h as usize]);
                    env.ctx
                        .exec_scaled(&self.blocks.batch.pred_step, live as u32);
                }
            } else {
                env.ctx.exec(&self.blocks.pred_eval);
                env.ctx
                    .exec_scaled(&self.blocks.batch.pred_step, live as u32);
            }
            match self.selection {
                SelectionMode::Branching => {
                    // Evaluate per row; the qualify branch stays
                    // individually simulated so its selectivity-dependent
                    // misprediction behaviour (§5.3, Fig 5.4) is identical
                    // in both exec modes. `keep` is physical-row indexed
                    // and pre-masked with any incoming selection.
                    self.keep.clear();
                    self.keep.resize(out.len(), false);
                    for i in 0..live {
                        let r = out.live_index(i);
                        let pass = self.eval_batch_row(out, r);
                        env.ctx.branch(self.blocks.qualify_site, pass);
                        self.keep[r] = pass;
                    }
                    out.retain_rows(&self.keep);
                    if !out.is_empty() {
                        return Ok(true);
                    }
                }
                SelectionMode::Predicated => {
                    // Branch-free vectorized qualify: one tight select-loop
                    // pass plus one cmov lane per live row, publishing the
                    // passing rows as a selection vector — no
                    // data-dependent branch, no data-dependent copy.
                    env.ctx
                        .exec_scaled(&self.blocks.batch.select_step, live as u32);
                    env.ctx.select_ops(live as u32);
                    self.sel_scratch.clear();
                    for i in 0..live {
                        let r = out.live_index(i);
                        if self.eval_batch_row(out, r) {
                            self.sel_scratch.push(r as u32);
                        }
                    }
                    out.set_selection(&self.sel_scratch);
                    if out.live_rows() > 0 {
                        return Ok(true);
                    }
                }
            }
        }
    }

    fn arity(&self) -> usize {
        self.child.arity()
    }
}

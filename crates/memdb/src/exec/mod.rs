//! Volcano-style instrumented operators.
//!
//! Operators pull rows one at a time (`next`) like the iterator model every
//! late-90s commercial executor used; each call charges the engine-profile
//! code blocks and the data accesses of the work it performs, so per-tuple
//! function-call overhead, instruction footprint and data traffic all show up
//! in the simulated counters.

pub mod agg;
pub mod filter;
pub mod groupby;
pub mod indexscan;
pub mod join_hash;
pub mod join_nl;
pub mod seqscan;

use crate::buffer::BufferPool;
use crate::db::DbCtx;
use crate::error::DbResult;

/// Execution environment handed to every operator call: the instrumented
/// context plus the buffer pool (for page-table lookups).
pub struct ExecEnv<'a> {
    /// Instrumented memory/CPU context.
    pub ctx: &'a mut DbCtx,
    /// Buffer-pool page table.
    pub bufpool: &'a BufferPool,
}

/// A pull-based operator producing rows of `i32` values.
pub trait Operator {
    /// Prepares the operator (may consume inputs, e.g. a hash-join build).
    fn open(&mut self, env: &mut ExecEnv<'_>) -> DbResult<()>;

    /// Produces the next row into `out`; returns false at end of stream.
    fn next(&mut self, env: &mut ExecEnv<'_>, out: &mut Vec<i32>) -> DbResult<bool>;

    /// Number of columns in produced rows.
    fn arity(&self) -> usize;
}

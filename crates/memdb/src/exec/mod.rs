//! Instrumented operators: Volcano row-at-a-time and vectorized batch paths.
//!
//! # Row mode
//!
//! Operators pull rows one at a time (`next`) like the iterator model every
//! late-90s commercial executor used; each call charges the engine-profile
//! code blocks and the data accesses of the work it performs, so per-tuple
//! function-call overhead, instruction footprint and data traffic all show up
//! in the simulated counters — this is the configuration the paper measures.
//!
//! # Batch mode
//!
//! Operators exchange column-major [`Batch`]es of ~[`BATCH_ROWS`] rows
//! (`next_batch`). Native batched operators charge one per-batch dispatch
//! block plus an amortized tight-loop block per tuple
//! ([`crate::profiles::BatchBlocks`]), collapsing the per-tuple instruction
//! footprint the way MonetDB/X100-style engines do. Data accesses keep
//! per-record granularity (or use the simulator's contiguous-run fast path
//! where the row path touched a contiguous span), so cache/TLB *data*
//! behaviour matches row mode while computation and instruction-fetch time
//! shrink. The driver picks the path via [`ExecMode`] on the
//! [`crate::Database`].
//!
//! Every operator gets `next_batch` for free through a default adapter that
//! drains `next()` — row-mode costs, batch-shaped output — so the two paths
//! compose even for operators without a native batched implementation.
//!
//! Orthogonally to the execution mode, [`SelectionMode`] decides how
//! filters qualify rows: through a per-row data-dependent branch
//! (`Branching`, the paper's configuration — the Fig 5.4 T_B source) or
//! branch-free (`Predicated`), where batch-mode qualification travels as a
//! selection vector on the [`Batch`] that every downstream operator honors
//! via [`Batch::live_rows`]/[`Batch::live_index`].
//!
//! ## Batch size and the cache model
//!
//! [`BATCH_ROWS`] = 1024 rows keeps a few columns of `i32` values (host
//! memory) well under L1 capacity while making the per-batch dispatch block
//! negligible (< 0.1% of charged instructions at paper scale). Simulated
//! *data* traffic is unaffected by batch size because record touches keep
//! their row-mode addresses; only the points at which per-batch blocks are
//! charged move, which can shift prefetch timing by a few cycles on
//! cache-conscious profiles (System B).

pub mod agg;
pub mod batch;
pub mod filter;
pub mod groupby;
pub mod indexscan;
pub mod join_hash;
pub mod join_nl;
pub mod join_partitioned;
pub mod partial;
pub mod seqscan;

pub use batch::{Batch, ExecMode, BATCH_ROWS};
pub use filter::SelectionMode;
pub use partial::AggState;

use wdtg_sim::{CodeBlock, MemDep};

use crate::buffer::BufferPool;
use crate::db::DbCtx;
use crate::error::{DbError, DbResult};
use crate::fault::FaultSite;

/// Execution environment handed to every operator call: the instrumented
/// context plus the buffer pool (for page-table lookups) and the execution
/// mode drivers/operators consult when draining children.
pub struct ExecEnv<'a> {
    /// Instrumented memory/CPU context.
    pub ctx: &'a mut DbCtx,
    /// Buffer-pool page table.
    pub bufpool: &'a BufferPool,
    /// Row-at-a-time or vectorized execution.
    pub mode: ExecMode,
}

impl ExecEnv<'_> {
    /// Instrumented buffer-pool page lookup: probes the page table through
    /// the context's reusable scratch buffer (no per-lookup allocation),
    /// charges one touch per probed entry with `dep`, and surfaces a
    /// missing registration as a query error instead of a crash.
    ///
    /// This is the single choke point every page access goes through
    /// (sequential scans, index fetches, point operations), so it is also
    /// where the [`FaultSite::BufpoolFetch`] and [`FaultSite::PageChecksum`]
    /// injection seams live: a fetch-fault hit fails before the frame is
    /// touched (the I/O never happened), a checksum hit fails after (the
    /// frame was read but did not verify). Both are transient for the shard
    /// retry loop.
    pub(crate) fn lookup_page(&mut self, page_id: u64, dep: MemDep) -> DbResult<u64> {
        if self.ctx.fault.should_fault(FaultSite::BufpoolFetch) {
            return Err(DbError::IoFault { page_id });
        }
        let mut probed = std::mem::take(&mut self.ctx.probe_scratch);
        probed.clear();
        let lookup = self
            .bufpool
            .lookup_into(&self.ctx.misc, page_id, &mut probed);
        let Some(frame) = lookup else {
            self.ctx.probe_scratch = probed;
            return Err(DbError::PageNotRegistered { page_id });
        };
        for &entry in &probed {
            self.ctx.touch(entry, 16, dep);
        }
        self.ctx.probe_scratch = probed;
        if self.ctx.fault.should_fault(FaultSite::PageChecksum) {
            return Err(DbError::PageCorrupt { page_id });
        }
        Ok(frame)
    }

    /// Cooperative guardrail checkpoint, called at batch/partition
    /// boundaries. Always honors a pending [`crate::CancelToken`]; when a
    /// [`crate::ResourceBudget`] limit is armed it additionally charges the
    /// engine's `budget_check` straight-line block (so guardrail overhead is
    /// deterministic simulated work, not hidden host time) and enforces the
    /// limits. With no limits armed this charges nothing.
    pub(crate) fn budget_checkpoint(&mut self, check_block: &CodeBlock) -> DbResult<()> {
        if self.ctx.cancel.is_cancelled() {
            return Err(DbError::Cancelled);
        }
        if !self.ctx.budget.is_limited() {
            return Ok(());
        }
        self.ctx.exec(check_block);
        self.ctx.enforce_budget()
    }
}

/// A pull-based operator producing rows of `i32` values.
pub trait Operator {
    /// Prepares the operator (may consume inputs, e.g. a hash-join build).
    fn open(&mut self, env: &mut ExecEnv<'_>) -> DbResult<()>;

    /// Produces the next row into `out`; returns false at end of stream.
    fn next(&mut self, env: &mut ExecEnv<'_>, out: &mut Vec<i32>) -> DbResult<bool>;

    /// Produces the next batch of rows into `out`; returns false when the
    /// stream is exhausted (an empty batch is never returned as true).
    ///
    /// The default implementation adapts `next()` — charging row-mode costs
    /// — so every operator participates in batch-mode plans; operators with
    /// native implementations charge the engine's batch-friendly blocks
    /// instead.
    fn next_batch(&mut self, env: &mut ExecEnv<'_>, out: &mut Batch) -> DbResult<bool> {
        out.reset(self.arity());
        let mut row = Vec::with_capacity(self.arity());
        while !out.is_full() {
            if !self.next(env, &mut row)? {
                break;
            }
            out.push_row(&row);
        }
        Ok(!out.is_empty())
    }

    /// Number of columns in produced rows.
    fn arity(&self) -> usize;
}

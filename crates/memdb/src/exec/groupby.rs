//! Hash-based grouped aggregation (`select g, AGG(x) … group by g`).
//!
//! The original TPC-D queries the paper runs are grouped aggregates (Q1
//! groups by return flag and line status); the executor therefore provides a
//! grouped aggregation operator even though the §3.3 microbenchmarks only
//! need scalar aggregates. Groups are kept in a hash table in engine-private
//! memory: for the handful of groups DSS queries produce it stays
//! L1-resident, mirroring §5.2's observation that private execution state is
//! the hot data.

use std::collections::HashMap;
use std::sync::Arc;

use wdtg_sim::MemDep;

use crate::error::DbResult;
use crate::exec::batch::{Batch, ExecMode};
use crate::exec::partial::AggState;
use crate::exec::{ExecEnv, Operator};
use crate::profiles::EngineBlocks;
use crate::query::AggKind;

/// Grouped aggregation: drains the child at `open`, then emits one row per
/// group — `[group_key, agg_value_as_i32]` — in ascending key order
/// (deterministic output for tests and reports).
pub struct GroupByExec {
    child: Box<dyn Operator>,
    group_col: usize,
    agg_col: usize,
    kind: AggKind,
    blocks: Arc<EngineBlocks>,
    groups: Vec<(i32, AggState)>,
    pos: usize,
}

impl GroupByExec {
    /// Groups `child`'s output on column position `group_col`, aggregating
    /// column position `agg_col`.
    pub fn new(
        child: Box<dyn Operator>,
        group_col: usize,
        agg_col: usize,
        kind: AggKind,
        blocks: Arc<EngineBlocks>,
    ) -> Self {
        GroupByExec {
            child,
            group_col,
            agg_col,
            kind,
            blocks,
            groups: Vec::new(),
            pos: 0,
        }
    }

    /// Result rows as `(group_key, aggregate)` pairs (available after the
    /// operator has been drained; convenience for direct use).
    pub fn run_to_end(&mut self, env: &mut ExecEnv<'_>) -> DbResult<Vec<(i32, f64)>> {
        let kind = self.kind;
        Ok(self
            .run_to_end_partial(env)?
            .into_iter()
            .map(|(k, st)| (k, st.value(kind)))
            .collect())
    }

    /// Like [`GroupByExec::run_to_end`] but returns each group's exact
    /// accumulator instead of its rendered value, in ascending key order —
    /// the shard router merges these per key across partitions before
    /// finishing, which keeps sharded grouped answers bit-identical to a
    /// single-shard run.
    pub fn run_to_end_partial(&mut self, env: &mut ExecEnv<'_>) -> DbResult<Vec<(i32, AggState)>> {
        self.open(env)?;
        Ok(self.groups.clone())
    }
}

impl GroupByExec {
    /// Group-table probe/update data traffic for one input row (identical
    /// in both execution modes: the hash-table touches are the operator's
    /// data behaviour, not its dispatch overhead).
    fn touch_group_slot(&self, env: &mut ExecEnv<'_>, key: i32) {
        let slot = (key as u32 as u64 % 64) * 16;
        env.ctx.touch(self.blocks.agg_buf + slot, 8, MemDep::Demand);
        env.ctx
            .store_touch(self.blocks.agg_buf + slot, 16, MemDep::Demand);
    }
}

impl Operator for GroupByExec {
    fn open(&mut self, env: &mut ExecEnv<'_>) -> DbResult<()> {
        self.child.open(env)?;
        let mut table: HashMap<i32, AggState> = HashMap::new();
        match env.mode {
            ExecMode::Row => {
                let mut row = Vec::with_capacity(self.child.arity());
                let mut rows = 0u64;
                while self.child.next(env, &mut row)? {
                    let key = row[self.group_col];
                    let v = row[self.agg_col];
                    // Per input row: aggregate step + group-table
                    // probe/update in private memory (hot; a handful of
                    // groups stays L1-resident).
                    env.ctx.exec(&self.blocks.agg_step);
                    self.touch_group_slot(env, key);
                    table.entry(key).or_default().update(v);
                    // Guardrail checkpoint every 1024 rows (row mode's
                    // batch-boundary equivalent).
                    rows += 1;
                    if rows & 0x3FF == 0 {
                        env.budget_checkpoint(&self.blocks.budget_check)?;
                    }
                }
            }
            ExecMode::Batch => {
                let mut batch = Batch::new(self.child.arity());
                while self.child.next_batch(env, &mut batch)? {
                    // Vectorized: the aggregate path runs once per batch and
                    // the tight accumulate loop scales over its live rows
                    // (honoring a predicated filter's selection vector),
                    // while the group-table data traffic keeps per-row
                    // granularity.
                    env.ctx.exec(&self.blocks.agg_step);
                    env.ctx
                        .exec_scaled(&self.blocks.batch.agg_step, batch.live_rows() as u32);
                    for i in 0..batch.live_rows() {
                        let r = batch.live_index(i);
                        let key = batch.value(self.group_col, r);
                        let v = batch.value(self.agg_col, r);
                        self.touch_group_slot(env, key);
                        table.entry(key).or_default().update(v);
                    }
                    // Guardrail checkpoint once per batch boundary.
                    env.budget_checkpoint(&self.blocks.budget_check)?;
                }
            }
        }
        self.groups = table.into_iter().collect();
        self.groups.sort_unstable_by_key(|(k, _)| *k);
        self.pos = 0;
        Ok(())
    }

    fn next(&mut self, _env: &mut ExecEnv<'_>, out: &mut Vec<i32>) -> DbResult<bool> {
        let Some((key, st)) = self.groups.get(self.pos) else {
            return Ok(false);
        };
        out.clear();
        out.push(*key);
        out.push(st.value(self.kind) as i32);
        self.pos += 1;
        Ok(true)
    }

    fn arity(&self) -> usize {
        2
    }
}

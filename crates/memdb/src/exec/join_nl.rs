//! Index nested-loop join: for every outer row, probe a B+tree on the inner
//! join column and fetch matching inner records.
//!
//! Not used for the paper's sequential join (which runs "with no indexes",
//! §3.3) but part of any complete executor; the TPC-D-like suite and the
//! ablation experiments exercise it.

use std::sync::Arc;

use wdtg_sim::MemDep;

use crate::db::fetch_record;
use crate::error::DbResult;
use crate::exec::indexscan::descend_to_leaf;
use crate::exec::{ExecEnv, Operator};
use crate::heap::{HeapFile, Rid};
use crate::index::btree::BTree;
use crate::profiles::EngineBlocks;

/// Index nested-loop join emitting `outer_row ++ inner_cols`.
pub struct IndexNlJoin {
    outer: Box<dyn Operator>,
    outer_key: usize,
    inner_index: BTree,
    inner_heap: HeapFile,
    inner_cols: Vec<usize>,
    blocks: Arc<EngineBlocks>,
    // state: pending inner matches for the current outer row
    outer_row: Vec<i32>,
    pending: Vec<u64>, // packed rids, reversed for pop()
}

impl IndexNlJoin {
    /// Creates the join; `inner_index` must index the inner join column.
    pub fn new(
        outer: Box<dyn Operator>,
        outer_key: usize,
        inner_index: BTree,
        inner_heap: HeapFile,
        inner_cols: Vec<usize>,
        blocks: Arc<EngineBlocks>,
    ) -> Self {
        IndexNlJoin {
            outer,
            outer_key,
            inner_index,
            inner_heap,
            inner_cols,
            blocks,
            outer_row: Vec::new(),
            pending: Vec::new(),
        }
    }
}

impl Operator for IndexNlJoin {
    fn open(&mut self, env: &mut ExecEnv<'_>) -> DbResult<()> {
        self.outer.open(env)?;
        self.pending.clear();
        Ok(())
    }

    fn next(&mut self, env: &mut ExecEnv<'_>, out: &mut Vec<i32>) -> DbResult<bool> {
        loop {
            if let Some(packed) = self.pending.pop() {
                let rid = Rid::unpack(packed);
                let frame = fetch_record(env, &self.inner_heap, rid, &self.blocks)?;
                out.clear();
                out.extend_from_slice(&self.outer_row);
                for &c in &self.inner_cols {
                    let addr = self.inner_heap.field_addr_at(frame, rid.slot, c);
                    out.push(env.ctx.load_i32(addr, MemDep::Chase));
                }
                env.ctx.exec(&self.blocks.join_match);
                return Ok(true);
            }
            if !self.outer.next(env, &mut self.outer_row)? {
                return Ok(false);
            }
            // Probe the inner index for all entries equal to the outer key.
            let key = self.outer_row[self.outer_key];
            let mut cursor = descend_to_leaf(env, &self.inner_index, key, &self.blocks);
            while let Some((k, v)) = cursor.next_entry(env, &self.blocks) {
                let matched = k == key;
                env.ctx.branch(self.blocks.match_site, matched);
                if !matched {
                    break;
                }
                self.pending.push(v);
            }
            self.pending.reverse();
        }
    }

    fn arity(&self) -> usize {
        self.outer.arity() + self.inner_cols.len()
    }
}

//! Non-clustered index range scan (the paper's indexed range selection).
//!
//! The B+tree descent is a pointer chase (each node address depends on the
//! previous node's contents — `MemDep::Chase`), and every qualifying entry
//! triggers a record fetch at an essentially random heap page. That loss of
//! spatial locality is why the paper finds the indexed selection's memory
//! stall share *larger* than the sequential scan's despite touching fewer
//! records (§5.1: System B goes from 20% to 50% memory stalls).

use std::sync::Arc;

use wdtg_sim::MemDep;

use crate::db::{fetch_record, fetch_record_data, touch_record_fields};
use crate::error::DbResult;
use crate::exec::batch::Batch;
use crate::exec::{ExecEnv, Operator};
use crate::heap::{HeapFile, Rid};
use crate::index::btree::{
    int_child_addr, int_key_addr, leaf_key_addr, leaf_next, leaf_val_addr, node_is_leaf, node_n,
    BTree,
};
use crate::profiles::EngineBlocks;

/// Cursor positioned inside a leaf chain.
pub struct LeafCursor {
    leaf: u64,
    pos: u32,
    n: u32,
}

/// Instrumented root-to-leaf descent: per level charges the descend block, a
/// binary search's key loads within the node, and the dependent child load.
/// Returns a cursor at the lower bound of `key`.
pub fn descend_to_leaf(
    env: &mut ExecEnv<'_>,
    btree: &BTree,
    key: i32,
    blocks: &EngineBlocks,
) -> LeafCursor {
    let mut node = btree.root;
    loop {
        env.ctx.exec(&blocks.index_descend);
        let n = node_n(&env.ctx.index, node);
        // Root/inner node header read.
        env.ctx.touch(node, 8, MemDep::Chase);
        if node_is_leaf(&env.ctx.index, node) {
            // Binary search for the lower bound within the leaf.
            let mut lo = 0u32;
            let mut hi = n;
            while lo < hi {
                let mid = (lo + hi) / 2;
                let k = env.ctx.load_i32(leaf_key_addr(node, mid), MemDep::Demand);
                if k < key {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            return LeafCursor {
                leaf: node,
                pos: lo,
                n,
            };
        }
        // Binary search among separator keys.
        let mut lo = 0u32;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let k = env.ctx.load_i32(int_key_addr(node, mid), MemDep::Demand);
            if k < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        node = env.ctx.load_u64(int_child_addr(node, lo), MemDep::Chase);
    }
}

impl LeafCursor {
    /// Advances to the next `(key, value)` entry, walking the leaf chain.
    /// Charges the leaf-walk block and the entry loads.
    pub fn next_entry(
        &mut self,
        env: &mut ExecEnv<'_>,
        blocks: &EngineBlocks,
    ) -> Option<(i32, u64)> {
        self.advance(env, Some(blocks))
    }

    /// Advances without charging the per-entry leaf-walk block (the entry
    /// and chain *data* loads are still instrumented). The batched index
    /// scan charges the amortized per-tuple loop instead.
    pub(crate) fn next_entry_data(&mut self, env: &mut ExecEnv<'_>) -> Option<(i32, u64)> {
        self.advance(env, None)
    }

    fn advance(
        &mut self,
        env: &mut ExecEnv<'_>,
        blocks: Option<&EngineBlocks>,
    ) -> Option<(i32, u64)> {
        loop {
            if self.pos < self.n {
                if let Some(blocks) = blocks {
                    env.ctx.exec(&blocks.index_leaf_next);
                }
                let k = env
                    .ctx
                    .load_i32(leaf_key_addr(self.leaf, self.pos), MemDep::Demand);
                let v = env
                    .ctx
                    .load_u64(leaf_val_addr(self.leaf, self.pos), MemDep::Demand);
                self.pos += 1;
                return Some((k, v));
            }
            let next = {
                let n = leaf_next(&env.ctx.index, self.leaf);
                env.ctx.touch(self.leaf + 8, 8, MemDep::Chase);
                n
            };
            if next == 0 {
                return None;
            }
            self.leaf = next;
            self.pos = 0;
            self.n = node_n(&env.ctx.index, next);
            env.ctx.touch(next, 8, MemDep::Chase);
        }
    }
}

/// Index range scan producing projected heap columns for keys in
/// `(lo, hi)` **exclusive** on both ends (the paper's `a2 < Hi and a2 > Lo`).
pub struct IndexRangeScan {
    btree: BTree,
    lo: i32,
    hi: i32,
    heap: HeapFile,
    cols: Vec<usize>,
    blocks: Arc<EngineBlocks>,
    cursor: Option<LeafCursor>,
    materialize_full: bool,
}

impl IndexRangeScan {
    /// Creates the scan; bounds are exclusive.
    pub fn new(
        btree: BTree,
        lo: i32,
        hi: i32,
        heap: HeapFile,
        cols: Vec<usize>,
        blocks: Arc<EngineBlocks>,
    ) -> Self {
        IndexRangeScan {
            btree,
            lo,
            hi,
            heap,
            cols,
            blocks,
            cursor: None,
            materialize_full: false,
        }
    }

    /// Makes the fetch copy the whole record into the tuple buffer (engines
    /// with full materialization touch every line of the randomly-placed
    /// record — a big part of why IRS is *more* memory-bound than SRS,
    /// §5.1).
    pub fn with_full_materialization(mut self, on: bool) -> Self {
        self.materialize_full = on;
        self
    }
}

impl Operator for IndexRangeScan {
    fn open(&mut self, env: &mut ExecEnv<'_>) -> DbResult<()> {
        // Lower bound is exclusive: descend to the first key > lo, i.e.
        // lower_bound(lo + 1) for integer keys.
        let start = self.lo.saturating_add(1);
        self.cursor = Some(descend_to_leaf(env, &self.btree, start, &self.blocks));
        Ok(())
    }

    fn next(&mut self, env: &mut ExecEnv<'_>, out: &mut Vec<i32>) -> DbResult<bool> {
        let cursor = self.cursor.as_mut().expect("open() called");
        {
            let Some((k, packed)) = cursor.next_entry(env, &self.blocks) else {
                return Ok(false);
            };
            if k >= self.hi {
                return Ok(false);
            }
            // Fetch the record at a (random) heap page through the buffer
            // pool, then read the projected fields at their layout-resolved
            // addresses.
            let rid = Rid::unpack(packed);
            let frame = fetch_record(env, &self.heap, rid, &self.blocks)?;
            if self.materialize_full {
                touch_record_fields(env.ctx, &self.heap, frame, rid.slot, MemDep::Chase);
                env.ctx
                    .store_touch(self.blocks.tuple_buf, self.heap.record_size, MemDep::Demand);
                env.ctx
                    .exec_scaled(&self.blocks.field_extract, self.heap.record_size / 4);
            }
            out.clear();
            for &c in &self.cols {
                let addr = self.heap.field_addr_at(frame, rid.slot, c);
                let v = if self.materialize_full {
                    env.ctx.read_raw_i32(addr)
                } else {
                    env.ctx.load_i32(addr, MemDep::Chase)
                };
                out.push(v);
            }
            Ok(true)
        }
    }

    fn next_batch(&mut self, env: &mut ExecEnv<'_>, out: &mut Batch) -> DbResult<bool> {
        out.reset(self.cols.len());
        if self.cursor.is_none() {
            return Ok(false);
        }
        // Per batch: one pass through the outer leaf-walk/fetch paths plus
        // the vector dispatch; per entry the amortized tight loop is charged
        // after the batch fills (when its length is known). The descent,
        // leaf-entry loads, page-table probes and record touches keep their
        // per-entry pointer-chasing data behaviour — batching collapses the
        // index scan's computation, not its random-access memory stalls
        // (which is why the paper-style IRS stays memory-bound even
        // vectorized).
        env.ctx.exec(&self.blocks.batch.dispatch);
        env.ctx.exec(&self.blocks.index_leaf_next);
        env.ctx.exec(&self.blocks.rid_fetch);
        env.ctx.exec(&self.blocks.bufpool_get);
        let mut row = Vec::with_capacity(self.cols.len());
        while !out.is_full() {
            let cursor = self.cursor.as_mut().expect("checked above");
            let entry = cursor.next_entry_data(env);
            let Some((_, packed)) = entry.filter(|&(k, _)| k < self.hi) else {
                self.cursor = None;
                break;
            };
            let rid = Rid::unpack(packed);
            let frame = fetch_record_data(env, &self.heap, rid)?;
            if self.materialize_full {
                touch_record_fields(env.ctx, &self.heap, frame, rid.slot, MemDep::Chase);
            }
            row.clear();
            for &c in &self.cols {
                let addr = self.heap.field_addr_at(frame, rid.slot, c);
                let v = if self.materialize_full {
                    env.ctx.read_raw_i32(addr)
                } else {
                    env.ctx.load_i32(addr, MemDep::Chase)
                };
                row.push(v);
            }
            out.push_row(&row);
        }
        let n = out.len() as u32;
        if n > 0 {
            env.ctx.exec_scaled(&self.blocks.batch.fetch_step, n);
            if self.materialize_full {
                // Tuple-buffer writes stay L1-resident; one representative
                // write per batch. The columnar batch extracts only the
                // projected attributes (record lines are still touched in
                // full above, keeping the row-mode data behaviour).
                env.ctx
                    .store_touch(self.blocks.tuple_buf, self.heap.record_size, MemDep::Demand);
                env.ctx
                    .exec_scaled(&self.blocks.field_extract, n * self.cols.len() as u32);
            }
        }
        Ok(!out.is_empty())
    }

    fn arity(&self) -> usize {
        self.cols.len()
    }
}

//! Scalar aggregation (AVG / SUM / COUNT / MIN / MAX).
//!
//! The paper's queries aggregate (`select avg(a3) …`) so the DBMS returns a
//! single row and client/server communication does not pollute the
//! measurements (§3.3). The accumulator lives in engine-private memory, part
//! of the hot working set that §5.2 observes stays L1-resident.
//!
//! The accumulator itself is an exact, mergeable [`AggState`]: sharded
//! execution drains one `AggExec` per shard via [`AggExec::run_partial`] and
//! merges the partials, so the merged answer is bit-identical to a
//! single-shard run (see [`crate::exec::partial`]).

use std::sync::Arc;

use wdtg_sim::MemDep;

use crate::error::DbResult;
use crate::exec::batch::{Batch, ExecMode};
use crate::exec::partial::AggState;
use crate::exec::{ExecEnv, Operator};
use crate::profiles::EngineBlocks;
use crate::query::{AggKind, QueryResult};

/// Aggregate executor: drains a child operator into one scalar.
pub struct AggExec {
    child: Box<dyn Operator>,
    kind: AggKind,
    col: usize,
    blocks: Arc<EngineBlocks>,
}

impl AggExec {
    /// Aggregates column position `col` of `child`'s output.
    pub fn new(
        child: Box<dyn Operator>,
        kind: AggKind,
        col: usize,
        blocks: Arc<EngineBlocks>,
    ) -> Self {
        AggExec {
            child,
            kind,
            col,
            blocks,
        }
    }

    /// Runs the aggregation to completion on the environment's execution
    /// path (row-at-a-time or vectorized).
    pub fn run(&mut self, env: &mut ExecEnv<'_>) -> DbResult<QueryResult> {
        Ok(self.run_partial(env)?.result(self.kind))
    }

    /// Runs the aggregation but stops short of rendering the final value,
    /// returning the exact accumulator instead — the shard router merges
    /// these across partitions before finishing.
    pub fn run_partial(&mut self, env: &mut ExecEnv<'_>) -> DbResult<AggState> {
        match env.mode {
            ExecMode::Row => self.run_rows(env),
            ExecMode::Batch => self.run_batched(env),
        }
    }

    /// Volcano drain: one `agg_step` path and one accumulator write per row.
    fn run_rows(&mut self, env: &mut ExecEnv<'_>) -> DbResult<AggState> {
        self.child.open(env)?;
        let mut row = Vec::with_capacity(self.child.arity());
        let mut state = AggState::new();
        let mut rows = 0u64;
        while self.child.next(env, &mut row)? {
            let v = row[self.col];
            env.ctx.exec(&self.blocks.agg_step);
            // Accumulator update in private memory (hot, L1-resident).
            env.ctx.store_touch(self.blocks.agg_buf, 16, MemDep::Demand);
            state.update(v);
            // Guardrail checkpoint at batch-equivalent granularity: row
            // mode has no batch boundary, so check every 1024 rows.
            rows += 1;
            if rows & 0x3FF == 0 {
                env.budget_checkpoint(&self.blocks.budget_check)?;
            }
        }
        Ok(state)
    }

    /// Vectorized drain: the aggregate path runs once per batch, the tight
    /// accumulate loop scales over the batch's *live* rows (a predicated
    /// filter upstream publishes qualification as a selection vector, and
    /// the accumulate loop walks exactly those lanes), and the accumulator
    /// lives in registers (one representative spill per batch instead of
    /// one write per row).
    fn run_batched(&mut self, env: &mut ExecEnv<'_>) -> DbResult<AggState> {
        self.child.open(env)?;
        let mut batch = Batch::new(self.child.arity());
        let mut state = AggState::new();
        while self.child.next_batch(env, &mut batch)? {
            let live = batch.live_rows();
            let col = batch.col(self.col);
            env.ctx.exec(&self.blocks.agg_step);
            env.ctx
                .exec_scaled(&self.blocks.batch.agg_step, live as u32);
            env.ctx.store_touch(self.blocks.agg_buf, 16, MemDep::Demand);
            for i in 0..live {
                state.update(col[batch.live_index(i)]);
            }
            // Guardrail checkpoint once per batch boundary.
            env.budget_checkpoint(&self.blocks.budget_check)?;
        }
        Ok(state)
    }
}

//! Scalar aggregation (AVG / SUM / COUNT / MIN / MAX).
//!
//! The paper's queries aggregate (`select avg(a3) …`) so the DBMS returns a
//! single row and client/server communication does not pollute the
//! measurements (§3.3). The accumulator lives in engine-private memory, part
//! of the hot working set that §5.2 observes stays L1-resident.

use std::rc::Rc;

use wdtg_sim::MemDep;

use crate::error::DbResult;
use crate::exec::batch::{Batch, ExecMode};
use crate::exec::{ExecEnv, Operator};
use crate::profiles::EngineBlocks;
use crate::query::{AggKind, QueryResult};

/// Aggregate executor: drains a child operator into one scalar.
pub struct AggExec {
    child: Box<dyn Operator>,
    kind: AggKind,
    col: usize,
    blocks: Rc<EngineBlocks>,
}

impl AggExec {
    /// Aggregates column position `col` of `child`'s output.
    pub fn new(
        child: Box<dyn Operator>,
        kind: AggKind,
        col: usize,
        blocks: Rc<EngineBlocks>,
    ) -> Self {
        AggExec {
            child,
            kind,
            col,
            blocks,
        }
    }

    /// Runs the aggregation to completion on the environment's execution
    /// path (row-at-a-time or vectorized).
    pub fn run(&mut self, env: &mut ExecEnv<'_>) -> DbResult<QueryResult> {
        match env.mode {
            ExecMode::Row => self.run_rows(env),
            ExecMode::Batch => self.run_batched(env),
        }
    }

    /// Volcano drain: one `agg_step` path and one accumulator write per row.
    fn run_rows(&mut self, env: &mut ExecEnv<'_>) -> DbResult<QueryResult> {
        self.child.open(env)?;
        let mut row = Vec::with_capacity(self.child.arity());
        let mut sum = 0i64;
        let mut count = 0u64;
        let mut min = i32::MAX;
        let mut max = i32::MIN;
        while self.child.next(env, &mut row)? {
            let v = row[self.col];
            env.ctx.exec(&self.blocks.agg_step);
            // Accumulator update in private memory (hot, L1-resident).
            env.ctx.store_touch(self.blocks.agg_buf, 16, MemDep::Demand);
            sum += v as i64;
            count += 1;
            min = min.min(v);
            max = max.max(v);
        }
        self.finish(sum, count, min, max)
    }

    /// Vectorized drain: the aggregate path runs once per batch, the tight
    /// accumulate loop scales over the batch's *live* rows (a predicated
    /// filter upstream publishes qualification as a selection vector, and
    /// the accumulate loop walks exactly those lanes), and the accumulator
    /// lives in registers (one representative spill per batch instead of
    /// one write per row).
    fn run_batched(&mut self, env: &mut ExecEnv<'_>) -> DbResult<QueryResult> {
        self.child.open(env)?;
        let mut batch = Batch::new(self.child.arity());
        let mut sum = 0i64;
        let mut count = 0u64;
        let mut min = i32::MAX;
        let mut max = i32::MIN;
        while self.child.next_batch(env, &mut batch)? {
            let live = batch.live_rows();
            let col = batch.col(self.col);
            env.ctx.exec(&self.blocks.agg_step);
            env.ctx
                .exec_scaled(&self.blocks.batch.agg_step, live as u32);
            env.ctx.store_touch(self.blocks.agg_buf, 16, MemDep::Demand);
            for i in 0..live {
                let v = col[batch.live_index(i)];
                sum += v as i64;
                min = min.min(v);
                max = max.max(v);
            }
            count += live as u64;
        }
        self.finish(sum, count, min, max)
    }

    fn finish(&self, sum: i64, count: u64, min: i32, max: i32) -> DbResult<QueryResult> {
        let value = match self.kind {
            AggKind::Avg => {
                if count == 0 {
                    0.0
                } else {
                    sum as f64 / count as f64
                }
            }
            AggKind::Sum => sum as f64,
            AggKind::Count => count as f64,
            AggKind::Min => {
                if count == 0 {
                    0.0
                } else {
                    min as f64
                }
            }
            AggKind::Max => {
                if count == 0 {
                    0.0
                } else {
                    max as f64
                }
            }
        };
        Ok(QueryResult { value, rows: count })
    }
}

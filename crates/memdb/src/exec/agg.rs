//! Scalar aggregation (AVG / SUM / COUNT / MIN / MAX).
//!
//! The paper's queries aggregate (`select avg(a3) …`) so the DBMS returns a
//! single row and client/server communication does not pollute the
//! measurements (§3.3). The accumulator lives in engine-private memory, part
//! of the hot working set that §5.2 observes stays L1-resident.

use std::rc::Rc;

use wdtg_sim::MemDep;

use crate::error::DbResult;
use crate::exec::{ExecEnv, Operator};
use crate::profiles::EngineBlocks;
use crate::query::{AggKind, QueryResult};

/// Aggregate executor: drains a child operator into one scalar.
pub struct AggExec {
    child: Box<dyn Operator>,
    kind: AggKind,
    col: usize,
    blocks: Rc<EngineBlocks>,
}

impl AggExec {
    /// Aggregates column position `col` of `child`'s output.
    pub fn new(child: Box<dyn Operator>, kind: AggKind, col: usize, blocks: Rc<EngineBlocks>) -> Self {
        AggExec { child, kind, col, blocks }
    }

    /// Runs the aggregation to completion.
    pub fn run(&mut self, env: &mut ExecEnv<'_>) -> DbResult<QueryResult> {
        self.child.open(env)?;
        let mut row = Vec::with_capacity(self.child.arity());
        let mut sum = 0i64;
        let mut count = 0u64;
        let mut min = i32::MAX;
        let mut max = i32::MIN;
        while self.child.next(env, &mut row)? {
            let v = row[self.col];
            env.ctx.exec(&self.blocks.agg_step);
            // Accumulator update in private memory (hot, L1-resident).
            env.ctx.store_touch(self.blocks.agg_buf, 16, MemDep::Demand);
            sum += v as i64;
            count += 1;
            min = min.min(v);
            max = max.max(v);
        }
        let value = match self.kind {
            AggKind::Avg => {
                if count == 0 {
                    0.0
                } else {
                    sum as f64 / count as f64
                }
            }
            AggKind::Sum => sum as f64,
            AggKind::Count => count as f64,
            AggKind::Min => {
                if count == 0 {
                    0.0
                } else {
                    min as f64
                }
            }
            AggKind::Max => {
                if count == 0 {
                    0.0
                } else {
                    max as f64
                }
            }
        };
        Ok(QueryResult { value, rows: count })
    }
}

//! In-memory hash join (the paper's sequential join runs without indexes, so
//! every engine builds a transient hash table over the smaller input S and
//! probes it with R).
//!
//! The bucket directory plus entry pool exceed the 512 KB L2 at paper scale,
//! so probes are pointer chases into cold memory — the join's memory stalls
//! come from here, alongside the outer scan. Batch mode amortizes the
//! build/probe *code* paths over whole batches while the bucket and chain
//! data traffic keeps its per-row pointer-chasing character: batching
//! collapses the join's computation time, not its memory stalls, exactly as
//! the vectorized-engine literature reports.

use std::sync::Arc;

use wdtg_sim::MemDep;

use crate::error::DbResult;
use crate::exec::batch::{Batch, ExecMode};
use crate::exec::{ExecEnv, Operator};
use crate::index::hash::JoinHashTable;
use crate::profiles::EngineBlocks;

/// Hash join emitting `probe_row ++ build_row`.
pub struct HashJoin {
    build: Box<dyn Operator>,
    build_key: usize,
    probe: Box<dyn Operator>,
    probe_key: usize,
    blocks: Arc<EngineBlocks>,
    table: Option<JoinHashTable>,
    build_rows: Vec<Vec<i32>>,
    // probe state
    probe_row: Vec<i32>,
    chain: u64,
    have_probe_row: bool,
    // batch-mode probe state
    probe_batch: Batch,
    probe_pos: usize,
    out_scratch: Vec<i32>,
}

impl HashJoin {
    /// Creates a hash join; `build` is drained at `open`.
    pub fn new(
        build: Box<dyn Operator>,
        build_key: usize,
        probe: Box<dyn Operator>,
        probe_key: usize,
        blocks: Arc<EngineBlocks>,
    ) -> Self {
        HashJoin {
            build,
            build_key,
            probe,
            probe_key,
            blocks,
            table: None,
            build_rows: Vec::new(),
            probe_row: Vec::new(),
            chain: 0,
            have_probe_row: false,
            probe_batch: Batch::default(),
            probe_pos: 0,
            out_scratch: Vec::new(),
        }
    }

    /// Inserts one staged `(key, payload)` pair with its instrumented data
    /// traffic (bucket-head read, entry write, head write) — identical in
    /// both execution modes. Shared with the partitioned join, whose
    /// per-partition build phase performs the same inserts into a smaller
    /// (cache-resident) table.
    pub(crate) fn insert_staged(
        env: &mut ExecEnv<'_>,
        table: &mut JoinHashTable,
        key: i32,
        payload: u64,
    ) {
        let bucket_probe = table.bucket_addr(key);
        // Read old head, write entry (24 B), write new head.
        env.ctx.touch(bucket_probe, 8, MemDep::Chase);
        let (bucket, entry) = table.insert(&mut env.ctx.index, key, payload);
        env.ctx.store_touch(entry, 24, MemDep::Demand);
        env.ctx.store_touch(bucket, 8, MemDep::Demand);
    }
}

impl Operator for HashJoin {
    fn open(&mut self, env: &mut ExecEnv<'_>) -> DbResult<()> {
        // Build phase: drain the build child into the hash table.
        self.build.open(env)?;
        self.build_rows.clear();
        let mut staged: Vec<(i32, u64)> = Vec::new();
        match env.mode {
            ExecMode::Row => {
                let mut row = Vec::with_capacity(self.build.arity());
                while self.build.next(env, &mut row)? {
                    let key = row[self.build_key];
                    staged.push((key, self.build_rows.len() as u64));
                    self.build_rows.push(row.clone());
                }
            }
            ExecMode::Batch => {
                let mut batch = Batch::new(self.build.arity());
                let mut row = Vec::with_capacity(self.build.arity());
                while self.build.next_batch(env, &mut batch)? {
                    for i in 0..batch.live_rows() {
                        batch.read_row(batch.live_index(i), &mut row);
                        staged.push((row[self.build_key], self.build_rows.len() as u64));
                        self.build_rows.push(row.clone());
                    }
                }
            }
        }
        let mut table = JoinHashTable::new(&mut env.ctx.index, staged.len().max(1) as u64);
        match env.mode {
            ExecMode::Row => {
                for (key, payload) in staged {
                    env.ctx.exec(&self.blocks.hash_build);
                    Self::insert_staged(env, &mut table, key, payload);
                }
            }
            ExecMode::Batch => {
                // Vectorized build: the build path runs once per batch of
                // staged pairs, the tight loop scales, and the per-pair
                // bucket/entry traffic is unchanged.
                for chunk in staged.chunks(crate::exec::BATCH_ROWS) {
                    env.ctx.exec(&self.blocks.hash_build);
                    env.ctx
                        .exec_scaled(&self.blocks.batch.hash_step, chunk.len() as u32);
                    for &(key, payload) in chunk {
                        Self::insert_staged(env, &mut table, key, payload);
                    }
                }
            }
        }
        self.table = Some(table);
        self.probe.open(env)?;
        self.have_probe_row = false;
        self.chain = 0;
        self.probe_batch.reset(self.probe.arity());
        self.probe_pos = 0;
        Ok(())
    }

    fn next(&mut self, env: &mut ExecEnv<'_>, out: &mut Vec<i32>) -> DbResult<bool> {
        let table = self.table.as_ref().expect("open() called");
        loop {
            if !self.have_probe_row {
                if !self.probe.next(env, &mut self.probe_row)? {
                    return Ok(false);
                }
                self.have_probe_row = true;
                env.ctx.exec(&self.blocks.hash_probe);
                let key = self.probe_row[self.probe_key];
                // Bucket-head load: random access into the directory.
                self.chain = {
                    env.ctx.touch(table.bucket_addr(key), 8, MemDep::Chase);
                    table.chain_head(&env.ctx.index, key)
                };
            }
            // Walk the chain.
            while self.chain != 0 {
                let entry_addr = self.chain;
                env.ctx.touch(entry_addr, 20, MemDep::Chase);
                let (k, payload, next) = table.entry(&env.ctx.index, entry_addr);
                self.chain = next;
                let key = self.probe_row[self.probe_key];
                let matched = k == key;
                env.ctx.branch(self.blocks.match_site, matched);
                if matched {
                    env.ctx.exec(&self.blocks.join_match);
                    out.clear();
                    out.extend_from_slice(&self.probe_row);
                    out.extend_from_slice(&self.build_rows[payload as usize]);
                    return Ok(true);
                }
            }
            self.have_probe_row = false;
        }
    }

    fn next_batch(&mut self, env: &mut ExecEnv<'_>, out: &mut Batch) -> DbResult<bool> {
        let table = self.table.as_ref().expect("open() called");
        out.reset(self.arity());
        let mut matches_in_batch: u32 = 0;
        loop {
            // Drain the pending chain of the current probe row, pausing at
            // batch capacity: a skewed key whose chain yields thousands of
            // matches must not balloon one batch — the remainder of the
            // chain resumes on the next call.
            while self.chain != 0 && !out.is_full() {
                let entry_addr = self.chain;
                env.ctx.touch(entry_addr, 20, MemDep::Chase);
                let (k, payload, next) = table.entry(&env.ctx.index, entry_addr);
                self.chain = next;
                let key = self.probe_row[self.probe_key];
                let matched = k == key;
                env.ctx.branch(self.blocks.match_site, matched);
                if matched {
                    matches_in_batch += 1;
                    self.out_scratch.clear();
                    self.out_scratch.extend_from_slice(&self.probe_row);
                    self.out_scratch
                        .extend_from_slice(&self.build_rows[payload as usize]);
                    out.push_row(&self.out_scratch);
                }
            }
            if out.is_full() {
                break;
            }
            // Advance to the next live probe row within the current probe
            // batch (a predicated filter upstream publishes qualification
            // as a selection vector; the probe honors it).
            if self.probe_pos < self.probe_batch.live_rows() {
                self.probe_batch.read_row(
                    self.probe_batch.live_index(self.probe_pos),
                    &mut self.probe_row,
                );
                self.probe_pos += 1;
                let key = self.probe_row[self.probe_key];
                env.ctx.touch(table.bucket_addr(key), 8, MemDep::Chase);
                self.chain = table.chain_head(&env.ctx.index, key);
                continue;
            }
            // Pull a fresh probe batch: the probe path runs once per batch,
            // the tight loop scales over its live rows.
            if !self.probe.next_batch(env, &mut self.probe_batch)? {
                break;
            }
            env.ctx.exec(&self.blocks.hash_probe);
            env.ctx.exec_scaled(
                &self.blocks.batch.hash_step,
                self.probe_batch.live_rows() as u32,
            );
            self.probe_pos = 0;
        }
        // Match emission code, amortized over the batch's matches.
        if matches_in_batch > 0 {
            env.ctx
                .exec_scaled(&self.blocks.join_match, matches_in_batch);
        }
        Ok(!out.is_empty())
    }

    fn arity(&self) -> usize {
        self.probe.arity() + self.build.arity()
    }
}

//! In-memory hash join (the paper's sequential join runs without indexes, so
//! every engine builds a transient hash table over the smaller input S and
//! probes it with R).
//!
//! The bucket directory plus entry pool exceed the 512 KB L2 at paper scale,
//! so probes are pointer chases into cold memory — the join's memory stalls
//! come from here, alongside the outer scan.

use std::rc::Rc;

use wdtg_sim::MemDep;

use crate::error::DbResult;
use crate::exec::{ExecEnv, Operator};
use crate::index::hash::JoinHashTable;
use crate::profiles::EngineBlocks;

/// Hash join emitting `probe_row ++ build_row`.
pub struct HashJoin {
    build: Box<dyn Operator>,
    build_key: usize,
    probe: Box<dyn Operator>,
    probe_key: usize,
    blocks: Rc<EngineBlocks>,
    table: Option<JoinHashTable>,
    build_rows: Vec<Vec<i32>>,
    // probe state
    probe_row: Vec<i32>,
    chain: u64,
    have_probe_row: bool,
}

impl HashJoin {
    /// Creates a hash join; `build` is drained at `open`.
    pub fn new(
        build: Box<dyn Operator>,
        build_key: usize,
        probe: Box<dyn Operator>,
        probe_key: usize,
        blocks: Rc<EngineBlocks>,
    ) -> Self {
        HashJoin {
            build,
            build_key,
            probe,
            probe_key,
            blocks,
            table: None,
            build_rows: Vec::new(),
            probe_row: Vec::new(),
            chain: 0,
            have_probe_row: false,
        }
    }
}

impl Operator for HashJoin {
    fn open(&mut self, env: &mut ExecEnv<'_>) -> DbResult<()> {
        // Build phase: drain the build child into the hash table.
        self.build.open(env)?;
        self.build_rows.clear();
        let mut row = Vec::with_capacity(self.build.arity());
        let mut staged: Vec<(i32, u64)> = Vec::new();
        while self.build.next(env, &mut row)? {
            let key = row[self.build_key];
            staged.push((key, self.build_rows.len() as u64));
            self.build_rows.push(row.clone());
        }
        let mut table = JoinHashTable::new(&mut env.ctx.index, staged.len().max(1) as u64);
        for (key, payload) in staged {
            env.ctx.exec(&self.blocks.hash_build);
            let bucket_probe = table.bucket_addr(key);
            // Read old head, write entry (24 B), write new head.
            env.ctx.touch(bucket_probe, 8, MemDep::Chase);
            let (bucket, entry) = table.insert(&mut env.ctx.index, key, payload);
            env.ctx.store_touch(entry, 24, MemDep::Demand);
            env.ctx.store_touch(bucket, 8, MemDep::Demand);
        }
        self.table = Some(table);
        self.probe.open(env)?;
        self.have_probe_row = false;
        self.chain = 0;
        Ok(())
    }

    fn next(&mut self, env: &mut ExecEnv<'_>, out: &mut Vec<i32>) -> DbResult<bool> {
        let table = self.table.as_ref().expect("open() called");
        loop {
            if !self.have_probe_row {
                if !self.probe.next(env, &mut self.probe_row)? {
                    return Ok(false);
                }
                self.have_probe_row = true;
                env.ctx.exec(&self.blocks.hash_probe);
                let key = self.probe_row[self.probe_key];
                // Bucket-head load: random access into the directory.
                self.chain = {
                    env.ctx.touch(table.bucket_addr(key), 8, MemDep::Chase);
                    table.chain_head(&env.ctx.index, key)
                };
            }
            // Walk the chain.
            while self.chain != 0 {
                let entry_addr = self.chain;
                env.ctx.touch(entry_addr, 20, MemDep::Chase);
                let (k, payload, next) = table.entry(&env.ctx.index, entry_addr);
                self.chain = next;
                let key = self.probe_row[self.probe_key];
                let matched = k == key;
                env.ctx.branch(self.blocks.match_site, matched);
                if matched {
                    env.ctx.exec(&self.blocks.join_match);
                    out.clear();
                    out.extend_from_slice(&self.probe_row);
                    out.extend_from_slice(&self.build_rows[payload as usize]);
                    return Ok(true);
                }
            }
            self.have_probe_row = false;
        }
    }

    fn arity(&self) -> usize {
        self.probe.arity() + self.build.arity()
    }
}

//! Mergeable partial-aggregate state.
//!
//! Scalar and grouped aggregation both accumulate the same four exact
//! quantities — integer sum, count, min, max — and only render them into a
//! float at the very end ([`AggState::value`]). Keeping the accumulator
//! public and mergeable is what makes sharded execution exact: each shard
//! aggregates its partition into an [`AggState`], the shard router merges
//! the partials with integer arithmetic ([`AggState::merge`]), and the final
//! value is computed *once*, by the same code a single-shard run uses — so
//! an N-shard answer is bit-identical to the 1-shard answer, not merely
//! close up to float re-association.

use crate::query::{AggKind, QueryResult};

/// Exact, mergeable accumulator for one aggregate (or one group of a
/// grouped aggregate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggState {
    /// Integer sum of the aggregated column.
    pub sum: i64,
    /// Rows accumulated.
    pub count: u64,
    /// Minimum value seen ([`i32::MAX`] while empty).
    pub min: i32,
    /// Maximum value seen ([`i32::MIN`] while empty).
    pub max: i32,
}

impl Default for AggState {
    fn default() -> Self {
        Self::new()
    }
}

impl AggState {
    /// The empty accumulator (identity of [`AggState::merge`]).
    pub fn new() -> AggState {
        AggState {
            sum: 0,
            count: 0,
            min: i32::MAX,
            max: i32::MIN,
        }
    }

    /// Folds one value in.
    #[inline]
    pub fn update(&mut self, v: i32) {
        self.sum += v as i64;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another partial in (shard merge). Exact: integer sums and
    /// min/max are associative and commutative, so merge order cannot
    /// change the result.
    #[inline]
    pub fn merge(&mut self, other: &AggState) {
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Renders the accumulator as `kind`'s final value (0.0 when empty,
    /// matching the engine's historical behaviour for aggregates over no
    /// rows).
    pub fn value(&self, kind: AggKind) -> f64 {
        match kind {
            AggKind::Avg => {
                if self.count == 0 {
                    0.0
                } else {
                    self.sum as f64 / self.count as f64
                }
            }
            AggKind::Sum => self.sum as f64,
            AggKind::Count => self.count as f64,
            AggKind::Min => {
                if self.count == 0 {
                    0.0
                } else {
                    self.min as f64
                }
            }
            AggKind::Max => {
                if self.count == 0 {
                    0.0
                } else {
                    self.max as f64
                }
            }
        }
    }

    /// The accumulator as a [`QueryResult`] for `kind`.
    pub fn result(&self, kind: AggKind) -> QueryResult {
        QueryResult {
            value: self.value(kind),
            rows: self.count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_equals_sequential_update() {
        let vals = [5, -3, 12, 0, 7, -3, 9];
        let mut whole = AggState::new();
        for v in vals {
            whole.update(v);
        }
        let (a_vals, b_vals) = vals.split_at(3);
        let mut a = AggState::new();
        let mut b = AggState::new();
        for &v in a_vals {
            a.update(v);
        }
        for &v in b_vals {
            b.update(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        for kind in [
            AggKind::Avg,
            AggKind::Sum,
            AggKind::Count,
            AggKind::Min,
            AggKind::Max,
        ] {
            assert_eq!(a.value(kind), whole.value(kind));
        }
    }

    #[test]
    fn empty_state_is_merge_identity_and_renders_zero() {
        let mut s = AggState::new();
        assert_eq!(s.value(AggKind::Avg), 0.0);
        assert_eq!(s.value(AggKind::Min), 0.0);
        let mut one = AggState::new();
        one.update(42);
        s.merge(&one);
        assert_eq!(s, one);
    }
}

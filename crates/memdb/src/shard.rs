//! Sharded multi-core execution.
//!
//! The paper measures a single processor; its closing question is where
//! time would go as engines scale out. This module adds the first scaling
//! axis: hash-partition every table across `N` shards, give each shard its
//! own buffer pool and its own deterministic [`wdtg_sim::Cpu`], run each
//! query on every shard, and merge.
//!
//! # Shard router
//!
//! ```text
//!              rows of table T (shard key column k)
//!                              │
//!              h = key × 0x9e3779b97f4a7c15  (radix-join hash)
//!              shard = high 32 bits of h  mod  N
//!        ┌─────────────┬───────┴──────┬─────────────┐
//!        ▼             ▼              ▼             ▼
//!   ┌─────────┐   ┌─────────┐   ┌─────────┐   ┌─────────┐
//!   │ shard 0 │   │ shard 1 │   │   ...   │   │ shard N │   one Database
//!   │ Cpu+bufp│   │ Cpu+bufp│   │         │   │ Cpu+bufp│   per shard
//!   └────┬────┘   └────┬────┘   └────┬────┘   └────┬────┘
//!        │ partial      │ partial     │             │
//!        └──────┬───────┴─────────────┴─────────────┘
//!               ▼
//!     AggState::merge (integer-exact) → final value, computed once
//! ```
//!
//! The router takes the *high* bits of the same multiplicative hash the
//! radix-partitioned join scatters with — so inside each shard
//! [`crate::exec::join_partitioned`]'s low-bit scatter still sees full
//! entropy, and the two layers of radix routing compose instead of
//! aliasing.
//!
//! # Merge rules
//!
//! * **Aggregates** (`SelectAgg`, `JoinAgg`): each shard produces an exact
//!   [`AggState`] partial ([`Database::run_partial`]); partials merge with
//!   integer arithmetic and the final float is rendered once — an N-shard
//!   answer is bit-identical to the 1-shard answer.
//! * **Grouped aggregates**: per-key [`AggState`] partials merged in a
//!   [`BTreeMap`], emitted in ascending key order like the single-shard
//!   operator.
//! * **Joins**: each shard joins locally, which is only correct when both
//!   sides are *co-partitioned* on their join keys; the router checks the
//!   declared shard keys ([`Database::set_shard_key`]) and refuses the plan
//!   otherwise.
//! * **Point reads** broadcast; a read whose key matches rows on more
//!   than one shard (possible only when the lookup column is not the
//!   shard key) is refused — its "first match" value would be
//!   shard-order-defined. **Updates** broadcast and apply exactly (the
//!   returned last-value scalar is shard-order-defined under cross-shard
//!   duplicates); **inserts** route by the shard key.
//! * **Time**: shards execute sequentially in simulation — no OS threads,
//!   no scheduling nondeterminism — and the merged wall clock of a
//!   "parallel" phase is the *max* of per-core cycle deltas
//!   ([`wdtg_sim::merge_cores`]), while counters and stall ledgers *sum*.
//!   `tests/determinism.rs` stays honest: identical builds produce
//!   cycle-exact, bit-identical merged snapshots.

use std::collections::BTreeMap;

use wdtg_sim::{merge_cores, CoreMerge, Snapshot};

use crate::db::Database;
use crate::error::{DbError, DbResult};
use crate::exec::partial::AggState;
use crate::exec::{ExecMode, SelectionMode};
use crate::fault::{FaultPlan, FaultSite, ResourceBudget, RobustnessStats};
use crate::profiles::JoinAlgo;
use crate::query::{Query, QueryPredicate, QueryResult};

/// How many times the router attempts one shard's sub-query before giving
/// up (first try + two retries).
const MAX_SHARD_ATTEMPTS: u32 = 3;

/// Router-level robustness counters: what the shard retry loop did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouterStats {
    /// Individual retry attempts issued after a transient shard failure.
    pub retries: u64,
    /// Shard sub-queries that ultimately succeeded after >= 1 retry.
    pub recovered: u64,
    /// Shard sub-queries that exhausted their attempts and failed the
    /// merged query ([`DbError::ShardFailed`]).
    pub failed: u64,
}

impl RouterStats {
    /// Folds another router's counters in (the parallel executor keeps one
    /// [`RouterStats`] per in-flight shard task and merges in shard order).
    pub fn absorb(&mut self, other: &RouterStats) {
        self.retries += other.retries;
        self.recovered += other.recovered;
        self.failed += other.failed;
    }
}

/// Runs one read-only shard sub-query with bounded deterministic retry:
/// an injected [`FaultSite::ShardExec`] hit (drawn before each attempt)
/// or a transient error from the shard is retried up to
/// [`MAX_SHARD_ATTEMPTS`] times, charging an exponential backoff spin on
/// the shard's own simulated core between attempts. Non-transient errors
/// propagate unchanged; exhaustion surfaces as [`DbError::ShardFailed`]
/// wrapping the last cause.
pub(crate) fn run_with_retry<T>(
    shard: &mut Database,
    shard_no: usize,
    stats: &mut RouterStats,
    mut op: impl FnMut(&mut Database) -> DbResult<T>,
) -> DbResult<T> {
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let result = if shard.ctx.fault.should_fault(FaultSite::ShardExec) {
            Err(DbError::ShardFault { shard: shard_no })
        } else {
            op(shard)
        };
        match result {
            Ok(v) => {
                if attempt > 1 {
                    stats.recovered += 1;
                }
                return Ok(v);
            }
            Err(e) if e.is_transient() => {
                if attempt < MAX_SHARD_ATTEMPTS {
                    stats.retries += 1;
                    shard.charge_backoff(attempt);
                } else {
                    stats.failed += 1;
                    return Err(DbError::ShardFailed {
                        shard: shard_no,
                        attempts: attempt,
                        cause: Box::new(e),
                    });
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Runs one *mutating* shard sub-query under fault injection. Mutations
/// are never retried: a failed attempt may have partially applied, and a
/// blind re-run could double-apply its effect — the router surfaces
/// [`DbError::ShardFailed`] after a single attempt instead.
pub(crate) fn run_mutation<T>(
    shard: &mut Database,
    shard_no: usize,
    stats: &mut RouterStats,
    op: impl FnOnce(&mut Database) -> DbResult<T>,
) -> DbResult<T> {
    if shard.ctx.fault.should_fault(FaultSite::ShardExec) {
        stats.failed += 1;
        return Err(DbError::ShardFailed {
            shard: shard_no,
            attempts: 1,
            cause: Box::new(DbError::ShardFault { shard: shard_no }),
        });
    }
    op(shard)
}

/// Shard index of `key` among `n` shards: high 32 bits of the radix-join
/// multiplicative hash, mod `n`. Pure and deterministic.
pub(crate) fn shard_of(key: i32, n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    let h = (key as u32 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    ((h >> 32) % n as u64) as usize
}

/// A database hash-partitioned across `N` single-core shards (see the
/// module docs for the router and merge rules). Built with
/// [`Database::shard`].
#[derive(Debug)]
pub struct ShardedDatabase {
    pub(crate) shards: Vec<Database>,
    pub(crate) stats: RouterStats,
}

impl ShardedDatabase {
    pub(crate) fn from_shards(shards: Vec<Database>) -> ShardedDatabase {
        assert!(!shards.is_empty(), "a sharded database needs >= 1 shard");
        ShardedDatabase {
            shards,
            stats: RouterStats::default(),
        }
    }

    /// Number of shards (simulated cores).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in routing order (read access for counters/snapshots).
    pub fn shards(&self) -> &[Database] {
        &self.shards
    }

    /// Mutable access to the shards (stat resets, knob twiddling). Data
    /// placement must not be changed behind the router's back.
    pub fn shards_mut(&mut self) -> &mut [Database] {
        &mut self.shards
    }

    /// Selects row-at-a-time or vectorized execution on every shard.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        for s in &mut self.shards {
            s.set_exec_mode(mode);
        }
    }

    /// Selects branching or predicated qualification on every shard.
    pub fn set_selection_mode(&mut self, mode: SelectionMode) {
        for s in &mut self.shards {
            s.set_selection_mode(mode);
        }
    }

    /// Overrides the join algorithm on every shard.
    pub fn set_join_algo(&mut self, algo: JoinAlgo) {
        for s in &mut self.shards {
            s.set_join_algo(algo);
        }
    }

    /// Turns instrumentation on/off on every shard (bulk phases).
    pub fn set_instrument(&mut self, on: bool) {
        for s in &mut self.shards {
            s.ctx.instrument = on;
        }
    }

    /// Applies `plan` across the shards, salting the seed per shard
    /// ([`FaultPlan::for_shard`]) so shards draw independent — but still
    /// bit-reproducible — fault sequences rather than faulting in lockstep.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        for (i, s) in self.shards.iter_mut().enumerate() {
            s.set_fault_plan(plan.for_shard(i));
        }
    }

    /// Applies a per-query [`ResourceBudget`] to every shard (each shard
    /// enforces it against its own arenas and simulated core).
    pub fn set_budget(&mut self, budget: ResourceBudget) {
        for s in &mut self.shards {
            s.set_budget(budget);
        }
    }

    /// Fault/guardrail counters aggregated across all shards.
    pub fn robustness_stats(&self) -> RobustnessStats {
        let mut total = RobustnessStats::default();
        for s in &self.shards {
            total.absorb(&s.robustness_stats());
        }
        total
    }

    /// Clears every shard's fault/guardrail counters (fault-draw positions
    /// are kept, so injection sequences stay reproducible).
    pub fn reset_robustness_stats(&mut self) {
        for s in &mut self.shards {
            s.reset_robustness_stats();
        }
    }

    /// Router-level retry/recovery counters (see [`RouterStats`]).
    pub fn router_stats(&self) -> RouterStats {
        self.stats
    }

    /// Clears the router-level retry/recovery counters.
    pub fn reset_router_stats(&mut self) {
        self.stats = RouterStats::default();
    }

    /// One [`Snapshot`] per shard, in shard order — the `before` side of a
    /// merged measurement (see [`ShardedDatabase::merged_delta`]).
    pub fn snapshots(&self) -> Vec<Snapshot> {
        self.shards.iter().map(|s| s.cpu().snapshot()).collect()
    }

    /// Per-core deltas since `before` merged into totals + wall clock:
    /// counters and stall cycles sum across shards, wall cycles are the
    /// slowest shard's delta ([`wdtg_sim::merge_cores`]).
    pub fn merged_delta(&self, before: &[Snapshot]) -> CoreMerge {
        let deltas: Vec<Snapshot> = self
            .shards
            .iter()
            .zip(before)
            .map(|(s, b)| s.cpu().snapshot().delta(b))
            .collect();
        merge_cores(&deltas)
    }

    /// Simulated wall clock so far: the max of per-shard cycle counters
    /// (the slowest core finishes last).
    pub fn wall_cycles(&self) -> f64 {
        self.shards
            .iter()
            .map(|s| s.cpu().cycles())
            .fold(0.0, f64::max)
    }

    /// A sharded join is computed shard-locally, which is only correct when
    /// matching rows co-locate: both tables sharded on their join keys.
    pub(crate) fn check_join_co_partitioning(&self, q: &Query) -> DbResult<()> {
        let Query::JoinAgg {
            left,
            right,
            left_col,
            right_col,
            ..
        } = q
        else {
            return Ok(());
        };
        if self.shards.len() == 1 {
            return Ok(());
        }
        let lt = self.shards[0].table(left)?;
        let rt = self.shards[0].table(right)?;
        let lk = lt.schema.col(left_col)?;
        let rk = rt.schema.col(right_col)?;
        if lt.shard_col != lk || rt.shard_col != rk {
            return Err(DbError::PlanError(format!(
                "sharded join needs co-partitioned inputs: {left} is sharded on column \
                 {} and {right} on {}, but the join keys are {left}.{left_col} (column {lk}) \
                 and {right}.{right_col} (column {rk}); declare matching shard keys with \
                 Database::set_shard_key before Database::shard",
                lt.shard_col, rt.shard_col,
            )));
        }
        Ok(())
    }

    /// Runs an aggregate query on every shard and merges the exact partials.
    /// Each shard's sub-query runs under the router's bounded retry loop.
    fn run_merged_agg(&mut self, q: &Query, kind: crate::query::AggKind) -> DbResult<QueryResult> {
        let mut state = AggState::new();
        for (i, s) in self.shards.iter_mut().enumerate() {
            let partial = run_with_retry(s, i, &mut self.stats, |db| db.run_partial(q))?;
            state.merge(&partial);
        }
        Ok(state.result(kind))
    }

    /// Runs a query across all shards and merges the answer (see the module
    /// docs for the per-query merge rules). Shards execute sequentially in
    /// shard order; determinism is inherited from the per-shard simulators.
    pub fn run(&mut self, q: &Query) -> DbResult<QueryResult> {
        match q {
            Query::SelectAgg { agg, .. } => self.run_merged_agg(q, agg.kind),
            Query::JoinAgg { agg, .. } => {
                self.check_join_co_partitioning(q)?;
                self.run_merged_agg(q, agg.kind)
            }
            Query::PointSelect { .. } => {
                // Broadcast read. Duplicates of one key value co-locate when
                // the lookup column *is* the shard key (same hash → same
                // shard, and within one shard local index order mirrors the
                // global load order), so "first match" stays well defined.
                // When the lookup column is not the shard key, duplicates
                // may split across shards and the first match would become
                // shard-order- instead of index-order-defined — refuse that
                // read (the co-partitioning precedent: no silently different
                // answer) rather than guess.
                let mut out = QueryResult {
                    value: 0.0,
                    rows: 0,
                };
                let mut shards_with_matches = 0u32;
                for (i, s) in self.shards.iter_mut().enumerate() {
                    let r = run_with_retry(s, i, &mut self.stats, |db| db.run(q))?;
                    if r.rows > 0 {
                        shards_with_matches += 1;
                        if out.rows == 0 {
                            out.value = r.value;
                        }
                        out.rows += r.rows;
                    }
                }
                if shards_with_matches > 1 {
                    return Err(DbError::PlanError(format!(
                        "point select matched rows on {shards_with_matches} shards: the \
                         key is duplicated across shards, so a single returned value is \
                         not well defined; shard the table on the lookup column \
                         (Database::set_shard_key) or use an aggregate query"
                    )));
                }
                Ok(out)
            }
            Query::UpdateAdd { .. } => {
                // Broadcast update: every matching row receives the same
                // delta on its own shard, so the *effect* is exact for any
                // key distribution (addition commutes). The returned scalar
                // is the last updated value; under cross-shard duplicate
                // keys it is the last in shard order rather than index
                // order — `rows` and the stored data are exact either way.
                let mut out = QueryResult {
                    value: 0.0,
                    rows: 0,
                };
                for (i, s) in self.shards.iter_mut().enumerate() {
                    let r = run_mutation(s, i, &mut self.stats, |db| db.run(q))?;
                    if r.rows > 0 {
                        out.value = r.value;
                    }
                    out.rows += r.rows;
                }
                Ok(out)
            }
            Query::InsertRow { table, values } => {
                let t = self.shards[0].table(table)?;
                let col = t.shard_col;
                if col >= values.len() {
                    return Err(DbError::ArityMismatch {
                        expected: t.schema.arity(),
                        got: values.len(),
                    });
                }
                let target = shard_of(values[col], self.shards.len());
                run_mutation(&mut self.shards[target], target, &mut self.stats, |db| {
                    db.run(q)
                })
            }
        }
    }

    /// Runs a grouped aggregation on every shard and merges the per-group
    /// partials (ascending group order, like [`Database::run_grouped`]).
    pub fn run_grouped(
        &mut self,
        table: &str,
        group_col: &str,
        predicate: Option<&QueryPredicate>,
        agg: &crate::query::AggSpec,
    ) -> DbResult<Vec<(i32, f64)>> {
        let kind = agg.kind;
        let mut merged: BTreeMap<i32, AggState> = BTreeMap::new();
        for (i, s) in self.shards.iter_mut().enumerate() {
            let partials = run_with_retry(s, i, &mut self.stats, |db| {
                db.run_grouped_partial(table, group_col, predicate, agg)
            })?;
            for (k, st) in partials {
                merged.entry(k).or_default().merge(&st);
            }
        }
        Ok(merged
            .into_iter()
            .map(|(k, st)| (k, st.value(kind)))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_router_is_deterministic_and_total() {
        for n in [1usize, 2, 4, 8, 5] {
            for key in [-1_000_000, -1, 0, 1, 42, i32::MAX, i32::MIN] {
                let s = shard_of(key, n);
                assert!(s < n, "shard {s} out of range for n={n}");
                assert_eq!(s, shard_of(key, n), "routing must be pure");
            }
        }
        assert_eq!(shard_of(12345, 1), 0);
    }

    #[test]
    fn shard_router_spreads_a_dense_key_domain() {
        // The micro workload's a2 domain is dense (1..=|S|); the router must
        // not collapse it onto a few shards.
        let n = 8;
        let mut counts = vec![0u32; n];
        for key in 1..=4000 {
            counts[shard_of(key, n)] += 1;
        }
        let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        assert!(
            min * 2 > max,
            "badly skewed shard routing: min {min}, max {max}"
        );
    }
}

//! Transactions: snapshot-isolation MVCC and a simulated write-ahead log.
//!
//! The paper's OLTP chapter (§5.5) profiles 10-user TPC-C — concurrent
//! writers with real concurrency control. This module gives the engine that
//! machinery while keeping every cost observable on the simulated processor:
//!
//! * **Snapshot isolation.** [`Database::begin`] pins a transaction to the
//!   newest commit timestamp. Reads inside the transaction see exactly the
//!   versions committed at or before that snapshot (plus the transaction's
//!   own staged writes); writes are staged privately and installed at
//!   commit. Write-write conflicts are resolved *first committer wins*:
//!   [`Database::commit`] validates that no row in the write set was
//!   committed by another transaction after the snapshot, and aborts the
//!   loser with [`DbError::TxnConflict`] otherwise.
//! * **Version chains.** The heap always holds the newest committed version
//!   of each row (so autocommit reads — snapshot = now — run the unchanged
//!   fast path). When a commit overwrites a row, the superseded full-row
//!   image is pushed onto a per-row chain tagged with the timestamp of the
//!   commit that *produced* it. A snapshot reader whose snapshot predates
//!   the newest committed write walks the chain newest-to-oldest for the
//!   first image with `ts <= snap`, charging the dependency-bound
//!   `version_chase` block plus a cold simulated touch per hop — the
//!   `T_DEP`/`T_L2D` face of multiversioning.
//! * **Write-ahead log.** Every mutation appends a [`WalRecord`] *before*
//!   the heap or index bytes change; a commit is durable exactly when its
//!   [`WalRecord::Commit`] record is in the log. Each append charges the
//!   store-heavy `wal_append` block plus a store burst in a dedicated
//!   simulated log region. [`Database::replay_wal`] rebuilds a
//!   freshly-loaded database to the bit-identical post-commit state
//!   (verified by [`Database::state_digest`]) after a simulated crash at
//!   any commit boundary.
//!
//! Autocommit mutations ([`Database::update_add`] / [`Database::insert_row`])
//! route through the same machinery as implicit single-statement
//! transactions: overflow and torn-write failures now surface *before* any
//! byte changes, and every successful mutation is WAL-logged and versioned.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use wdtg_sim::{segment, MemDep};

use crate::db::{catch_internal, fetch_record, store_record_fields, Database};
use crate::error::{DbError, DbResult};
use crate::exec::indexscan::descend_to_leaf;
use crate::exec::ExecEnv;
use crate::fault::FaultSite;
use crate::heap::{Rid, HDR_NRECS, PAGE_SIZE};
use crate::index::btree::NODE_SIZE;
use crate::query::{Query, QueryResult};

/// Simulated address of the version-chain storage region (within the MISC
/// segment, past the buffer-pool tables and session working memory).
const VERSION_REGION: u64 = segment::MISC + 0x0A00_0000;
/// Bytes of simulated version storage before the write cursor wraps.
const VERSION_REGION_BYTES: u64 = 32 << 20;
/// Simulated address of the log buffer region.
const WAL_REGION: u64 = segment::MISC + 0x0C00_0000;
/// Bytes of simulated log buffer before the append cursor wraps.
const WAL_REGION_BYTES: u64 = 64 << 20;

/// Handle to an open transaction on one [`Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxnId(pub u64);

impl std::fmt::Display for TxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "txn#{}", self.0)
    }
}

/// One logged mutation, keyed by table name so a log replays into any
/// database loaded with the same catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// A single-field overwrite (the redo image carries both old and new
    /// values; recovery applies `new`, tests use `old` to check pre-images).
    Update {
        /// Table name.
        table: String,
        /// Packed record id ([`Rid::pack`]).
        rid: u64,
        /// Column ordinal.
        col: usize,
        /// Value before the transaction.
        old: i32,
        /// Value the commit installs.
        new: i32,
    },
    /// A full-row insert.
    Insert {
        /// Table name.
        table: String,
        /// The row.
        values: Vec<i32>,
    },
}

/// One write-ahead-log record. Ops are appended at commit time *before*
/// their heap/index bytes change; the commit record seals them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A mutation staged by transaction `txn`.
    Op {
        /// Owning transaction.
        txn: u64,
        /// The mutation.
        op: WalOp,
    },
    /// Transaction `txn` committed at timestamp `ts`; its ops are durable.
    Commit {
        /// Committing transaction.
        txn: u64,
        /// Commit timestamp assigned.
        ts: u64,
    },
    /// Transaction `txn` aborted; its ops (if any) must not be replayed.
    Abort {
        /// Aborting transaction.
        txn: u64,
    },
}

/// The simulated write-ahead log: an append-only record list plus the
/// simulated-address cursor its appends are charged at.
#[derive(Debug, Default, Clone)]
pub struct Wal {
    records: Vec<WalRecord>,
    cursor: u64,
}

impl Wal {
    /// Every record appended so far, in log order.
    pub fn records(&self) -> &[WalRecord] {
        &self.records
    }

    /// Number of commit records in the log — the number of distinct crash
    /// points [`Database::replay_wal`] can recover to.
    pub fn commit_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r, WalRecord::Commit { .. }))
            .count()
    }
}

/// A superseded row image on a version chain.
#[derive(Debug, Clone)]
struct Version {
    /// Timestamp of the commit that *produced* this image (0 = bulk load).
    ts: u64,
    /// Simulated address the image occupies (chased on snapshot reads).
    sim_addr: u64,
    /// The full row as of `ts`.
    row: Vec<i32>,
}

/// One open transaction's private state.
#[derive(Debug)]
struct ActiveTxn {
    /// Snapshot timestamp: the transaction sees commits `<= snap`.
    snap: u64,
    /// Staged single-field writes: `(table, rid) -> col -> new value`.
    /// BTreeMaps keep commit-time iteration deterministic.
    writes: BTreeMap<(usize, u64), BTreeMap<usize, i32>>,
    /// Staged inserts, in statement order.
    inserts: Vec<(usize, Vec<i32>)>,
}

/// Lifetime counters for the transaction machinery.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TxnStats {
    /// Transactions begun via [`Database::begin`].
    pub begun: u64,
    /// Commits (explicit and implicit autocommit) that installed writes or
    /// were read-only successes.
    pub committed: u64,
    /// Aborts, explicit or conflict-forced.
    pub aborted: u64,
    /// First-committer-wins write conflicts detected at commit.
    pub conflicts: u64,
}

/// Per-database MVCC + WAL state. Lives on [`Database`]; all mutation paths
/// (explicit transactions and autocommit) funnel through it.
#[derive(Debug, Default)]
pub struct TxnState {
    /// Next transaction id to hand out.
    next_txn: u64,
    /// Newest commit timestamp assigned.
    last_commit_ts: u64,
    /// Open transactions by id.
    active: BTreeMap<u64, ActiveTxn>,
    /// Per-row timestamp of the commit whose image the heap currently holds
    /// (absent = 0 = bulk load).
    last_writer: HashMap<(usize, u64), u64>,
    /// Per-row chains of superseded images, oldest first.
    chains: HashMap<(usize, u64), Vec<Version>>,
    /// Rows created by a *committed transaction* (vs bulk load), with the
    /// creating commit's timestamp — snapshots older than it skip the row.
    created: HashMap<(usize, u64), u64>,
    /// The write-ahead log.
    wal: Wal,
    /// Write cursor into the simulated version region.
    version_cursor: u64,
    /// Counters.
    stats: TxnStats,
}

/// Estimated on-log bytes of one record (what the simulated append stores).
fn wal_record_bytes(rec: &WalRecord) -> u32 {
    match rec {
        WalRecord::Op { op, .. } => match op {
            WalOp::Update { .. } => 40,
            WalOp::Insert { values, .. } => 32 + 4 * values.len() as u32,
        },
        WalRecord::Commit { .. } | WalRecord::Abort { .. } => 16,
    }
}

impl Database {
    /// Opens a transaction pinned to a snapshot of everything committed so
    /// far. Charges the begin/commit bookkeeping path.
    pub fn begin(&mut self) -> TxnId {
        let blocks = Arc::clone(&self.profile.blocks);
        self.ctx.exec(&blocks.txn_begin_commit);
        let id = self.txn.next_txn;
        self.txn.next_txn += 1;
        self.txn.active.insert(
            id,
            ActiveTxn {
                snap: self.txn.last_commit_ts,
                writes: BTreeMap::new(),
                inserts: Vec::new(),
            },
        );
        self.txn.stats.begun += 1;
        TxnId(id)
    }

    /// Commits a transaction: validates the write set (first committer
    /// wins), assigns the next commit timestamp, appends every op to the
    /// WAL *before* touching heap/index bytes, installs the writes (pushing
    /// superseded images onto version chains) and seals with a commit
    /// record. Returns the commit timestamp.
    ///
    /// On a write-write conflict the transaction is aborted (an abort
    /// record is logged, staged writes are discarded — nothing was applied)
    /// and [`DbError::TxnConflict`] names the first conflicting row; the
    /// caller may retry on a fresh snapshot.
    pub fn commit(&mut self, txn: TxnId) -> DbResult<u64> {
        let at = self
            .txn
            .active
            .remove(&txn.0)
            .ok_or(DbError::TxnUnknown { txn: txn.0 })?;
        let blocks = Arc::clone(&self.profile.blocks);
        self.ctx.exec(&blocks.txn_commit);
        if at.writes.is_empty() && at.inserts.is_empty() {
            // Read-only: nothing to validate, log or install.
            self.txn.stats.committed += 1;
            return Ok(self.txn.last_commit_ts);
        }
        // First committer wins: any row in the write set committed past our
        // snapshot by someone else aborts us.
        for &(ti, rid) in at.writes.keys() {
            let lw = self.txn.last_writer.get(&(ti, rid)).copied().unwrap_or(0);
            if lw > at.snap {
                self.txn.stats.conflicts += 1;
                self.txn.stats.aborted += 1;
                self.wal_append(WalRecord::Abort { txn: txn.0 });
                return Err(DbError::TxnConflict {
                    table: self.tables[ti].name.clone(),
                    rid,
                });
            }
        }
        // Validate everything fallible about the staged inserts *before*
        // applying anything, so the apply phase below cannot half-finish.
        if let Err(e) = self.precheck_inserts(&at.inserts) {
            self.txn.stats.aborted += 1;
            self.wal_append(WalRecord::Abort { txn: txn.0 });
            return Err(e);
        }
        let ts = self.txn.last_commit_ts + 1;
        // Append-before-apply: every op is on the log before any byte moves.
        for (&(ti, rid), cols) in &at.writes {
            let table = self.tables[ti].name.clone();
            for (&col, &new) in cols {
                let old = self.heap_field_raw(ti, rid, col)?;
                self.wal_append(WalRecord::Op {
                    txn: txn.0,
                    op: WalOp::Update {
                        table: table.clone(),
                        rid,
                        col,
                        old,
                        new,
                    },
                });
            }
        }
        for (ti, values) in &at.inserts {
            self.wal_append(WalRecord::Op {
                txn: txn.0,
                op: WalOp::Insert {
                    table: self.tables[*ti].name.clone(),
                    values: values.clone(),
                },
            });
        }
        // Install.
        for (&(ti, rid), cols) in &at.writes {
            self.apply_update_committed(ti, rid, cols, ts)?;
        }
        for (ti, values) in &at.inserts {
            self.apply_insert_committed(*ti, values, ts)?;
        }
        self.wal_append(WalRecord::Commit { txn: txn.0, ts });
        self.txn.last_commit_ts = ts;
        self.txn.stats.committed += 1;
        Ok(ts)
    }

    /// Aborts a transaction: staged writes are discarded (nothing was ever
    /// applied, so the pre-image is intact by construction) and an abort
    /// record is logged.
    pub fn abort(&mut self, txn: TxnId) -> DbResult<()> {
        self.txn
            .active
            .remove(&txn.0)
            .ok_or(DbError::TxnUnknown { txn: txn.0 })?;
        let blocks = Arc::clone(&self.profile.blocks);
        self.ctx.exec(&blocks.txn_commit);
        self.wal_append(WalRecord::Abort { txn: txn.0 });
        self.txn.stats.aborted += 1;
        Ok(())
    }

    /// Runs one statement inside an open transaction: point reads see the
    /// transaction's snapshot (walking version chains where the heap has
    /// moved past it) overlaid with its own staged writes; mutations stage
    /// privately until [`Database::commit`]. Aggregate queries have no
    /// snapshot-aware path and are rejected with [`DbError::PlanError`] —
    /// run them in autocommit.
    pub fn txn_run(&mut self, txn: TxnId, q: &Query) -> DbResult<QueryResult> {
        self.ctx.begin_query();
        if self.ctx.cancel.is_cancelled() {
            return Err(DbError::Cancelled);
        }
        catch_internal(|| match q {
            Query::PointSelect {
                table,
                key_col,
                key,
                read_col,
            } => self.txn_point_select(txn, table, key_col, *key, read_col),
            Query::UpdateAdd {
                table,
                key_col,
                key,
                set_col,
                delta,
            } => self.txn_update_add(txn, table, key_col, *key, set_col, *delta),
            Query::InsertRow { table, values } => self.txn_insert_row(txn, table, values.clone()),
            Query::SelectAgg { .. } | Query::JoinAgg { .. } => Err(DbError::PlanError(
                "aggregate queries are not snapshot-aware; run them in autocommit".into(),
            )),
        })
    }

    /// The write-ahead log (all records since the database was created).
    pub fn wal(&self) -> &Wal {
        &self.txn.wal
    }

    /// Transaction machinery counters.
    pub fn txn_stats(&self) -> TxnStats {
        self.txn.stats
    }

    /// FNV-1a digest over every table's name, record count and raw heap
    /// page bytes — two databases with equal digests hold bit-identical
    /// user data. The recovery tests compare a crashed-and-replayed
    /// database's digest against the original's at the same commit point.
    pub fn state_digest(&self) -> u64 {
        fn eat(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for t in &self.tables {
            eat(&mut h, t.name.as_bytes());
            eat(&mut h, &t.heap.n_records.to_le_bytes());
            for page_no in 0..t.heap.n_pages() {
                let addr = t.heap.page_addr(page_no).expect("page in range");
                eat(&mut h, self.ctx.heap.read_bytes(addr, PAGE_SIZE as u32));
            }
        }
        h
    }

    /// Crash recovery: replays the first `commits` committed transactions
    /// of `records` into this database (which must be freshly loaded to the
    /// same pre-transaction state the log was recorded against). Ops are
    /// buffered per transaction and applied only when the matching commit
    /// record is reached — uncommitted or aborted tails are discarded, as a
    /// real redo pass would. Uninstrumented, like the paper's
    /// pre-measurement loads. Returns the number of commits applied.
    pub fn replay_wal(&mut self, records: &[WalRecord], commits: usize) -> DbResult<usize> {
        let was = self.ctx.instrument;
        self.ctx.instrument = false;
        let result = self.replay_wal_inner(records, commits);
        self.ctx.instrument = was;
        result
    }

    fn replay_wal_inner(&mut self, records: &[WalRecord], commits: usize) -> DbResult<usize> {
        let mut pending: HashMap<u64, Vec<WalOp>> = HashMap::new();
        let mut applied = 0usize;
        for rec in records {
            match rec {
                WalRecord::Op { txn, op } => {
                    pending.entry(*txn).or_default().push(op.clone());
                }
                WalRecord::Abort { txn } => {
                    pending.remove(txn);
                }
                WalRecord::Commit { txn, ts } => {
                    if applied == commits {
                        break;
                    }
                    for op in pending.remove(txn).unwrap_or_default() {
                        self.replay_op(&op)?;
                    }
                    self.txn.last_commit_ts = self.txn.last_commit_ts.max(*ts);
                    applied += 1;
                }
            }
        }
        Ok(applied)
    }

    fn replay_op(&mut self, op: &WalOp) -> DbResult<()> {
        match op {
            WalOp::Update {
                table,
                rid,
                col,
                new,
                ..
            } => {
                let ti = self.table_idx(table)?;
                let rid = Rid::unpack(*rid);
                let page = self.tables[ti].heap.page_addr(rid.page)?;
                let addr = self.tables[ti].heap.field_addr_at(page, rid.slot, *col);
                self.ctx.heap.write_i32(addr, *new);
            }
            WalOp::Insert { table, values } => {
                // The bulk-load path performs the identical byte writes the
                // committed insert did (heap append, page registration,
                // index maintenance), just uninstrumented.
                let table = table.clone();
                self.load_rows(&table, std::iter::once(values.clone()))?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Snapshot reads
    // ------------------------------------------------------------------

    fn txn_point_select(
        &mut self,
        txn: TxnId,
        table: &str,
        key_col: &str,
        key: i32,
        read_col: &str,
    ) -> DbResult<QueryResult> {
        let ti = self.table_idx(table)?;
        let kc = self.tables[ti].schema.col(key_col)?;
        let rc = self.tables[ti].schema.col(read_col)?;
        let snap = self
            .txn
            .active
            .get(&txn.0)
            .ok_or(DbError::TxnUnknown { txn: txn.0 })?
            .snap;
        let ix = self
            .index_on(ti, kc)
            .ok_or_else(|| DbError::IndexNotFound(format!("{table}.{key_col}")))?;
        let btree = ix.btree.clone();
        let blocks = Arc::clone(&self.profile.blocks);

        let rids = {
            let Database {
                ctx,
                bufpool,
                exec_mode,
                ..
            } = self;
            let mut env = ExecEnv {
                ctx,
                bufpool,
                mode: *exec_mode,
            };
            let mut cursor = descend_to_leaf(&mut env, &btree, key, &blocks);
            let mut rids = Vec::new();
            while let Some((k, rid)) = cursor.next_entry(&mut env, &blocks) {
                if k != key {
                    break;
                }
                rids.push(rid);
            }
            rids
        };

        let mut value = 0f64;
        let mut rows = 0u64;
        for rid in rids {
            if let Some(v) = self.visible_field(txn, ti, rid, rc, snap, &blocks)? {
                if rows == 0 {
                    value = v as f64;
                }
                rows += 1;
            }
        }
        // The transaction's own staged inserts are visible to it.
        let staged: Vec<i32> = self.txn.active[&txn.0]
            .inserts
            .iter()
            .filter(|(t, row)| *t == ti && row[kc] == key)
            .map(|(_, row)| row[rc])
            .collect();
        for v in staged {
            if rows == 0 {
                value = v as f64;
            }
            rows += 1;
        }
        Ok(QueryResult { value, rows })
    }

    /// The value of `(ti, rid).col` visible at `snap`, with the
    /// transaction's own staged writes overlaid. `None` = the row was
    /// created by a commit after the snapshot (invisible).
    fn visible_field(
        &mut self,
        txn: TxnId,
        ti: usize,
        rid_packed: u64,
        col: usize,
        snap: u64,
        blocks: &crate::profiles::EngineBlocks,
    ) -> DbResult<Option<i32>> {
        if let Some(at) = self.txn.active.get(&txn.0) {
            if let Some(v) = at.writes.get(&(ti, rid_packed)).and_then(|c| c.get(&col)) {
                return Ok(Some(*v));
            }
        }
        if self
            .txn
            .created
            .get(&(ti, rid_packed))
            .copied()
            .unwrap_or(0)
            > snap
        {
            return Ok(None);
        }
        let lw = self
            .txn
            .last_writer
            .get(&(ti, rid_packed))
            .copied()
            .unwrap_or(0);
        if lw <= snap {
            // Heap holds the visible version: the normal instrumented path.
            let heap = self.tables[ti].heap.clone();
            let rid = Rid::unpack(rid_packed);
            let Database {
                ctx,
                bufpool,
                exec_mode,
                ..
            } = self;
            let mut env = ExecEnv {
                ctx,
                bufpool,
                mode: *exec_mode,
            };
            let frame = fetch_record(&mut env, &heap, rid, blocks)?;
            let v = env
                .ctx
                .load_i32(heap.field_addr_at(frame, rid.slot, col), MemDep::Chase);
            return Ok(Some(v));
        }
        // The heap moved past our snapshot: chase the chain newest-first
        // for the first image with ts <= snap. Each hop is a dependent cold
        // load — the version-chase cost multiversioning charges readers.
        let hops: Vec<(u64, u64, i32)> = self
            .txn
            .chains
            .get(&(ti, rid_packed))
            .ok_or_else(|| DbError::Internal("version chain missing for chased row".into()))?
            .iter()
            .rev()
            .map(|v| (v.ts, v.sim_addr, v.row[col]))
            .collect();
        for (ts, sim_addr, v) in hops {
            self.ctx.exec(&blocks.version_chase);
            self.ctx.touch(sim_addr, 16, MemDep::Chase);
            if ts <= snap {
                return Ok(Some(v));
            }
        }
        Err(DbError::Internal(
            "version chain has no image at or before the snapshot".into(),
        ))
    }

    // ------------------------------------------------------------------
    // Staged mutations
    // ------------------------------------------------------------------

    fn txn_update_add(
        &mut self,
        txn: TxnId,
        table: &str,
        key_col: &str,
        key: i32,
        set_col: &str,
        delta: i32,
    ) -> DbResult<QueryResult> {
        let ti = self.table_idx(table)?;
        let kc = self.tables[ti].schema.col(key_col)?;
        let sc = self.tables[ti].schema.col(set_col)?;
        let snap = self
            .txn
            .active
            .get(&txn.0)
            .ok_or(DbError::TxnUnknown { txn: txn.0 })?
            .snap;
        let ix = self
            .index_on(ti, kc)
            .ok_or_else(|| DbError::IndexNotFound(format!("{table}.{key_col}")))?;
        let btree = ix.btree.clone();
        let blocks = Arc::clone(&self.profile.blocks);

        let rids = {
            let Database {
                ctx,
                bufpool,
                exec_mode,
                ..
            } = &mut *self;
            let mut env = ExecEnv {
                ctx,
                bufpool,
                mode: *exec_mode,
            };
            let mut cursor = descend_to_leaf(&mut env, &btree, key, &blocks);
            let mut rids = Vec::new();
            while let Some((k, rid)) = cursor.next_entry(&mut env, &blocks) {
                if k != key {
                    break;
                }
                rids.push(rid);
            }
            rids
        };

        // Compute every new value before staging any, so an overflow
        // mid-statement stages nothing.
        let mut staged: Vec<(u64, i32)> = Vec::new();
        for rid in rids {
            self.ctx.exec(&blocks.update_step);
            let Some(v) = self.visible_field(txn, ti, rid, sc, snap, &blocks)? else {
                continue;
            };
            let nv = v.checked_add(delta).ok_or_else(|| DbError::ValueOverflow {
                table: table.to_string(),
                col: set_col.to_string(),
                key,
            })?;
            staged.push((rid, nv));
        }
        let rows = staged.len() as u64;
        let mut last = 0i32;
        let at = self
            .txn
            .active
            .get_mut(&txn.0)
            .ok_or(DbError::TxnUnknown { txn: txn.0 })?;
        for (rid, nv) in staged {
            at.writes.entry((ti, rid)).or_default().insert(sc, nv);
            last = nv;
        }
        Ok(QueryResult {
            value: last as f64,
            rows,
        })
    }

    fn txn_insert_row(
        &mut self,
        txn: TxnId,
        table: &str,
        values: Vec<i32>,
    ) -> DbResult<QueryResult> {
        let ti = self.table_idx(table)?;
        let arity = self.tables[ti].schema.arity();
        if values.len() != arity {
            return Err(DbError::ArityMismatch {
                expected: arity,
                got: values.len(),
            });
        }
        let blocks = Arc::clone(&self.profile.blocks);
        // Staging cost: format the row into the private tuple buffer. The
        // heap/index work is charged at commit, where it actually happens.
        self.ctx.exec(&blocks.insert_step);
        self.ctx
            .store_touch(blocks.tuple_buf, (arity * 4) as u32, MemDep::Demand);
        let at = self
            .txn
            .active
            .get_mut(&txn.0)
            .ok_or(DbError::TxnUnknown { txn: txn.0 })?;
        at.inserts.push((ti, values));
        Ok(QueryResult {
            value: 0.0,
            rows: 1,
        })
    }

    // ------------------------------------------------------------------
    // Committed apply (shared by explicit commit and autocommit)
    // ------------------------------------------------------------------

    /// Raw (uninstrumented) read of one heap field — the WAL's pre-image
    /// source at commit time.
    fn heap_field_raw(&self, ti: usize, rid_packed: u64, col: usize) -> DbResult<i32> {
        let rid = Rid::unpack(rid_packed);
        let page = self.tables[ti].heap.page_addr(rid.page)?;
        Ok(self
            .ctx
            .heap
            .read_i32(self.tables[ti].heap.field_addr_at(page, rid.slot, col)))
    }

    /// Appends one record to the WAL, charging the log-serialize path and a
    /// store burst in the simulated log region.
    pub(crate) fn wal_append(&mut self, rec: WalRecord) {
        let blocks = Arc::clone(&self.profile.blocks);
        self.ctx.exec(&blocks.wal_append);
        let bytes = wal_record_bytes(&rec);
        let mut off = self.txn.wal.cursor;
        if off + bytes as u64 > WAL_REGION_BYTES {
            off = 0;
        }
        self.ctx.store_run(WAL_REGION + off, bytes, MemDep::Demand);
        self.txn.wal.cursor = (off + bytes as u64 + 63) & !63;
        self.txn.wal.records.push(rec);
    }

    /// Installs one row's committed writes: pushes the superseded full-row
    /// image onto its version chain (a store burst in the simulated version
    /// region), overwrites the heap fields instrumented, and advances the
    /// row's last-writer timestamp.
    pub(crate) fn apply_update_committed(
        &mut self,
        ti: usize,
        rid_packed: u64,
        cols: &BTreeMap<usize, i32>,
        ts: u64,
    ) -> DbResult<()> {
        let rid = Rid::unpack(rid_packed);
        let heap = self.tables[ti].heap.clone();
        let page = heap.page_addr(rid.page)?;
        let arity = self.tables[ti].schema.arity();
        let mut row = Vec::with_capacity(arity);
        for c in 0..arity {
            row.push(
                self.ctx
                    .heap
                    .read_i32(heap.field_addr_at(page, rid.slot, c)),
            );
        }
        let prior = self
            .txn
            .last_writer
            .get(&(ti, rid_packed))
            .copied()
            .unwrap_or(0);
        // Charge the image copy into the version region.
        let bytes = (arity * 4) as u32 + 16;
        let mut off = self.txn.version_cursor;
        if off + bytes as u64 > VERSION_REGION_BYTES {
            off = 0;
        }
        let sim_addr = VERSION_REGION + off;
        self.ctx.store_run(sim_addr, bytes, MemDep::Demand);
        self.txn.version_cursor = (off + bytes as u64 + 63) & !63;
        self.txn
            .chains
            .entry((ti, rid_packed))
            .or_default()
            .push(Version {
                ts: prior,
                sim_addr,
                row,
            });
        for (&col, &v) in cols {
            self.ctx
                .store_i32(heap.field_addr_at(page, rid.slot, col), v, MemDep::Demand);
        }
        self.txn.last_writer.insert((ti, rid_packed), ts);
        Ok(())
    }

    /// Validates everything fallible about a batch of staged inserts before
    /// any of them applies: arity, the fault-injection seam each index
    /// allocation would cross, and arena headroom for the worst-case page
    /// and node allocations. After this passes, the apply phase cannot fail
    /// halfway — the all-or-nothing guarantee for multi-insert commits.
    pub(crate) fn precheck_inserts(&mut self, inserts: &[(usize, Vec<i32>)]) -> DbResult<()> {
        if inserts.is_empty() {
            return Ok(());
        }
        let mut new_pages_per_table: HashMap<usize, u64> = HashMap::new();
        let mut n_per_table: HashMap<usize, u64> = HashMap::new();
        for (ti, values) in inserts {
            let arity = self.tables[*ti].schema.arity();
            if values.len() != arity {
                return Err(DbError::ArityMismatch {
                    expected: arity,
                    got: values.len(),
                });
            }
            let t = &self.tables[*ti];
            let n_before = t.heap.n_records + n_per_table.get(ti).copied().unwrap_or(0);
            if n_before.is_multiple_of(t.heap.page_cap as u64) {
                *new_pages_per_table.entry(*ti).or_default() += 1;
            }
            *n_per_table.entry(*ti).or_default() += 1;
        }
        // Heap headroom: every new page plus one page of alignment slack.
        let heap_need: u64 = new_pages_per_table.values().sum::<u64>() * PAGE_SIZE + PAGE_SIZE;
        if new_pages_per_table.values().sum::<u64>() > 0
            && self.ctx.heap.used() + heap_need > self.ctx.heap.region().len
        {
            return Err(DbError::ArenaExhausted {
                requested: heap_need,
                used: self.ctx.heap.used(),
                capacity: self.ctx.heap.region().len,
            });
        }
        // Index headroom + fault seams: B+tree insert allocates through the
        // arena's panicking path, so the seam and the headroom bound must
        // both clear here, per insert per index.
        let mut index_need = 0u64;
        for i in 0..self.indexes.len() {
            let ti = self.indexes[i].table;
            let n = n_per_table.get(&ti).copied().unwrap_or(0);
            if n == 0 {
                continue;
            }
            for _ in 0..n {
                if self.ctx.fault.should_fault(FaultSite::ArenaAlloc) {
                    return Err(DbError::ArenaExhausted {
                        requested: NODE_SIZE,
                        used: self.ctx.index.used(),
                        capacity: self.ctx.index.region().len,
                    });
                }
            }
            index_need += n * (self.indexes[i].btree.height as u64 + 3) * NODE_SIZE;
        }
        if index_need > 0 && self.ctx.index.used() + index_need > self.ctx.index.region().len {
            return Err(DbError::ArenaExhausted {
                requested: index_need,
                used: self.ctx.index.used(),
                capacity: self.ctx.index.region().len,
            });
        }
        Ok(())
    }

    /// Applies one committed insert: heap append, page registration,
    /// instrumented charges, index maintenance. [`Database::precheck_inserts`]
    /// must have passed; if a residual invariant failure still surfaces
    /// during index maintenance, the heap append is undone
    /// ([`crate::heap::HeapFile::unappend`]) so no dangling un-indexed
    /// record survives — the torn-write window this module closes.
    pub(crate) fn apply_insert_committed(
        &mut self,
        ti: usize,
        values: &[i32],
        ts: u64,
    ) -> DbResult<Rid> {
        let blocks = Arc::clone(&self.profile.blocks);
        let arity = self.tables[ti].schema.arity();
        let mut buf = Vec::with_capacity(arity * 4);
        for v in values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let table_ref = &mut self.tables[ti];
        let pages_before = table_ref.heap.n_pages();
        let rid = table_ref.heap.insert_raw(&mut self.ctx.heap, &buf)?;
        if table_ref.heap.n_pages() != pages_before {
            let page_no = table_ref.heap.n_pages() - 1;
            let addr = table_ref.heap.page_addr(page_no)?;
            self.bufpool
                .register(&mut self.ctx.misc, table_ref.heap.page_id(page_no), addr);
        }
        self.ctx.exec(&blocks.insert_step);
        let page_addr = self.tables[ti].heap.page_addr(rid.page)?;
        store_record_fields(
            &mut self.ctx,
            &self.tables[ti].heap,
            page_addr,
            rid.slot,
            MemDep::Demand,
        );
        self.ctx
            .store_touch(page_addr + HDR_NRECS, 4, MemDep::Demand);

        if let Err(e) = self.maintain_indexes_for_insert(ti, values, rid, &blocks) {
            // All-or-nothing: wind the heap append back before surfacing.
            self.tables[ti].heap.unappend(&mut self.ctx.heap);
            return Err(e);
        }
        self.txn.created.insert((ti, rid.pack()), ts);
        self.txn.last_writer.insert((ti, rid.pack()), ts);
        Ok(rid)
    }

    fn maintain_indexes_for_insert(
        &mut self,
        ti: usize,
        values: &[i32],
        rid: Rid,
        blocks: &Arc<crate::profiles::EngineBlocks>,
    ) -> DbResult<()> {
        let maintained: Vec<usize> = (0..self.indexes.len())
            .filter(|&i| self.indexes[i].table == ti)
            .collect();
        for i in maintained {
            let key = values[self.indexes[i].col];
            let btree_snapshot = self.indexes[i].btree.clone();
            {
                let Database {
                    ctx,
                    bufpool,
                    exec_mode,
                    ..
                } = &mut *self;
                let mut env = ExecEnv {
                    ctx,
                    bufpool,
                    mode: *exec_mode,
                };
                let _ = descend_to_leaf(&mut env, &btree_snapshot, key, blocks);
            }
            self.indexes[i]
                .btree
                .insert(&mut self.ctx.index, key, rid.pack());
            // Entry shift within the leaf: charge a bounded write burst.
            let leaf = *self.indexes[i]
                .btree
                .descend(&self.ctx.index, key)
                .last()
                .ok_or_else(|| {
                    DbError::Internal("B+tree descend reached no leaf during insert".into())
                })?;
            self.ctx.store_touch(leaf + 24, 12 * 32, MemDep::Demand);
        }
        Ok(())
    }

    /// Installs a successful autocommit `update_add` as an implicit
    /// single-statement transaction: WAL op records, version pushes,
    /// instrumented heap stores, commit record. The conflict check is
    /// trivially satisfied (autocommit reads and writes at "now").
    pub(crate) fn autocommit_apply_update(
        &mut self,
        ti: usize,
        set_col: usize,
        updates: &[(u64, i32, i32)],
    ) -> DbResult<()> {
        let id = self.txn.next_txn;
        self.txn.next_txn += 1;
        let ts = self.txn.last_commit_ts + 1;
        let table = self.tables[ti].name.clone();
        for &(rid, old, new) in updates {
            self.wal_append(WalRecord::Op {
                txn: id,
                op: WalOp::Update {
                    table: table.clone(),
                    rid,
                    col: set_col,
                    old,
                    new,
                },
            });
        }
        for &(rid, _, new) in updates {
            let cols = BTreeMap::from([(set_col, new)]);
            self.apply_update_committed(ti, rid, &cols, ts)?;
        }
        self.wal_append(WalRecord::Commit { txn: id, ts });
        self.txn.last_commit_ts = ts;
        self.txn.stats.committed += 1;
        Ok(())
    }

    /// Runs a single-row autocommit insert as an implicit transaction:
    /// pre-validation, WAL op, all-or-nothing apply, commit record.
    pub(crate) fn autocommit_insert(&mut self, ti: usize, values: Vec<i32>) -> DbResult<Rid> {
        let staged = [(ti, values)];
        self.precheck_inserts(&staged)?;
        let [(ti, values)] = staged;
        let id = self.txn.next_txn;
        self.txn.next_txn += 1;
        let ts = self.txn.last_commit_ts + 1;
        self.wal_append(WalRecord::Op {
            txn: id,
            op: WalOp::Insert {
                table: self.tables[ti].name.clone(),
                values: values.clone(),
            },
        });
        match self.apply_insert_committed(ti, &values, ts) {
            Ok(rid) => {
                self.wal_append(WalRecord::Commit { txn: id, ts });
                self.txn.last_commit_ts = ts;
                self.txn.stats.committed += 1;
                Ok(rid)
            }
            Err(e) => {
                self.wal_append(WalRecord::Abort { txn: id });
                self.txn.stats.aborted += 1;
                Err(e)
            }
        }
    }
}

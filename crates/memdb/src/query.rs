//! Query descriptions (the public "SQL" surface of the substrate).
//!
//! §4.2: "the exact same commands and datasets were used for all the DBMSs,
//! with no vendor-specific SQL extensions" — queries are declarative values;
//! each engine profile plans them its own way (System A ignores indexes for
//! range selections, evaluation strategy differs, etc.).

use crate::expr::Expr;

/// Aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AggKind {
    Avg,
    Sum,
    Count,
    Min,
    Max,
}

/// An aggregate over a named column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggSpec {
    /// Function.
    pub kind: AggKind,
    /// Column name (ignored for `Count` when empty).
    pub col: String,
}

impl AggSpec {
    /// `avg(col)` — the paper's aggregate of choice (§3.3).
    pub fn avg(col: &str) -> AggSpec {
        AggSpec {
            kind: AggKind::Avg,
            col: col.to_string(),
        }
    }

    /// `sum(col)`.
    pub fn sum(col: &str) -> AggSpec {
        AggSpec {
            kind: AggKind::Sum,
            col: col.to_string(),
        }
    }

    /// `count(*)`.
    pub fn count() -> AggSpec {
        AggSpec {
            kind: AggKind::Count,
            col: String::new(),
        }
    }
}

/// A selection predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryPredicate {
    /// `lo < col AND col < hi` (both bounds exclusive, like the paper's
    /// `where a2 < Hi and a2 > Lo`).
    Range {
        /// Column name.
        col: String,
        /// Exclusive lower bound.
        lo: i32,
        /// Exclusive upper bound.
        hi: i32,
    },
    /// Arbitrary expression over the table's columns (by index).
    Expr(Expr),
}

/// A query, as submitted identically to every system.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// `select AGG(col) from table [where predicate]`.
    SelectAgg {
        /// Table name.
        table: String,
        /// Optional predicate.
        predicate: Option<QueryPredicate>,
        /// Aggregate to compute.
        agg: AggSpec,
    },
    /// `select AGG(left.col) from left, right where left.lc = right.rc`.
    JoinAgg {
        /// Probe-side table (R in the paper's join).
        left: String,
        /// Build-side table (S).
        right: String,
        /// Join column on the left table.
        left_col: String,
        /// Join column on the right table.
        right_col: String,
        /// Aggregate over a left-table column.
        agg: AggSpec,
    },
    /// Point lookup through an index: returns `read_col` of the first match.
    PointSelect {
        /// Table name.
        table: String,
        /// Indexed column to match.
        key_col: String,
        /// Key value.
        key: i32,
        /// Column to read.
        read_col: String,
    },
    /// `update table set set_col = set_col + delta where key_col = key`.
    UpdateAdd {
        /// Table name.
        table: String,
        /// Indexed column to match.
        key_col: String,
        /// Key value.
        key: i32,
        /// Column to update.
        set_col: String,
        /// Amount added.
        delta: i32,
    },
    /// Single-row insert.
    InsertRow {
        /// Table name.
        table: String,
        /// Values (must match schema arity).
        values: Vec<i32>,
    },
}

impl Query {
    /// The paper's sequential/indexed range selection:
    /// `select avg(a3) from R where a2 < hi and a2 > lo` (query 1, §3.3).
    /// Whether it runs sequentially or over an index depends on the engine
    /// and on whether an index on `a2` exists.
    pub fn range_select_avg(table: &str, lo: i32, hi: i32) -> Query {
        Query::SelectAgg {
            table: table.to_string(),
            predicate: Some(QueryPredicate::Range {
                col: "a2".into(),
                lo,
                hi,
            }),
            agg: AggSpec::avg("a3"),
        }
    }

    /// The paper's sequential join:
    /// `select avg(R.a3) from R, S where R.a2 = S.a1` (query 2, §3.3).
    pub fn join_avg(left: &str, right: &str) -> Query {
        Query::JoinAgg {
            left: left.to_string(),
            right: right.to_string(),
            left_col: "a2".into(),
            right_col: "a1".into(),
            agg: AggSpec::avg("a3"),
        }
    }
}

/// Result of a query: the scalar value plus how many rows contributed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryResult {
    /// Aggregate (or read) value.
    pub value: f64,
    /// Rows aggregated / matched / changed.
    pub rows: u64,
}

//! Morsel-driven OS-thread parallel execution over a sharded database.
//!
//! [`crate::shard`] executes its shards one after another on the calling
//! thread; this module executes them on a scoped worker pool with a
//! work-stealing deque, morselizing each shard's scan
//! ([`Database::run_partial_morsels`]) — and produces **bit-identical**
//! answers and merged counters for every worker count, morsel schedule and
//! steal order.
//!
//! # The determinism argument
//!
//! The cache and branch simulators are stateful: a core's counters depend
//! on the exact instruction/data stream it has seen. Parallel execution
//! stays bit-identical to sequential execution because that stream is
//! pinned *before* any thread runs:
//!
//! 1. **A shard is a simulated core.** Each shard owns its
//!    [`wdtg_sim::Cpu`], arenas and buffer pool; no simulated state is
//!    shared between shards.
//! 2. **Morsels of one shard run in order on that shard's core.** A
//!    shard's sub-query is one *task*: its morsel sequence, executed
//!    front-to-back on its own `Cpu`. The stream each core sees is a pure
//!    function of (data, plan, morsel size) — never of the host schedule.
//! 3. **The deque schedules tasks, not state.** Work stealing decides
//!    *which OS thread* runs a task and *when* — a worker adopts the
//!    shard's `Cpu` for the duration of the task (`Cpu` is `Send`). Since
//!    threads share no simulated state, the schedule cannot perturb any
//!    counter.
//! 4. **Merging is order-insensitive.** Partial aggregates merge with
//!    exact integer arithmetic ([`AggState::merge`], commutative and
//!    associative), counter merging sums per-core deltas and takes the max
//!    for wall clock ([`wdtg_sim::merge_cores`]), and both are applied in
//!    shard order after all tasks complete. Errors are surfaced in shard
//!    order too, so even a failing run reports the same typed error under
//!    every schedule.
//!
//! Consequently `run_parallel` with 1 worker, 8 workers, or any steal seed
//! produces the same bytes; `tests/parallel_equivalence.rs` holds it to
//! that. Host wall-clock time, of course, *does* change with workers —
//! that is the point — and the `scale_compare` bench reports it next to
//! the modeled (simulated) scaling.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

use crate::db::Database;
use crate::error::{DbError, DbResult};
use crate::exec::partial::AggState;
use crate::fault::{splitmix64, CancelToken};
use crate::query::{Query, QueryPredicate, QueryResult};
use crate::shard::{run_mutation, run_with_retry, shard_of, RouterStats, ShardedDatabase};

/// Knobs for one parallel run. All of them affect only *host* scheduling —
/// answers and merged simulated counters are bit-identical for every
/// configuration with the same `morsel_rows` (and for aggregate answers,
/// identical across `morsel_rows` too, since partials merge exactly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// OS worker threads. `0` means one per available host core
    /// ([`std::thread::available_parallelism`]); `1` runs inline on the
    /// calling thread (the sequential baseline).
    pub workers: usize,
    /// Target rows per morsel. Morsels are page-aligned (at least one heap
    /// page); `u32::MAX` gives one whole-table morsel per shard, which
    /// reproduces [`ShardedDatabase::run`]'s per-shard stream exactly.
    pub morsel_rows: u32,
    /// Seed perturbing the task deal and steal-victim order — host
    /// schedule only, asserted harmless by the steal-order stress test.
    pub steal_seed: u64,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            workers: 0,
            morsel_rows: 16 * 1024,
            steal_seed: 0,
        }
    }
}

impl ParallelConfig {
    /// Config with explicit worker count (0 = one per host core).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Config with explicit morsel size in rows.
    pub fn with_morsel_rows(mut self, rows: u32) -> Self {
        self.morsel_rows = rows;
        self
    }

    /// Config with an explicit steal-schedule seed.
    pub fn with_steal_seed(mut self, seed: u64) -> Self {
        self.steal_seed = seed;
        self
    }

    /// The worker count after resolving `0` to the host's parallelism.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Runs `op` once per job across a scoped worker pool with work-stealing
/// deques, returning per-job outputs **in job order** regardless of the
/// schedule.
///
/// Tasks (job indices) are dealt round-robin into per-worker deques, in an
/// order shuffled by `seed`; a worker pops its own deque from the front and
/// steals from the back of a seeded rotation of victims when empty. With
/// `workers <= 1` the jobs run inline on the calling thread in job order —
/// the sequential baseline the equivalence suite compares against.
///
/// Each job value is handed to exactly one worker by value (`T: Send`), so
/// jobs that own mutable state — a `&mut Database` shard, or a whole
/// [`Database`] replica in the OLTP driver — move across threads without
/// any shared simulated state.
pub fn run_jobs_parallel<T, R, F>(jobs: Vec<T>, workers: usize, seed: u64, op: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = jobs.len();
    let workers = workers.max(1).min(n.max(1));
    if workers <= 1 || n <= 1 {
        return jobs
            .into_iter()
            .enumerate()
            .map(|(i, j)| op(i, j))
            .collect();
    }

    // Deal tasks round-robin in a seed-shuffled order. The shuffle (like
    // the steal order below) only stresses the scheduler: per-job work is
    // schedule-independent, and outputs are re-indexed by job below.
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed ^ 0x5851_f42d_4c95_7f2d;
    for i in (1..n).rev() {
        state = splitmix64(state);
        order.swap(i, (state % (i as u64 + 1)) as usize);
    }
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (k, &job_no) in order.iter().enumerate() {
        deques[k % workers]
            .lock()
            .expect("deque lock poisoned")
            .push_back(job_no);
    }

    // One claimable slot per job hands the exclusive value to whichever
    // worker wins the task; results land in per-job cells so
    // post-processing is in job order no matter who computed what.
    let slots: Vec<Mutex<Option<T>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let op = &op;

    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let results = &results;
            scope.spawn(move || {
                let mut rng = splitmix64(seed ^ (w as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                loop {
                    // Own deque first (front), then steal from the back of
                    // a seeded rotation of victims. No task is ever
                    // re-queued, so finding every deque empty means all
                    // tasks are claimed and this worker is done.
                    let mut task = deques[w].lock().expect("deque lock poisoned").pop_front();
                    if task.is_none() {
                        rng = splitmix64(rng);
                        let start = (rng % workers as u64) as usize;
                        for k in 0..workers {
                            let v = (start + k) % workers;
                            if v == w {
                                continue;
                            }
                            task = deques[v].lock().expect("deque lock poisoned").pop_back();
                            if task.is_some() {
                                break;
                            }
                        }
                    }
                    let Some(job_no) = task else { break };
                    let job = slots[job_no]
                        .lock()
                        .expect("slot lock poisoned")
                        .take()
                        .expect("job task claimed twice");
                    let out = op(job_no, job);
                    *results[job_no].lock().expect("result lock poisoned") = Some(out);
                }
            });
        }
    });

    results
        .into_iter()
        .map(|cell| {
            cell.into_inner()
                .expect("result lock poisoned")
                .expect("worker pool completed every job task")
        })
        .collect()
}

/// [`run_jobs_parallel`] specialized to a sharded database's shards: runs
/// `op` once per shard, outputs in shard order.
fn for_each_shard_parallel<R, F>(
    shards: &mut [Database],
    workers: usize,
    seed: u64,
    op: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(usize, &mut Database) -> R + Sync,
{
    run_jobs_parallel(shards.iter_mut().collect(), workers, seed, |i, db| {
        op(i, db)
    })
}

/// Folds per-shard `(result, stats)` outputs in shard order: router stats
/// always merge; the first error *in shard order* wins (so the surfaced
/// typed error is schedule-independent), else `fold` consumes each value.
fn merge_shard_outputs<T>(
    stats: &mut RouterStats,
    outs: Vec<(DbResult<T>, RouterStats)>,
    mut fold: impl FnMut(usize, T),
) -> DbResult<()> {
    let mut first_err = None;
    for (shard_no, (r, st)) in outs.into_iter().enumerate() {
        stats.absorb(&st);
        match r {
            Ok(v) => fold(shard_no, v),
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

impl ShardedDatabase {
    /// The cancellation token shared by every shard (and the database the
    /// shards were split from). Cloning it onto another thread and calling
    /// [`CancelToken::cancel`] aborts an in-flight parallel query at its
    /// next morsel or batch checkpoint on every worker.
    pub fn cancel_token(&self) -> CancelToken {
        self.shards[0].cancel_token()
    }

    /// [`ShardedDatabase::run`] on a work-stealing OS-thread pool.
    ///
    /// Aggregates morselize each shard's scan and merge exact partials;
    /// point reads and updates broadcast; inserts route — all with the
    /// same merge rules (and the same refusals) as the sequential router.
    /// Answers and merged counters are bit-identical to
    /// `run_parallel` with one worker for every `cfg`; see the module docs
    /// for why, and `tests/parallel_equivalence.rs` for proof.
    pub fn run_parallel(&mut self, q: &Query, cfg: &ParallelConfig) -> DbResult<QueryResult> {
        match q {
            Query::SelectAgg { agg, .. } => self.parallel_merged_agg(q, agg.kind, cfg),
            Query::JoinAgg { agg, .. } => {
                self.check_join_co_partitioning(q)?;
                self.parallel_merged_agg(q, agg.kind, cfg)
            }
            Query::PointSelect { .. } => {
                let outs = for_each_shard_parallel(
                    &mut self.shards,
                    cfg.effective_workers(),
                    cfg.steal_seed,
                    |i, db| {
                        let mut st = RouterStats::default();
                        let r = run_with_retry(db, i, &mut st, |db| db.run(q));
                        (r, st)
                    },
                );
                let mut out = QueryResult {
                    value: 0.0,
                    rows: 0,
                };
                let mut shards_with_matches = 0u32;
                merge_shard_outputs(&mut self.stats, outs, |_, r: QueryResult| {
                    if r.rows > 0 {
                        shards_with_matches += 1;
                        if out.rows == 0 {
                            out.value = r.value;
                        }
                        out.rows += r.rows;
                    }
                })?;
                if shards_with_matches > 1 {
                    return Err(DbError::PlanError(format!(
                        "point select matched rows on {shards_with_matches} shards: the \
                         key is duplicated across shards, so a single returned value is \
                         not well defined; shard the table on the lookup column \
                         (Database::set_shard_key) or use an aggregate query"
                    )));
                }
                Ok(out)
            }
            Query::UpdateAdd { .. } => {
                // A cancellation that is already pending must imply *zero*
                // mutation, so check before any shard can apply (each
                // shard re-checks at its own entry; a cancel landing
                // mid-broadcast behaves like the sequential router's:
                // per-shard atomic, already-applied shards stay applied).
                if self.cancel_token().is_cancelled() {
                    return Err(DbError::Cancelled);
                }
                let outs = for_each_shard_parallel(
                    &mut self.shards,
                    cfg.effective_workers(),
                    cfg.steal_seed,
                    |i, db| {
                        let mut st = RouterStats::default();
                        let r = run_mutation(db, i, &mut st, |db| db.run(q));
                        (r, st)
                    },
                );
                let mut out = QueryResult {
                    value: 0.0,
                    rows: 0,
                };
                merge_shard_outputs(&mut self.stats, outs, |_, r: QueryResult| {
                    if r.rows > 0 {
                        out.value = r.value;
                    }
                    out.rows += r.rows;
                })?;
                Ok(out)
            }
            Query::InsertRow { table, values } => {
                // Single-shard route: nothing to parallelize, and the
                // pre-check keeps "Cancelled implies no mutation".
                if self.cancel_token().is_cancelled() {
                    return Err(DbError::Cancelled);
                }
                let t = self.shards[0].table(table)?;
                let col = t.shard_col;
                if col >= values.len() {
                    return Err(DbError::ArityMismatch {
                        expected: t.schema.arity(),
                        got: values.len(),
                    });
                }
                let target = shard_of(values[col], self.shards.len());
                run_mutation(&mut self.shards[target], target, &mut self.stats, |db| {
                    db.run(q)
                })
            }
        }
    }

    /// [`ShardedDatabase::run_grouped`] on the work-stealing pool: each
    /// shard's grouped sub-query runs morselized on a worker; per-key
    /// exact partials merge in shard order (ascending key output, like the
    /// sequential path, bit-identical for every schedule).
    pub fn run_grouped_parallel(
        &mut self,
        table: &str,
        group_col: &str,
        predicate: Option<&QueryPredicate>,
        agg: &crate::query::AggSpec,
        cfg: &ParallelConfig,
    ) -> DbResult<Vec<(i32, f64)>> {
        let kind = agg.kind;
        let morsel = cfg.morsel_rows;
        let outs = for_each_shard_parallel(
            &mut self.shards,
            cfg.effective_workers(),
            cfg.steal_seed,
            |i, db| {
                let mut st = RouterStats::default();
                let r = run_with_retry(db, i, &mut st, |db| {
                    db.run_grouped_partial_morsels(table, group_col, predicate, agg, morsel)
                });
                (r, st)
            },
        );
        let mut merged: BTreeMap<i32, AggState> = BTreeMap::new();
        merge_shard_outputs(
            &mut self.stats,
            outs,
            |_, partials: Vec<(i32, AggState)>| {
                for (k, st) in partials {
                    merged.entry(k).or_default().merge(&st);
                }
            },
        )?;
        Ok(merged
            .into_iter()
            .map(|(k, st)| (k, st.value(kind)))
            .collect())
    }

    /// The aggregate arm of [`ShardedDatabase::run_parallel`]: every shard
    /// runs its morselized sub-query (under the router's bounded retry) on
    /// the pool; partials and errors merge in shard order.
    fn parallel_merged_agg(
        &mut self,
        q: &Query,
        kind: crate::query::AggKind,
        cfg: &ParallelConfig,
    ) -> DbResult<QueryResult> {
        let morsel = cfg.morsel_rows;
        let outs = for_each_shard_parallel(
            &mut self.shards,
            cfg.effective_workers(),
            cfg.steal_seed,
            |i, db| {
                let mut st = RouterStats::default();
                let r = run_with_retry(db, i, &mut st, |db| db.run_partial_morsels(q, morsel));
                (r, st)
            },
        );
        let mut state = AggState::new();
        merge_shard_outputs(&mut self.stats, outs, |_, p: AggState| state.merge(&p))?;
        Ok(state.result(kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Compile-time lock on the `Send + Sync` refactor: parallel execution
    /// moves whole shards (Cpu, arenas, buffer pool, fault state) across
    /// OS threads, and shares profiles/tokens between them. If any of
    /// these types regresses to `Rc`/`Cell` plumbing, this stops
    /// compiling — the `assert_send_sync` satellite of the refactor.
    #[test]
    fn engine_types_are_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_send_sync<T: Send + Sync>() {}

        assert_send::<wdtg_sim::Cpu>();
        assert_send_sync::<wdtg_sim::Snapshot>();
        assert_send::<crate::db::Database>();
        assert_send::<crate::db::DbCtx>();
        assert_send::<ShardedDatabase>();
        assert_send_sync::<crate::profiles::EngineProfile>();
        assert_send_sync::<crate::profiles::EngineBlocks>();
        assert_send_sync::<crate::heap::HeapFile>();
        assert_send_sync::<CancelToken>();
        assert_send_sync::<crate::fault::FaultPlan>();
        assert_send::<crate::fault::FaultInjector>();
        assert_send_sync::<crate::fault::ResourceBudget>();
        assert_send_sync::<crate::query::Query>();
        assert_send_sync::<AggState>();
        assert_send_sync::<ParallelConfig>();
    }

    #[test]
    fn effective_workers_resolves_zero_to_host_parallelism() {
        assert!(ParallelConfig::default().effective_workers() >= 1);
        assert_eq!(
            ParallelConfig::default()
                .with_workers(3)
                .effective_workers(),
            3
        );
    }

    #[test]
    fn steal_seed_and_worker_count_only_affect_scheduling_metadata() {
        let a = ParallelConfig::default().with_steal_seed(7).with_workers(4);
        let b = ParallelConfig::default().with_steal_seed(9).with_workers(2);
        // Same morsel size => same simulated stream (the full proof lives
        // in tests/parallel_equivalence.rs; this pins the config contract).
        assert_eq!(a.morsel_rows, b.morsel_rows);
    }
}

//! Schemas and the catalog.
//!
//! The paper's relations are rows of 4-byte integers:
//! `create table R (a1 int not null, a2 int not null, a3 int not null, <rest>)`
//! — a 100-byte record is 25 integer columns. All tables in this reproduction
//! use fixed-length integer columns, which keeps record layout identical to
//! the paper's and makes record size a single knob (§5.2.1 varies it from 20
//! to 200 bytes).

use crate::error::{DbError, DbResult};

/// A column definition (4-byte signed integer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (`a1`, `a2`, …).
    pub name: String,
}

/// A table schema: an ordered list of integer columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Builds a schema from column names.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(names: I) -> Self {
        Schema {
            columns: names
                .into_iter()
                .map(|n| Column { name: n.into() })
                .collect(),
        }
    }

    /// The paper's relation layout: `a1..a3` plus filler columns to reach
    /// `record_bytes` (must be a multiple of 4, at least 12).
    pub fn paper_relation(record_bytes: u32) -> Self {
        assert!(
            record_bytes >= 12 && record_bytes.is_multiple_of(4),
            "record size must be 4k >= 12"
        );
        let ncols = (record_bytes / 4) as usize;
        Schema::new((0..ncols).map(|i| format!("a{}", i + 1)))
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Fixed record size in bytes.
    pub fn record_bytes(&self) -> u32 {
        (self.columns.len() * 4) as u32
    }

    /// Columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Index of the named column.
    pub fn col(&self, name: &str) -> DbResult<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| DbError::ColumnNotFound(name.to_string()))
    }

    /// Byte offset of column `idx` within a record.
    pub fn col_offset(&self, idx: usize) -> u32 {
        (idx * 4) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_relation_100_bytes_has_25_int_columns() {
        let s = Schema::paper_relation(100);
        assert_eq!(s.arity(), 25);
        assert_eq!(s.record_bytes(), 100);
        assert_eq!(s.col("a1").unwrap(), 0);
        assert_eq!(s.col("a2").unwrap(), 1);
        assert_eq!(s.col("a3").unwrap(), 2);
        assert_eq!(s.col_offset(2), 8);
    }

    #[test]
    fn record_size_sweep_shapes() {
        for bytes in [20u32, 48, 100, 200] {
            let s = Schema::paper_relation(bytes);
            assert_eq!(s.record_bytes(), bytes);
        }
    }

    #[test]
    fn unknown_column_is_an_error() {
        let s = Schema::paper_relation(20);
        assert_eq!(s.col("zz"), Err(DbError::ColumnNotFound("zz".into())));
    }
}
